# Empty compiler generated dependencies file for operations_report.
# This may be replaced when dependencies are built.
