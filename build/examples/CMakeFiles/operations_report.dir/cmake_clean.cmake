file(REMOVE_RECURSE
  "CMakeFiles/operations_report.dir/operations_report.cpp.o"
  "CMakeFiles/operations_report.dir/operations_report.cpp.o.d"
  "operations_report"
  "operations_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operations_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
