file(REMOVE_RECURSE
  "CMakeFiles/symmetry_report.dir/symmetry_report.cpp.o"
  "CMakeFiles/symmetry_report.dir/symmetry_report.cpp.o.d"
  "symmetry_report"
  "symmetry_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetry_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
