# Empty compiler generated dependencies file for symmetry_report.
# This may be replaced when dependencies are built.
