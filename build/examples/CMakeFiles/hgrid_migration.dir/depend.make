# Empty dependencies file for hgrid_migration.
# This may be replaced when dependencies are built.
