file(REMOVE_RECURSE
  "CMakeFiles/hgrid_migration.dir/hgrid_migration.cpp.o"
  "CMakeFiles/hgrid_migration.dir/hgrid_migration.cpp.o.d"
  "hgrid_migration"
  "hgrid_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgrid_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
