# Empty compiler generated dependencies file for dmag_migration.
# This may be replaced when dependencies are built.
