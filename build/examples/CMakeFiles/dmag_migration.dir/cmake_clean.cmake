file(REMOVE_RECURSE
  "CMakeFiles/dmag_migration.dir/dmag_migration.cpp.o"
  "CMakeFiles/dmag_migration.dir/dmag_migration.cpp.o.d"
  "dmag_migration"
  "dmag_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmag_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
