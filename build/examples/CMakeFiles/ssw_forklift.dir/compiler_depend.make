# Empty compiler generated dependencies file for ssw_forklift.
# This may be replaced when dependencies are built.
