file(REMOVE_RECURSE
  "CMakeFiles/ssw_forklift.dir/ssw_forklift.cpp.o"
  "CMakeFiles/ssw_forklift.dir/ssw_forklift.cpp.o.d"
  "ssw_forklift"
  "ssw_forklift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssw_forklift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
