# Empty dependencies file for replan_surge.
# This may be replaced when dependencies are built.
