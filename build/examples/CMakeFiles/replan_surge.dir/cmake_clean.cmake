file(REMOVE_RECURSE
  "CMakeFiles/replan_surge.dir/replan_surge.cpp.o"
  "CMakeFiles/replan_surge.dir/replan_surge.cpp.o.d"
  "replan_surge"
  "replan_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replan_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
