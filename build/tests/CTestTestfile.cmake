# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_constraints[1]_include.cmake")
include("/root/repo/build/tests/test_migration[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_npd[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
