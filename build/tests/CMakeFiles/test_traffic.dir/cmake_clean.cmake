file(REMOVE_RECURSE
  "CMakeFiles/test_traffic.dir/traffic/demand_io_test.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/demand_io_test.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/ecmp_test.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/ecmp_test.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/forecast_test.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/forecast_test.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/generator_test.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/generator_test.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/wcmp_test.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/wcmp_test.cpp.o.d"
  "test_traffic"
  "test_traffic.pdb"
  "test_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
