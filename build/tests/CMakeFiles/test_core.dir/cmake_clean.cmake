file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/compact_state_test.cpp.o"
  "CMakeFiles/test_core.dir/core/compact_state_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/cost_model_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cost_model_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/evaluator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/evaluator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/opex_test.cpp.o"
  "CMakeFiles/test_core.dir/core/opex_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/planner_test.cpp.o"
  "CMakeFiles/test_core.dir/core/planner_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sat_cache_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sat_cache_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
