# Empty dependencies file for test_npd.
# This may be replaced when dependencies are built.
