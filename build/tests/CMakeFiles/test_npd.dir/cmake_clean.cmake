file(REMOVE_RECURSE
  "CMakeFiles/test_npd.dir/npd/npd_files_test.cpp.o"
  "CMakeFiles/test_npd.dir/npd/npd_files_test.cpp.o.d"
  "CMakeFiles/test_npd.dir/npd/npd_test.cpp.o"
  "CMakeFiles/test_npd.dir/npd/npd_test.cpp.o.d"
  "test_npd"
  "test_npd.pdb"
  "test_npd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
