# Empty dependencies file for klotski_synth.
# This may be replaced when dependencies are built.
