file(REMOVE_RECURSE
  "CMakeFiles/klotski_synth.dir/klotski_synth.cpp.o"
  "CMakeFiles/klotski_synth.dir/klotski_synth.cpp.o.d"
  "klotski_synth"
  "klotski_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
