# Empty dependencies file for klotski_audit.
# This may be replaced when dependencies are built.
