file(REMOVE_RECURSE
  "CMakeFiles/klotski_audit.dir/klotski_audit.cpp.o"
  "CMakeFiles/klotski_audit.dir/klotski_audit.cpp.o.d"
  "klotski_audit"
  "klotski_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
