file(REMOVE_RECURSE
  "CMakeFiles/klotski_plan.dir/klotski_plan.cpp.o"
  "CMakeFiles/klotski_plan.dir/klotski_plan.cpp.o.d"
  "klotski_plan"
  "klotski_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
