# Empty compiler generated dependencies file for klotski_plan.
# This may be replaced when dependencies are built.
