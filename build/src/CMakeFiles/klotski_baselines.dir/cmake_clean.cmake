file(REMOVE_RECURSE
  "CMakeFiles/klotski_baselines.dir/klotski/baselines/brute_force_planner.cpp.o"
  "CMakeFiles/klotski_baselines.dir/klotski/baselines/brute_force_planner.cpp.o.d"
  "CMakeFiles/klotski_baselines.dir/klotski/baselines/janus_planner.cpp.o"
  "CMakeFiles/klotski_baselines.dir/klotski/baselines/janus_planner.cpp.o.d"
  "CMakeFiles/klotski_baselines.dir/klotski/baselines/mrc_planner.cpp.o"
  "CMakeFiles/klotski_baselines.dir/klotski/baselines/mrc_planner.cpp.o.d"
  "libklotski_baselines.a"
  "libklotski_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
