# Empty compiler generated dependencies file for klotski_baselines.
# This may be replaced when dependencies are built.
