file(REMOVE_RECURSE
  "libklotski_baselines.a"
)
