file(REMOVE_RECURSE
  "libklotski_json.a"
)
