file(REMOVE_RECURSE
  "CMakeFiles/klotski_json.dir/klotski/json/json.cpp.o"
  "CMakeFiles/klotski_json.dir/klotski/json/json.cpp.o.d"
  "libklotski_json.a"
  "libklotski_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
