# Empty compiler generated dependencies file for klotski_json.
# This may be replaced when dependencies are built.
