file(REMOVE_RECURSE
  "libklotski_pipeline.a"
)
