
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/klotski/pipeline/audit.cpp" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/audit.cpp.o" "gcc" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/audit.cpp.o.d"
  "/root/repo/src/klotski/pipeline/edp.cpp" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/edp.cpp.o" "gcc" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/edp.cpp.o.d"
  "/root/repo/src/klotski/pipeline/experiments.cpp" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/experiments.cpp.o" "gcc" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/experiments.cpp.o.d"
  "/root/repo/src/klotski/pipeline/plan_export.cpp" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/plan_export.cpp.o" "gcc" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/plan_export.cpp.o.d"
  "/root/repo/src/klotski/pipeline/replan.cpp" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/replan.cpp.o" "gcc" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/replan.cpp.o.d"
  "/root/repo/src/klotski/pipeline/risk.cpp" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/risk.cpp.o" "gcc" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/risk.cpp.o.d"
  "/root/repo/src/klotski/pipeline/schedule.cpp" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/schedule.cpp.o" "gcc" "src/CMakeFiles/klotski_pipeline.dir/klotski/pipeline/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/klotski_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_npd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
