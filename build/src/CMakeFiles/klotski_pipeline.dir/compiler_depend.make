# Empty compiler generated dependencies file for klotski_pipeline.
# This may be replaced when dependencies are built.
