file(REMOVE_RECURSE
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/audit.cpp.o"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/audit.cpp.o.d"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/edp.cpp.o"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/edp.cpp.o.d"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/experiments.cpp.o"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/experiments.cpp.o.d"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/plan_export.cpp.o"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/plan_export.cpp.o.d"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/replan.cpp.o"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/replan.cpp.o.d"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/risk.cpp.o"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/risk.cpp.o.d"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/schedule.cpp.o"
  "CMakeFiles/klotski_pipeline.dir/klotski/pipeline/schedule.cpp.o.d"
  "libklotski_pipeline.a"
  "libklotski_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
