file(REMOVE_RECURSE
  "libklotski_constraints.a"
)
