# Empty compiler generated dependencies file for klotski_constraints.
# This may be replaced when dependencies are built.
