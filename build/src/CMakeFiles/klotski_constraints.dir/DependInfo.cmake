
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/klotski/constraints/composite.cpp" "src/CMakeFiles/klotski_constraints.dir/klotski/constraints/composite.cpp.o" "gcc" "src/CMakeFiles/klotski_constraints.dir/klotski/constraints/composite.cpp.o.d"
  "/root/repo/src/klotski/constraints/demand_checker.cpp" "src/CMakeFiles/klotski_constraints.dir/klotski/constraints/demand_checker.cpp.o" "gcc" "src/CMakeFiles/klotski_constraints.dir/klotski/constraints/demand_checker.cpp.o.d"
  "/root/repo/src/klotski/constraints/port_checker.cpp" "src/CMakeFiles/klotski_constraints.dir/klotski/constraints/port_checker.cpp.o" "gcc" "src/CMakeFiles/klotski_constraints.dir/klotski/constraints/port_checker.cpp.o.d"
  "/root/repo/src/klotski/constraints/space_power_checker.cpp" "src/CMakeFiles/klotski_constraints.dir/klotski/constraints/space_power_checker.cpp.o" "gcc" "src/CMakeFiles/klotski_constraints.dir/klotski/constraints/space_power_checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/klotski_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
