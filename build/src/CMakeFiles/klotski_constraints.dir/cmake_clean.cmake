file(REMOVE_RECURSE
  "CMakeFiles/klotski_constraints.dir/klotski/constraints/composite.cpp.o"
  "CMakeFiles/klotski_constraints.dir/klotski/constraints/composite.cpp.o.d"
  "CMakeFiles/klotski_constraints.dir/klotski/constraints/demand_checker.cpp.o"
  "CMakeFiles/klotski_constraints.dir/klotski/constraints/demand_checker.cpp.o.d"
  "CMakeFiles/klotski_constraints.dir/klotski/constraints/port_checker.cpp.o"
  "CMakeFiles/klotski_constraints.dir/klotski/constraints/port_checker.cpp.o.d"
  "CMakeFiles/klotski_constraints.dir/klotski/constraints/space_power_checker.cpp.o"
  "CMakeFiles/klotski_constraints.dir/klotski/constraints/space_power_checker.cpp.o.d"
  "libklotski_constraints.a"
  "libklotski_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
