
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/klotski/core/astar_planner.cpp" "src/CMakeFiles/klotski_core.dir/klotski/core/astar_planner.cpp.o" "gcc" "src/CMakeFiles/klotski_core.dir/klotski/core/astar_planner.cpp.o.d"
  "/root/repo/src/klotski/core/compact_state.cpp" "src/CMakeFiles/klotski_core.dir/klotski/core/compact_state.cpp.o" "gcc" "src/CMakeFiles/klotski_core.dir/klotski/core/compact_state.cpp.o.d"
  "/root/repo/src/klotski/core/cost_model.cpp" "src/CMakeFiles/klotski_core.dir/klotski/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/klotski_core.dir/klotski/core/cost_model.cpp.o.d"
  "/root/repo/src/klotski/core/dp_planner.cpp" "src/CMakeFiles/klotski_core.dir/klotski/core/dp_planner.cpp.o" "gcc" "src/CMakeFiles/klotski_core.dir/klotski/core/dp_planner.cpp.o.d"
  "/root/repo/src/klotski/core/plan.cpp" "src/CMakeFiles/klotski_core.dir/klotski/core/plan.cpp.o" "gcc" "src/CMakeFiles/klotski_core.dir/klotski/core/plan.cpp.o.d"
  "/root/repo/src/klotski/core/sat_cache.cpp" "src/CMakeFiles/klotski_core.dir/klotski/core/sat_cache.cpp.o" "gcc" "src/CMakeFiles/klotski_core.dir/klotski/core/sat_cache.cpp.o.d"
  "/root/repo/src/klotski/core/state_evaluator.cpp" "src/CMakeFiles/klotski_core.dir/klotski/core/state_evaluator.cpp.o" "gcc" "src/CMakeFiles/klotski_core.dir/klotski/core/state_evaluator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/klotski_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
