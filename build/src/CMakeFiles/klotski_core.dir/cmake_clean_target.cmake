file(REMOVE_RECURSE
  "libklotski_core.a"
)
