# Empty dependencies file for klotski_core.
# This may be replaced when dependencies are built.
