file(REMOVE_RECURSE
  "CMakeFiles/klotski_core.dir/klotski/core/astar_planner.cpp.o"
  "CMakeFiles/klotski_core.dir/klotski/core/astar_planner.cpp.o.d"
  "CMakeFiles/klotski_core.dir/klotski/core/compact_state.cpp.o"
  "CMakeFiles/klotski_core.dir/klotski/core/compact_state.cpp.o.d"
  "CMakeFiles/klotski_core.dir/klotski/core/cost_model.cpp.o"
  "CMakeFiles/klotski_core.dir/klotski/core/cost_model.cpp.o.d"
  "CMakeFiles/klotski_core.dir/klotski/core/dp_planner.cpp.o"
  "CMakeFiles/klotski_core.dir/klotski/core/dp_planner.cpp.o.d"
  "CMakeFiles/klotski_core.dir/klotski/core/plan.cpp.o"
  "CMakeFiles/klotski_core.dir/klotski/core/plan.cpp.o.d"
  "CMakeFiles/klotski_core.dir/klotski/core/sat_cache.cpp.o"
  "CMakeFiles/klotski_core.dir/klotski/core/sat_cache.cpp.o.d"
  "CMakeFiles/klotski_core.dir/klotski/core/state_evaluator.cpp.o"
  "CMakeFiles/klotski_core.dir/klotski/core/state_evaluator.cpp.o.d"
  "libklotski_core.a"
  "libklotski_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
