file(REMOVE_RECURSE
  "CMakeFiles/klotski_util.dir/klotski/util/file.cpp.o"
  "CMakeFiles/klotski_util.dir/klotski/util/file.cpp.o.d"
  "CMakeFiles/klotski_util.dir/klotski/util/flags.cpp.o"
  "CMakeFiles/klotski_util.dir/klotski/util/flags.cpp.o.d"
  "CMakeFiles/klotski_util.dir/klotski/util/logging.cpp.o"
  "CMakeFiles/klotski_util.dir/klotski/util/logging.cpp.o.d"
  "CMakeFiles/klotski_util.dir/klotski/util/rng.cpp.o"
  "CMakeFiles/klotski_util.dir/klotski/util/rng.cpp.o.d"
  "CMakeFiles/klotski_util.dir/klotski/util/string_util.cpp.o"
  "CMakeFiles/klotski_util.dir/klotski/util/string_util.cpp.o.d"
  "CMakeFiles/klotski_util.dir/klotski/util/table.cpp.o"
  "CMakeFiles/klotski_util.dir/klotski/util/table.cpp.o.d"
  "libklotski_util.a"
  "libklotski_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
