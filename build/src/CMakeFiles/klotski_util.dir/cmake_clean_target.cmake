file(REMOVE_RECURSE
  "libklotski_util.a"
)
