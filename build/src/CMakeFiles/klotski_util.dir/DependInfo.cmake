
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/klotski/util/file.cpp" "src/CMakeFiles/klotski_util.dir/klotski/util/file.cpp.o" "gcc" "src/CMakeFiles/klotski_util.dir/klotski/util/file.cpp.o.d"
  "/root/repo/src/klotski/util/flags.cpp" "src/CMakeFiles/klotski_util.dir/klotski/util/flags.cpp.o" "gcc" "src/CMakeFiles/klotski_util.dir/klotski/util/flags.cpp.o.d"
  "/root/repo/src/klotski/util/logging.cpp" "src/CMakeFiles/klotski_util.dir/klotski/util/logging.cpp.o" "gcc" "src/CMakeFiles/klotski_util.dir/klotski/util/logging.cpp.o.d"
  "/root/repo/src/klotski/util/rng.cpp" "src/CMakeFiles/klotski_util.dir/klotski/util/rng.cpp.o" "gcc" "src/CMakeFiles/klotski_util.dir/klotski/util/rng.cpp.o.d"
  "/root/repo/src/klotski/util/string_util.cpp" "src/CMakeFiles/klotski_util.dir/klotski/util/string_util.cpp.o" "gcc" "src/CMakeFiles/klotski_util.dir/klotski/util/string_util.cpp.o.d"
  "/root/repo/src/klotski/util/table.cpp" "src/CMakeFiles/klotski_util.dir/klotski/util/table.cpp.o" "gcc" "src/CMakeFiles/klotski_util.dir/klotski/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
