# Empty dependencies file for klotski_util.
# This may be replaced when dependencies are built.
