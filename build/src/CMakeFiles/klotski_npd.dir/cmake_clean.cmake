file(REMOVE_RECURSE
  "CMakeFiles/klotski_npd.dir/klotski/npd/npd.cpp.o"
  "CMakeFiles/klotski_npd.dir/klotski/npd/npd.cpp.o.d"
  "CMakeFiles/klotski_npd.dir/klotski/npd/npd_convert.cpp.o"
  "CMakeFiles/klotski_npd.dir/klotski/npd/npd_convert.cpp.o.d"
  "CMakeFiles/klotski_npd.dir/klotski/npd/npd_io.cpp.o"
  "CMakeFiles/klotski_npd.dir/klotski/npd/npd_io.cpp.o.d"
  "libklotski_npd.a"
  "libklotski_npd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_npd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
