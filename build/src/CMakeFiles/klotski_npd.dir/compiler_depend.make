# Empty compiler generated dependencies file for klotski_npd.
# This may be replaced when dependencies are built.
