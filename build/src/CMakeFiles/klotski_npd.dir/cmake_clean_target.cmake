file(REMOVE_RECURSE
  "libklotski_npd.a"
)
