file(REMOVE_RECURSE
  "CMakeFiles/klotski_topo.dir/klotski/topo/builder.cpp.o"
  "CMakeFiles/klotski_topo.dir/klotski/topo/builder.cpp.o.d"
  "CMakeFiles/klotski_topo.dir/klotski/topo/diff.cpp.o"
  "CMakeFiles/klotski_topo.dir/klotski/topo/diff.cpp.o.d"
  "CMakeFiles/klotski_topo.dir/klotski/topo/presets.cpp.o"
  "CMakeFiles/klotski_topo.dir/klotski/topo/presets.cpp.o.d"
  "CMakeFiles/klotski_topo.dir/klotski/topo/topology.cpp.o"
  "CMakeFiles/klotski_topo.dir/klotski/topo/topology.cpp.o.d"
  "libklotski_topo.a"
  "libklotski_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
