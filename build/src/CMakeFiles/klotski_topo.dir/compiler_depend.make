# Empty compiler generated dependencies file for klotski_topo.
# This may be replaced when dependencies are built.
