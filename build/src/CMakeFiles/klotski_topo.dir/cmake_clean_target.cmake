file(REMOVE_RECURSE
  "libklotski_topo.a"
)
