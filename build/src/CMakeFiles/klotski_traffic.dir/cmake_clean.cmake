file(REMOVE_RECURSE
  "CMakeFiles/klotski_traffic.dir/klotski/traffic/demand.cpp.o"
  "CMakeFiles/klotski_traffic.dir/klotski/traffic/demand.cpp.o.d"
  "CMakeFiles/klotski_traffic.dir/klotski/traffic/demand_io.cpp.o"
  "CMakeFiles/klotski_traffic.dir/klotski/traffic/demand_io.cpp.o.d"
  "CMakeFiles/klotski_traffic.dir/klotski/traffic/ecmp.cpp.o"
  "CMakeFiles/klotski_traffic.dir/klotski/traffic/ecmp.cpp.o.d"
  "CMakeFiles/klotski_traffic.dir/klotski/traffic/forecast.cpp.o"
  "CMakeFiles/klotski_traffic.dir/klotski/traffic/forecast.cpp.o.d"
  "CMakeFiles/klotski_traffic.dir/klotski/traffic/generator.cpp.o"
  "CMakeFiles/klotski_traffic.dir/klotski/traffic/generator.cpp.o.d"
  "libklotski_traffic.a"
  "libklotski_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
