file(REMOVE_RECURSE
  "libklotski_traffic.a"
)
