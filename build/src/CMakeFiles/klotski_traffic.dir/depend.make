# Empty dependencies file for klotski_traffic.
# This may be replaced when dependencies are built.
