
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/klotski/traffic/demand.cpp" "src/CMakeFiles/klotski_traffic.dir/klotski/traffic/demand.cpp.o" "gcc" "src/CMakeFiles/klotski_traffic.dir/klotski/traffic/demand.cpp.o.d"
  "/root/repo/src/klotski/traffic/demand_io.cpp" "src/CMakeFiles/klotski_traffic.dir/klotski/traffic/demand_io.cpp.o" "gcc" "src/CMakeFiles/klotski_traffic.dir/klotski/traffic/demand_io.cpp.o.d"
  "/root/repo/src/klotski/traffic/ecmp.cpp" "src/CMakeFiles/klotski_traffic.dir/klotski/traffic/ecmp.cpp.o" "gcc" "src/CMakeFiles/klotski_traffic.dir/klotski/traffic/ecmp.cpp.o.d"
  "/root/repo/src/klotski/traffic/forecast.cpp" "src/CMakeFiles/klotski_traffic.dir/klotski/traffic/forecast.cpp.o" "gcc" "src/CMakeFiles/klotski_traffic.dir/klotski/traffic/forecast.cpp.o.d"
  "/root/repo/src/klotski/traffic/generator.cpp" "src/CMakeFiles/klotski_traffic.dir/klotski/traffic/generator.cpp.o" "gcc" "src/CMakeFiles/klotski_traffic.dir/klotski/traffic/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/klotski_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
