# Empty compiler generated dependencies file for klotski_migration.
# This may be replaced when dependencies are built.
