
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/klotski/migration/action.cpp" "src/CMakeFiles/klotski_migration.dir/klotski/migration/action.cpp.o" "gcc" "src/CMakeFiles/klotski_migration.dir/klotski/migration/action.cpp.o.d"
  "/root/repo/src/klotski/migration/block.cpp" "src/CMakeFiles/klotski_migration.dir/klotski/migration/block.cpp.o" "gcc" "src/CMakeFiles/klotski_migration.dir/klotski/migration/block.cpp.o.d"
  "/root/repo/src/klotski/migration/policy.cpp" "src/CMakeFiles/klotski_migration.dir/klotski/migration/policy.cpp.o" "gcc" "src/CMakeFiles/klotski_migration.dir/klotski/migration/policy.cpp.o.d"
  "/root/repo/src/klotski/migration/symmetry.cpp" "src/CMakeFiles/klotski_migration.dir/klotski/migration/symmetry.cpp.o" "gcc" "src/CMakeFiles/klotski_migration.dir/klotski/migration/symmetry.cpp.o.d"
  "/root/repo/src/klotski/migration/task.cpp" "src/CMakeFiles/klotski_migration.dir/klotski/migration/task.cpp.o" "gcc" "src/CMakeFiles/klotski_migration.dir/klotski/migration/task.cpp.o.d"
  "/root/repo/src/klotski/migration/task_builder.cpp" "src/CMakeFiles/klotski_migration.dir/klotski/migration/task_builder.cpp.o" "gcc" "src/CMakeFiles/klotski_migration.dir/klotski/migration/task_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/klotski_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
