file(REMOVE_RECURSE
  "CMakeFiles/klotski_migration.dir/klotski/migration/action.cpp.o"
  "CMakeFiles/klotski_migration.dir/klotski/migration/action.cpp.o.d"
  "CMakeFiles/klotski_migration.dir/klotski/migration/block.cpp.o"
  "CMakeFiles/klotski_migration.dir/klotski/migration/block.cpp.o.d"
  "CMakeFiles/klotski_migration.dir/klotski/migration/policy.cpp.o"
  "CMakeFiles/klotski_migration.dir/klotski/migration/policy.cpp.o.d"
  "CMakeFiles/klotski_migration.dir/klotski/migration/symmetry.cpp.o"
  "CMakeFiles/klotski_migration.dir/klotski/migration/symmetry.cpp.o.d"
  "CMakeFiles/klotski_migration.dir/klotski/migration/task.cpp.o"
  "CMakeFiles/klotski_migration.dir/klotski/migration/task.cpp.o.d"
  "CMakeFiles/klotski_migration.dir/klotski/migration/task_builder.cpp.o"
  "CMakeFiles/klotski_migration.dir/klotski/migration/task_builder.cpp.o.d"
  "libklotski_migration.a"
  "libklotski_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klotski_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
