file(REMOVE_RECURSE
  "libklotski_migration.a"
)
