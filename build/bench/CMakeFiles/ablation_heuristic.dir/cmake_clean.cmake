file(REMOVE_RECURSE
  "CMakeFiles/ablation_heuristic.dir/ablation_heuristic.cpp.o"
  "CMakeFiles/ablation_heuristic.dir/ablation_heuristic.cpp.o.d"
  "ablation_heuristic"
  "ablation_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
