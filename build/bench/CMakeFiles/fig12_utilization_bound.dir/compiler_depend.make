# Empty compiler generated dependencies file for fig12_utilization_bound.
# This may be replaced when dependencies are built.
