file(REMOVE_RECURSE
  "CMakeFiles/fig12_utilization_bound.dir/fig12_utilization_bound.cpp.o"
  "CMakeFiles/fig12_utilization_bound.dir/fig12_utilization_bound.cpp.o.d"
  "fig12_utilization_bound"
  "fig12_utilization_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_utilization_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
