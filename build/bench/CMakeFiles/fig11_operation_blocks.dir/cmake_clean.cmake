file(REMOVE_RECURSE
  "CMakeFiles/fig11_operation_blocks.dir/fig11_operation_blocks.cpp.o"
  "CMakeFiles/fig11_operation_blocks.dir/fig11_operation_blocks.cpp.o.d"
  "fig11_operation_blocks"
  "fig11_operation_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_operation_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
