# Empty dependencies file for fig11_operation_blocks.
# This may be replaced when dependencies are built.
