# Empty dependencies file for fig7_dp_vs_astar.
# This may be replaced when dependencies are built.
