
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_dp_vs_astar.cpp" "bench/CMakeFiles/fig7_dp_vs_astar.dir/fig7_dp_vs_astar.cpp.o" "gcc" "bench/CMakeFiles/fig7_dp_vs_astar.dir/fig7_dp_vs_astar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/klotski_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_npd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/klotski_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
