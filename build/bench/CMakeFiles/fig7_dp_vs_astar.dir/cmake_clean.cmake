file(REMOVE_RECURSE
  "CMakeFiles/fig7_dp_vs_astar.dir/fig7_dp_vs_astar.cpp.o"
  "CMakeFiles/fig7_dp_vs_astar.dir/fig7_dp_vs_astar.cpp.o.d"
  "fig7_dp_vs_astar"
  "fig7_dp_vs_astar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dp_vs_astar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
