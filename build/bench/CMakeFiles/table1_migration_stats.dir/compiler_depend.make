# Empty compiler generated dependencies file for table1_migration_stats.
# This may be replaced when dependencies are built.
