file(REMOVE_RECURSE
  "CMakeFiles/ablation_opex.dir/ablation_opex.cpp.o"
  "CMakeFiles/ablation_opex.dir/ablation_opex.cpp.o.d"
  "ablation_opex"
  "ablation_opex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_opex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
