# Empty compiler generated dependencies file for ablation_opex.
# This may be replaced when dependencies are built.
