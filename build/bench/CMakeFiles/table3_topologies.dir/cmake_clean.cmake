file(REMOVE_RECURSE
  "CMakeFiles/table3_topologies.dir/table3_topologies.cpp.o"
  "CMakeFiles/table3_topologies.dir/table3_topologies.cpp.o.d"
  "table3_topologies"
  "table3_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
