# Empty dependencies file for fig13_cost_function.
# This may be replaced when dependencies are built.
