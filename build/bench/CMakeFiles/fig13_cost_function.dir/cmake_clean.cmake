file(REMOVE_RECURSE
  "CMakeFiles/fig13_cost_function.dir/fig13_cost_function.cpp.o"
  "CMakeFiles/fig13_cost_function.dir/fig13_cost_function.cpp.o.d"
  "fig13_cost_function"
  "fig13_cost_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cost_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
