file(REMOVE_RECURSE
  "CMakeFiles/fig9_generality.dir/fig9_generality.cpp.o"
  "CMakeFiles/fig9_generality.dir/fig9_generality.cpp.o.d"
  "fig9_generality"
  "fig9_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
