# Empty compiler generated dependencies file for fig9_generality.
# This may be replaced when dependencies are built.
