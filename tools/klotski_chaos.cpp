// klotski_chaos — seeded chaos sweeps over the replan driver.
//
//   klotski_chaos --seeds=100 --threads=4 --preset=a
//   klotski_chaos --seed-range=500:600 --preset=b --max-replans=6
//   klotski_chaos --seed=42 --trajectory        # one seed, verbose
//
// Each seed builds the preset migration, generates a deterministic fault
// script (circuit degradations/failures, unplanned switch drains, demand
// surges, forecast-error windows, injected step failures with partial block
// application), executes it through the hardened replan driver with the
// invariant checker observing every phase, then kills and resumes the run
// from a JSON-round-tripped mid-run checkpoint and requires a byte-identical
// continuation.
//
// Flags:
//   --seeds        number of seeds to run              (default 25)
//   --first-seed   first seed of the sweep             (default 0)
//   --seed-range   LO:HI (HI exclusive), overrides --seeds/--first-seed
//   --seed         run exactly one seed, verbosely
//   --threads      worker threads; verdicts are identical at any value
//                  (default 1)
//   --family       clos | flat | reconf                (default clos)
//   --preset       a | b | c | d | e                   (default a)
//   --scale        reduced | full                      (default reduced)
//   --planner      astar | dp | mrc | janus | brute    (default astar)
//   --fallback     fallback planner after --max-replans (default mrc)
//   --max-replans  planning rounds before degrading, 0 = never (default 0)
//   --retries      per-phase retry budget              (default 6)
//   --theta        utilization bound in (0, 1]         (default 0.75)
//   --growth       organic demand growth per step      (default 0.002)
//   --degrades / --circuit-failures / --drains / --step-failures /
//   --surges / --forecast-errors    fault-script event counts
//   --no-resume-check   skip the checkpoint kill/resume self-test
//   --no-warm-repair    every re-plan is a cold search (warm-start
//                       ablation; DESIGN.md §11)
//   --repair-cost-slack accept a surviving plan suffix when its cost is
//                       within this factor of the from-scratch lower
//                       bound (default 1.25)
//   --trajectory   print per-phase trajectories (single seed only)
//   --connect      run the sweep remotely: submit one chaos job to a
//                  klotski_served daemon (unix:PATH | tcp:HOST:PORT) via
//                  the serve client library and report its verdicts; the
//                  daemon's admission control applies (an "overloaded"
//                  answer exits 3 so sweep drivers can back off)
//   --metrics-out  write the metrics registry JSON here
//   --trace-out    write Chrome trace_event JSON here
//
// Exit status: 0 all seeds passed; 1 failures (every failing seed is
// listed); 2 usage error; 3 daemon rejected the job (--connect only).
#include <algorithm>
#include <iostream>
#include <string>

#include "klotski/serve/client.h"
#include "klotski/sim/chaos.h"
#include "klotski/util/flags.h"
#include "common/tool_runner.h"

namespace {

using namespace klotski;

bool parse_preset(const std::string& text, topo::PresetId& out) {
  if (text == "a") out = topo::PresetId::kA;
  else if (text == "b") out = topo::PresetId::kB;
  else if (text == "c") out = topo::PresetId::kC;
  else if (text == "d") out = topo::PresetId::kD;
  else if (text == "e") out = topo::PresetId::kE;
  else return false;
  return true;
}

/// Median planning-round latency (ms) across every round of a verdict set;
/// 0 when no rounds ran.
double median_replan_ms(const std::vector<sim::ChaosVerdict>& verdicts) {
  std::vector<double> seconds;
  for (const sim::ChaosVerdict& v : verdicts) {
    for (const pipeline::ReplanRound& round : v.rounds) {
      seconds.push_back(round.seconds);
    }
  }
  if (seconds.empty()) return 0.0;
  const std::size_t mid = seconds.size() / 2;
  std::nth_element(seconds.begin(),
                   seconds.begin() + static_cast<std::ptrdiff_t>(mid),
                   seconds.end());
  return seconds[mid] * 1e3;
}

void print_verdict(const sim::ChaosVerdict& v, bool verbose,
                   bool trajectory) {
  std::cout << "seed " << v.seed << ": "
            << (v.passed() ? "PASS" : "FAIL") << " phases=" << v.phases
            << " replans=" << v.replans << " retries=" << v.phase_retries
            << " fallback=" << v.fallback_plans << " warm=" << v.warm_wins
            << "/" << v.warm_attempts << " cost=" << v.executed_cost;
  if (!v.passed()) std::cout << " (" << v.failure << ")";
  std::cout << "\n";
  if (verbose) {
    for (const std::string& violation : v.violations) {
      std::cout << "  violation: " << violation << "\n";
    }
  }
  if (trajectory) std::cout << v.trajectory;
}

int run(const util::Flags& flags) {
  sim::ChaosParams params;
  try {
    params.family =
        topo::family_from_string(flags.get_string("family", "clos"));
  } catch (const std::invalid_argument&) {
    std::cerr << "klotski_chaos: unknown --family (want clos|flat|reconf)\n";
    return 2;
  }
  if (!parse_preset(flags.get_string("preset", "a"), params.preset)) {
    std::cerr << "klotski_chaos: unknown --preset (want a..e)\n";
    return 2;
  }
  const std::string scale = flags.get_string("scale", "reduced");
  if (scale == "full") {
    params.scale = topo::PresetScale::kFull;
  } else if (scale != "reduced") {
    std::cerr << "klotski_chaos: unknown --scale (want reduced|full)\n";
    return 2;
  }
  params.planner = flags.get_string("planner", "astar");
  params.fallback_planner = flags.get_string("fallback", "mrc");
  params.max_replans = static_cast<int>(flags.get_int("max-replans", 0));
  params.max_phase_retries = static_cast<int>(flags.get_int("retries", 6));
  params.checker.demand.max_utilization = flags.get_double("theta", 0.75);
  params.growth_per_step = flags.get_double("growth", 0.002);
  params.faults.circuit_degrades =
      static_cast<int>(flags.get_int("degrades", 2));
  params.faults.circuit_failures =
      static_cast<int>(flags.get_int("circuit-failures", 1));
  params.faults.switch_drains = static_cast<int>(flags.get_int("drains", 1));
  params.faults.step_failures =
      static_cast<int>(flags.get_int("step-failures", 2));
  params.faults.demand_events = static_cast<int>(flags.get_int("surges", 1));
  params.faults.forecast_errors =
      static_cast<int>(flags.get_int("forecast-errors", 1));
  params.checkpoint_self_test = !flags.get_bool("no-resume-check", false);
  params.warm_repair = !flags.get_bool("no-warm-repair", false);
  params.repair_cost_slack = flags.get_double("repair-cost-slack", 1.25);

  const int threads = static_cast<int>(flags.get_int("threads", 1));
  if (threads < 1) {
    std::cerr << "klotski_chaos: --threads must be >= 1\n";
    return 2;
  }

  std::uint64_t first_seed =
      static_cast<std::uint64_t>(flags.get_int("first-seed", 0));
  int num_seeds = static_cast<int>(flags.get_int("seeds", 25));
  const std::string range = flags.get_string("seed-range", "");
  if (!range.empty()) {
    const std::size_t colon = range.find(':');
    if (colon == std::string::npos) {
      std::cerr << "klotski_chaos: --seed-range wants LO:HI\n";
      return 2;
    }
    try {
      const long long lo = std::stoll(range.substr(0, colon));
      const long long hi = std::stoll(range.substr(colon + 1));
      if (lo < 0 || hi <= lo) throw std::invalid_argument("empty range");
      first_seed = static_cast<std::uint64_t>(lo);
      num_seeds = static_cast<int>(hi - lo);
    } catch (const std::exception&) {
      std::cerr << "klotski_chaos: bad --seed-range '" << range << "'\n";
      return 2;
    }
  }
  if (flags.has("seed")) {
    first_seed = static_cast<std::uint64_t>(flags.get_int("seed", 0));
    num_seeds = 1;
  }
  if (num_seeds < 1) {
    std::cerr << "klotski_chaos: --seeds must be >= 1\n";
    return 2;
  }

  const bool single = num_seeds == 1;
  const bool trajectory = flags.get_bool("trajectory", false) && single;

  // Remote mode: the sweep runs inside a klotski_served worker as one
  // cooperative-stop-aware job; this process only speaks the protocol.
  const std::string connect = flags.get_string("connect", "");
  if (!connect.empty()) {
    json::Object params_json;
    params_json["family"] = topo::to_string(params.family);
    params_json["preset"] = flags.get_string("preset", "a");
    params_json["scale"] = scale;
    params_json["planner"] = params.planner;
    params_json["theta"] = params.checker.demand.max_utilization;
    params_json["growth"] = params.growth_per_step;
    params_json["max_replans"] = params.max_replans;
    params_json["retries"] = params.max_phase_retries;
    params_json["resume_check"] = params.checkpoint_self_test;
    params_json["no_warm_repair"] = !params.warm_repair;
    params_json["repair_cost_slack"] = params.repair_cost_slack;
    params_json["degrades"] = params.faults.circuit_degrades;
    params_json["circuit_failures"] = params.faults.circuit_failures;
    params_json["drains"] = params.faults.switch_drains;
    params_json["step_failures"] = params.faults.step_failures;
    params_json["surges"] = params.faults.demand_events;
    params_json["forecast_errors"] = params.faults.forecast_errors;
    params_json["first_seed"] = static_cast<std::int64_t>(first_seed);
    params_json["seeds"] = num_seeds;

    serve::Client client = serve::Client::connect_with_retry(
        serve::Endpoint::parse(connect), /*attempts=*/5);
    const serve::Response resp = client.submit_and_wait(
        "chaos", json::Value(std::move(params_json)), "chaos-sweep");
    if (resp.status == "overloaded" || resp.status == "draining") {
      std::cerr << "klotski_chaos: daemon " << resp.status << "\n";
      return 3;
    }
    if (!resp.ok()) {
      std::cerr << "klotski_chaos: remote sweep failed: " << resp.error
                << "\n";
      return 2;
    }
    const long long seeds_run = resp.result.get_int("seeds_run", 0);
    const long long failures = resp.result.get_int("failures", 0);
    std::vector<std::int64_t> failing;
    if (const json::Value* verdicts =
            resp.result.as_object().find("verdicts")) {
      for (const json::Value& v : verdicts->as_array()) {
        if (!v.get_bool("passed", false)) {
          failing.push_back(v.get_int("seed", -1));
          std::cout << "seed " << v.get_int("seed", -1) << ": FAIL ("
                    << v.get_string("failure", "") << ")\n";
        }
      }
    }
    std::cout << "chaos sweep (remote via " << connect << "): "
              << (seeds_run - failures) << "/" << seeds_run
              << " seeds passed, warm "
              << resp.result.get_int("warm_wins", 0) << "/"
              << resp.result.get_int("warm_attempts", 0)
              << ", median replan "
              << resp.result.get_double("median_replan_ms", 0.0) << " ms";
    if (resp.result.get_bool("stopped", false)) {
      std::cout << " (stopped early by daemon drain)";
    }
    std::cout << "\n";
    if (failures > 0) {
      std::cout << "failing seeds:";
      for (const std::int64_t s : failing) std::cout << " " << s;
      std::cout << "\n";
      return 1;
    }
    return 0;
  }

  const sim::ChaosSweepResult sweep =
      sim::run_chaos_sweep(first_seed, num_seeds, threads, params);
  for (const sim::ChaosVerdict& v : sweep.verdicts) {
    if (single || !v.passed()) print_verdict(v, single, trajectory);
  }

  int warm_attempts = 0;
  int warm_wins = 0;
  for (const sim::ChaosVerdict& v : sweep.verdicts) {
    warm_attempts += v.warm_attempts;
    warm_wins += v.warm_wins;
  }
  std::cout << "chaos sweep: " << (num_seeds - sweep.failures) << "/"
            << num_seeds << " seeds passed, warm " << warm_wins << "/"
            << warm_attempts << ", median replan "
            << median_replan_ms(sweep.verdicts) << " ms\n";
  if (sweep.failures > 0) {
    std::cout << "failing seeds:";
    for (const std::uint64_t s : sweep.failing_seeds()) {
      std::cout << " " << s;
    }
    std::cout << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return klotski::tools::tool_main(argc, argv, "klotski_chaos", run);
}
