// Shared --metrics-out / --trace-out handling for the CLI tools.
//
// Call obs_from_flags() immediately after Flags::parse (it enables the
// registry/tracer so the whole run is instrumented), then write_obs_outputs()
// once on the way out — including error paths, so a failed run still leaves
// its observability artifacts behind.
#pragma once

#include <iostream>
#include <string>

#include "klotski/json/json.h"
#include "klotski/obs/metrics.h"
#include "klotski/obs/trace.h"
#include "klotski/util/file.h"
#include "klotski/util/flags.h"

namespace klotski::tools {

struct ObsOutput {
  std::string metrics_path;
  std::string trace_path;
};

inline ObsOutput obs_from_flags(const util::Flags& flags) {
  ObsOutput out;
  out.metrics_path = flags.get_string("metrics-out", "");
  out.trace_path = flags.get_string("trace-out", "");
  if (!out.metrics_path.empty()) obs::set_metrics_enabled(true);
  if (!out.trace_path.empty()) obs::set_trace_enabled(true);
  return out;
}

/// Writes the requested observability artifacts and prints the end-of-run
/// metrics table to stderr. No-op when neither flag was given.
inline void write_obs_outputs(const ObsOutput& out, const std::string& tool) {
  if (!out.metrics_path.empty()) {
    util::write_file(out.metrics_path,
                     json::dump(obs::Registry::global().to_json(), 2) + "\n");
    std::cerr << obs::Registry::global().render_table(tool + " metrics");
    std::cerr << "wrote " << out.metrics_path << "\n";
  }
  if (!out.trace_path.empty()) {
    util::write_file(out.trace_path,
                     json::dump(obs::Tracer::global().to_json(), 2) + "\n");
    std::cerr << "wrote " << out.trace_path << "\n";
  }
}

}  // namespace klotski::tools
