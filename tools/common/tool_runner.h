// Shared main() body for the CLI tools.
//
// Every tool follows the same lifecycle: parse flags, arm the observability
// registry/tracer (so the whole run is instrumented), run, then write the
// observability artifacts on the way out — including error paths, so a
// failed run still leaves its metrics behind. tool_main() is that lifecycle
// in one place; a tool's translation unit is just its run(flags) function
// and a one-line main.
//
//   int main(int argc, char** argv) {
//     return klotski::tools::tool_main(argc, argv, "klotski_plan", run);
//   }
//
// Uncaught exceptions are reported as "<tool>: <what>" and map to the
// usage/input-error exit code (2), matching the tools' documented contract.
#pragma once

#include <exception>
#include <iostream>
#include <string>

#include "obs_output.h"
#include "klotski/util/flags.h"

namespace klotski::tools {

inline int tool_main(int argc, const char* const* argv,
                     const std::string& name,
                     int (*run)(const util::Flags&)) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const ObsOutput obs_out = obs_from_flags(flags);
  int rc = 2;
  try {
    rc = run(flags);
  } catch (const std::exception& e) {
    std::cerr << name << ": " << e.what() << "\n";
    rc = 2;
  }
  // Written even on failure: a run that found no plan is exactly the one
  // whose metrics you want to look at.
  write_obs_outputs(obs_out, name);
  return rc;
}

}  // namespace klotski::tools
