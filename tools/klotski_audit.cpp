// klotski_audit — independently audit an exported plan against its NPD
// document (§7.2: "we add extra audits and safety checks to Klotski's plans
// during operation").
//
//   klotski_audit --npd=region.npd.json --plan=plan.json [--theta=0.75] \
//                 [--strict]
//
// Flags:
//   --npd     NPD JSON document (required)
//   --plan    plan JSON produced by klotski_plan (required)
//   --theta   utilization bound used for the audit    (default 0.75)
//   --routing ecmp | wcmp                             (default ecmp)
//   --strict  also check every intra-phase prefix (funneling paranoia)
//   --metrics-out  write the metrics registry JSON here and print the
//                  end-of-run metrics table to stderr
//   --trace-out    write Chrome trace_event JSON here (chrome://tracing)
//
// Exit status: 0 audit passed, 1 audit failed, 2 usage/input error.
#include <iostream>

#include "klotski/npd/npd_io.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/topo/diff.h"
#include "klotski/util/file.h"
#include "klotski/util/flags.h"
#include "common/tool_runner.h"

namespace {

int run(const klotski::util::Flags& flags) {
  using namespace klotski;

  const std::string npd_path = flags.get_string("npd", "");
  const std::string plan_path = flags.get_string("plan", "");
  if (npd_path.empty() || plan_path.empty()) {
    std::cerr << "klotski_audit: --npd=FILE and --plan=FILE are required\n";
    return 2;
  }

  {
    const npd::NpdDocument doc = npd::parse_npd(util::read_file(npd_path));
    migration::MigrationCase mig = npd::build_case(doc);
    migration::MigrationTask& task = mig.task;

    const core::Plan plan = pipeline::plan_from_json(
        task, json::parse(util::read_file(plan_path)));

    pipeline::CheckerConfig config;
    config.demand.max_utilization = flags.get_double("theta", 0.75);
    if (flags.get_string("routing", "ecmp") == "wcmp") {
      config.routing = traffic::SplitMode::kCapacityWeighted;
    }
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    const pipeline::AuditReport report = pipeline::audit_plan(
        task, *bundle.checker, plan, flags.get_bool("strict", false));

    if (report.ok) {
      std::cout << "AUDIT OK: " << report.phases_checked
                << " phases checked, " << plan.actions.size()
                << " actions, cost " << plan.cost << "\n";
      std::cout << "This plan changes:\n"
                << topo::diff_to_text(
                       *task.topo,
                       topo::diff_states(*task.topo, task.original_state,
                                         task.target_state));
      return 0;
    }
    std::cout << "AUDIT FAILED:\n";
    for (const std::string& issue : report.issues) {
      std::cout << "  " << issue << "\n";
    }
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  return klotski::tools::tool_main(argc, argv, "klotski_audit", run);
}
