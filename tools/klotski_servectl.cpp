// klotski_servectl — command-line control client for a klotski_served daemon.
//
// The operator's front door to the serve protocol over either transport,
// built on the serve client library (no hand-rolled wire format):
//
//   klotski_servectl --connect=/tmp/k.sock ping
//   klotski_servectl --connect=tcp:10.0.0.7:7077 stats
//   klotski_servectl --connect=tcp:plan-svc:7077 call \
//       --method=plan --params-file=plan-params.json
//   klotski_servectl --connect=/tmp/k.sock submit --method=replan \
//       --params-file=replan-params.json          # prints the job id
//   klotski_servectl --connect=/tmp/k.sock poll --job=j-7
//   klotski_servectl --connect=/tmp/k.sock wait --job=j-7 --timeout-ms=60000
//   klotski_servectl --connect=/tmp/k.sock cancel --job=j-7
//
// Commands (one positional argument):
//   ping | stats           control methods, result printed as JSON
//   call                   run --method sync (plan | audit | chaos |
//                          replan | whatif); the connection blocks until done
//   submit                 enqueue --method async; prints {"job_id": ...}
//   whatif                 sugar for submit --method=whatif + wait: enqueue
//                          the robustness sweep as a batch job and block
//                          until its report comes back
//   poll | wait | cancel   job lifecycle for a --job id
//
// Params come from --params-file=FILE or inline --params=JSON (default {}).
// Results print to stdout as indented JSON. Exit status: 0 ok; 1 the
// daemon answered error/overloaded/draining (the response still prints);
// 2 usage or transport error.
#include <iostream>
#include <string>

#include "klotski/json/json.h"
#include "klotski/serve/client.h"
#include "klotski/util/file.h"
#include "klotski/util/flags.h"
#include "common/tool_runner.h"

namespace {

using namespace klotski;

json::Value params_from_flags(const util::Flags& flags) {
  const std::string file = flags.get_string("params-file", "");
  const std::string inline_text = flags.get_string("params", "");
  if (!file.empty() && !inline_text.empty()) {
    throw std::invalid_argument(
        "--params and --params-file are mutually exclusive");
  }
  if (!file.empty()) return json::parse(util::read_file(file));
  if (!inline_text.empty()) return json::parse(inline_text);
  return json::Value(json::Object{});
}

json::Value job_params(const util::Flags& flags) {
  const std::string job = flags.get_string("job", "");
  if (job.empty()) throw std::invalid_argument("--job=ID is required");
  json::Object params;
  params["job_id"] = job;
  if (flags.has("timeout-ms")) {
    params["timeout_ms"] =
        static_cast<std::int64_t>(flags.get_int("timeout-ms", 0));
  }
  return json::Value(std::move(params));
}

int print_response(const serve::Response& resp) {
  std::cout << json::dump(resp.to_json(), 2) << "\n";
  return resp.ok() ? 0 : 1;
}

int run(const util::Flags& flags) {
  const std::string connect = flags.get_string("connect", "");
  if (connect.empty()) {
    std::cerr << "klotski_servectl: --connect=ENDPOINT is required\n";
    return 2;
  }
  if (flags.positional().size() != 1) {
    std::cerr << "klotski_servectl: exactly one command (ping|stats|call|"
                 "submit|whatif|poll|wait|cancel)\n";
    return 2;
  }
  const std::string command = flags.positional().front();

  serve::Client client = serve::Client::connect_with_retry(
      serve::Endpoint::parse(connect),
      static_cast<int>(flags.get_int("retries", 3)));

  if (command == "ping" || command == "stats") {
    return print_response(
        client.call(command, json::Value(json::Object{})));
  }
  if (command == "whatif") {
    return print_response(client.submit_and_wait(
        "whatif", params_from_flags(flags), "whatif"));
  }
  if (command == "call" || command == "submit") {
    const std::string method = flags.get_string("method", "");
    if (method.empty()) {
      std::cerr << "klotski_servectl: --method=plan|audit|chaos|replan|"
                   "whatif is required\n";
      return 2;
    }
    if (command == "call") {
      return print_response(client.call(method, params_from_flags(flags)));
    }
    json::Object submit;
    submit["method"] = method;
    submit["params"] = params_from_flags(flags);
    return print_response(
        client.call("submit", json::Value(std::move(submit))));
  }
  if (command == "poll" || command == "wait" || command == "cancel") {
    return print_response(client.call(command, job_params(flags)));
  }
  std::cerr << "klotski_servectl: unknown command '" << command << "'\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  return klotski::tools::tool_main(argc, argv, "klotski_servectl", run);
}
