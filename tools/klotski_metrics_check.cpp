// klotski_metrics_check — validate observability artifacts emitted by
// klotski_plan / klotski_audit, using the in-tree JSON parser (so the check
// also proves the emitted JSON round-trips through klotski_json).
//
//   klotski_metrics_check --metrics=m.json [--trace=t.json] \
//                         [--expect-same=other.json --counters=a,b,c]
//
// Flags:
//   --metrics      metrics JSON written by --metrics-out (required)
//   --trace        trace JSON written by --trace-out; checked to be a
//                  well-formed Chrome trace_event document
//   --expect-same  second metrics JSON; the counters named by --counters
//                  must match exactly between the two files (the
//                  thread-invariance contract)
//   --counters     comma-separated counter names for --expect-same
//                  (default: the evaluator.* thread-invariant set)
//
// Always checked on --metrics:
//   * schema == "klotski.metrics.v1"
//   * evaluator.sat_cache_hits + evaluator.sat_cache_misses ==
//     evaluator.evaluations (when any of the three is present)
//   * replan.warm_wins + replan.fallback_full == replan.warm_attempts
//     (when any of the three is present — every warm-repair attempt either
//     wins or falls back to a full replan, never both or neither)
//
// Exit status: 0 all checks passed, 1 a check failed, 2 usage/input error.
#include <iostream>
#include <string>
#include <vector>

#include "klotski/json/json.h"
#include "klotski/util/file.h"
#include "klotski/util/flags.h"
#include "klotski/util/string_util.h"
#include "common/tool_runner.h"

namespace {

using klotski::json::Value;

long long counter_value(const Value& metrics, const std::string& name) {
  const Value* counters = metrics.at("counters").as_object().find(name);
  return counters == nullptr ? 0 : counters->as_int();
}

bool has_counter(const Value& metrics, const std::string& name) {
  return metrics.at("counters").as_object().find(name) != nullptr;
}

int run(const klotski::util::Flags& flags) {
  using namespace klotski;

  const std::string metrics_path = flags.get_string("metrics", "");
  if (metrics_path.empty()) {
    std::cerr << "klotski_metrics_check: --metrics=FILE is required\n";
    return 2;
  }

  {
    const Value metrics = json::parse(util::read_file(metrics_path));
    if (metrics.get_string("schema", "") != "klotski.metrics.v1") {
      std::cerr << "FAIL: " << metrics_path
                << " does not carry schema klotski.metrics.v1\n";
      return 1;
    }

    // The sat-cache consistency invariant: every evaluation is either a
    // cache hit or a miss (which triggers a checker run), never both or
    // neither. The three counters are maintained independently, so this is
    // a real cross-check, not an identity.
    if (has_counter(metrics, "evaluator.evaluations") ||
        has_counter(metrics, "evaluator.sat_cache_hits") ||
        has_counter(metrics, "evaluator.sat_cache_misses")) {
      const long long hits = counter_value(metrics, "evaluator.sat_cache_hits");
      const long long misses =
          counter_value(metrics, "evaluator.sat_cache_misses");
      const long long evals = counter_value(metrics, "evaluator.evaluations");
      if (hits + misses != evals) {
        std::cerr << "FAIL: sat_cache_hits (" << hits << ") + sat_cache_misses ("
                  << misses << ") != evaluations (" << evals << ")\n";
        return 1;
      }
      std::cout << "ok: " << hits << " hits + " << misses
                << " misses == " << evals << " evaluations\n";
    }

    // Warm-repair accounting: an attempt either repairs the surviving
    // suffix (a win) or declines and runs a full replan (a fallback).
    if (has_counter(metrics, "replan.warm_attempts") ||
        has_counter(metrics, "replan.warm_wins") ||
        has_counter(metrics, "replan.fallback_full")) {
      const long long attempts =
          counter_value(metrics, "replan.warm_attempts");
      const long long wins = counter_value(metrics, "replan.warm_wins");
      const long long fallbacks =
          counter_value(metrics, "replan.fallback_full");
      if (wins + fallbacks != attempts) {
        std::cerr << "FAIL: warm_wins (" << wins << ") + fallback_full ("
                  << fallbacks << ") != warm_attempts (" << attempts << ")\n";
        return 1;
      }
      std::cout << "ok: " << wins << " warm wins + " << fallbacks
                << " full fallbacks == " << attempts << " warm attempts\n";
    }

    const std::string trace_path = flags.get_string("trace", "");
    if (!trace_path.empty()) {
      const Value trace = json::parse(util::read_file(trace_path));
      std::size_t spans = 0;
      for (const Value& event : trace.at("traceEvents").as_array()) {
        if (event.get_string("ph", "") != "X") {
          std::cerr << "FAIL: trace event with ph != \"X\" in " << trace_path
                    << "\n";
          return 1;
        }
        event.at("name").as_string();
        event.at("ts").as_int();
        event.at("dur").as_int();
        ++spans;
      }
      std::cout << "ok: " << trace_path << " holds " << spans
                << " well-formed trace events\n";
    }

    const std::string other_path = flags.get_string("expect-same", "");
    if (!other_path.empty()) {
      const Value other = json::parse(util::read_file(other_path));
      std::vector<std::string> names = util::split(
          flags.get_string("counters",
                           "evaluator.evaluations,evaluator.sat_cache_hits,"
                           "evaluator.sat_cache_misses,evaluator.delta_applies,"
                           "evaluator.full_replays,planner.states_expanded"),
          ',');
      bool same = true;
      for (const std::string& name : names) {
        const long long a = counter_value(metrics, name);
        const long long b = counter_value(other, name);
        if (a != b) {
          std::cerr << "FAIL: counter " << name << " differs: " << a << " ("
                    << metrics_path << ") vs " << b << " (" << other_path
                    << ")\n";
          same = false;
        }
      }
      if (!same) return 1;
      std::cout << "ok: " << names.size() << " counters identical between "
                << metrics_path << " and " << other_path << "\n";
    }
    return 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  return klotski::tools::tool_main(argc, argv, "klotski_metrics_check", run);
}
