// klotski_synth — generate an NPD document for one of the Table 3 presets
// and a migration type, in any topology family.
//
//   klotski_synth --preset=E --scale=reduced --migration=hgrid-v1-to-v2 \
//                 --out=region-e.npd.json
//   klotski_synth --family=flat --preset=B --out=flat-b.npd.json
//
// Flags:
//   --family     clos | flat | reconf                    (default clos)
//   --preset     A | B | C | D | E                       (default B)
//   --scale      reduced | full                          (default reduced)
//   --migration  hgrid-v1-to-v2 | ssw-forklift | dmag |
//                flat-forklift | reconf-rewire | none
//                (default: the family's canonical migration)
//   --out        output path                             (default: stdout)
#include <iostream>

#include "klotski/npd/npd_io.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/util/file.h"
#include "klotski/util/flags.h"
#include "common/tool_runner.h"

namespace {

int fail_usage(const std::string& message) {
  std::cerr << "klotski_synth: " << message << "\n"
            << "usage: klotski_synth [--family=clos|flat|reconf] "
               "[--preset=A..E] [--scale=reduced|full] "
               "[--migration=hgrid-v1-to-v2|ssw-forklift|dmag|"
               "flat-forklift|reconf-rewire|none] [--out=FILE]\n";
  return 2;
}

int run(const klotski::util::Flags& flags) {
  using namespace klotski;

  const std::string preset_name = flags.get_string("preset", "B");
  topo::PresetId preset;
  if (preset_name == "A") preset = topo::PresetId::kA;
  else if (preset_name == "B") preset = topo::PresetId::kB;
  else if (preset_name == "C") preset = topo::PresetId::kC;
  else if (preset_name == "D") preset = topo::PresetId::kD;
  else if (preset_name == "E") preset = topo::PresetId::kE;
  else return fail_usage("unknown preset '" + preset_name + "'");

  const std::string scale_name = flags.get_string("scale", "reduced");
  topo::PresetScale scale;
  if (scale_name == "reduced") scale = topo::PresetScale::kReduced;
  else if (scale_name == "full") scale = topo::PresetScale::kFull;
  else return fail_usage("unknown scale '" + scale_name + "'");

  npd::NpdDocument doc;
  try {
    const topo::TopologyFamily family =
        topo::family_from_string(flags.get_string("family", "clos"));
    npd::MigrationKind migration = npd::default_migration(family);
    if (flags.has("migration")) {
      migration =
          npd::migration_kind_from_string(flags.get_string("migration", ""));
    }
    doc = pipeline::synth_document(family, preset, scale, migration);
  } catch (const std::invalid_argument& e) {
    return fail_usage(e.what());
  }

  const std::string text = npd::dump_npd(doc) + "\n";
  const std::string out = flags.get_string("out", "");
  if (out.empty()) {
    std::cout << text;
  } else {
    util::write_file(out, text);
    std::cerr << "wrote " << out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return klotski::tools::tool_main(argc, argv, "klotski_synth", run);
}
