// klotski_plan — run the EDP-Lite pipeline on an NPD document and emit the
// migration plan.
//
//   klotski_plan --npd=region.npd.json --planner=astar --theta=0.75 \
//                --out=plan.json
//   klotski_plan --family=flat --preset=B --out=plan.json
//
// Flags:
//   --npd          NPD JSON document; alternatively build a canonical
//                  preset in-process with --family/--preset/--scale
//   --family       clos | flat | reconf                  (default clos)
//   --preset       A..E, builds the family's canonical experiment with its
//                  default migration (no NPD file needed)
//   --scale        reduced | full for --preset           (default reduced)
//   --planner      astar | dp | mrc | janus | brute     (default astar)
//   --theta        utilization bound in (0, 1]           (default 0.75)
//   --alpha        cost-function alpha in [0, 1]         (default 0)
//   --routing      ecmp | wcmp                           (default ecmp)
//   --funneling    funneling margin >= 0                 (default 0)
//   --deadline     planner budget in seconds, 0 = none   (default 0)
//   --mem-budget-mb  cap on the planner's search-structure memory (node
//                  arena, dedup table, open list, verdict cache) in MB;
//                  0 = unbounded. On reaching the cap the A* search evicts
//                  the worst open nodes and degrades to beam search: the
//                  plan stays audited but may be suboptimal, and the
//                  degradation is recorded under "provenance" in the plan
//                  JSON. (default 0)
//   --threads      worker threads for frontier evaluation (default 1;
//                  plans are identical at any value)
//   --router-threads  worker threads inside each satisfiability check:
//                  the ECMP router recomputes independent dirty demand
//                  groups in parallel (default 1; loads and plans are
//                  bit-identical at any value). Composes with --threads:
//                  the budget is split across the worker-private routers.
//   --demands      demand-matrix JSON replacing the generated forecast
//                  (the §7.1 refresh workflow)
//   --dump-demands write the effective demand matrix to this path
//   --out          plan JSON path                        (default: stdout)
//   --summary      also print the human-readable plan text
//   --schedule     print the crew schedule + OPEX estimate (stderr)
//   --risk         print the per-phase capacity risk report (stderr)
//   --crews        parallel crews for --schedule          (default 4)
//   --metrics-out  write the metrics registry JSON here and print the
//                  end-of-run metrics table to stderr
//   --trace-out    write Chrome trace_event JSON here (chrome://tracing)
//
// Exit status: 0 plan found and audited, 1 no plan, 2 usage/input error.
#include <algorithm>
#include <iostream>

#include "klotski/npd/npd_io.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/pipeline/risk.h"
#include "klotski/pipeline/schedule.h"
#include "klotski/traffic/demand_io.h"
#include "klotski/util/file.h"
#include "klotski/util/flags.h"
#include "klotski/util/thread_budget.h"
#include "common/tool_runner.h"

namespace {

int run(const klotski::util::Flags& flags) {
  using namespace klotski;

  const std::string npd_path = flags.get_string("npd", "");
  const std::string preset_name = flags.get_string("preset", "");
  if (npd_path.empty() == preset_name.empty()) {
    std::cerr << "klotski_plan: exactly one of --npd=FILE or --preset=A..E "
                 "is required\n";
    return 2;
  }

  {
    npd::NpdDocument doc;
    if (!npd_path.empty()) {
      doc = npd::parse_npd(util::read_file(npd_path));
    } else {
      topo::PresetId preset;
      if (preset_name == "A") preset = topo::PresetId::kA;
      else if (preset_name == "B") preset = topo::PresetId::kB;
      else if (preset_name == "C") preset = topo::PresetId::kC;
      else if (preset_name == "D") preset = topo::PresetId::kD;
      else if (preset_name == "E") preset = topo::PresetId::kE;
      else {
        std::cerr << "klotski_plan: unknown preset '" << preset_name
                  << "'\n";
        return 2;
      }
      const std::string scale_name = flags.get_string("scale", "reduced");
      if (scale_name != "reduced" && scale_name != "full") {
        std::cerr << "klotski_plan: unknown scale '" << scale_name << "'\n";
        return 2;
      }
      const topo::PresetScale scale = scale_name == "full"
                                          ? topo::PresetScale::kFull
                                          : topo::PresetScale::kReduced;
      try {
        const topo::TopologyFamily family =
            topo::family_from_string(flags.get_string("family", "clos"));
        doc = pipeline::synth_document(family, preset, scale,
                                       npd::default_migration(family));
      } catch (const std::invalid_argument& e) {
        std::cerr << "klotski_plan: " << e.what() << "\n";
        return 2;
      }
    }

    // Build the migration case; optionally swap in an operator-provided
    // demand matrix (endpoints resolved by switch name).
    migration::MigrationCase mig = npd::build_case(doc);
    migration::MigrationTask& task = mig.task;
    const std::string demands_path = flags.get_string("demands", "");
    if (!demands_path.empty()) {
      task.demands = traffic::demands_from_json(
          *task.topo, json::parse(util::read_file(demands_path)));
      std::cerr << "loaded " << task.demands.size()
                << " demands from " << demands_path << "\n";
    }
    const std::string dump_demands = flags.get_string("dump-demands", "");
    if (!dump_demands.empty()) {
      util::write_file(
          dump_demands,
          json::dump(traffic::demands_to_json(*task.topo, task.demands), 2) +
              "\n");
      std::cerr << "wrote " << dump_demands << "\n";
    }

    pipeline::CheckerConfig checker_config;
    checker_config.demand.max_utilization = flags.get_double("theta", 0.75);
    checker_config.demand.funneling_margin =
        flags.get_double("funneling", 0.0);
    const std::string routing = flags.get_string("routing", "ecmp");
    if (routing == "wcmp") {
      checker_config.routing = traffic::SplitMode::kCapacityWeighted;
    } else if (routing != "ecmp") {
      std::cerr << "klotski_plan: unknown routing '" << routing << "'\n";
      return 2;
    }

    checker_config.router_threads =
        static_cast<int>(flags.get_int("router-threads", 1));
    if (checker_config.router_threads < 1) {
      std::cerr << "klotski_plan: --router-threads must be >= 1\n";
      return 2;
    }

    core::PlannerOptions planner_options;
    planner_options.alpha = flags.get_double("alpha", 0.0);
    planner_options.deadline_seconds = flags.get_double("deadline", 0.0);
    planner_options.mem_budget_mb = flags.get_double("mem-budget-mb", 0.0);
    if (planner_options.mem_budget_mb < 0.0) {
      std::cerr << "klotski_plan: --mem-budget-mb must be >= 0\n";
      return 2;
    }
    planner_options.num_threads =
        static_cast<int>(flags.get_int("threads", 1));
    if (planner_options.num_threads < 1) {
      std::cerr << "klotski_plan: --threads must be >= 1\n";
      return 2;
    }
    if (planner_options.num_threads > 1) {
      // Worker-private routers share the intra-check budget so --threads=T
      // --router-threads=R keeps roughly T*max(1, R/T) threads busy, not
      // T*R (the shared oversubscription rule, util/thread_budget.h).
      pipeline::CheckerConfig worker_config = checker_config;
      worker_config.router_threads =
          util::split_thread_budget(planner_options.num_threads,
                                    checker_config.router_threads)
              .inner;
      planner_options.checker_factory =
          pipeline::make_standard_checker_factory(worker_config);
    }

    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, checker_config);
    auto planner =
        pipeline::make_planner(flags.get_string("planner", "astar"));
    const core::Plan plan =
        planner->plan(task, *bundle.checker, planner_options);

    if (flags.get_bool("summary", false)) {
      std::cerr << pipeline::plan_to_text(task, plan);
    }
    if (!plan.found) {
      std::cerr << "klotski_plan: no plan: " << plan.failure << "\n";
      return 1;
    }

    // Independent audit before anything is emitted for deployment (§7.2).
    pipeline::CheckerBundle audit_bundle =
        pipeline::make_standard_checker(task, checker_config);
    const pipeline::AuditReport audit =
        pipeline::audit_plan(task, *audit_bundle.checker, plan);
    if (!audit.ok) {
      std::cerr << "klotski_plan: plan failed the safety audit:\n";
      for (const std::string& issue : audit.issues) {
        std::cerr << "  " << issue << "\n";
      }
      return 1;
    }

    if (flags.get_bool("schedule", false)) {
      pipeline::CrewModel crew;
      crew.crews = static_cast<int>(flags.get_int("crews", 4));
      std::cerr << pipeline::schedule_to_text(
          pipeline::build_schedule(task, plan, crew));
    }
    if (flags.get_bool("risk", false)) {
      std::cerr << pipeline::risk_to_text(pipeline::assess_risk(
          task, plan, checker_config.demand.max_utilization,
          checker_config.routing));
    }

    const std::string text =
        json::dump(pipeline::plan_to_json(task, plan), 2) + "\n";
    const std::string out = flags.get_string("out", "");
    if (out.empty()) {
      std::cout << text;
    } else {
      util::write_file(out, text);
      std::cerr << "wrote " << out << " (cost " << plan.cost << ", "
                << plan.phases().size() << " phases, audited)\n";
    }
    return 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  return klotski::tools::tool_main(argc, argv, "klotski_plan", run);
}
