// klotski_served — the Klotski plan service daemon.
//
//   # one box: unix socket only
//   klotski_served --socket=/tmp/k.sock --workers=4 --cache-capacity=64 \
//                  --spill-dir=/var/cache/klotski
//
//   # fleet front door: TCP beside (or instead of) the unix socket
//   klotski_served --socket=/tmp/k.sock --listen=0.0.0.0:7077 --workers=8 \
//                  --cache-shards=16 --idle-timeout-ms=60000
//
// Serves the klotski.serve.v1 protocol (newline-delimited JSON over a unix
// socket and/or TCP; see src/klotski/serve/protocol.h and README "Plan
// service"): plan / audit / chaos / replan work methods, sync or submitted
// as async jobs, behind a bounded worker pool with explicit admission
// control and a content-addressed single-flight plan cache, sharded so
// concurrent cache hits on different keys never contend on one lock.
//
// Flags:
//   --socket        unix socket path (kept short — sun_path caps at ~100
//                   bytes); optional when --listen is given
//   --listen        TCP listen spec HOST:PORT; port 0 binds an ephemeral
//                   port (see --endpoint-out)        (default: none)
//   --endpoint-out  write the bound TCP endpoint ("tcp:host:port" with the
//                   real port) to this file once listening — scripts wait
//                   for the file instead of parsing logs
//   --workers       worker threads executing jobs       (default 2)
//   --max-queue     queued jobs before new work is rejected with
//                   {"status":"overloaded"}             (default 64)
//   --cache-capacity  completed plans held in memory    (default 128)
//   --cache-shards  cache lock shards                   (default 8)
//   --spill-dir     directory for evicted plans; doubles as a warm cache
//                   across daemon restarts              (default: none)
//   --max-request-bytes  request-line cap; longer lines are answered with
//                   status:"error" and the connection is closed
//                                                       (default 1 MiB)
//   --idle-timeout-ms  close connections idle this long; 0 disables
//                                                       (default 60000)
//   --threads       total planner thread budget, split across the workers
//                   by the shared oversubscription rule (default: one per
//                   worker)
//   --router-threads  intra-check budget per planner    (default 1)
//   --max-connections  concurrent client connections    (default 64)
//   --ready-fd      write one byte to this fd once the sockets are
//                   listening (scripts: open a pipe, wait for the byte
//                   instead of polling)
//   --metrics-out   write the metrics registry JSON here on drain
//   --trace-out     write Chrome trace_event JSON here on drain
//
// Shutdown: SIGTERM or SIGINT triggers the graceful drain — admission
// stops, queued and running jobs finish (replan jobs checkpoint via their
// cooperative stop flag), connections close, metrics are flushed, and the
// daemon exits 0.
#include <csignal>
#include <iostream>
#include <memory>

#include <unistd.h>

#include "klotski/serve/server.h"
#include "klotski/util/file.h"
#include "klotski/util/flags.h"
#include "klotski/util/thread_budget.h"
#include "common/tool_runner.h"

namespace {

using namespace klotski;

// Signal handlers may only poke the server's self-pipe.
int g_drain_fd = -1;

void on_signal(int) {
  if (g_drain_fd >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(g_drain_fd, &byte, 1);
  }
}

int run(const util::Flags& flags) {
  serve::Server::Options options;
  options.socket_path = flags.get_string("socket", "");
  options.listen = flags.get_string("listen", "");
  if (options.socket_path.empty() && options.listen.empty()) {
    std::cerr << "klotski_served: --socket=PATH and/or --listen=HOST:PORT "
                 "is required\n";
    return 2;
  }
  options.jobs.workers = static_cast<int>(flags.get_int("workers", 2));
  options.jobs.max_queue = static_cast<int>(flags.get_int("max-queue", 64));
  if (options.jobs.workers < 1 || options.jobs.max_queue < 1) {
    std::cerr << "klotski_served: --workers and --max-queue must be >= 1\n";
    return 2;
  }
  options.max_connections =
      static_cast<int>(flags.get_int("max-connections", 64));
  options.service.cache.capacity =
      static_cast<std::size_t>(flags.get_int("cache-capacity", 128));
  options.service.cache.shards =
      static_cast<int>(flags.get_int("cache-shards", 8));
  if (options.service.cache.shards < 1) {
    std::cerr << "klotski_served: --cache-shards must be >= 1\n";
    return 2;
  }
  options.service.cache.spill_dir = flags.get_string("spill-dir", "");
  const long long max_request_bytes =
      flags.get_int("max-request-bytes", 1 << 20);
  if (max_request_bytes < 1024) {
    std::cerr << "klotski_served: --max-request-bytes must be >= 1024\n";
    return 2;
  }
  options.max_request_bytes =
      static_cast<std::size_t>(max_request_bytes);
  options.idle_timeout_ms = flags.get_int("idle-timeout-ms", 60'000);

  // The planner thread budget is split across the workers so a fully busy
  // pool keeps ~--threads threads running, not workers * --threads.
  const int budget = static_cast<int>(
      flags.get_int("threads", options.jobs.workers));
  options.service.plan_threads =
      util::split_thread_budget(options.jobs.workers, budget).inner;
  options.service.router_threads =
      static_cast<int>(flags.get_int("router-threads", 1));
  if (options.service.router_threads < 1) {
    std::cerr << "klotski_served: --router-threads must be >= 1\n";
    return 2;
  }

  serve::Server server(options);

  g_drain_fd = server.drain_fd();
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);  // dead clients surface as write errors

  const std::string endpoint_out = flags.get_string("endpoint-out", "");
  if (!endpoint_out.empty()) {
    if (server.tcp_endpoint().empty()) {
      std::cerr << "klotski_served: --endpoint-out needs --listen\n";
      return 2;
    }
    util::write_file(endpoint_out, server.tcp_endpoint() + "\n");
  }
  const long long ready_fd = flags.get_int("ready-fd", -1);
  if (ready_fd >= 0) {
    const char byte = 'r';
    [[maybe_unused]] const ssize_t n =
        ::write(static_cast<int>(ready_fd), &byte, 1);
    ::close(static_cast<int>(ready_fd));
  }
  std::cerr << "klotski_served: listening on ";
  if (!server.socket_path().empty()) {
    std::cerr << "unix:" << server.socket_path();
    if (!server.tcp_endpoint().empty()) std::cerr << " + ";
  }
  if (!server.tcp_endpoint().empty()) std::cerr << server.tcp_endpoint();
  std::cerr << " (" << options.jobs.workers << " workers, queue "
            << options.jobs.max_queue << ", "
            << options.service.cache.shards << " cache shards)\n";

  server.run();  // returns after the graceful drain

  const serve::PlanCache::Stats cache = server.service().cache().stats();
  const serve::JobManager::Stats jobs = server.jobs().stats();
  std::cerr << "klotski_served: drained (jobs " << jobs.completed
            << " completed, " << jobs.rejected_overloaded
            << " rejected; cache " << cache.hits << " hits, "
            << cache.misses << " misses, " << cache.coalesced
            << " coalesced)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return klotski::tools::tool_main(argc, argv, "klotski_served", run);
}
