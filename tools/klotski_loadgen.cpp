// klotski_loadgen — workload driver + latency reporter for klotski_served.
//
// Two modes:
//
//   # one plan request, plan text to a file (byte-identity smoke checks)
//   klotski_loadgen --connect=/tmp/k.sock --once --npd=region.npd.json \
//                   --result-out=plan.json
//
//   # mixed workload at a target rate over TCP, many connections
//   klotski_loadgen --connect=tcp:127.0.0.1:7077 --npd=region.npd.json \
//                   --requests=5000 --qps=0 --connections=32 \
//                   --report=BENCH_serve.json
//
// Flags:
//   --connect      daemon endpoint: unix:PATH | tcp:HOST:PORT | /path |
//                  HOST:PORT (required; --socket is an alias kept for
//                  unix-path callers)
//   --npd          NPD JSON document for plan requests (required)
//   --once         single synchronous plan request; exit 0 iff status ok
//   --result-out   (--once) write the returned plan text here; the bytes
//                  match what `klotski_plan --npd=... --out=...` writes
//   --planner / --theta / --alpha / --routing / --funneling  plan knobs
//                  forwarded in the request params
//   --requests     total requests in mix mode            (default 100)
//   --qps          target request rate; 0 = as fast as the connections
//                  allow                                 (default 50)
//   --connections  concurrent client connections         (default 4)
//   --mix          weighted request mix, "method=weight" comma-separated
//                  over plan|ping|stats                  (default
//                  "plan=6,ping=3,stats=1")
//   --plan-variants  distinct plan cache keys cycled through, so the mix
//                  exercises both cold planner runs and cache hits
//                  (default 4)
//   --report       write the JSON report here            (default: stdout)
//
// The report ("klotski.loadgen-report.v1") carries request/latency totals,
// per-status counts (ok / cached / overloaded / draining / error) and
// latency percentiles in milliseconds. Overloaded responses are the
// admission-control contract working, so they are tallied, not fatal;
// transport errors are.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "klotski/json/json.h"
#include "klotski/serve/client.h"
#include "klotski/util/file.h"
#include "klotski/util/flags.h"
#include "klotski/util/string_util.h"
#include "common/tool_runner.h"

namespace {

using namespace klotski;
using Clock = std::chrono::steady_clock;

json::Value plan_params(const util::Flags& flags, const json::Value& npd,
                        int variant) {
  json::Object params;
  params["npd"] = npd;
  params["planner"] = flags.get_string("planner", "astar");
  params["theta"] = flags.get_double("theta", 0.75);
  params["alpha"] = flags.get_double("alpha", 0.0);
  params["routing"] = flags.get_string("routing", "ecmp");
  params["funneling"] = flags.get_double("funneling", 0.0);
  if (variant > 0) {
    // Distinct cache keys with identical planner work: a generous deadline
    // never fires, but participates in the content hash.
    params["deadline"] = 3600.0 + variant;
  }
  return json::Value(std::move(params));
}

struct MixEntry {
  std::string method;
  int weight = 1;
};

std::vector<MixEntry> parse_mix(const std::string& text) {
  std::vector<MixEntry> mix;
  for (const std::string& part : util::split(text, ',')) {
    const std::size_t eq = part.find('=');
    MixEntry entry;
    entry.method = eq == std::string::npos ? part : part.substr(0, eq);
    entry.weight =
        eq == std::string::npos ? 1 : std::stoi(part.substr(eq + 1));
    if (entry.method != "plan" && entry.method != "ping" &&
        entry.method != "stats") {
      throw std::invalid_argument("--mix: unknown method '" + entry.method +
                                  "' (want plan|ping|stats)");
    }
    if (entry.weight < 1) {
      throw std::invalid_argument("--mix: weight must be >= 1");
    }
    mix.push_back(entry);
  }
  if (mix.empty()) throw std::invalid_argument("--mix: empty");
  return mix;
}

/// Deterministic weighted round-robin: request i's method.
const std::string& method_for(const std::vector<MixEntry>& mix,
                              long long index) {
  int total = 0;
  for (const MixEntry& entry : mix) total += entry.weight;
  int slot = static_cast<int>(index % total);
  for (const MixEntry& entry : mix) {
    slot -= entry.weight;
    if (slot < 0) return entry.method;
  }
  return mix.back().method;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string endpoint_spec(const util::Flags& flags) {
  const std::string spec = flags.get_string("connect", "");
  if (!spec.empty()) return spec;
  return flags.get_string("socket", "");
}

int run_once(const util::Flags& flags, const json::Value& npd) {
  serve::Client client(endpoint_spec(flags));
  const serve::Response resp =
      client.call("plan", plan_params(flags, npd, 0), "once");
  if (!resp.ok()) {
    std::cerr << "klotski_loadgen: " << resp.status
              << (resp.error.empty() ? "" : ": " + resp.error) << "\n";
    return 1;
  }
  // Re-dumping the returned plan document recovers the exact bytes
  // klotski_plan writes (the service caches the pretty text; dump∘parse∘
  // dump is stable).
  const std::string text =
      json::dump(resp.result.at("plan"), 2) + "\n";
  const std::string out = flags.get_string("result-out", "");
  if (out.empty()) {
    std::cout << text;
  } else {
    util::write_file(out, text);
  }
  std::cerr << "klotski_loadgen: plan "
            << (resp.cached ? "(cached)" : "(cold)") << ", "
            << text.size() << " bytes\n";
  return 0;
}

struct Tally {
  std::vector<double> latencies_ms;
  long long ok = 0;
  long long cached = 0;
  long long overloaded = 0;
  long long draining = 0;
  long long errors = 0;
  long long transport_errors = 0;
};

int run_mix(const util::Flags& flags, const json::Value& npd) {
  const serve::Endpoint endpoint =
      serve::Endpoint::parse(endpoint_spec(flags));
  const long long requests = flags.get_int("requests", 100);
  const double qps = flags.get_double("qps", 50.0);
  const int connections =
      static_cast<int>(flags.get_int("connections", 4));
  const int variants =
      std::max(1, static_cast<int>(flags.get_int("plan-variants", 4)));
  const std::vector<MixEntry> mix =
      parse_mix(flags.get_string("mix", "plan=6,ping=3,stats=1"));
  if (requests < 1 || connections < 1) {
    std::cerr << "klotski_loadgen: --requests and --connections must be "
                 ">= 1\n";
    return 2;
  }

  std::atomic<long long> next_index{0};
  std::mutex tally_mu;
  Tally tally;
  const Clock::time_point start = Clock::now();

  auto worker = [&] {
    serve::Client client =
        serve::Client::connect_with_retry(endpoint, /*attempts=*/5);
    for (;;) {
      const long long i = next_index.fetch_add(1);
      if (i >= requests) return;
      if (qps > 0.0) {
        const auto scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / qps));
        std::this_thread::sleep_until(scheduled);
      }
      const std::string& method = method_for(mix, i);
      json::Value params{json::Object{}};
      if (method == "plan") {
        params = plan_params(flags, npd,
                             static_cast<int>(i % variants) + 1);
      }
      const Clock::time_point sent = Clock::now();
      try {
        const serve::Response resp =
            client.call(method, std::move(params));
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - sent)
                .count();
        std::lock_guard<std::mutex> lock(tally_mu);
        tally.latencies_ms.push_back(ms);
        if (resp.ok()) {
          ++tally.ok;
          if (resp.cached) ++tally.cached;
        } else if (resp.status == "overloaded") {
          ++tally.overloaded;
        } else if (resp.status == "draining") {
          ++tally.draining;
        } else {
          ++tally.errors;
        }
      } catch (const std::exception&) {
        std::lock_guard<std::mutex> lock(tally_mu);
        ++tally.transport_errors;
        return;  // connection is gone; stop this worker
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(connections));
  for (int c = 0; c < connections; ++c) workers.emplace_back(worker);
  for (std::thread& thread : workers) thread.join();

  const double duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(tally.latencies_ms.begin(), tally.latencies_ms.end());
  double mean = 0.0;
  for (const double ms : tally.latencies_ms) mean += ms;
  if (!tally.latencies_ms.empty()) {
    mean /= static_cast<double>(tally.latencies_ms.size());
  }

  json::Object latency;
  latency["p50_ms"] = percentile(tally.latencies_ms, 0.50);
  latency["p90_ms"] = percentile(tally.latencies_ms, 0.90);
  latency["p99_ms"] = percentile(tally.latencies_ms, 0.99);
  latency["max_ms"] =
      tally.latencies_ms.empty() ? 0.0 : tally.latencies_ms.back();
  latency["mean_ms"] = mean;

  json::Object report;
  report["schema"] = "klotski.loadgen-report.v1";
  report["endpoint"] = endpoint.describe();
  report["transport"] = endpoint.is_tcp() ? "tcp" : "unix";
  report["requests"] = static_cast<std::int64_t>(requests);
  report["completed"] =
      static_cast<std::int64_t>(tally.latencies_ms.size());
  report["ok"] = static_cast<std::int64_t>(tally.ok);
  report["cached"] = static_cast<std::int64_t>(tally.cached);
  report["overloaded"] = static_cast<std::int64_t>(tally.overloaded);
  report["draining"] = static_cast<std::int64_t>(tally.draining);
  report["errors"] = static_cast<std::int64_t>(tally.errors);
  report["transport_errors"] =
      static_cast<std::int64_t>(tally.transport_errors);
  report["duration_s"] = duration_s;
  report["achieved_qps"] =
      duration_s > 0.0
          ? static_cast<double>(tally.latencies_ms.size()) / duration_s
          : 0.0;
  report["target_qps"] = qps;
  report["connections"] = connections;
  report["latency"] = json::Value(std::move(latency));

  const std::string text = json::dump(json::Value(std::move(report)), 2) +
                           "\n";
  const std::string out = flags.get_string("report", "");
  if (out.empty()) {
    std::cout << text;
  } else {
    util::write_file(out, text);
    std::cerr << "klotski_loadgen: wrote " << out << "\n";
  }
  std::cerr << "klotski_loadgen: " << tally.latencies_ms.size() << "/"
            << requests << " completed in " << duration_s << "s (ok "
            << tally.ok << ", cached " << tally.cached << ", overloaded "
            << tally.overloaded << ", errors "
            << tally.errors + tally.transport_errors << ")\n";
  return tally.errors + tally.transport_errors > 0 ? 1 : 0;
}

int run(const util::Flags& flags) {
  if (endpoint_spec(flags).empty()) {
    std::cerr << "klotski_loadgen: --connect=ENDPOINT is required\n";
    return 2;
  }
  const std::string npd_path = flags.get_string("npd", "");
  if (npd_path.empty()) {
    std::cerr << "klotski_loadgen: --npd=FILE is required\n";
    return 2;
  }
  const json::Value npd = json::parse(util::read_file(npd_path));
  if (flags.get_bool("once", false)) return run_once(flags, npd);
  return run_mix(flags, npd);
}

}  // namespace

int main(int argc, char** argv) {
  return klotski::tools::tool_main(argc, argv, "klotski_loadgen", run);
}
