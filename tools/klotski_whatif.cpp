// klotski_whatif — Monte Carlo robustness sweep over a finished plan.
//
//   klotski_whatif --npd=region.npd.json --plan=plan.json --trajectories=1000
//   klotski_whatif --npd=region.npd.json --plan=plan.json --out=report.json \
//                  --threads=8
//   klotski_whatif --npd=region.npd.json --plan=plan.json \
//                  --connect=tcp:plan-svc:7077
//
// Samples N demand futures (per-trajectory organic growth, surge windows,
// forecast-error windows) and re-validates every plan phase against each,
// reporting the fraction of futures the plan survives, the first breaking
// phase, per-phase worst-case headroom, and the binary-searched safe growth
// margin. The report is byte-identical for the same (inputs, seed, N) at
// any --threads, locally or through a daemon.
//
// Flags:
//   --npd           NPD JSON document (required)
//   --plan          plan JSON produced by klotski_plan (required)
//   --demands       demand-set JSON overriding the NPD demands
//   --out           write the klotski.whatif.v1 report here (default stdout)
//   --trajectories  sampled demand futures          (default 100)
//   --seed          sweep seed                      (default 0)
//   --threads       sweep workers; report is identical at any value
//                   (default 1)
//   --theta         utilization bound in (0, 1]     (default 0.75)
//   --routing       ecmp | wcmp                     (default ecmp)
//   --funneling     funneling margin                (default 0)
//   --growth-min / --growth-max    per-step organic growth range
//                                  (default 0 / 0.004)
//   --surges / --forecast-errors   demand windows per trajectory
//                                  (default 1 / 1)
//   --surge-factor-min / --surge-factor-max    (default 0.8 / 1.5)
//   --bias-factor-min / --bias-factor-max      (default 0.85 / 1.2)
//   --margin-iterations  safe-growth-margin bisection steps (default 16)
//   --margin-max         upper bracket of the margin search (default 4)
//   --connect       run the sweep remotely on a klotski_served daemon
//                   (unix:PATH | tcp:HOST:PORT); repeated identical
//                   requests hit the daemon's content-addressed cache
//   --metrics-out   write the metrics registry JSON here
//   --trace-out     write Chrome trace_event JSON here
//
// Exit status: 0 every trajectory stayed safe; 1 some future breaks the
// plan; 2 usage/input error; 3 daemon rejected the job (--connect only).
#include <iostream>
#include <string>
#include <utility>

#include "klotski/npd/npd_io.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/serve/client.h"
#include "klotski/traffic/demand_io.h"
#include "klotski/util/file.h"
#include "klotski/util/flags.h"
#include "klotski/whatif/whatif.h"
#include "common/tool_runner.h"

namespace {

using namespace klotski;

whatif::WhatIfParams params_from_flags(const util::Flags& flags) {
  whatif::WhatIfParams params;
  params.trajectories =
      static_cast<int>(flags.get_int("trajectories", 100));
  params.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0));
  params.threads = static_cast<int>(flags.get_int("threads", 1));
  params.growth_min = flags.get_double("growth-min", 0.0);
  params.growth_max = flags.get_double("growth-max", 0.004);
  params.surges = static_cast<int>(flags.get_int("surges", 1));
  params.forecast_errors =
      static_cast<int>(flags.get_int("forecast-errors", 1));
  params.surge_factor_min = flags.get_double("surge-factor-min", 0.8);
  params.surge_factor_max = flags.get_double("surge-factor-max", 1.5);
  params.bias_factor_min = flags.get_double("bias-factor-min", 0.85);
  params.bias_factor_max = flags.get_double("bias-factor-max", 1.2);
  params.margin_iterations =
      static_cast<int>(flags.get_int("margin-iterations", 16));
  params.margin_max = flags.get_double("margin-max", 4.0);
  params.checker.demand.max_utilization = flags.get_double("theta", 0.75);
  params.checker.demand.funneling_margin = flags.get_double("funneling", 0.0);
  if (flags.get_string("routing", "ecmp") == "wcmp") {
    params.checker.routing = traffic::SplitMode::kCapacityWeighted;
  }
  return params;
}

void emit(const std::string& out_path, const std::string& text) {
  if (out_path.empty()) {
    std::cout << text;
  } else {
    util::write_file(out_path, text);
  }
}

/// Summary + exit code from the parsed report document (shared by the
/// local and remote paths — both hold the same klotski.whatif.v1 doc).
int finish(const json::Value& report, const std::string& origin) {
  const long long run = report.get_int("trajectories_run", 0);
  const long long unsafe = report.get_int("unsafe", 0);
  std::cerr << "whatif" << origin << ": " << (run - unsafe) << "/" << run
            << " futures safe, safe_growth_margin="
            << report.get_double("safe_growth_margin", 0.0);
  if (report.get_bool("margin_saturated", false)) std::cerr << "+";
  if (const json::Value* first_break =
          report.as_object().find("first_break")) {
    std::cerr << ", first break at phase "
              << first_break->get_int("phase", -1) << " (x"
              << first_break->get_double("multiplier", 0.0) << ")";
  }
  if (report.get_bool("stopped", false)) std::cerr << " (stopped early)";
  std::cerr << "\n";
  return unsafe > 0 ? 1 : 0;
}

int run(const util::Flags& flags) {
  const std::string npd_path = flags.get_string("npd", "");
  const std::string plan_path = flags.get_string("plan", "");
  if (npd_path.empty() || plan_path.empty()) {
    std::cerr << "klotski_whatif: --npd=FILE and --plan=FILE are required\n";
    return 2;
  }
  const std::string out_path = flags.get_string("out", "");
  const std::string demands_path = flags.get_string("demands", "");

  const json::Value npd_json = json::parse(util::read_file(npd_path));
  const json::Value plan_json = json::parse(util::read_file(plan_path));
  json::Value demands_json;
  if (!demands_path.empty()) {
    demands_json = json::parse(util::read_file(demands_path));
  }
  const whatif::WhatIfParams params = params_from_flags(flags);

  // Remote mode: the sweep runs inside a klotski_served worker as one
  // cooperative-stop-aware batch job; repeated identical requests are
  // answered from the daemon's content-addressed cache. Re-dumping the
  // returned report recovers the local mode's bytes exactly.
  const std::string connect = flags.get_string("connect", "");
  if (!connect.empty()) {
    json::Object params_json;
    params_json["npd"] = npd_json;
    params_json["plan"] = plan_json;
    if (!demands_path.empty()) params_json["demands"] = demands_json;
    params_json["trajectories"] = params.trajectories;
    params_json["seed"] = static_cast<std::int64_t>(params.seed);
    params_json["theta"] = params.checker.demand.max_utilization;
    params_json["routing"] = flags.get_string("routing", "ecmp");
    params_json["funneling"] = params.checker.demand.funneling_margin;
    params_json["growth_min"] = params.growth_min;
    params_json["growth_max"] = params.growth_max;
    params_json["surges"] = params.surges;
    params_json["forecast_errors"] = params.forecast_errors;
    params_json["surge_factor_min"] = params.surge_factor_min;
    params_json["surge_factor_max"] = params.surge_factor_max;
    params_json["bias_factor_min"] = params.bias_factor_min;
    params_json["bias_factor_max"] = params.bias_factor_max;
    params_json["margin_iterations"] = params.margin_iterations;
    params_json["margin_max"] = params.margin_max;

    serve::Client client = serve::Client::connect_with_retry(
        serve::Endpoint::parse(connect), /*attempts=*/5);
    const serve::Response resp = client.submit_and_wait(
        "whatif", json::Value(std::move(params_json)), "whatif-sweep");
    if (resp.status == "overloaded" || resp.status == "draining") {
      std::cerr << "klotski_whatif: daemon " << resp.status << "\n";
      return 3;
    }
    if (!resp.ok()) {
      std::cerr << "klotski_whatif: remote sweep failed: " << resp.error
                << "\n";
      return 2;
    }
    const json::Value* report = resp.result.as_object().find("report");
    if (report == nullptr) {
      std::cerr << "klotski_whatif: malformed daemon response\n";
      return 2;
    }
    emit(out_path, json::dump(*report, 2) + "\n");
    return finish(*report, " (remote via " + connect + ")");
  }

  // Each sweep worker gets its own private case (trajectories mutate
  // topology state), rebuilt from the parsed documents.
  const npd::NpdDocument doc = npd::from_json(npd_json);
  const whatif::CaseFactory factory = [&doc, &demands_path, &demands_json] {
    migration::MigrationCase mig = npd::build_case(doc);
    if (!demands_path.empty()) {
      mig.task.demands =
          traffic::demands_from_json(*mig.task.topo, demands_json);
    }
    return mig;
  };
  migration::MigrationCase reference = factory();
  const core::Plan plan =
      pipeline::plan_from_json(reference.task, plan_json);

  const whatif::WhatIfReport report =
      whatif::run_whatif(factory, plan, params);
  const std::string text = whatif::report_text(report, params);
  emit(out_path, text);
  return finish(json::parse(text), "");
}

}  // namespace

int main(int argc, char** argv) {
  return klotski::tools::tool_main(argc, argv, "klotski_whatif", run);
}
