// Golden-plan regression corpus: for Clos presets A-C plus the flat and
// reconf preset-A cases (all reduced scale) the default pipeline
// (klotski_synth | klotski_plan --planner=astar) must reproduce the
// committed plan JSON byte-for-byte. Any intentional change to the
// planner, the checker, the preset parameters, or the JSON encoder shows
// up as a readable diff; regenerate with scripts/regen_golden.sh.
#include <gtest/gtest.h>

#include <string>

#include "klotski/json/json.h"
#include "klotski/npd/npd_io.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/util/file.h"

namespace klotski {
namespace {

struct GoldenCase {
  topo::TopologyFamily family;
  topo::PresetId preset;
  const char* label;  // test-name suffix
  const char* file;   // golden file name under tests/golden/
};

class GoldenPlan : public ::testing::TestWithParam<GoldenCase> {};

/// The exact document klotski_synth emits for
///   --family=<F> --preset=<X> --scale=reduced
/// including the serialize/parse round trip the file I/O performs.
npd::NpdDocument golden_document(const GoldenCase& gc) {
  const npd::NpdDocument doc = pipeline::synth_document(
      gc.family, gc.preset, topo::PresetScale::kReduced,
      npd::default_migration(gc.family));
  return npd::parse_npd(npd::dump_npd(doc));
}

TEST_P(GoldenPlan, DefaultPipelineOutputIsByteExact) {
  const GoldenCase& gc = GetParam();
  migration::MigrationCase mig = npd::build_case(golden_document(gc));

  // klotski_plan defaults: theta 0.75, ecmp, alpha 0, single thread.
  const pipeline::CheckerConfig checker_config;
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, checker_config);
  const auto planner = pipeline::make_planner("astar");
  const core::Plan plan =
      planner->plan(mig.task, *bundle.checker, core::PlannerOptions{});
  ASSERT_TRUE(plan.found) << plan.failure;

  // Everything in the plan document is deterministic except the wall-clock
  // stat; zero it on both sides (regen_golden.sh commits it as 0 too).
  json::Value produced_doc = pipeline::plan_to_json(mig.task, plan);
  produced_doc.as_object()["stats"].as_object()["wall_seconds"] =
      json::Value(0);
  const std::string produced = json::dump(produced_doc, 2) + "\n";
  const std::string path =
      std::string(KLOTSKI_SOURCE_DIR) + "/tests/golden/" + gc.file;
  json::Value golden_doc = json::parse(util::read_file(path));
  golden_doc.as_object()["stats"].as_object()["wall_seconds"] =
      json::Value(0);
  const std::string golden = json::dump(golden_doc, 2) + "\n";
  EXPECT_EQ(produced, golden)
      << "plan output drifted from " << path
      << "\nIf the change is intentional, run scripts/regen_golden.sh and "
         "commit the updated corpus.";
}

INSTANTIATE_TEST_SUITE_P(
    FamilyPresets, GoldenPlan,
    ::testing::Values(
        GoldenCase{topo::TopologyFamily::kClos, topo::PresetId::kA, "ClosA",
                   "plan-a.json"},
        GoldenCase{topo::TopologyFamily::kClos, topo::PresetId::kB, "ClosB",
                   "plan-b.json"},
        GoldenCase{topo::TopologyFamily::kClos, topo::PresetId::kC, "ClosC",
                   "plan-c.json"},
        GoldenCase{topo::TopologyFamily::kFlat, topo::PresetId::kA, "FlatA",
                   "plan-flat.json"},
        GoldenCase{topo::TopologyFamily::kReconf, topo::PresetId::kA,
                   "ReconfA", "plan-reconf.json"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace klotski
