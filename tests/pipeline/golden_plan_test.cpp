// Golden-plan regression corpus: for presets A-C (reduced scale) the
// default pipeline (klotski_synth | klotski_plan --planner=astar) must
// reproduce the committed plan JSON byte-for-byte. Any intentional change
// to the planner, the checker, the preset parameters, or the JSON encoder
// shows up as a readable diff; regenerate with scripts/regen_golden.sh.
#include <gtest/gtest.h>

#include <string>

#include "klotski/json/json.h"
#include "klotski/npd/npd_io.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/util/file.h"

namespace klotski {
namespace {

struct GoldenCase {
  topo::PresetId preset;
  const char* name;  // preset letter, upper case
  const char* file;  // golden file name under tests/golden/
};

class GoldenPlan : public ::testing::TestWithParam<GoldenCase> {};

/// The exact document klotski_synth emits for
///   --preset=<X> --scale=reduced --migration=hgrid-v1-to-v2
/// including the serialize/parse round trip the file I/O performs.
npd::NpdDocument synth_document(const GoldenCase& gc) {
  npd::NpdDocument doc;
  doc.name = std::string("preset-") + gc.name + "/reduced";
  doc.region = topo::preset_params(gc.preset, topo::PresetScale::kReduced);
  doc.migration = npd::MigrationKind::kHgridV1ToV2;
  doc.hgrid =
      pipeline::hgrid_params_for(gc.preset, topo::PresetScale::kReduced);
  doc.ssw = pipeline::ssw_params_for(topo::PresetScale::kReduced);
  doc.dmag = pipeline::dmag_params_for(topo::PresetScale::kReduced);
  return npd::parse_npd(npd::dump_npd(doc));
}

TEST_P(GoldenPlan, DefaultPipelineOutputIsByteExact) {
  const GoldenCase& gc = GetParam();
  migration::MigrationCase mig = npd::build_case(synth_document(gc));

  // klotski_plan defaults: theta 0.75, ecmp, alpha 0, single thread.
  const pipeline::CheckerConfig checker_config;
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, checker_config);
  const auto planner = pipeline::make_planner("astar");
  const core::Plan plan =
      planner->plan(mig.task, *bundle.checker, core::PlannerOptions{});
  ASSERT_TRUE(plan.found) << plan.failure;

  // Everything in the plan document is deterministic except the wall-clock
  // stat; zero it on both sides (regen_golden.sh commits it as 0 too).
  json::Value produced_doc = pipeline::plan_to_json(mig.task, plan);
  produced_doc.as_object()["stats"].as_object()["wall_seconds"] =
      json::Value(0);
  const std::string produced = json::dump(produced_doc, 2) + "\n";
  const std::string path =
      std::string(KLOTSKI_SOURCE_DIR) + "/tests/golden/" + gc.file;
  json::Value golden_doc = json::parse(util::read_file(path));
  golden_doc.as_object()["stats"].as_object()["wall_seconds"] =
      json::Value(0);
  const std::string golden = json::dump(golden_doc, 2) + "\n";
  EXPECT_EQ(produced, golden)
      << "plan output drifted from " << path
      << "\nIf the change is intentional, run scripts/regen_golden.sh and "
         "commit the updated corpus.";
}

INSTANTIATE_TEST_SUITE_P(
    PresetsAToC, GoldenPlan,
    ::testing::Values(GoldenCase{topo::PresetId::kA, "A", "plan-a.json"},
                      GoldenCase{topo::PresetId::kB, "B", "plan-b.json"},
                      GoldenCase{topo::PresetId::kC, "C", "plan-c.json"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string("Preset") + info.param.name;
    });

}  // namespace
}  // namespace klotski
