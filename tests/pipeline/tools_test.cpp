// Tests for the pieces behind the CLI tools: plan JSON round-trip
// (plan_from_json) and whole-file I/O.
#include <gtest/gtest.h>

#include <cstdio>

#include "../test_helpers.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/util/file.h"

namespace klotski::pipeline {
namespace {

using klotski::testing::small_hgrid_case;

core::Plan make_plan(migration::MigrationTask& task) {
  CheckerBundle bundle = make_standard_checker(task, {});
  return make_planner("astar")->plan(task, *bundle.checker, {});
}

TEST(PlanRoundTrip, JsonExportImportPreservesActions) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = make_plan(mig.task);
  ASSERT_TRUE(plan.found);

  const json::Value exported = plan_to_json(mig.task, plan);
  const core::Plan imported = plan_from_json(mig.task, exported);

  EXPECT_TRUE(imported.found);
  EXPECT_DOUBLE_EQ(imported.cost, plan.cost);
  ASSERT_EQ(imported.actions.size(), plan.actions.size());
  for (std::size_t i = 0; i < plan.actions.size(); ++i) {
    EXPECT_EQ(imported.actions[i], plan.actions[i]) << "action " << i;
  }
}

TEST(PlanRoundTrip, ImportedPlanPassesAudit) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = make_plan(mig.task);
  const core::Plan imported =
      plan_from_json(mig.task, plan_to_json(mig.task, plan));
  CheckerBundle bundle = make_standard_checker(mig.task, {});
  EXPECT_TRUE(audit_plan(mig.task, *bundle.checker, imported).ok);
}

TEST(PlanRoundTrip, NotFoundPlanCarriesFailure) {
  migration::MigrationCase mig = small_hgrid_case();
  core::Plan failed;
  failed.planner = "test";
  failed.failure = "deliberate";
  const core::Plan imported =
      plan_from_json(mig.task, plan_to_json(mig.task, failed));
  EXPECT_FALSE(imported.found);
  EXPECT_EQ(imported.failure, "deliberate");
}

TEST(PlanRoundTrip, UnknownBlockLabelRejected) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = make_plan(mig.task);
  json::Value exported = plan_to_json(mig.task, plan);
  exported.as_object()["phases"].as_array()[0].as_object()["blocks"]
      .as_array()[0] = json::Value("ghost-block");
  EXPECT_THROW(plan_from_json(mig.task, exported), std::invalid_argument);
}

TEST(PlanRoundTrip, UnknownActionTypeRejected) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = make_plan(mig.task);
  json::Value exported = plan_to_json(mig.task, plan);
  exported.as_object()["phases"].as_array()[0].as_object()["action_type"] =
      json::Value("teleport");
  EXPECT_THROW(plan_from_json(mig.task, exported), std::invalid_argument);
}

TEST(PlanRoundTrip, MislabeledBlockTypeRejected) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = make_plan(mig.task);
  json::Value exported = plan_to_json(mig.task, plan);
  // Move a block label of one type under another type's phase.
  auto& phases = exported.as_object()["phases"].as_array();
  ASSERT_GE(phases.size(), 2u);
  const json::Value stolen =
      phases[1].as_object()["blocks"].as_array()[0];
  phases[0].as_object()["blocks"].as_array()[0] = stolen;
  EXPECT_THROW(plan_from_json(mig.task, exported), std::invalid_argument);
}

TEST(FileUtil, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/klotski_file_test.txt";
  util::write_file(path, "hello\nworld\n");
  EXPECT_EQ(util::read_file(path), "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(FileUtil, ReadMissingFileThrowsWithPath) {
  try {
    util::read_file("/nonexistent/klotski/file.json");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/klotski/file.json"),
              std::string::npos);
  }
}

TEST(FileUtil, WriteToBadPathThrows) {
  EXPECT_THROW(util::write_file("/nonexistent/dir/out.json", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace klotski::pipeline
