#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/risk.h"
#include "klotski/pipeline/schedule.h"

namespace klotski::pipeline {
namespace {

using klotski::testing::small_hgrid_case;

core::Plan plan_case(migration::MigrationTask& task,
                     CheckerConfig config = {}) {
  CheckerBundle bundle = make_standard_checker(task, config);
  return make_planner("astar")->plan(task, *bundle.checker, {});
}

// ---------------------------------------------------------------------------
// Schedule

TEST(Schedule, OnePhaseOneDispatch) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  ASSERT_TRUE(plan.found);
  const Schedule schedule = build_schedule(mig.task, plan);
  EXPECT_EQ(schedule.phases.size(), plan.phases().size());
}

TEST(Schedule, PhasesAreSequentialAndContiguous) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  const Schedule schedule = build_schedule(mig.task, plan);
  double clock = 0.0;
  for (const PhaseSchedule& phase : schedule.phases) {
    EXPECT_DOUBLE_EQ(phase.start_day, clock);
    EXPECT_GT(phase.end_day, phase.start_day);
    clock = phase.end_day;
  }
  EXPECT_DOUBLE_EQ(schedule.total_days, clock);
}

TEST(Schedule, MoreCrewsNeverSlower) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  CrewModel one;
  one.crews = 1;
  CrewModel four;
  four.crews = 4;
  EXPECT_GE(build_schedule(mig.task, plan, one).total_days,
            build_schedule(mig.task, plan, four).total_days);
}

TEST(Schedule, OpexSumsPhases) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  const Schedule schedule = build_schedule(mig.task, plan);
  double total = 0.0;
  for (const PhaseSchedule& phase : schedule.phases) total += phase.opex_usd;
  EXPECT_NEAR(schedule.total_opex_usd, total, 1e-6);
  EXPECT_GT(total, 0.0);
}

TEST(Schedule, RejectsNotFoundPlanAndBadCrew) {
  migration::MigrationCase mig = small_hgrid_case();
  core::Plan missing;
  EXPECT_THROW(build_schedule(mig.task, missing), std::invalid_argument);

  const core::Plan plan = plan_case(mig.task);
  CrewModel bad;
  bad.crews = 0;
  EXPECT_THROW(build_schedule(mig.task, plan, bad), std::invalid_argument);
}

TEST(Schedule, JsonExportRoundTrips) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  const Schedule schedule = build_schedule(mig.task, plan);
  const json::Value v = schedule_to_json(schedule);
  EXPECT_DOUBLE_EQ(v.at("total_days").as_double(), schedule.total_days);
  EXPECT_EQ(v.at("phases").as_array().size(), schedule.phases.size());
}

TEST(Schedule, TextRendersOneRowPerPhase) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  const Schedule schedule = build_schedule(mig.task, plan);
  const std::string text = schedule_to_text(schedule);
  std::size_t rows = 0;
  for (const char c : text) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, schedule.phases.size() + 1);  // + total line
  EXPECT_NE(text.find('#'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Risk

TEST(Risk, ReportsOriginPlusEveryPhase) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  const RiskReport report = assess_risk(mig.task, plan);
  ASSERT_EQ(report.phases.size(), plan.phases().size() + 1);
  EXPECT_EQ(report.phases.front().phase_index, -1);
}

TEST(Risk, AllBoundariesWithinTheta) {
  // The plan was found under theta = 0.75; the independent risk measurement
  // must agree that no boundary exceeds it.
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  const RiskReport report = assess_risk(mig.task, plan, 0.75);
  for (const PhaseRisk& phase : report.phases) {
    EXPECT_LE(phase.max_utilization, 0.75 + 1e-9) << phase.phase_index;
    EXPECT_GE(phase.growth_headroom, 1.0 - 1e-9) << phase.phase_index;
  }
}

TEST(Risk, HeadroomIsThetaOverUtilization) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  const RiskReport report = assess_risk(mig.task, plan, 0.75);
  for (const PhaseRisk& phase : report.phases) {
    if (phase.max_utilization > 0.0) {
      EXPECT_NEAR(phase.growth_headroom, 0.75 / phase.max_utilization,
                  1e-9);
    }
  }
}

TEST(Risk, RiskiestIsArgmaxUtilization) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  const RiskReport report = assess_risk(mig.task, plan);
  const std::size_t riskiest = report.riskiest();
  for (const PhaseRisk& phase : report.phases) {
    EXPECT_LE(phase.max_utilization,
              report.phases[riskiest].max_utilization);
  }
}

TEST(Risk, RestoresOriginalState) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  assess_risk(mig.task, plan);
  EXPECT_TRUE(mig.task.original_state ==
              topo::TopologyState::capture(*mig.task.topo));
}

TEST(Risk, RejectsNotFoundPlan) {
  migration::MigrationCase mig = small_hgrid_case();
  core::Plan missing;
  EXPECT_THROW(assess_risk(mig.task, missing), std::invalid_argument);
}

TEST(Risk, JsonCarriesRiskiestPhase) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  const RiskReport report = assess_risk(mig.task, plan);
  const json::Value v = risk_to_json(report);
  EXPECT_EQ(static_cast<std::size_t>(v.at("riskiest_phase").as_int()),
            report.riskiest());
  EXPECT_EQ(v.at("phases").as_array().size(), report.phases.size());
}

TEST(Risk, TextMarksRiskiestPhase) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = plan_case(mig.task);
  const std::string text = risk_to_text(assess_risk(mig.task, plan));
  EXPECT_NE(text.find("<-- riskiest"), std::string::npos);
}

}  // namespace
}  // namespace klotski::pipeline
