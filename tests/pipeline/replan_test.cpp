#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/core/astar_planner.h"
#include "klotski/pipeline/replan.h"

namespace klotski::pipeline {
namespace {

using klotski::testing::small_hgrid_case;

TEST(Replan, CompletesWithoutDriftInOneShot) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_EQ(result.replans, 0);
  EXPECT_GT(result.phases_executed, 0);
}

TEST(Replan, ExecutedCostMatchesPlanWhenNothingChanges) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;

  CheckerBundle bundle = make_standard_checker(mig.task, {});
  const core::Plan reference =
      planner.plan(mig.task, *bundle.checker, {});
  ASSERT_TRUE(reference.found);

  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  ASSERT_TRUE(result.completed);
  EXPECT_DOUBLE_EQ(result.executed_cost, reference.cost);
}

TEST(Replan, DriftTriggersReplanning) {
  migration::MigrationCase mig = small_hgrid_case();
  // 20% growth per step blows through the 10% drift threshold every step.
  traffic::Forecaster forecaster(mig.task.demands, 0.20);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.demand_change_threshold = 0.10;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  // Plans exist as long as the absolute demands stay feasible; growth this
  // fast may eventually make the task infeasible, which is also an
  // acceptable (reported) outcome for this test.
  if (result.completed) {
    EXPECT_GT(result.replans, 0);
  } else {
    EXPECT_FALSE(result.failure.empty());
  }
}

TEST(Replan, InjectedFailureForcesReplanAndStillCompletes) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.failing_phases = {1};
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_GE(result.replans, 1);
  bool logged_failure = false;
  for (const std::string& line : result.log) {
    if (line.find("failed during operation") != std::string::npos) {
      logged_failure = true;
    }
  }
  EXPECT_TRUE(logged_failure);
}

TEST(Replan, SurgeMidMigrationHandled) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  traffic::SurgeEvent surge;
  surge.kind = traffic::DemandKind::kEgress;
  surge.start_step = 1;
  surge.end_step = 3;
  surge.factor = 1.3;
  forecaster.add_surge(surge);

  core::AStarPlanner planner;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_GE(result.replans, 1);  // the surge crosses the 10% threshold
}

TEST(Replan, ImpossibleDemandReportsFailure) {
  migration::MigrationCase mig = small_hgrid_case();
  // Make the starting demands infeasible at the default theta.
  traffic::Forecaster forecaster(traffic::scaled(mig.task.demands, 50.0),
                                 0.0);
  core::AStarPlanner planner;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure.find("planning failed"), std::string::npos);
}

TEST(Replan, TopologyRestoredAfterExecution) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_TRUE(mig.task.original_state ==
              topo::TopologyState::capture(*mig.task.topo));
}


TEST(Replan, MaintenanceEventTriggersReplans) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;

  ReplanOptions options;
  MaintenanceEvent event;
  event.name = "firmware upgrade on one rack switch";
  // Rebuild one RSW the migration itself does not operate: its demand share
  // redistributes over the remaining rack switches, a mild perturbation.
  event.switches = {mig.region->rsws[0][0]};
  event.start_step = 1;
  event.end_step = 2;
  options.maintenance = {event};

  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  // The calendar changes at step 1 (start) and step 2 (end): at least one
  // re-plan, and the event shows up in the log.
  EXPECT_GE(result.replans, 1);
  bool logged = false;
  for (const std::string& line : result.log) {
    if (line.find("maintenance") != std::string::npos) logged = true;
  }
  EXPECT_TRUE(logged);
}

TEST(Replan, MaintenanceDrainsConstrainThePlan) {
  // Draining enough spine capacity through "maintenance" makes the
  // migration unplannable: the driver must report the failure rather than
  // emit an unsafe plan.
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;

  ReplanOptions options;
  MaintenanceEvent event;
  event.name = "whole-spine maintenance";
  for (const auto& plane : mig.region->ssws[0]) {
    for (const topo::SwitchId ssw : plane) event.switches.push_back(ssw);
  }
  event.start_step = 0;
  event.end_step = 1000;
  options.maintenance = {event};

  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure.find("planning failed"), std::string::npos);
}

TEST(Replan, FailingPhaseIndicesFireAtMostOnce) {
  // Regression: a failure injection is consumed once. The failed phase is
  // retried under a fresh plan with the *same* global executed-phase index,
  // so un-deduplicated matching (or a repeated listing) would re-fail the
  // retry forever.
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.failing_phases = {1, 1, 1};
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  int failures_logged = 0;
  for (const std::string& line : result.log) {
    if (line.find("failed during operation") != std::string::npos) {
      ++failures_logged;
    }
  }
  EXPECT_EQ(failures_logged, 1);
  EXPECT_EQ(result.phase_retries, 1);
}

TEST(Replan, FailedPhaseRetriesWithBackoff) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.failing_phases = {0};
  options.backoff_steps = 2;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_EQ(result.phase_retries, 1);
  bool backed_off = false;
  for (const std::string& line : result.log) {
    if (line.find("backing off 2 steps") != std::string::npos) {
      backed_off = true;
    }
  }
  EXPECT_TRUE(backed_off);
}

TEST(Replan, FallbackPlannerEngagesAfterMaxReplans) {
  migration::MigrationCase mig = small_hgrid_case();
  // 20% growth re-plans every step, exhausting a one-round budget fast.
  traffic::Forecaster forecaster(mig.task.demands, 0.20);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.max_replans = 1;
  options.fallback_planner = "mrc";
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  if (result.completed && result.replans >= 1) {
    EXPECT_TRUE(result.used_fallback);
    EXPECT_GE(result.fallback_plans, 1);
    bool degraded = false;
    for (const std::string& line : result.log) {
      if (line.find("degrading to fallback planner") != std::string::npos) {
        degraded = true;
      }
    }
    EXPECT_TRUE(degraded);
  }
}

TEST(Replan, ObserverSeesEveryExecutedPhaseInOrder) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  int calls = 0;
  int last_total = 0;
  options.observer = [&](const PhaseObservation& obs) {
    ++calls;
    EXPECT_EQ(obs.phases_executed, calls);
    int total = 0;
    for (const std::int32_t d : obs.done) total += d;
    EXPECT_EQ(total, last_total + obs.blocks);
    last_total = total;
    // The topology is materialized at the executed state: the done counts
    // must be reflected in switch states differing from the original for
    // at least one operated element once anything ran.
    EXPECT_FALSE(obs.demands.empty());
  };
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  ASSERT_TRUE(result.completed) << result.failure;
  EXPECT_EQ(calls, result.phases_executed);
}

TEST(Replan, CheckpointResumeReproducesTheUninterruptedRun) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.failing_phases = {1};  // exercise consumed-failure persistence
  std::vector<ReplanCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const ReplanCheckpoint& cp) {
    checkpoints.push_back(cp);
  };
  const ReplanResult full =
      execute_with_replanning(mig.task, planner, forecaster, options);
  ASSERT_TRUE(full.completed) << full.failure;
  ASSERT_GE(checkpoints.size(), 2u);

  // Kill after an arbitrary phase; resume from the JSON round trip of its
  // checkpoint in a fresh world and compare the final outcome.
  for (const std::size_t at : {std::size_t{0}, checkpoints.size() / 2}) {
    const ReplanCheckpoint restored = ReplanCheckpoint::from_json(
        json::parse(json::dump(checkpoints[at].to_json())));
    migration::MigrationCase mig2 = small_hgrid_case();
    traffic::Forecaster forecaster2(mig2.task.demands, 0.0);
    ReplanOptions options2;
    options2.failing_phases = {1};
    options2.resume = &restored;
    const ReplanResult resumed =
        execute_with_replanning(mig2.task, planner, forecaster2, options2);
    ASSERT_TRUE(resumed.completed) << resumed.failure;
    EXPECT_EQ(resumed.phases_executed, full.phases_executed);
    EXPECT_EQ(resumed.executed_cost, full.executed_cost);  // bit-exact
    EXPECT_EQ(resumed.replans, full.replans);
    EXPECT_EQ(resumed.phase_retries, full.phase_retries);
  }
}

TEST(Replan, ResumeRejectsCheckpointFromAnotherTask) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanCheckpoint checkpoint;
  checkpoint.done = core::CountVector{0};  // wrong arity for this task
  ReplanOptions options;
  options.resume = &checkpoint;
  EXPECT_THROW(
      execute_with_replanning(mig.task, planner, forecaster, options),
      std::invalid_argument);
}

namespace {

/// Fails phase 1 on its first attempt after pushing two ops of its block
/// (simulating a config push dying mid-block).
class PartialFailureInjector final : public FaultInjector {
 public:
  std::uint64_t fault_epoch(int) const override { return 0; }
  void apply(int, topo::Topology&, std::vector<topo::SwitchId>&,
             std::vector<topo::CircuitId>&) override {}
  int phase_failure_ops(int phases_executed, int attempt) override {
    return (phases_executed == 1 && attempt == 0) ? 2 : -1;
  }
};

}  // namespace

TEST(Replan, PartialBlockApplicationIsRolledBackAndRetried) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  PartialFailureInjector injector;
  ReplanOptions options;
  options.injector = &injector;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_EQ(result.phase_retries, 1);
  bool rolled_back = false;
  for (const std::string& line : result.log) {
    if (line.find("failed after 2 ops; rolled back") != std::string::npos) {
      rolled_back = true;
    }
  }
  EXPECT_TRUE(rolled_back);
  // The torn state never leaks: the topology is back at the original.
  EXPECT_TRUE(mig.task.original_state ==
              topo::TopologyState::capture(*mig.task.topo));
}

}  // namespace
}  // namespace klotski::pipeline
