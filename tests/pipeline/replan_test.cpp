#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/core/astar_planner.h"
#include "klotski/pipeline/replan.h"

namespace klotski::pipeline {
namespace {

using klotski::testing::small_hgrid_case;

TEST(Replan, CompletesWithoutDriftInOneShot) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_EQ(result.replans, 0);
  EXPECT_GT(result.phases_executed, 0);
}

TEST(Replan, ExecutedCostMatchesPlanWhenNothingChanges) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;

  CheckerBundle bundle = make_standard_checker(mig.task, {});
  const core::Plan reference =
      planner.plan(mig.task, *bundle.checker, {});
  ASSERT_TRUE(reference.found);

  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  ASSERT_TRUE(result.completed);
  EXPECT_DOUBLE_EQ(result.executed_cost, reference.cost);
}

TEST(Replan, DriftTriggersReplanning) {
  migration::MigrationCase mig = small_hgrid_case();
  // 20% growth per step blows through the 10% drift threshold every step.
  traffic::Forecaster forecaster(mig.task.demands, 0.20);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.demand_change_threshold = 0.10;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  // Plans exist as long as the absolute demands stay feasible; growth this
  // fast may eventually make the task infeasible, which is also an
  // acceptable (reported) outcome for this test.
  if (result.completed) {
    EXPECT_GT(result.replans, 0);
  } else {
    EXPECT_FALSE(result.failure.empty());
  }
}

TEST(Replan, InjectedFailureForcesReplanAndStillCompletes) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.failing_phases = {1};
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_GE(result.replans, 1);
  bool logged_failure = false;
  for (const std::string& line : result.log) {
    if (line.find("failed during operation") != std::string::npos) {
      logged_failure = true;
    }
  }
  EXPECT_TRUE(logged_failure);
}

TEST(Replan, SurgeMidMigrationHandled) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  traffic::SurgeEvent surge;
  surge.kind = traffic::DemandKind::kEgress;
  surge.start_step = 1;
  surge.end_step = 3;
  surge.factor = 1.3;
  forecaster.add_surge(surge);

  core::AStarPlanner planner;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_GE(result.replans, 1);  // the surge crosses the 10% threshold
}

TEST(Replan, ImpossibleDemandReportsFailure) {
  migration::MigrationCase mig = small_hgrid_case();
  // Make the starting demands infeasible at the default theta.
  traffic::Forecaster forecaster(traffic::scaled(mig.task.demands, 50.0),
                                 0.0);
  core::AStarPlanner planner;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure.find("planning failed"), std::string::npos);
}

TEST(Replan, TopologyRestoredAfterExecution) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_TRUE(mig.task.original_state ==
              topo::TopologyState::capture(*mig.task.topo));
}


TEST(Replan, MaintenanceEventTriggersReplans) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;

  ReplanOptions options;
  MaintenanceEvent event;
  event.name = "firmware upgrade on one rack switch";
  // Rebuild one RSW the migration itself does not operate: its demand share
  // redistributes over the remaining rack switches, a mild perturbation.
  event.switches = {mig.region->rsws[0][0]};
  event.start_step = 1;
  event.end_step = 2;
  options.maintenance = {event};

  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  // The calendar changes at step 1 (start) and step 2 (end): at least one
  // re-plan, and the event shows up in the log.
  EXPECT_GE(result.replans, 1);
  bool logged = false;
  for (const std::string& line : result.log) {
    if (line.find("maintenance") != std::string::npos) logged = true;
  }
  EXPECT_TRUE(logged);
}

TEST(Replan, MaintenanceDrainsConstrainThePlan) {
  // Draining enough spine capacity through "maintenance" makes the
  // migration unplannable: the driver must report the failure rather than
  // emit an unsafe plan.
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;

  ReplanOptions options;
  MaintenanceEvent event;
  event.name = "whole-spine maintenance";
  for (const auto& plane : mig.region->ssws[0]) {
    for (const topo::SwitchId ssw : plane) event.switches.push_back(ssw);
  }
  event.start_step = 0;
  event.end_step = 1000;
  options.maintenance = {event};

  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure.find("planning failed"), std::string::npos);
}

TEST(Replan, FailingPhaseIndicesFireAtMostOnce) {
  // Regression: a failure injection is consumed once. The failed phase is
  // retried under a fresh plan with the *same* global executed-phase index,
  // so un-deduplicated matching (or a repeated listing) would re-fail the
  // retry forever.
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.failing_phases = {1, 1, 1};
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  int failures_logged = 0;
  for (const std::string& line : result.log) {
    if (line.find("failed during operation") != std::string::npos) {
      ++failures_logged;
    }
  }
  EXPECT_EQ(failures_logged, 1);
  EXPECT_EQ(result.phase_retries, 1);
}

TEST(Replan, FailedPhaseRetriesWithBackoff) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.failing_phases = {0};
  options.backoff_steps = 2;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_EQ(result.phase_retries, 1);
  bool backed_off = false;
  for (const std::string& line : result.log) {
    if (line.find("backing off 2 steps") != std::string::npos) {
      backed_off = true;
    }
  }
  EXPECT_TRUE(backed_off);
}

TEST(Replan, FallbackPlannerEngagesAfterMaxReplans) {
  migration::MigrationCase mig = small_hgrid_case();
  // 20% growth re-plans every step, exhausting a one-round budget fast.
  traffic::Forecaster forecaster(mig.task.demands, 0.20);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.max_replans = 1;
  options.fallback_planner = "mrc";
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  if (result.completed && result.replans >= 1) {
    EXPECT_TRUE(result.used_fallback);
    EXPECT_GE(result.fallback_plans, 1);
    bool degraded = false;
    for (const std::string& line : result.log) {
      if (line.find("degrading to fallback planner") != std::string::npos) {
        degraded = true;
      }
    }
    EXPECT_TRUE(degraded);
  }
}

TEST(Replan, ObserverSeesEveryExecutedPhaseInOrder) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  int calls = 0;
  int last_total = 0;
  options.observer = [&](const PhaseObservation& obs) {
    ++calls;
    EXPECT_EQ(obs.phases_executed, calls);
    int total = 0;
    for (const std::int32_t d : obs.done) total += d;
    EXPECT_EQ(total, last_total + obs.blocks);
    last_total = total;
    // The topology is materialized at the executed state: the done counts
    // must be reflected in switch states differing from the original for
    // at least one operated element once anything ran.
    EXPECT_FALSE(obs.demands.empty());
  };
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  ASSERT_TRUE(result.completed) << result.failure;
  EXPECT_EQ(calls, result.phases_executed);
}

TEST(Replan, CheckpointResumeReproducesTheUninterruptedRun) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.failing_phases = {1};  // exercise consumed-failure persistence
  std::vector<ReplanCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const ReplanCheckpoint& cp) {
    checkpoints.push_back(cp);
  };
  const ReplanResult full =
      execute_with_replanning(mig.task, planner, forecaster, options);
  ASSERT_TRUE(full.completed) << full.failure;
  ASSERT_GE(checkpoints.size(), 2u);

  // Kill after an arbitrary phase; resume from the JSON round trip of its
  // checkpoint in a fresh world and compare the final outcome.
  for (const std::size_t at : {std::size_t{0}, checkpoints.size() / 2}) {
    const ReplanCheckpoint restored = ReplanCheckpoint::from_json(
        json::parse(json::dump(checkpoints[at].to_json())));
    migration::MigrationCase mig2 = small_hgrid_case();
    traffic::Forecaster forecaster2(mig2.task.demands, 0.0);
    ReplanOptions options2;
    options2.failing_phases = {1};
    options2.resume = &restored;
    const ReplanResult resumed =
        execute_with_replanning(mig2.task, planner, forecaster2, options2);
    ASSERT_TRUE(resumed.completed) << resumed.failure;
    EXPECT_EQ(resumed.phases_executed, full.phases_executed);
    EXPECT_EQ(resumed.executed_cost, full.executed_cost);  // bit-exact
    EXPECT_EQ(resumed.replans, full.replans);
    EXPECT_EQ(resumed.phase_retries, full.phase_retries);
  }
}

TEST(Replan, ResumeRejectsCheckpointFromAnotherTask) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanCheckpoint checkpoint;
  checkpoint.done = core::CountVector{0};  // wrong arity for this task
  ReplanOptions options;
  options.resume = &checkpoint;
  EXPECT_THROW(
      execute_with_replanning(mig.task, planner, forecaster, options),
      std::invalid_argument);
}

namespace {

/// Fails phase 1 on its first attempt after pushing two ops of its block
/// (simulating a config push dying mid-block).
class PartialFailureInjector final : public FaultInjector {
 public:
  std::uint64_t fault_epoch(int) const override { return 0; }
  void apply(int, topo::Topology&, std::vector<topo::SwitchId>&,
             std::vector<topo::CircuitId>&) override {}
  int phase_failure_ops(int phases_executed, int attempt) override {
    return (phases_executed == 1 && attempt == 0) ? 2 : -1;
  }
};

}  // namespace

TEST(Replan, PartialBlockApplicationIsRolledBackAndRetried) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  PartialFailureInjector injector;
  ReplanOptions options;
  options.injector = &injector;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_EQ(result.phase_retries, 1);
  bool rolled_back = false;
  for (const std::string& line : result.log) {
    if (line.find("failed after 2 ops; rolled back") != std::string::npos) {
      rolled_back = true;
    }
  }
  EXPECT_TRUE(rolled_back);
  // The torn state never leaks: the topology is back at the original.
  EXPECT_TRUE(mig.task.original_state ==
              topo::TopologyState::capture(*mig.task.topo));
}

// ---- Warm-start replanning (DESIGN.md §11) ----

namespace {

/// A surge window wide enough to trigger at least one drift re-plan
/// mid-migration (mirrors SurgeMidMigrationHandled).
traffic::Forecaster surging_forecaster(const migration::MigrationTask& task) {
  traffic::Forecaster forecaster(task.demands, 0.0);
  traffic::SurgeEvent surge;
  surge.kind = traffic::DemandKind::kEgress;
  surge.start_step = 1;
  surge.end_step = 3;
  surge.factor = 1.3;
  forecaster.add_surge(surge);
  return forecaster;
}

}  // namespace

TEST(ReplanWarm, AccountingIdentityAndRoundLedgerHold) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster = surging_forecaster(mig.task);
  core::AStarPlanner planner;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  ASSERT_TRUE(result.completed) << result.failure;
  ASSERT_GE(result.replans, 1);
  // Every warm attempt either repairs the suffix or falls back — never
  // both, never neither.
  EXPECT_EQ(result.warm_attempts, result.warm_wins + result.fallback_full);
  // One ledger row per planning round: the initial plan plus each re-plan,
  // and exactly the repaired rounds are flagged warm.
  ASSERT_EQ(result.rounds.size(),
            static_cast<std::size_t>(result.replans) + 1);
  int warm_rounds = 0;
  for (const ReplanRound& round : result.rounds) {
    EXPECT_GE(round.seconds, 0.0);
    if (round.warm) ++warm_rounds;
  }
  EXPECT_FALSE(result.rounds.front().warm);  // nothing to repair yet
  EXPECT_EQ(warm_rounds, result.warm_wins);
}

TEST(ReplanWarm, DisabledNeverAttemptsRepair) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster = surging_forecaster(mig.task);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.warm_repair = false;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  ASSERT_TRUE(result.completed) << result.failure;
  ASSERT_GE(result.replans, 1);
  EXPECT_EQ(result.warm_attempts, 0);
  EXPECT_EQ(result.warm_wins, 0);
  EXPECT_EQ(result.fallback_full, 0);
  for (const ReplanRound& round : result.rounds) {
    EXPECT_FALSE(round.warm);
    EXPECT_FALSE(round.warm_seeded);
  }
}

TEST(ReplanWarm, ZeroSlackDeclinesEveryRepair) {
  // With no slack, a non-empty suffix (positive cost) can never beat the
  // admissible lower bound times zero, so the cost gate declines every
  // attempt and all of them show up as full fallbacks.
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster = surging_forecaster(mig.task);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.repair_cost_slack = 0.0;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  ASSERT_TRUE(result.completed) << result.failure;
  EXPECT_EQ(result.warm_wins, 0);
  EXPECT_EQ(result.fallback_full, result.warm_attempts);
}

TEST(ReplanWarm, WarmAndColdReachTheSameOutcome) {
  migration::MigrationCase warm_case = small_hgrid_case();
  traffic::Forecaster warm_forecaster = surging_forecaster(warm_case.task);
  core::AStarPlanner planner;
  const ReplanResult warm = execute_with_replanning(
      warm_case.task, planner, warm_forecaster, {});

  migration::MigrationCase cold_case = small_hgrid_case();
  traffic::Forecaster cold_forecaster = surging_forecaster(cold_case.task);
  ReplanOptions cold_options;
  cold_options.warm_repair = false;
  const ReplanResult cold = execute_with_replanning(
      cold_case.task, planner, cold_forecaster, cold_options);

  EXPECT_EQ(warm.completed, cold.completed);
  EXPECT_EQ(warm.phases_executed > 0, cold.phases_executed > 0);
}

TEST(ReplanCheckpointV2, RoundTripPreservesWarmState) {
  ReplanCheckpoint cp;
  cp.done = core::CountVector{2, 1};
  cp.phases_executed = 3;
  cp.step = 7;
  cp.next_phase = 2;
  cp.planning_runs = 4;
  cp.last_plan_step = 5;
  cp.last_type = 1;
  cp.executed_cost = 3.5;
  cp.plan_planner = "astar";
  cp.plan_cost = 6.0;
  cp.plan_actions = {core::PlannedAction{0, 2}, core::PlannedAction{1, 1}};
  cp.replan_pending = true;
  cp.warm_attempts = 5;
  cp.warm_wins = 3;
  cp.fallback_full = 2;
  cp.sat_generation = 42;

  const json::Value doc = json::parse(json::dump(cp.to_json()));
  EXPECT_EQ(doc.get_string("schema", ""), "klotski.replan-checkpoint.v2");
  const ReplanCheckpoint back = ReplanCheckpoint::from_json(doc);
  EXPECT_EQ(back.done, cp.done);
  EXPECT_EQ(back.replan_pending, true);
  EXPECT_EQ(back.warm_attempts, 5);
  EXPECT_EQ(back.warm_wins, 3);
  EXPECT_EQ(back.fallback_full, 2);
  EXPECT_EQ(back.sat_generation, 42u);
  EXPECT_EQ(back.plan_actions.size(), 2u);
}

TEST(ReplanCheckpointV2, LoadsV1DocumentsWithZeroWarmDefaults) {
  ReplanCheckpoint cp;
  cp.done = core::CountVector{1};
  cp.phases_executed = 1;
  cp.step = 2;
  cp.next_phase = 1;
  cp.executed_cost = 1.0;
  cp.warm_attempts = 9;  // must NOT survive the downgrade below
  cp.replan_pending = true;

  // Downgrade the emitted v2 document to its v1 shape: the old schema
  // string, no "warm" object, no "replan_pending" key.
  const json::Value v2 = cp.to_json();
  json::Object v1;
  for (const auto& [key, value] : v2.as_object()) {
    if (key == "warm" || key == "replan_pending") continue;
    v1[key] = key == "schema"
                  ? json::Value("klotski.replan-checkpoint.v1")
                  : value;
  }

  const ReplanCheckpoint back =
      ReplanCheckpoint::from_json(json::Value(std::move(v1)));
  EXPECT_EQ(back.phases_executed, 1);
  EXPECT_EQ(back.step, 2);
  EXPECT_FALSE(back.replan_pending);
  EXPECT_EQ(back.warm_attempts, 0);
  EXPECT_EQ(back.warm_wins, 0);
  EXPECT_EQ(back.fallback_full, 0);
  EXPECT_EQ(back.sat_generation, 0u);
}

}  // namespace
}  // namespace klotski::pipeline
