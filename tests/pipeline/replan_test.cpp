#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/core/astar_planner.h"
#include "klotski/pipeline/replan.h"

namespace klotski::pipeline {
namespace {

using klotski::testing::small_hgrid_case;

TEST(Replan, CompletesWithoutDriftInOneShot) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_EQ(result.replans, 0);
  EXPECT_GT(result.phases_executed, 0);
}

TEST(Replan, ExecutedCostMatchesPlanWhenNothingChanges) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;

  CheckerBundle bundle = make_standard_checker(mig.task, {});
  const core::Plan reference =
      planner.plan(mig.task, *bundle.checker, {});
  ASSERT_TRUE(reference.found);

  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  ASSERT_TRUE(result.completed);
  EXPECT_DOUBLE_EQ(result.executed_cost, reference.cost);
}

TEST(Replan, DriftTriggersReplanning) {
  migration::MigrationCase mig = small_hgrid_case();
  // 20% growth per step blows through the 10% drift threshold every step.
  traffic::Forecaster forecaster(mig.task.demands, 0.20);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.demand_change_threshold = 0.10;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  // Plans exist as long as the absolute demands stay feasible; growth this
  // fast may eventually make the task infeasible, which is also an
  // acceptable (reported) outcome for this test.
  if (result.completed) {
    EXPECT_GT(result.replans, 0);
  } else {
    EXPECT_FALSE(result.failure.empty());
  }
}

TEST(Replan, InjectedFailureForcesReplanAndStillCompletes) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  ReplanOptions options;
  options.failing_phases = {1};
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_GE(result.replans, 1);
  bool logged_failure = false;
  for (const std::string& line : result.log) {
    if (line.find("failed during operation") != std::string::npos) {
      logged_failure = true;
    }
  }
  EXPECT_TRUE(logged_failure);
}

TEST(Replan, SurgeMidMigrationHandled) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  traffic::SurgeEvent surge;
  surge.kind = traffic::DemandKind::kEgress;
  surge.start_step = 1;
  surge.end_step = 3;
  surge.factor = 1.3;
  forecaster.add_surge(surge);

  core::AStarPlanner planner;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_TRUE(result.completed) << result.failure;
  EXPECT_GE(result.replans, 1);  // the surge crosses the 10% threshold
}

TEST(Replan, ImpossibleDemandReportsFailure) {
  migration::MigrationCase mig = small_hgrid_case();
  // Make the starting demands infeasible at the default theta.
  traffic::Forecaster forecaster(traffic::scaled(mig.task.demands, 50.0),
                                 0.0);
  core::AStarPlanner planner;
  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure.find("planning failed"), std::string::npos);
}

TEST(Replan, TopologyRestoredAfterExecution) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;
  execute_with_replanning(mig.task, planner, forecaster, {});
  EXPECT_TRUE(mig.task.original_state ==
              topo::TopologyState::capture(*mig.task.topo));
}


TEST(Replan, MaintenanceEventTriggersReplans) {
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;

  ReplanOptions options;
  MaintenanceEvent event;
  event.name = "firmware upgrade on one rack switch";
  // Rebuild one RSW the migration itself does not operate: its demand share
  // redistributes over the remaining rack switches, a mild perturbation.
  event.switches = {mig.region->rsws[0][0]};
  event.start_step = 1;
  event.end_step = 2;
  options.maintenance = {event};

  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_TRUE(result.completed) << result.failure;
  // The calendar changes at step 1 (start) and step 2 (end): at least one
  // re-plan, and the event shows up in the log.
  EXPECT_GE(result.replans, 1);
  bool logged = false;
  for (const std::string& line : result.log) {
    if (line.find("maintenance") != std::string::npos) logged = true;
  }
  EXPECT_TRUE(logged);
}

TEST(Replan, MaintenanceDrainsConstrainThePlan) {
  // Draining enough spine capacity through "maintenance" makes the
  // migration unplannable: the driver must report the failure rather than
  // emit an unsafe plan.
  migration::MigrationCase mig = small_hgrid_case();
  traffic::Forecaster forecaster(mig.task.demands, 0.0);
  core::AStarPlanner planner;

  ReplanOptions options;
  MaintenanceEvent event;
  event.name = "whole-spine maintenance";
  for (const auto& plane : mig.region->ssws[0]) {
    for (const topo::SwitchId ssw : plane) event.switches.push_back(ssw);
  }
  event.start_step = 0;
  event.end_step = 1000;
  options.maintenance = {event};

  const ReplanResult result =
      execute_with_replanning(mig.task, planner, forecaster, options);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure.find("planning failed"), std::string::npos);
}

}  // namespace
}  // namespace klotski::pipeline
