#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/npd/npd_io.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/pipeline/plan_export.h"

namespace klotski::pipeline {
namespace {

using klotski::testing::small_hgrid_case;

npd::NpdDocument small_doc() {
  npd::NpdDocument doc;
  doc.name = "pipeline-test";
  doc.region =
      topo::preset_params(topo::PresetId::kA, topo::PresetScale::kFull);
  doc.migration = npd::MigrationKind::kHgridV1ToV2;
  return doc;
}

TEST(MakePlanner, KnownNames) {
  EXPECT_EQ(make_planner("astar")->name(), "Klotski-A*");
  EXPECT_EQ(make_planner("dp")->name(), "Klotski-DP");
  EXPECT_EQ(make_planner("mrc")->name(), "MRC");
  EXPECT_EQ(make_planner("janus")->name(), "Janus");
  EXPECT_EQ(make_planner("brute")->name(), "BruteForce");
}

TEST(MakePlanner, UnknownNameThrows) {
  EXPECT_THROW(make_planner("quantum"), std::invalid_argument);
}

TEST(MakeStandardChecker, IncludesPortsAndDemands) {
  migration::MigrationCase mig = small_hgrid_case();
  CheckerBundle bundle = make_standard_checker(mig.task, {});
  EXPECT_EQ(bundle.checker->size(), 2u);  // ports + demands
}

TEST(MakeStandardChecker, SpacePowerAddedWhenConfigured) {
  migration::MigrationCase mig = small_hgrid_case();
  CheckerConfig config;
  config.space_power.max_present_per_grid = 100;
  CheckerBundle bundle = make_standard_checker(mig.task, config);
  EXPECT_EQ(bundle.checker->size(), 3u);
}

TEST(RunPipeline, EndToEndProducesAuditablePlanAndPhases) {
  const EdpResult result = run_pipeline(small_doc(), {});
  ASSERT_TRUE(result.plan.found) << result.plan.failure;

  // Phase snapshots: original + one per phase, last one == target.
  EXPECT_EQ(result.phase_states.size(), result.plan.phases().size() + 1);
  EXPECT_TRUE(result.phase_states.front() ==
              result.migration.task.original_state);
  EXPECT_TRUE(result.phase_states.back() ==
              result.migration.task.target_state);

  migration::MigrationTask& task =
      const_cast<migration::MigrationTask&>(result.migration.task);
  CheckerBundle bundle = make_standard_checker(task, {});
  EXPECT_TRUE(audit_plan(task, *bundle.checker, result.plan).ok);
}

TEST(RunPipeline, PlannerSelectionRespected) {
  EdpOptions options;
  options.planner = "dp";
  const EdpResult result = run_pipeline(small_doc(), options);
  EXPECT_EQ(result.plan.planner, "Klotski-DP");
}

TEST(RunPipeline, ThetaPropagates) {
  EdpOptions options;
  options.checker.demand.max_utilization = 0.01;  // infeasible everywhere
  const EdpResult result = run_pipeline(small_doc(), options);
  EXPECT_FALSE(result.plan.found);
  EXPECT_TRUE(result.phase_states.empty());
}

// ---------------------------------------------------------------------------
// Audit

TEST(Audit, DetectsMissingActions) {
  migration::MigrationCase mig = small_hgrid_case();
  CheckerBundle bundle = make_standard_checker(mig.task, {});
  core::Plan plan = make_planner("astar")->plan(mig.task, *bundle.checker, {});
  ASSERT_TRUE(plan.found);
  plan.actions.pop_back();
  const AuditReport report = audit_plan(mig.task, *bundle.checker, plan);
  EXPECT_FALSE(report.ok);
}

TEST(Audit, DetectsDuplicatedBlock) {
  migration::MigrationCase mig = small_hgrid_case();
  CheckerBundle bundle = make_standard_checker(mig.task, {});
  core::Plan plan = make_planner("astar")->plan(mig.task, *bundle.checker, {});
  ASSERT_TRUE(plan.found);
  plan.actions.back() = plan.actions.front();
  const AuditReport report = audit_plan(mig.task, *bundle.checker, plan);
  EXPECT_FALSE(report.ok);
}

TEST(Audit, DetectsUnsafeOrdering) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  CheckerBundle bundle = make_standard_checker(task, {});
  // Adversarial plan: drain everything first, then undrain — leaves the
  // region without HGRID capacity mid-way.
  core::Plan bad;
  bad.found = true;
  bad.planner = "adversarial";
  for (std::size_t t = 0; t < task.blocks.size(); ++t) {
    for (std::size_t b = 0; b < task.blocks[t].size(); ++b) {
      bad.actions.push_back(
          {static_cast<std::int32_t>(t), static_cast<std::int32_t>(b)});
    }
  }
  const AuditReport report = audit_plan(task, *bundle.checker, bad);
  EXPECT_FALSE(report.ok);
}

TEST(Audit, ReportsNotFoundPlans) {
  migration::MigrationCase mig = small_hgrid_case();
  CheckerBundle bundle = make_standard_checker(mig.task, {});
  core::Plan missing;
  missing.failure = "because";
  const AuditReport report = audit_plan(mig.task, *bundle.checker, missing);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.issues.empty());
  EXPECT_NE(report.issues[0].find("because"), std::string::npos);
}

TEST(Audit, RestoresOriginalState) {
  migration::MigrationCase mig = small_hgrid_case();
  CheckerBundle bundle = make_standard_checker(mig.task, {});
  const core::Plan plan =
      make_planner("astar")->plan(mig.task, *bundle.checker, {});
  audit_plan(mig.task, *bundle.checker, plan);
  EXPECT_TRUE(mig.task.original_state ==
              topo::TopologyState::capture(*mig.task.topo));
}

// ---------------------------------------------------------------------------
// remaining_task

TEST(RemainingTask, EmptyPrefixEqualsOriginal) {
  migration::MigrationCase mig = small_hgrid_case();
  const migration::MigrationTask rest =
      remaining_task(mig.task, core::CountVector(mig.task.blocks.size(), 0));
  EXPECT_TRUE(rest.original_state == mig.task.original_state);
  EXPECT_EQ(rest.total_actions(), mig.task.total_actions());
}

TEST(RemainingTask, FullPrefixLeavesNothing) {
  migration::MigrationCase mig = small_hgrid_case();
  core::CountVector done;
  for (const auto& blocks : mig.task.blocks) {
    done.push_back(static_cast<std::int32_t>(blocks.size()));
  }
  const migration::MigrationTask rest = remaining_task(mig.task, done);
  EXPECT_EQ(rest.total_actions(), 0);
  EXPECT_TRUE(rest.original_state == mig.task.target_state);
}

TEST(RemainingTask, SuffixIsPlannable) {
  migration::MigrationCase mig = small_hgrid_case();
  core::CountVector done(mig.task.blocks.size(), 0);
  done[1] = 1;  // one V2 block already undrained
  migration::MigrationTask rest = remaining_task(mig.task, done);
  CheckerBundle bundle = make_standard_checker(rest, {});
  const core::Plan plan =
      make_planner("astar")->plan(rest, *bundle.checker, {});
  EXPECT_TRUE(plan.found) << plan.failure;
  EXPECT_EQ(plan.actions.size(),
            static_cast<std::size_t>(mig.task.total_actions() - 1));
}

TEST(RemainingTask, RejectsBadCounts) {
  migration::MigrationCase mig = small_hgrid_case();
  EXPECT_THROW(remaining_task(mig.task, {0}), std::invalid_argument);
  core::CountVector over(mig.task.blocks.size(), 0);
  over[0] = 1000;
  EXPECT_THROW(remaining_task(mig.task, over), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Plan export

TEST(PlanExport, JsonContainsPhasesAndStats) {
  migration::MigrationCase mig = small_hgrid_case();
  CheckerBundle bundle = make_standard_checker(mig.task, {});
  const core::Plan plan =
      make_planner("astar")->plan(mig.task, *bundle.checker, {});
  ASSERT_TRUE(plan.found);

  const json::Value exported = plan_to_json(mig.task, plan);
  EXPECT_TRUE(exported.at("found").as_bool());
  EXPECT_DOUBLE_EQ(exported.at("cost").as_double(), plan.cost);
  EXPECT_EQ(exported.at("phases").as_array().size(), plan.phases().size());
  EXPECT_GE(exported.at("stats").at("sat_checks").as_int(), 1);

  std::size_t exported_blocks = 0;
  for (const json::Value& phase : exported.at("phases").as_array()) {
    exported_blocks += phase.at("blocks").as_array().size();
  }
  EXPECT_EQ(exported_blocks, plan.actions.size());
}

TEST(PlanExport, JsonForFailedPlanCarriesFailure) {
  migration::MigrationCase mig = small_hgrid_case();
  core::Plan failed;
  failed.planner = "test";
  failed.failure = "nope";
  const json::Value exported = plan_to_json(mig.task, failed);
  EXPECT_FALSE(exported.at("found").as_bool());
  EXPECT_EQ(exported.at("failure").as_string(), "nope");
}

TEST(PlanExport, TextSummaryMentionsPhases) {
  migration::MigrationCase mig = small_hgrid_case();
  CheckerBundle bundle = make_standard_checker(mig.task, {});
  const core::Plan plan =
      make_planner("astar")->plan(mig.task, *bundle.checker, {});
  const std::string text = plan_to_text(mig.task, plan);
  EXPECT_NE(text.find("phase 1:"), std::string::npos);
  EXPECT_NE(text.find("cost="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Experiments registry

TEST(Experiments, NamesAndSets) {
  EXPECT_EQ(scalability_experiments().size(), 5u);
  EXPECT_EQ(generality_experiments().size(), 3u);
  EXPECT_EQ(to_string(ExperimentId::kEDmag), "E-DMAG");
}

TEST(Experiments, ReducedExperimentsBuildAndValidate) {
  for (const ExperimentId id : generality_experiments()) {
    migration::MigrationCase mig =
        build_experiment(id, topo::PresetScale::kReduced);
    EXPECT_EQ(mig.task.validate(), "") << to_string(id);
  }
}

}  // namespace
}  // namespace klotski::pipeline
