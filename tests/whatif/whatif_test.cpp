// What-if engine tests: cross-family smoke (the sweep runs on every
// topology family's canonical migration), bit-reproducibility (same seed →
// byte-identical report at any thread count), unsafe-future detection under
// aggressive demand knobs, and the cooperative stop contract.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "klotski/json/json.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/topo/builder.h"
#include "klotski/whatif/whatif.h"

namespace klotski {
namespace {

core::Plan plan_family(migration::MigrationCase mig) {
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, pipeline::CheckerConfig{});
  auto planner = pipeline::make_planner("astar");
  core::Plan plan = planner->plan(mig.task, *bundle.checker,
                                  core::PlannerOptions{});
  EXPECT_TRUE(plan.found) << plan.failure;
  return plan;
}

whatif::CaseFactory family_factory(topo::TopologyFamily family) {
  return [family] {
    return pipeline::build_family_experiment(family, topo::PresetId::kA,
                                             topo::PresetScale::kReduced);
  };
}

class WhatIfFamily
    : public ::testing::TestWithParam<topo::TopologyFamily> {};

TEST_P(WhatIfFamily, SmokeSweepCompletesAndReportsEveryPhase) {
  const whatif::CaseFactory factory = family_factory(GetParam());
  const core::Plan plan = plan_family(factory());

  whatif::WhatIfParams params;
  params.trajectories = 12;
  params.seed = 7;
  const whatif::WhatIfReport report =
      whatif::run_whatif(factory, plan, params);

  EXPECT_EQ(report.trajectories, 12);
  EXPECT_EQ(report.trajectories_run, 12);
  EXPECT_FALSE(report.stopped);
  EXPECT_EQ(report.phases.size(), plan.phases().size());
  EXPECT_GE(report.safe_fraction, 0.0);
  EXPECT_LE(report.safe_fraction, 1.0);
  EXPECT_DOUBLE_EQ(
      report.safe_fraction,
      static_cast<double>(report.trajectories_run - report.unsafe) / 12.0);
  // Every trajectory reaches phase 0 (or broke there), so the first row
  // saw all of them.
  ASSERT_FALSE(report.phases.empty());
  EXPECT_EQ(report.phases[0].evaluated, 12);
  EXPECT_GE(report.safe_growth_margin, 0.0);
  EXPECT_LE(report.safe_growth_margin, params.margin_max);

  const json::Value doc = whatif::report_to_json(report, params);
  EXPECT_EQ(doc.get_string("schema", ""), "klotski.whatif.v1");
  EXPECT_EQ(doc.get_int("trajectories_run", -1), 12);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, WhatIfFamily,
                         ::testing::Values(topo::TopologyFamily::kClos,
                                           topo::TopologyFamily::kFlat,
                                           topo::TopologyFamily::kReconf),
                         [](const auto& info) {
                           return topo::to_string(info.param);
                         });

TEST(WhatIf, SameSeedSameReportBytes) {
  const whatif::CaseFactory factory =
      family_factory(topo::TopologyFamily::kClos);
  const core::Plan plan = plan_family(factory());

  whatif::WhatIfParams params;
  params.trajectories = 16;
  params.seed = 42;
  const std::string first = whatif::report_text(
      whatif::run_whatif(factory, plan, params), params);
  const std::string second = whatif::report_text(
      whatif::run_whatif(factory, plan, params), params);
  EXPECT_EQ(first, second);
}

TEST(WhatIf, ReportIsInvariantToThreadCount) {
  const whatif::CaseFactory factory =
      family_factory(topo::TopologyFamily::kClos);
  const core::Plan plan = plan_family(factory());

  whatif::WhatIfParams params;
  params.trajectories = 24;
  params.seed = 3;
  params.threads = 1;
  const std::string serial = whatif::report_text(
      whatif::run_whatif(factory, plan, params), params);
  params.threads = 4;
  const std::string parallel = whatif::report_text(
      whatif::run_whatif(factory, plan, params), params);
  EXPECT_EQ(serial, parallel);
}

TEST(WhatIf, AggressiveDemandKnobsSurfaceUnsafeFutures) {
  const whatif::CaseFactory factory =
      family_factory(topo::TopologyFamily::kClos);
  const core::Plan plan = plan_family(factory());

  // A plan that is fine under its own forecast must look unsafe when the
  // sampled futures run far hotter than anything it was planned against.
  whatif::WhatIfParams params;
  params.trajectories = 40;
  params.growth_max = 0.05;
  params.surge_factor_max = 3.0;
  params.bias_factor_max = 2.5;
  const whatif::WhatIfReport report =
      whatif::run_whatif(factory, plan, params);

  EXPECT_GT(report.unsafe, 0);
  EXPECT_LT(report.safe_fraction, 1.0);
  EXPECT_GE(report.first_break_phase, 0);
  EXPECT_GT(report.first_break_multiplier, 1.0);
  long long histogram_total = 0;
  for (const long long count : report.break_histogram) {
    histogram_total += count;
  }
  EXPECT_EQ(histogram_total, report.unsafe);
  long long per_phase_unsafe = 0;
  for (const whatif::PhaseStats& row : report.phases) {
    per_phase_unsafe += row.unsafe;
  }
  EXPECT_EQ(per_phase_unsafe, report.unsafe);
}

TEST(WhatIf, SafePlanEarnsAMarginAboveOne) {
  const whatif::CaseFactory factory =
      family_factory(topo::TopologyFamily::kClos);
  const core::Plan plan = plan_family(factory());

  whatif::WhatIfParams params;
  params.trajectories = 8;
  const whatif::WhatIfReport report =
      whatif::run_whatif(factory, plan, params);
  // The canonical preset-A plan passes its audit with headroom, so the
  // bisection must find a tolerated multiplier strictly above 1.
  EXPECT_GT(report.safe_growth_margin, 1.0);
}

TEST(WhatIf, StopFlagReportsPartialSweepAsStopped) {
  const whatif::CaseFactory factory =
      family_factory(topo::TopologyFamily::kClos);
  const core::Plan plan = plan_family(factory());

  whatif::WhatIfParams params;
  params.trajectories = 10;
  std::atomic<bool> stop{true};
  const whatif::WhatIfReport report =
      whatif::run_whatif(factory, plan, params, &stop);
  EXPECT_TRUE(report.stopped);
  EXPECT_EQ(report.trajectories_run, 0);
  const json::Value doc = whatif::report_to_json(report, params);
  EXPECT_TRUE(doc.get_bool("stopped", false));
}

TEST(WhatIf, RejectsBadParams) {
  const whatif::CaseFactory factory =
      family_factory(topo::TopologyFamily::kClos);
  const core::Plan plan = plan_family(factory());

  whatif::WhatIfParams params;
  params.trajectories = 0;
  EXPECT_THROW(whatif::run_whatif(factory, plan, params),
               std::invalid_argument);
  params.trajectories = 4;
  params.surge_factor_min = -0.5;
  EXPECT_THROW(whatif::run_whatif(factory, plan, params),
               std::invalid_argument);
  params.surge_factor_min = 0.8;
  params.margin_max = 0.5;
  EXPECT_THROW(whatif::run_whatif(factory, plan, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace klotski
