#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "klotski/json/json.h"
#include "klotski/obs/metrics.h"
#include "klotski/obs/trace.h"

namespace klotski::obs {
namespace {

/// Every test runs with metrics+tracing on and a clean slate; the previous
/// enabled state is restored so test order never matters.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_metrics_ = metrics_enabled();
    was_trace_ = trace_enabled();
    set_metrics_enabled(true);
    set_trace_enabled(true);
    Registry::global().reset_values();
    Tracer::global().clear();
  }
  void TearDown() override {
    Registry::global().reset_values();
    Tracer::global().clear();
    set_metrics_enabled(was_metrics_);
    set_trace_enabled(was_trace_);
  }

 private:
  bool was_metrics_ = false;
  bool was_trace_ = false;
};

TEST_F(ObsTest, CounterCountsAndResets) {
  Counter& c = Registry::global().counter("test.counter");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
  Registry::global().reset_values();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(ObsTest, CounterHandleIsStable) {
  Counter& a = Registry::global().counter("test.stable");
  Counter& b = Registry::global().counter("test.stable");
  EXPECT_EQ(&a, &b);
}

TEST_F(ObsTest, DisabledCounterIsANoop) {
  Counter& c = Registry::global().counter("test.disabled");
  set_metrics_enabled(false);
  c.inc(1000);
  EXPECT_EQ(c.value(), 0);
}

// Exercised under the TSan tier-1 pass: concurrent increments from many
// threads must race-free sum exactly.
TEST_F(ObsTest, ConcurrentCounterIncrementsSumExactly) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  Counter& c = Registry::global().counter("test.concurrent");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<long long>(kThreads) * kIncrements);
}

TEST_F(ObsTest, ConcurrentRegistryLookupsAndHistogramObserves) {
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        Registry::global().counter("test.lookup").inc();
        Registry::global().histogram("test.hist").observe(0.5);
        Registry::global().gauge("test.gauge").set_max(static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(Registry::global().counter("test.lookup").value(), 8000);
  EXPECT_EQ(Registry::global().histogram("test.hist").count(), 8000);
  EXPECT_DOUBLE_EQ(Registry::global().gauge("test.gauge").value(), 999.0);
}

TEST_F(ObsTest, GaugeSetMaxIsAHighWaterMark) {
  Gauge& g = Registry::global().gauge("test.hwm");
  g.set_max(3.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST_F(ObsTest, HistogramTracksCountSumMinMax) {
  Histogram& h = Registry::global().histogram("test.stats");
  h.observe(0.001);
  h.observe(0.1);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 10.101);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST_F(ObsTest, MetricsJsonReparsesWithInTreeParser) {
  Registry::global().counter("test.json.counter").inc(5);
  Registry::global().gauge("test.json.gauge").set(2.5);
  Registry::global().histogram("test.json.hist").observe(0.25);

  const std::string text = json::dump(Registry::global().to_json(), 2);
  const json::Value round = json::parse(text);
  EXPECT_EQ(round.get_string("schema", ""), "klotski.metrics.v1");
  EXPECT_EQ(round.at("counters").at("test.json.counter").as_int(), 5);
  EXPECT_DOUBLE_EQ(round.at("gauges").at("test.json.gauge").as_double(), 2.5);
  const json::Value& hist = round.at("histograms").at("test.json.hist");
  EXPECT_EQ(hist.at("count").as_int(), 1);
  EXPECT_EQ(hist.at("buckets").as_array().size(),
            static_cast<std::size_t>(Histogram::kNumBuckets));
}

TEST_F(ObsTest, SpanNestingDepthsRecorded) {
  {
    Span outer("outer");
    {
      Span inner("inner");
      { Span innermost("innermost"); }
    }
    { Span sibling("sibling"); }
  }
  const std::vector<Tracer::Event> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 4u);
  // Spans close innermost-first.
  EXPECT_EQ(events[0].name, "innermost");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "sibling");
  EXPECT_EQ(events[2].depth, 1);
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].depth, 0);
  // Nesting also shows in the timestamps: outer starts no later than inner
  // and ends no earlier.
  EXPECT_LE(events[3].ts_us, events[1].ts_us);
  EXPECT_GE(events[3].ts_us + events[3].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST_F(ObsTest, DisabledSpanRecordsNothing) {
  set_trace_enabled(false);
  { Span span("invisible"); }
  EXPECT_EQ(Tracer::global().size(), 0u);
}

TEST_F(ObsTest, TraceJsonReparsesWithInTreeParser) {
  {
    Span outer("a");
    { Span inner("b"); }
  }
  const std::string text = json::dump(Tracer::global().to_json(), 2);
  const json::Value round = json::parse(text);
  EXPECT_EQ(round.get_string("displayTimeUnit", ""), "ms");
  const json::Array& events = round.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const json::Value& event : events) {
    EXPECT_EQ(event.get_string("ph", ""), "X");
    EXPECT_GE(event.at("dur").as_int(), 0);
    EXPECT_GE(event.at("args").at("depth").as_int(), 0);
  }
}

TEST_F(ObsTest, SpansFromMultipleThreadsGetDistinctTids) {
  std::thread a([] { Span span("thread-a"); });
  std::thread b([] { Span span("thread-b"); });
  a.join();
  b.join();
  const std::vector<Tracer::Event> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

}  // namespace
}  // namespace klotski::obs
