#include <gtest/gtest.h>

#include <unordered_set>

#include "klotski/util/hash.h"

namespace klotski::util {
namespace {

TEST(Hash, Mix64ChangesEveryInput) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second) << "collision at " << i;
  }
}

TEST(Hash, HashSpanOrderSensitive) {
  const std::int32_t a[] = {1, 2, 3};
  const std::int32_t b[] = {3, 2, 1};
  EXPECT_NE(hash_span(a, 3), hash_span(b, 3));
}

TEST(Hash, HashSpanLengthSensitive) {
  const std::int32_t a[] = {1, 2, 3, 0};
  EXPECT_NE(hash_span(a, 3), hash_span(a, 4));
}

TEST(Hash, VectorHashEqualVectorsEqualHashes) {
  VectorHash<std::int32_t> h;
  const std::vector<std::int32_t> a = {5, 0, 7};
  const std::vector<std::int32_t> b = {5, 0, 7};
  EXPECT_EQ(h(a), h(b));
}

TEST(Hash, VectorHashSpreadsSmallCounts) {
  // The sat cache keys on small count vectors; near-identical keys must not
  // collide systematically.
  VectorHash<std::int32_t> h;
  std::unordered_set<std::size_t> hashes;
  int collisions = 0;
  for (std::int32_t i = 0; i < 50; ++i) {
    for (std::int32_t j = 0; j < 50; ++j) {
      if (!hashes.insert(h({i, j})).second) ++collisions;
    }
  }
  EXPECT_LE(collisions, 2);
}

TEST(Hash, PairHashDistinguishesOrder) {
  PairHash h;
  EXPECT_NE(h(std::make_pair(1, 2)), h(std::make_pair(2, 1)));
}

}  // namespace
}  // namespace klotski::util
