#include "klotski/util/thread_budget.h"

#include <gtest/gtest.h>

namespace klotski::util {
namespace {

TEST(ThreadBudget, SingleOuterGetsWholeInnerBudget) {
  const ThreadBudget b = split_thread_budget(1, 4);
  EXPECT_EQ(b.outer, 1);
  EXPECT_EQ(b.inner, 4);
}

TEST(ThreadBudget, InnerBudgetDividesAcrossOuter) {
  EXPECT_EQ(split_thread_budget(2, 8).inner, 4);
  EXPECT_EQ(split_thread_budget(3, 8).inner, 2);  // floor division
  EXPECT_EQ(split_thread_budget(4, 8).inner, 2);
  EXPECT_EQ(split_thread_budget(8, 8).inner, 1);
}

TEST(ThreadBudget, InnerNeverDropsBelowOne) {
  EXPECT_EQ(split_thread_budget(8, 1).inner, 1);
  EXPECT_EQ(split_thread_budget(16, 4).inner, 1);
}

TEST(ThreadBudget, NonPositiveOuterClampsToOne) {
  EXPECT_EQ(split_thread_budget(0, 6).outer, 1);
  EXPECT_EQ(split_thread_budget(-3, 6).outer, 1);
  EXPECT_EQ(split_thread_budget(0, 6).inner, 6);
}

TEST(ThreadBudget, MaxOuterCapsThePool) {
  // The chaos-sweep pattern: never spawn more workers than there are seeds.
  const ThreadBudget b = split_thread_budget(16, 1, /*max_outer=*/5);
  EXPECT_EQ(b.outer, 5);
  EXPECT_EQ(b.inner, 1);
  EXPECT_EQ(split_thread_budget(3, 1, 5).outer, 3);
  EXPECT_EQ(split_thread_budget(0, 1, 5).outer, 1);
}

// Regression: the shared helper must reproduce the splits the tools
// computed locally before it existed (max(1, router / threads) for the
// planner, clamp(threads, 1, seeds) for the chaos sweep pool).
TEST(ThreadBudget, MatchesHistoricalToolBehaviour) {
  const int old_style[][3] = {
      // {threads, router_threads, expected per-worker router threads}
      {1, 1, 1}, {1, 8, 8}, {2, 8, 4}, {4, 8, 2},
      {4, 4, 1}, {6, 4, 1}, {4, 6, 1}, {3, 7, 2},
  };
  for (const auto& row : old_style) {
    EXPECT_EQ(split_thread_budget(row[0], row[1]).inner, row[2])
        << "threads=" << row[0] << " router=" << row[1];
  }
}

TEST(ThreadBudget, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

}  // namespace
}  // namespace klotski::util
