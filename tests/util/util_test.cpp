#include <gtest/gtest.h>

#include <thread>

#include "klotski/util/logging.h"
#include "klotski/util/rng.h"
#include "klotski/util/string_util.h"
#include "klotski/util/timer.h"

namespace klotski::util {
namespace {

// ---------------------------------------------------------------------------
// string_util

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitSingleToken) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StringUtil, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"only"}, "-"), "only");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
}

TEST(StringUtil, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(0.1239, 2), "0.12");
  EXPECT_EQ(format_double(-0.0), "0");
}

TEST(StringUtil, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

// ---------------------------------------------------------------------------
// rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(99);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.index(10), 10u);
  }
}

// ---------------------------------------------------------------------------
// timer

TEST(Timer, StopwatchAdvances) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(sw.elapsed_seconds(), 0.0);
}

TEST(Timer, UnlimitedDeadlineNeverExpires) {
  const Deadline d = Deadline::unlimited();
  EXPECT_FALSE(d.limited());
  EXPECT_FALSE(d.expired());
}

TEST(Timer, DeadlineExpires) {
  const Deadline d = Deadline::after_seconds(0.001);
  EXPECT_TRUE(d.limited());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
}

// ---------------------------------------------------------------------------
// logging

TEST(Logging, SinkReceivesMessagesAtOrAboveMinLevel) {
  std::vector<std::string> captured;
  LogSink previous = set_log_sink(
      [&](LogLevel, std::string_view message) {
        captured.emplace_back(message);
      });
  const LogLevel previous_level = min_log_level();
  set_min_log_level(LogLevel::kInfo);

  KLOTSKI_LOG_DEBUG() << "dropped";
  KLOTSKI_LOG_INFO() << "kept " << 42;
  KLOTSKI_LOG_ERROR() << "also kept";

  set_min_log_level(previous_level);
  set_log_sink(std::move(previous));

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "kept 42");
  EXPECT_EQ(captured[1], "also kept");
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace klotski::util
