#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "klotski/util/flags.h"

namespace klotski::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--theta=0.85", "--name=hello"});
  EXPECT_DOUBLE_EQ(f.get_double("theta", 0.0), 0.85);
  EXPECT_EQ(f.get_string("name", ""), "hello");
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--count", "42"});
  EXPECT_EQ(f.get_int("count", 0), 42);
}

TEST(Flags, BareBooleanFlag) {
  const Flags f = parse({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.has("verbose"));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(parse({"--x=YES"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=no"}).get_bool("x", true));
}

TEST(Flags, FallbacksWhenMissing) {
  const Flags f = parse({});
  EXPECT_EQ(f.get_int("absent", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("absent", 1.5), 1.5);
  EXPECT_EQ(f.get_string("absent", "d"), "d");
  EXPECT_FALSE(f.has("absent"));
}

TEST(Flags, PositionalArguments) {
  const Flags f = parse({"first", "--x=1", "second"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "first");
  EXPECT_EQ(f.positional()[1], "second");
}

TEST(Flags, BareFlagBeforeAnotherFlagDoesNotConsumeIt) {
  const Flags f = parse({"--a", "--b=2"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_EQ(f.get_int("b", 0), 2);
}

TEST(Flags, RejectsNonNumericInt) {
  const Flags f = parse({"--threads=abc"});
  try {
    f.get_int("threads", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error must name the flag, not just the value.
    EXPECT_NE(std::string(e.what()).find("--threads"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
}

TEST(Flags, RejectsTrailingGarbage) {
  EXPECT_THROW(parse({"--threads=4x"}).get_int("threads", 1),
               std::invalid_argument);
  EXPECT_THROW(parse({"--threads=4.5"}).get_int("threads", 1),
               std::invalid_argument);
  EXPECT_THROW(parse({"--theta=0.75oops"}).get_double("theta", 0.5),
               std::invalid_argument);
  EXPECT_THROW(parse({"--theta="}).get_double("theta", 0.5),
               std::invalid_argument);
}

TEST(Flags, AcceptsWellFormedNumbers) {
  EXPECT_EQ(parse({"--n=-12"}).get_int("n", 0), -12);
  EXPECT_EQ(parse({"--n=+12"}).get_int("n", 0), 12);
  EXPECT_DOUBLE_EQ(parse({"--d=2.5e-3"}).get_double("d", 0.0), 2.5e-3);
  EXPECT_DOUBLE_EQ(parse({"--d=-0.5"}).get_double("d", 0.0), -0.5);
}

TEST(Flags, BareBooleanIsNotANumber) {
  // `--threads` with no value stores "true": numeric reads must reject it
  // loudly instead of yielding 0.
  EXPECT_THROW(parse({"--threads"}).get_int("threads", 1),
               std::invalid_argument);
}

TEST(Flags, NamesInParseOrder) {
  const Flags f = parse({"--z=1", "--a=2"});
  ASSERT_EQ(f.names().size(), 2u);
  EXPECT_EQ(f.names()[0], "z");
  EXPECT_EQ(f.names()[1], "a");
}

}  // namespace
}  // namespace klotski::util
