#include <gtest/gtest.h>

#include "klotski/util/flags.h"

namespace klotski::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--theta=0.85", "--name=hello"});
  EXPECT_DOUBLE_EQ(f.get_double("theta", 0.0), 0.85);
  EXPECT_EQ(f.get_string("name", ""), "hello");
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--count", "42"});
  EXPECT_EQ(f.get_int("count", 0), 42);
}

TEST(Flags, BareBooleanFlag) {
  const Flags f = parse({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.has("verbose"));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(parse({"--x=YES"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=no"}).get_bool("x", true));
}

TEST(Flags, FallbacksWhenMissing) {
  const Flags f = parse({});
  EXPECT_EQ(f.get_int("absent", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("absent", 1.5), 1.5);
  EXPECT_EQ(f.get_string("absent", "d"), "d");
  EXPECT_FALSE(f.has("absent"));
}

TEST(Flags, PositionalArguments) {
  const Flags f = parse({"first", "--x=1", "second"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "first");
  EXPECT_EQ(f.positional()[1], "second");
}

TEST(Flags, BareFlagBeforeAnotherFlagDoesNotConsumeIt) {
  const Flags f = parse({"--a", "--b=2"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_EQ(f.get_int("b", 0), 2);
}

TEST(Flags, NamesInParseOrder) {
  const Flags f = parse({"--z=1", "--a=2"});
  ASSERT_EQ(f.names().size(), 2u);
  EXPECT_EQ(f.names()[0], "z");
  EXPECT_EQ(f.names()[1], "a");
}

}  // namespace
}  // namespace klotski::util
