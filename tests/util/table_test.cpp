#include <gtest/gtest.h>

#include <sstream>

#include "klotski/util/table.h"

namespace klotski::util {
namespace {

TEST(Table, AlignsColumnsToWidestCell) {
  Table t({"a", "long-header"});
  t.add_row({"wide-cell", "x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Every line has the same length in an aligned table.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << out;
  }
}

TEST(Table, TitlePrintedFirst) {
  Table t({"c"});
  t.set_title("My Title");
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().rfind("My Title\n", 0), 0u);
}

TEST(Table, RowAccessors) {
  Table t({"x", "y"});
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2"});
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0)[1], "2");
}

TEST(Table, HeaderRuleUsesDashes) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("|---|"), std::string::npos);
}

}  // namespace
}  // namespace klotski::util
