#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "klotski/util/arena.h"

namespace klotski::util {
namespace {

TEST(PodPool, PushIndexRoundTrip) {
  PodPool<std::int64_t> pool;
  for (std::int64_t i = 0; i < 100'000; ++i) {
    EXPECT_EQ(pool.push_back(i * 3), static_cast<std::size_t>(i));
  }
  EXPECT_EQ(pool.size(), 100'000u);
  for (std::int64_t i = 0; i < 100'000; ++i) {
    EXPECT_EQ(pool[static_cast<std::size_t>(i)], i * 3);
  }
}

TEST(PodPool, AddressesAreStableAcrossGrowth) {
  PodPool<double> pool;
  pool.push_back(42.0);
  const double* first = &pool[0];
  for (int i = 0; i < 200'000; ++i) pool.push_back(static_cast<double>(i));
  EXPECT_EQ(first, &pool[0]);
  EXPECT_EQ(*first, 42.0);
}

TEST(PodPool, TruncateFreesTailChunks) {
  PodPool<std::int32_t> pool;
  for (std::int32_t i = 0; i < 1 << 18; ++i) pool.push_back(i);
  const std::size_t full_bytes = pool.allocated_bytes();
  pool.truncate(100);
  EXPECT_EQ(pool.size(), 100u);
  EXPECT_LT(pool.allocated_bytes(), full_bytes / 4);
  EXPECT_EQ(pool[99], 99);
  // The pool keeps accepting pushes after a truncate.
  EXPECT_EQ(pool.push_back(7), 100u);
  EXPECT_EQ(pool[100], 7);
}

TEST(PodPool, ClearReleasesEverything) {
  PodPool<std::int32_t> pool;
  for (std::int32_t i = 0; i < 100'000; ++i) pool.push_back(i);
  pool.clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.allocated_bytes(), 0u);
}

TEST(StridedPool, RowsRoundTripAndStayStable) {
  StridedPool<std::int32_t> pool(3);
  std::vector<std::int32_t> row = {1, 2, 3};
  EXPECT_EQ(pool.push_row(row.data()), 0u);
  const std::int32_t* first = pool.row(0);
  for (std::int32_t i = 0; i < 50'000; ++i) {
    std::int32_t r[3] = {i, i + 1, i + 2};
    pool.push_row(r);
  }
  EXPECT_EQ(first, pool.row(0));
  EXPECT_EQ(first[0], 1);
  EXPECT_EQ(pool.row(50'000)[2], 50'001);
}

TEST(StridedPool, UninitRowIsWritable) {
  StridedPool<std::int32_t> pool(2);
  const std::size_t i = pool.push_row_uninit();
  pool.row(i)[0] = 5;
  pool.row(i)[1] = 6;
  EXPECT_EQ(pool.row(i)[0], 5);
  EXPECT_EQ(pool.row(i)[1], 6);
}

TEST(StridedPool, TruncateFreesTailChunks) {
  StridedPool<std::int32_t> pool(4);
  std::int32_t r[4] = {0, 0, 0, 0};
  for (int i = 0; i < 1 << 16; ++i) pool.push_row(r);
  const std::size_t full_bytes = pool.allocated_bytes();
  pool.truncate(10);
  EXPECT_EQ(pool.size(), 10u);
  EXPECT_LT(pool.allocated_bytes(), full_bytes / 4);
}

}  // namespace
}  // namespace klotski::util
