#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/baselines/janus_planner.h"
#include "klotski/baselines/mrc_planner.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"

namespace klotski::baselines {
namespace {

using klotski::testing::small_dmag_case;
using klotski::testing::small_hgrid_case;
using klotski::testing::small_ssw_case;

core::Plan run(migration::MigrationTask& task, const char* planner,
               core::PlannerOptions options = {}) {
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  return pipeline::make_planner(planner)->plan(task, *bundle.checker,
                                               options);
}

// ---------------------------------------------------------------------------
// Structure detection

TEST(StructureDetection, HgridAndSswDoNotChangeStructure) {
  migration::MigrationCase hgrid = small_hgrid_case();
  EXPECT_FALSE(task_changes_topology_structure(hgrid.task));
  migration::MigrationCase ssw = small_ssw_case();
  EXPECT_FALSE(task_changes_topology_structure(ssw.task));
}

TEST(StructureDetection, DmagAddsTheMaRole) {
  migration::MigrationCase dmag = small_dmag_case();
  EXPECT_TRUE(task_changes_topology_structure(dmag.task));
}

TEST(StructureDetection, LeavesTopologyInOriginalState) {
  migration::MigrationCase dmag = small_dmag_case();
  task_changes_topology_structure(dmag.task);
  EXPECT_TRUE(dmag.task.original_state ==
              topo::TopologyState::capture(*dmag.task.topo));
}

// ---------------------------------------------------------------------------
// MRC

TEST(Mrc, FindsAFeasibleButSuboptimalPlan) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan mrc = run(mig.task, "mrc");
  const core::Plan optimal = run(mig.task, "astar");
  ASSERT_TRUE(mrc.found) << mrc.failure;
  ASSERT_TRUE(optimal.found);
  EXPECT_GE(mrc.cost, optimal.cost);

  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  const pipeline::AuditReport report =
      pipeline::audit_plan(mig.task, *bundle.checker, mrc,
                           /*check_every_action=*/true);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(Mrc, RejectsDmag) {
  migration::MigrationCase mig = small_dmag_case();
  const core::Plan plan = run(mig.task, "mrc");
  EXPECT_FALSE(plan.found);
  EXPECT_NE(plan.failure.find("change the topology"), std::string::npos);
}

TEST(Mrc, ExecutesEveryBlockExactlyOnce) {
  migration::MigrationCase mig = small_ssw_case();
  const core::Plan plan = run(mig.task, "mrc");
  ASSERT_TRUE(plan.found);
  EXPECT_EQ(plan.actions.size(),
            static_cast<std::size_t>(mig.task.total_actions()));
}

TEST(Mrc, DoesManyMoreChecksThanAStar) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan mrc = run(mig.task, "mrc");
  const core::Plan astar = run(mig.task, "astar");
  ASSERT_TRUE(mrc.found);
  ASSERT_TRUE(astar.found);
  EXPECT_GT(mrc.stats.sat_checks, astar.stats.sat_checks);
}

TEST(Mrc, HonorsDeadline) {
  migration::MigrationCase mig = small_hgrid_case();
  core::PlannerOptions options;
  options.deadline_seconds = 1e-9;
  const core::Plan plan = run(mig.task, "mrc", options);
  EXPECT_FALSE(plan.found);
  EXPECT_EQ(plan.failure, "timeout");
}

// ---------------------------------------------------------------------------
// Janus

TEST(Janus, OptimalOnStructurePreservingTasks) {
  for (auto* build : {&small_hgrid_case, &small_ssw_case}) {
    migration::MigrationCase mig = (*build)();
    const core::Plan janus = run(mig.task, "janus");
    const core::Plan optimal = run(mig.task, "astar");
    ASSERT_TRUE(janus.found) << janus.failure;
    EXPECT_DOUBLE_EQ(janus.cost, optimal.cost);
  }
}

TEST(Janus, DegradesOnIrregularFlatFabrics) {
  // A seeded flat fabric has a near-singleton symmetry partition, so
  // Janus's superblocks collapse to per-block rollout steps while Klotski
  // still batches by locality — the plan cost visibly degrades.
  migration::MigrationCase mig = klotski::testing::small_flat_case();
  const core::Plan janus = run(mig.task, "janus");
  const core::Plan optimal = run(mig.task, "astar");
  ASSERT_TRUE(janus.found) << janus.failure;
  ASSERT_TRUE(optimal.found);
  EXPECT_GT(janus.cost, optimal.cost);
}

TEST(Janus, OptimalOnVertexTransitiveReconfMesh) {
  // The circulant mesh is vertex-transitive (one symmetry class), so
  // Janus's batching assumption holds and it matches the optimum — the
  // contrast case to the flat fabric above.
  migration::MigrationCase mig = klotski::testing::small_reconf_case();
  const core::Plan janus = run(mig.task, "janus");
  const core::Plan optimal = run(mig.task, "astar");
  ASSERT_TRUE(janus.found) << janus.failure;
  ASSERT_TRUE(optimal.found);
  EXPECT_DOUBLE_EQ(janus.cost, optimal.cost);
}

TEST(Janus, RejectsDmag) {
  migration::MigrationCase mig = small_dmag_case();
  const core::Plan plan = run(mig.task, "janus");
  EXPECT_FALSE(plan.found);
  EXPECT_NE(plan.failure.find("symmetry"), std::string::npos);
}

TEST(Janus, NeverUsesTheCache) {
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan plan = run(mig.task, "janus");
  ASSERT_TRUE(plan.found);
  EXPECT_EQ(plan.stats.cache_hits, 0);
}

TEST(Janus, ChecksMoreThanDp) {
  // Without the ordering-agnostic representation Janus re-validates per
  // incoming arc, so its check count strictly dominates the DP planner's.
  migration::MigrationCase mig = small_hgrid_case();
  const core::Plan janus = run(mig.task, "janus");
  const core::Plan dp = run(mig.task, "dp");
  ASSERT_TRUE(janus.found);
  ASSERT_TRUE(dp.found);
  EXPECT_GT(janus.stats.sat_checks, dp.stats.sat_checks);
}

TEST(Janus, PlanSurvivesAudit) {
  migration::MigrationCase mig = small_ssw_case();
  const core::Plan plan = run(mig.task, "janus");
  ASSERT_TRUE(plan.found);
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  EXPECT_TRUE(pipeline::audit_plan(mig.task, *bundle.checker, plan).ok);
}

// ---------------------------------------------------------------------------
// Cross-planner alpha handling in baselines

TEST(Baselines, MrcCostAccountingUsesAlpha) {
  migration::MigrationCase mig = small_hgrid_case();
  core::PlannerOptions options;
  options.alpha = 1.0;
  const core::Plan plan = run(mig.task, "mrc", options);
  ASSERT_TRUE(plan.found);
  EXPECT_DOUBLE_EQ(plan.cost, plan.recompute_cost(1.0));
  EXPECT_DOUBLE_EQ(plan.cost, mig.task.total_actions());
}

TEST(Baselines, JanusOptimalUnderAlpha) {
  migration::MigrationCase mig = small_hgrid_case();
  core::PlannerOptions options;
  options.alpha = 0.5;
  const core::Plan janus = run(mig.task, "janus", options);
  const core::Plan astar = run(mig.task, "astar", options);
  ASSERT_TRUE(janus.found);
  ASSERT_TRUE(astar.found);
  EXPECT_DOUBLE_EQ(janus.cost, astar.cost);
}

}  // namespace
}  // namespace klotski::baselines
