// Tests for the plan service: single-flight cache semantics, LRU eviction
// and spill, admission control, the async job manager, and a full
// socket-server round trip including the served-vs-pipeline byte-identity
// contract and graceful drain.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "klotski/json/canonical.h"
#include "klotski/json/json.h"
#include "klotski/npd/npd_io.h"
#include "klotski/obs/metrics.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/serve/client.h"
#include "klotski/serve/job_manager.h"
#include "klotski/serve/plan_cache.h"
#include "klotski/serve/server.h"
#include "klotski/serve/service.h"
#include "klotski/topo/presets.h"

namespace klotski::serve {
namespace {

json::Value preset_npd_json() {
  npd::NpdDocument doc;
  doc.name = "serve-test-a";
  doc.region = topo::preset_params(topo::PresetId::kA,
                                   topo::PresetScale::kReduced);
  doc.migration = npd::MigrationKind::kHgridV1ToV2;
  doc.hgrid = pipeline::hgrid_params_for(topo::PresetId::kA,
                                         topo::PresetScale::kReduced);
  doc.ssw = pipeline::ssw_params_for(topo::PresetScale::kReduced);
  doc.dmag = pipeline::dmag_params_for(topo::PresetScale::kReduced);
  return npd::to_json(doc);
}

Request plan_request(double theta = 0.75, const std::string& id = "") {
  Request req;
  req.id = id;
  req.method = "plan";
  json::Object params;
  params["npd"] = preset_npd_json();
  params["theta"] = theta;
  req.params = json::Value(std::move(params));
  return req;
}

/// RAII metrics enable + reset, so counter assertions see only this test.
class MetricsOn {
 public:
  MetricsOn() {
    obs::set_metrics_enabled(true);
    obs::Registry::global().reset_values();
  }
  ~MetricsOn() { obs::set_metrics_enabled(false); }
};

PlanService::Options service_options() {
  PlanService::Options options;
  options.cache.capacity = 8;
  return options;
}

// --- single-flight -------------------------------------------------------

TEST(PlanServiceSingleFlight, NConcurrentIdenticalRequestsOnePlannerRun) {
  MetricsOn metrics;
  PlanService service(service_options());
  std::atomic<bool> stop{false};

  constexpr int kThreads = 8;
  std::vector<Response> responses(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      responses[static_cast<std::size_t>(i)] =
          service.execute(plan_request(), stop);
    });
  }
  for (std::thread& t : threads) t.join();

  // Exactly one planner invocation regardless of interleaving: one caller
  // owned the flight, the rest either waited on it or hit the completed
  // cache.
  EXPECT_EQ(obs::Registry::global().counter("serve.plan_runs").value(), 1);

  int cold = 0;
  std::set<std::string> distinct_texts;
  for (const Response& resp : responses) {
    ASSERT_TRUE(resp.ok()) << resp.error;
    if (!resp.cached) ++cold;
    distinct_texts.insert(json::dump(resp.result.at("plan"), 2));
  }
  EXPECT_EQ(cold, 1);
  // All N responses carry byte-identical plan documents.
  EXPECT_EQ(distinct_texts.size(), 1u);
}

TEST(PlanServiceSingleFlight, ServedBytesMatchThePipeline) {
  PlanService service(service_options());
  std::atomic<bool> stop{false};
  const Response resp = service.execute(plan_request(), stop);
  ASSERT_TRUE(resp.ok()) << resp.error;

  // The reference run, exactly as klotski_plan performs it.
  migration::MigrationCase mig =
      npd::build_case(npd::from_json(preset_npd_json()));
  pipeline::CheckerConfig config;
  config.demand.max_utilization = 0.75;
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, config);
  auto planner = pipeline::make_planner("astar");
  const core::Plan plan =
      planner->plan(mig.task, *bundle.checker, core::PlannerOptions{});
  ASSERT_TRUE(plan.found);

  json::Value expected = pipeline::plan_to_json(mig.task, plan);
  json::Value served = resp.result.at("plan");
  // wall_seconds is the one genuinely nondeterministic field (real wall
  // clock); zero it on both sides, then require byte equality.
  expected.as_object().find("stats")->as_object()["wall_seconds"] = 0.0;
  served.as_object().find("stats")->as_object()["wall_seconds"] = 0.0;
  EXPECT_EQ(json::dump(served, 2), json::dump(expected, 2));
}

TEST(PlanServiceSingleFlight, ErrorsAreNotCached) {
  PlanService service(service_options());
  std::atomic<bool> stop{false};
  Request req = plan_request();
  req.params.as_object()["planner"] = "no-such-planner";
  const Response first = service.execute(req, stop);
  EXPECT_EQ(first.status, "error");
  const Response second = service.execute(req, stop);
  EXPECT_EQ(second.status, "error");
  // Two misses, no hits: the failure never entered the cache.
  EXPECT_EQ(service.cache().stats().misses, 2);
  EXPECT_EQ(service.cache().stats().hits, 0);
}

TEST(PlanServiceSingleFlight, CacheKeyIgnoresNpdSpelling) {
  // Same region, different document spelling (key order): same cache key.
  json::Object a;
  a["npd"] = preset_npd_json();
  a["theta"] = 0.75;
  json::Object b;
  b["theta"] = 0.75;
  b["npd"] = preset_npd_json();
  EXPECT_EQ(json::content_hash(plan_cache_key_doc(json::Value(std::move(a)))),
            json::content_hash(plan_cache_key_doc(json::Value(std::move(b)))));

  // A knob change is a different key.
  json::Object c;
  c["npd"] = preset_npd_json();
  c["theta"] = 0.7;
  EXPECT_NE(
      json::content_hash(plan_cache_key_doc(plan_request().params)),
      json::content_hash(plan_cache_key_doc(json::Value(std::move(c)))));
}

// --- plan cache ----------------------------------------------------------

TEST(PlanCacheTest, WaiterReceivesOwnersBytes) {
  PlanCache cache(PlanCache::Options{4, ""});
  PlanCache::Lookup owner = cache.acquire("k");
  ASSERT_EQ(owner.outcome, PlanCache::Outcome::kOwner);

  std::vector<std::thread> waiters;
  std::vector<std::string> received(3);
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&, i] {
      PlanCache::Lookup lookup = cache.acquire("k");
      if (lookup.outcome == PlanCache::Outcome::kWait) {
        received[static_cast<std::size_t>(i)] = cache.wait(lookup.entry);
      } else {
        received[static_cast<std::size_t>(i)] = lookup.text;  // late: hit
      }
    });
  }
  // Wait until all three attached (coalesced) or resolved as hits.
  while (cache.stats().coalesced + cache.stats().hits < 3) {
    std::this_thread::yield();
  }
  cache.fulfill(owner.entry, "bytes");
  for (std::thread& t : waiters) t.join();
  for (const std::string& text : received) EXPECT_EQ(text, "bytes");
  EXPECT_EQ(cache.acquire("k").outcome, PlanCache::Outcome::kHit);
}

TEST(PlanCacheTest, FailedFlightPropagatesAndRecomputes) {
  PlanCache cache(PlanCache::Options{4, ""});
  PlanCache::Lookup owner = cache.acquire("k");
  ASSERT_EQ(owner.outcome, PlanCache::Outcome::kOwner);
  std::string error;
  std::thread waiter([&] {
    PlanCache::Lookup lookup = cache.acquire("k");
    if (lookup.outcome != PlanCache::Outcome::kWait) return;
    try {
      cache.wait(lookup.entry);
    } catch (const std::exception& e) {
      error = e.what();
    }
  });
  while (cache.stats().coalesced < 1) std::this_thread::yield();
  cache.fail(owner.entry, "boom");
  waiter.join();
  EXPECT_EQ(error, "boom");
  // The failure was not cached; the next caller recomputes.
  EXPECT_EQ(cache.acquire("k").outcome, PlanCache::Outcome::kOwner);
}

TEST(PlanCacheTest, LruEvictionRespectsTouchOrder) {
  // shards = 1: global LRU order is only defined within one shard.
  PlanCache cache(PlanCache::Options{2, "", 1});
  auto put = [&](const std::string& key) {
    PlanCache::Lookup lookup = cache.acquire(key);
    ASSERT_EQ(lookup.outcome, PlanCache::Outcome::kOwner) << key;
    cache.fulfill(lookup.entry, "v:" + key);
  };
  put("a");
  put("b");
  EXPECT_EQ(cache.acquire("a").outcome, PlanCache::Outcome::kHit);  // touch a
  put("c");  // capacity 2: evicts b (least recently used), not a
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.acquire("a").outcome, PlanCache::Outcome::kHit);
  EXPECT_EQ(cache.acquire("c").outcome, PlanCache::Outcome::kHit);
  EXPECT_EQ(cache.acquire("b").outcome, PlanCache::Outcome::kOwner);
}

TEST(PlanCacheTest, EvictedEntriesServeFromSpill) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("klotski-spill-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  {
    PlanCache cache(PlanCache::Options{1, dir, 1});
    auto put = [&](const std::string& key) {
      PlanCache::Lookup lookup = cache.acquire(key);
      ASSERT_EQ(lookup.outcome, PlanCache::Outcome::kOwner) << key;
      cache.fulfill(lookup.entry, "v:" + key);
    };
    put("a");
    put("b");  // evicts a from memory; a's bytes remain on disk
    EXPECT_EQ(cache.stats().evictions, 1);
    PlanCache::Lookup again = cache.acquire("a");
    EXPECT_EQ(again.outcome, PlanCache::Outcome::kHit);
    EXPECT_EQ(again.text, "v:a");
    EXPECT_EQ(cache.stats().spill_hits, 1);
  }
  {
    // A fresh cache over the same spill dir is warm: content-addressed
    // keys are stable across daemon generations.
    PlanCache cache(PlanCache::Options{4, dir});
    PlanCache::Lookup lookup = cache.acquire("b");
    EXPECT_EQ(lookup.outcome, PlanCache::Outcome::kHit);
    EXPECT_EQ(lookup.text, "v:b");
  }
  std::filesystem::remove_all(dir);
}

// --- job manager ---------------------------------------------------------

/// A job body that blocks until released, for queue-shape tests.
struct Blocker {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;

  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
  JobManager::Work work() {
    return [this](const std::atomic<bool>&) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return released; });
      return Response::make_ok("", json::Value(json::Object{}));
    };
  }
};

TEST(JobManagerTest, FullQueueRejectsWithOverloaded) {
  JobManager jobs(JobManager::Options{1, 1, 16});
  Blocker blocker;
  const JobManager::Submitted running =
      jobs.submit("plan", blocker.work());
  ASSERT_TRUE(running.ok());
  // Wait until the worker picked it up so the queue is truly empty.
  while (jobs.queue_depth() > 0) std::this_thread::yield();

  const JobManager::Submitted queued = jobs.submit("plan", blocker.work());
  ASSERT_TRUE(queued.ok());
  const JobManager::Submitted rejected =
      jobs.submit("plan", blocker.work());
  EXPECT_EQ(rejected.rejected, "overloaded");
  EXPECT_TRUE(rejected.job_id.empty());
  EXPECT_EQ(jobs.stats().rejected_overloaded, 1);

  blocker.release();
  EXPECT_EQ(jobs.wait(running.job_id)->state, JobManager::State::kDone);
  EXPECT_EQ(jobs.wait(queued.job_id)->state, JobManager::State::kDone);
}

TEST(JobManagerTest, PollWaitCancelLifecycle) {
  JobManager jobs(JobManager::Options{1, 8, 16});
  Blocker blocker;
  const JobManager::Submitted running =
      jobs.submit("plan", blocker.work());
  while (jobs.queue_depth() > 0) std::this_thread::yield();
  const JobManager::Submitted queued = jobs.submit("plan", blocker.work());

  EXPECT_FALSE(jobs.poll("j-999").has_value());
  EXPECT_EQ(jobs.poll(queued.job_id)->state, JobManager::State::kQueued);
  EXPECT_FALSE(jobs.wait(queued.job_id, 10).has_value());  // times out

  // A queued job cancels outright.
  EXPECT_EQ(jobs.cancel(queued.job_id), JobManager::State::kQueued);
  EXPECT_EQ(jobs.poll(queued.job_id)->state, JobManager::State::kCancelled);

  // A running job gets its stop flag; it finishes normally here.
  EXPECT_EQ(jobs.cancel(running.job_id), JobManager::State::kRunning);
  blocker.release();
  EXPECT_EQ(jobs.wait(running.job_id)->state, JobManager::State::kDone);

  jobs.forget(running.job_id);
  EXPECT_FALSE(jobs.poll(running.job_id).has_value());
}

TEST(JobManagerTest, ExceptionsBecomeErrorResponses) {
  JobManager jobs(JobManager::Options{1, 8, 16});
  const JobManager::Submitted submitted = jobs.submit(
      "plan", [](const std::atomic<bool>&) -> Response {
        throw std::runtime_error("kaput");
      });
  ASSERT_TRUE(submitted.ok());
  const JobManager::JobView view = *jobs.wait(submitted.job_id);
  EXPECT_EQ(view.state, JobManager::State::kError);
  EXPECT_EQ(view.result.status, "error");
  EXPECT_EQ(view.result.error, "kaput");
}

TEST(JobManagerTest, DrainFinishesAdmittedWorkThenRejects) {
  JobManager jobs(JobManager::Options{2, 8, 16});
  std::atomic<int> completed{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(jobs.submit("plan", [&](const std::atomic<bool>&) {
                      completed.fetch_add(1);
                      return Response::make_ok("",
                                               json::Value(json::Object{}));
                    })
                    .ok());
  }
  jobs.drain();
  EXPECT_EQ(completed.load(), 4);
  EXPECT_EQ(jobs.submit("plan",
                        [](const std::atomic<bool>&) {
                          return Response::make_ok(
                              "", json::Value(json::Object{}));
                        })
                .rejected,
            "draining");
}

// --- two-class priority dispatch -----------------------------------------

/// Appends each job's tag to a shared completion log as it runs; the log
/// order IS the dispatch order (single worker).
struct CompletionLog {
  std::mutex mu;
  std::vector<std::string> order;
  JobManager::Work work(const std::string& tag) {
    return [this, tag](const std::atomic<bool>&) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
      return Response::make_ok("", json::Value(json::Object{}));
    };
  }
};

TEST(JobManagerTest, MethodClassification) {
  EXPECT_EQ(JobManager::priority_for("plan"),
            JobManager::Priority::kInteractive);
  EXPECT_EQ(JobManager::priority_for("audit"),
            JobManager::Priority::kInteractive);
  EXPECT_EQ(JobManager::priority_for("whatif"),
            JobManager::Priority::kBatch);
  EXPECT_EQ(JobManager::priority_for("chaos"), JobManager::Priority::kBatch);
  EXPECT_EQ(JobManager::priority_for("replan"),
            JobManager::Priority::kBatch);
  // Unknown methods answer fast (their result is an error anyway).
  EXPECT_EQ(JobManager::priority_for("no-such-method"),
            JobManager::Priority::kInteractive);
}

TEST(JobManagerTest, InteractiveDispatchesAheadOfEarlierBatchWork) {
  // One worker, saturated: a blocker pins the worker while the queues
  // fill, so dispatch order is fully determined by the two-class policy.
  JobManager jobs(JobManager::Options{1, 32, 16});
  Blocker gate;
  CompletionLog log;
  ASSERT_TRUE(jobs.submit("plan", gate.work()).ok());
  while (jobs.queue_depth() > 0) std::this_thread::yield();

  std::vector<std::string> ids;
  ids.push_back(jobs.submit("whatif", log.work("b1")).job_id);
  ids.push_back(jobs.submit("chaos", log.work("b2")).job_id);
  ids.push_back(jobs.submit("plan", log.work("i1")).job_id);
  ids.push_back(jobs.submit("audit", log.work("i2")).job_id);

  const JobManager::Stats queued_stats = jobs.stats();
  EXPECT_EQ(queued_stats.queued_interactive, 2u);
  EXPECT_EQ(queued_stats.queued_batch, 2u);

  gate.release();
  for (const std::string& id : ids) {
    EXPECT_EQ(jobs.wait(id)->state, JobManager::State::kDone);
  }
  // Both interactive jobs ran before either batch job, despite the batch
  // jobs being submitted first.
  EXPECT_EQ(log.order,
            (std::vector<std::string>{"i1", "i2", "b1", "b2"}));
}

TEST(JobManagerTest, StarvationBoundGuaranteesBatchProgress) {
  // starvation_bound = 1: at most one consecutive interactive dispatch
  // while batch work waits, so the batch job runs second, not last.
  JobManager jobs(JobManager::Options{1, 32, 16, 1});
  Blocker gate;
  CompletionLog log;
  ASSERT_TRUE(jobs.submit("plan", gate.work()).ok());
  while (jobs.queue_depth() > 0) std::this_thread::yield();

  std::vector<std::string> ids;
  ids.push_back(jobs.submit("whatif", log.work("b")).job_id);
  for (int i = 1; i <= 4; ++i) {
    ids.push_back(
        jobs.submit("plan", log.work("i" + std::to_string(i))).job_id);
  }
  gate.release();
  for (const std::string& id : ids) {
    EXPECT_EQ(jobs.wait(id)->state, JobManager::State::kDone);
  }
  EXPECT_EQ(log.order,
            (std::vector<std::string>{"i1", "b", "i2", "i3", "i4"}));
  EXPECT_GE(jobs.stats().starvation_promotions, 1);
}

TEST(JobManagerTest, QueuedBatchJobsReportJobsOrderedAhead) {
  JobManager jobs(JobManager::Options{1, 32, 16});
  Blocker gate;
  ASSERT_TRUE(jobs.submit("plan", gate.work()).ok());
  while (jobs.queue_depth() > 0) std::this_thread::yield();

  const std::string b1 = jobs.submit("whatif", gate.work()).job_id;
  const std::string i1 = jobs.submit("plan", gate.work()).job_id;
  const std::string b2 = jobs.submit("replan", gate.work()).job_id;

  // The interactive job is next in line; each batch job counts every
  // queued interactive job plus earlier batch work.
  EXPECT_EQ(jobs.poll(i1)->queued_behind, 0u);
  EXPECT_EQ(jobs.poll(i1)->priority, JobManager::Priority::kInteractive);
  EXPECT_EQ(jobs.poll(b1)->queued_behind, 1u);
  EXPECT_EQ(jobs.poll(b1)->priority, JobManager::Priority::kBatch);
  EXPECT_EQ(jobs.poll(b2)->queued_behind, 2u);

  gate.release();
  for (const std::string& id : {b1, i1, b2}) {
    const JobManager::JobView view = *jobs.wait(id);
    EXPECT_EQ(view.state, JobManager::State::kDone);
    EXPECT_EQ(view.queued_behind, 0u);  // meaningful only while queued
  }
}

// --- whatif service method -----------------------------------------------

TEST(PlanServiceWhatIf, SecondIdenticalRequestIsServedFromCache) {
  MetricsOn metrics;
  PlanService service(service_options());
  std::atomic<bool> stop{false};

  const Response planned = service.execute(plan_request(), stop);
  ASSERT_TRUE(planned.ok()) << planned.error;

  Request req;
  req.method = "whatif";
  json::Object params;
  params["npd"] = preset_npd_json();
  params["plan"] = planned.result.at("plan");
  params["trajectories"] = 10;
  req.params = json::Value(std::move(params));

  const Response first = service.execute(req, stop);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_FALSE(first.cached);
  const Response second = service.execute(req, stop);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.cached);

  // One sweep execution; the repeat was answered from the shared cache
  // with byte-identical report text, and no planner run was charged.
  EXPECT_EQ(obs::Registry::global().counter("serve.whatif_runs").value(), 1);
  EXPECT_EQ(obs::Registry::global().counter("serve.plan_runs").value(), 1);
  EXPECT_EQ(json::dump(first.result.at("report"), 2),
            json::dump(second.result.at("report"), 2));
  EXPECT_EQ(first.result.at("report").get_string("schema", ""),
            "klotski.whatif.v1");
  EXPECT_EQ(first.result.at("report").get_int("trajectories_run", -1), 10);
}

TEST(PlanServiceWhatIf, KeyNamespaceIsDisjointFromPlanKeys) {
  json::Object params;
  params["npd"] = preset_npd_json();
  params["plan"] = json::Value(json::Object{});
  const json::Value doc(std::move(params));
  // Same params document, different method → the schema field keeps the
  // content hashes apart even inside the shared PlanCache.
  EXPECT_NE(json::content_hash(whatif_cache_key_doc(doc)),
            json::content_hash(plan_cache_key_doc(doc)));
}

TEST(PlanServiceWhatIf, MalformedParamsBecomeErrorResponses) {
  PlanService service(service_options());
  std::atomic<bool> stop{false};
  Request req;
  req.method = "whatif";
  json::Object params;
  params["npd"] = preset_npd_json();
  // No plan document at all.
  req.params = json::Value(std::move(params));
  const Response resp = service.execute(req, stop);
  EXPECT_EQ(resp.status, "error");
}

// --- server round trip ---------------------------------------------------

class ServerRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    // sun_path is tiny; keep the socket path short and unique.
    socket_path_ = "/tmp/kserve-" + std::to_string(::getpid()) + ".sock";
    Server::Options options;
    options.socket_path = socket_path_;
    options.jobs.workers = 2;
    options.jobs.max_queue = 8;
    options.service.cache.capacity = 8;
    server_ = std::make_unique<Server>(options);
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    server_->request_drain();
    if (thread_.joinable()) thread_.join();
    server_.reset();
    std::remove(socket_path_.c_str());
  }

  std::string socket_path_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST_F(ServerRoundTrip, PingStatsAndSyncPlan) {
  Client client(socket_path_);
  const Response pong = client.call("ping", json::Value(json::Object{}));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.result.get_string("schema", ""), "klotski.serve.v1");
  EXPECT_FALSE(pong.result.get_bool("draining", true));

  const Response cold = client.call(plan_request(0.75, "r1"));
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_EQ(cold.id, "r1");
  EXPECT_FALSE(cold.cached);

  const Response hit = client.call(plan_request(0.75, "r2"));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cached);
  // Byte-identical across cold and cache hit by construction.
  EXPECT_EQ(json::dump(hit.result.at("plan"), 2),
            json::dump(cold.result.at("plan"), 2));

  const Response stats = client.call("stats", json::Value(json::Object{}));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.result.at("cache").get_int("hits", -1), 1);
  EXPECT_EQ(stats.result.at("cache").get_int("misses", -1), 1);
  EXPECT_EQ(stats.result.at("jobs").get_int("completed", -1), 2);
}

TEST_F(ServerRoundTrip, ConcurrentClientsGetIdenticalBytes) {
  constexpr int kClients = 4;
  std::vector<std::string> texts(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client(socket_path_);
      const Response resp = client.call(plan_request());
      if (resp.ok()) {
        texts[static_cast<std::size_t>(i)] =
            json::dump(resp.result.at("plan"), 2);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kClients; ++i) {
    ASSERT_FALSE(texts[static_cast<std::size_t>(i)].empty());
    EXPECT_EQ(texts[static_cast<std::size_t>(i)], texts[0]);
  }
}

TEST_F(ServerRoundTrip, AsyncSubmitPollWait) {
  Client client(socket_path_);
  json::Object submit;
  submit["method"] = "plan";
  submit["params"] = plan_request(0.74).params;
  const Response submitted =
      client.call("submit", json::Value(std::move(submit)), "s1");
  ASSERT_TRUE(submitted.ok()) << submitted.error;
  const std::string job_id = submitted.result.get_string("job_id", "");
  ASSERT_FALSE(job_id.empty());

  json::Object wait;
  wait["job_id"] = job_id;
  wait["timeout_ms"] = 30'000;
  const Response done = client.call("wait", json::Value(std::move(wait)));
  ASSERT_TRUE(done.ok()) << done.error;
  EXPECT_EQ(done.result.get_string("state", ""), "done");
  const json::Value& inner = done.result.at("response");
  EXPECT_EQ(inner.get_string("status", ""), "ok");

  json::Object poll;
  poll["job_id"] = job_id;
  const Response polled = client.call("poll", json::Value(std::move(poll)));
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled.result.get_string("state", ""), "done");
}

TEST_F(ServerRoundTrip, MalformedAndUnknownRequests) {
  Client client(socket_path_);
  Request bogus;
  bogus.method = "no-such-method";
  EXPECT_EQ(client.call(bogus).status, "error");

  json::Object submit;
  submit["method"] = "ping";  // not a work method
  EXPECT_EQ(client.call("submit", json::Value(std::move(submit))).status,
            "error");
  EXPECT_EQ(client.call("poll", json::Value(json::Object{})).status,
            "error");
}

TEST_F(ServerRoundTrip, DrainStopsAdmissionAndCompletes) {
  Client client(socket_path_);
  ASSERT_TRUE(client.call(plan_request()).ok());
  server_->request_drain();
  if (thread_.joinable()) thread_.join();
  // After run() returns all admitted work finished and the socket is gone.
  EXPECT_EQ(server_->jobs().stats().queued, 0u);
  EXPECT_EQ(server_->jobs().stats().running, 0u);
  EXPECT_THROW(Client second(socket_path_), std::runtime_error);
}

}  // namespace
}  // namespace klotski::serve
