// Tests for the sharded plan cache's disk tier and shard semantics: the
// crash-safe spill envelope (atomic tmp+rename publish, digest-verified
// reads, torn files quarantined as misses — the regression suite for the
// non-atomic-spill bug), shard-count invariance of the served bytes, and
// stats aggregation under sharded concurrent access.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "klotski/serve/plan_cache.h"

namespace klotski::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test spill directory, removed on destruction.
class SpillDir {
 public:
  explicit SpillDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("klotski-shard-" + tag + "-" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~SpillDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

  std::string spill_file(const std::string& key) const {
    return path_ + "/" + key + ".json";
  }
  std::size_t file_count(const std::string& substring = "") const {
    std::size_t n = 0;
    for (const auto& entry : fs::directory_iterator(path_)) {
      if (substring.empty() ||
          entry.path().filename().string().find(substring) !=
              std::string::npos) {
        ++n;
      }
    }
    return n;
  }

 private:
  std::string path_;
};

void put(PlanCache& cache, const std::string& key, const std::string& text) {
  PlanCache::Lookup lookup = cache.acquire(key);
  ASSERT_EQ(lookup.outcome, PlanCache::Outcome::kOwner) << key;
  cache.fulfill(lookup.entry, text);
}

// --- spill envelope ------------------------------------------------------

TEST(SpillEnvelopeTest, RoundTripsArbitraryPayloads) {
  for (const std::string payload :
       {std::string(), std::string("x"), std::string("line\nline\n"),
        std::string(1 << 16, 'p')}) {
    const std::string encoded = PlanCache::encode_spill(payload);
    std::string decoded;
    ASSERT_TRUE(PlanCache::decode_spill(encoded, decoded));
    EXPECT_EQ(decoded, payload);
  }
}

TEST(SpillEnvelopeTest, RejectsTornAndForeignBytes) {
  const std::string payload = "plan bytes plan bytes plan bytes";
  const std::string encoded = PlanCache::encode_spill(payload);
  std::string out;

  // Truncation anywhere — inside the header or inside the payload.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, encoded.size() / 2,
        encoded.size() - 1}) {
    EXPECT_FALSE(PlanCache::decode_spill(encoded.substr(0, keep), out))
        << "kept " << keep << " bytes";
  }
  // Appended garbage (interleaved overwrite): length no longer matches.
  EXPECT_FALSE(PlanCache::decode_spill(encoded + "tail", out));
  // A flipped payload byte fails the digest even with the length intact.
  std::string flipped = encoded;
  flipped.back() ^= 0x1;
  EXPECT_FALSE(PlanCache::decode_spill(flipped, out));
  // v1 files were raw payloads with no header: never decodable.
  EXPECT_FALSE(PlanCache::decode_spill(payload, out));
}

// --- crash-safe spill files ---------------------------------------------

// Regression: spill files used to be written in place (open + write), so a
// crash or concurrent reader could observe a torn "<key>.json" and acquire()
// would serve the partial bytes as a hit. Truncated files must read as
// misses and be quarantined.
TEST(SpillCrashSafetyTest, TruncatedSpillFileIsMissNotCorruptHit) {
  SpillDir dir("torn");
  PlanCache cache(PlanCache::Options{1, dir.path(), 1});
  put(cache, "a", "payload-a-payload-a-payload-a");
  put(cache, "b", "payload-b");  // capacity 1: evicts a to disk only
  ASSERT_EQ(cache.stats().evictions, 1);

  // Tear the file the way a mid-write crash would: keep a prefix.
  const std::string path = dir.spill_file("a");
  ASSERT_TRUE(fs::exists(path));
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size / 2);

  PlanCache::Lookup lookup = cache.acquire("a");
  EXPECT_EQ(lookup.outcome, PlanCache::Outcome::kOwner)
      << "torn spill served as a hit";
  EXPECT_EQ(cache.stats().spill_corrupt, 1);
  EXPECT_FALSE(fs::exists(path)) << "torn spill not quarantined";

  // The owner recomputes and the rewritten file is whole again.
  cache.fulfill(lookup.entry, "payload-a-recomputed");
  put(cache, "c", "payload-c");  // evict a again
  PlanCache::Lookup again = cache.acquire("a");
  EXPECT_EQ(again.outcome, PlanCache::Outcome::kHit);
  EXPECT_EQ(again.text, "payload-a-recomputed");
}

TEST(SpillCrashSafetyTest, LegacyHeaderlessFilesReadAsMisses) {
  SpillDir dir("legacy");
  // A v1-era spill file: raw payload, no envelope.
  std::ofstream(dir.spill_file("old")) << "raw v1 plan bytes";
  PlanCache cache(PlanCache::Options{4, dir.path(), 1});
  EXPECT_EQ(cache.acquire("old").outcome, PlanCache::Outcome::kOwner);
  EXPECT_EQ(cache.stats().spill_corrupt, 1);
}

TEST(SpillCrashSafetyTest, PublishIsTmpPlusRenameLeavingNoTempFiles) {
  SpillDir dir("atomic");
  PlanCache cache(PlanCache::Options{8, dir.path(), 4});
  for (int i = 0; i < 8; ++i) {
    put(cache, "k" + std::to_string(i), std::string(4096, 'v'));
  }
  EXPECT_EQ(cache.stats().spill_writes, 8);
  EXPECT_EQ(dir.file_count(), 8u);
  EXPECT_EQ(dir.file_count(".tmp."), 0u)
      << "temp files must never outlive a successful publish";
  // Every published file decodes — none is a bare payload.
  for (int i = 0; i < 8; ++i) {
    std::ifstream in(dir.spill_file("k" + std::to_string(i)));
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::string payload;
    EXPECT_TRUE(PlanCache::decode_spill(bytes, payload));
    EXPECT_EQ(payload, std::string(4096, 'v'));
  }
}

// --- shard semantics -----------------------------------------------------

TEST(ShardingTest, ServedBytesAreInvariantAcrossShardCounts) {
  // The same key set, loaded into caches with different shard counts (and
  // a shared spill dir read by a differently-sharded successor), must yield
  // byte-identical text — sharding is a locking strategy, not a semantic.
  SpillDir dir("invariant");
  const int kKeys = 16;
  auto text_for = [](int i) {
    return "plan:" + std::to_string(i) + ":" + std::string(64, 'x');
  };
  for (const int shards : {1, 3, 8}) {
    PlanCache::Options options;
    options.capacity = 64;
    options.shards = shards;
    PlanCache cache(options);
    for (int i = 0; i < kKeys; ++i) {
      put(cache, "key" + std::to_string(i), text_for(i));
    }
    EXPECT_EQ(cache.stats().shards, shards);
    for (int i = 0; i < kKeys; ++i) {
      PlanCache::Lookup lookup = cache.acquire("key" + std::to_string(i));
      ASSERT_EQ(lookup.outcome, PlanCache::Outcome::kHit);
      EXPECT_EQ(lookup.text, text_for(i)) << "shards=" << shards;
    }
  }
  // Writer sharded one way, reader another, bridged by the spill dir.
  {
    PlanCache writer(PlanCache::Options{4, dir.path(), 2});
    for (int i = 0; i < kKeys; ++i) {
      put(writer, "key" + std::to_string(i), text_for(i));
    }
  }
  PlanCache reader(PlanCache::Options{64, dir.path(), 7});
  for (int i = 0; i < kKeys; ++i) {
    PlanCache::Lookup lookup = reader.acquire("key" + std::to_string(i));
    ASSERT_EQ(lookup.outcome, PlanCache::Outcome::kHit) << i;
    EXPECT_EQ(lookup.text, text_for(i));
  }
}

TEST(ShardingTest, ConcurrentMixedKeysKeepSingleFlightPerKey) {
  PlanCache::Options options;
  options.capacity = 64;
  options.shards = 8;
  PlanCache cache(options);

  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::string key =
            "key" + std::to_string((t * 7 + op) % kKeys);
        const std::string expected = "text:" + key;
        PlanCache::Lookup lookup = cache.acquire(key);
        std::string got;
        switch (lookup.outcome) {
          case PlanCache::Outcome::kOwner:
            cache.fulfill(lookup.entry, expected);
            got = expected;
            break;
          case PlanCache::Outcome::kWait:
            got = cache.wait(lookup.entry);
            break;
          case PlanCache::Outcome::kHit:
            got = lookup.text;
            break;
        }
        if (got != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  const PlanCache::Stats stats = cache.stats();
  // Single-flight per key: exactly one owner ever ran per distinct key.
  EXPECT_EQ(stats.misses, kKeys);
  EXPECT_EQ(stats.entries, static_cast<std::size_t>(kKeys));
  EXPECT_EQ(stats.in_flight, 0u);
  // Every operation is accounted exactly once across the shard counters.
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            kThreads * kOpsPerThread);
  EXPECT_EQ(stats.evictions, 0);
}

}  // namespace
}  // namespace klotski::serve
