// Protocol-level tests for the TCP transport and the hardened read loop:
// byte-identity across transports, single-flight coalescing across
// transports, oversized request lines (answered and closed, never an
// unbounded buffer), pipelined requests, half-close semantics, idle
// timeouts, periodic connection reaping, and cancellation of sync work
// whose peer vanished.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "klotski/json/canonical.h"
#include "klotski/json/json.h"
#include "klotski/npd/npd_io.h"
#include "klotski/obs/metrics.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/serve/client.h"
#include "klotski/serve/endpoint.h"
#include "klotski/serve/server.h"
#include "klotski/topo/presets.h"

namespace klotski::serve {
namespace {

json::Value preset_npd_json() {
  npd::NpdDocument doc;
  doc.name = "transport-test-a";
  doc.region = topo::preset_params(topo::PresetId::kA,
                                   topo::PresetScale::kReduced);
  doc.migration = npd::MigrationKind::kHgridV1ToV2;
  doc.hgrid = pipeline::hgrid_params_for(topo::PresetId::kA,
                                         topo::PresetScale::kReduced);
  doc.ssw = pipeline::ssw_params_for(topo::PresetScale::kReduced);
  doc.dmag = pipeline::dmag_params_for(topo::PresetScale::kReduced);
  return npd::to_json(doc);
}

json::Value plan_params() {
  json::Object params;
  params["npd"] = preset_npd_json();
  params["theta"] = 0.75;
  return json::Value(std::move(params));
}

json::Value chaos_params(int seeds) {
  json::Object params;
  params["preset"] = "a";
  params["seeds"] = seeds;
  return json::Value(std::move(params));
}

std::string request_line(const std::string& id, const std::string& method,
                         json::Value params) {
  Request req;
  req.id = id;
  req.method = method;
  req.params = std::move(params);
  return json::dump(req.to_json()) + "\n";
}

/// RAII metrics enable + reset, so counter assertions see only this test.
class MetricsOn {
 public:
  MetricsOn() {
    obs::set_metrics_enabled(true);
    obs::Registry::global().reset_values();
  }
  ~MetricsOn() { obs::set_metrics_enabled(false); }
};

long long counter(const char* name) {
  return obs::Registry::global().counter(name).value();
}

// --- raw-socket helpers (the untrusted-peer side of the tests) -----------

bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one '\n'-terminated line, carrying leftover bytes in `buffer`.
bool read_line(int fd, std::string& buffer, std::string& line_out,
               long long timeout_ms = 10'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line_out = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      return true;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd probe{fd, POLLIN, 0};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - now)
                          .count();
    if (::poll(&probe, 1, static_cast<int>(left)) <= 0) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;  // EOF or error before a full line
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// True when the peer closes the stream within the deadline.
bool read_eof(int fd, long long timeout_ms = 10'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char chunk[4096];
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd probe{fd, POLLIN, 0};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - now)
                          .count();
    if (::poll(&probe, 1, static_cast<int>(left)) <= 0) return false;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return true;
    if (n < 0) return true;  // reset also counts as closed
  }
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

template <typename Pred>
bool eventually(Pred pred, long long timeout_ms = 15'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

// --- fixture -------------------------------------------------------------

class TransportTest : public ::testing::Test {
 protected:
  Server::Options base_options() {
    Server::Options options;
    options.socket_path =
        "/tmp/ktrans-" + std::to_string(::getpid()) + ".sock";
    options.listen = "127.0.0.1:0";  // ephemeral: tests read tcp_endpoint()
    options.jobs.workers = 2;
    options.jobs.max_queue = 8;
    options.service.cache.capacity = 8;
    return options;
  }

  void start(const Server::Options& options) {
    std::signal(SIGPIPE, SIG_IGN);  // raw peers close mid-conversation
    options_ = options;
    server_ = std::make_unique<Server>(options);
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_) {
      server_->request_drain();
      if (thread_.joinable()) thread_.join();
      server_.reset();
    }
    if (!options_.socket_path.empty()) {
      std::remove(options_.socket_path.c_str());
    }
  }

  int raw_tcp_fd() {
    return connect_endpoint(Endpoint::parse(server_->tcp_endpoint()));
  }
  int raw_unix_fd() {
    return connect_endpoint(Endpoint::parse("unix:" + options_.socket_path));
  }

  Server::Options options_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

// --- byte identity and single flight across transports -------------------

TEST_F(TransportTest, TcpServesTheSameBytesAsUnix) {
  MetricsOn metrics;
  start(base_options());

  Client tcp(server_->tcp_endpoint());
  const Response pong = tcp.call("ping", json::Value(json::Object{}));
  ASSERT_TRUE(pong.ok()) << pong.error;
  EXPECT_EQ(pong.result.get_string("schema", ""), kProtocolSchema);

  Client unix_client("unix:" + options_.socket_path);
  const Response cold = unix_client.call("plan", plan_params(), "u");
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_FALSE(cold.cached);

  const Response warm = tcp.call("plan", plan_params(), "t");
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_TRUE(warm.cached);

  // The transport never touches the payload: same bytes, same content hash.
  EXPECT_EQ(json::dump(cold.result.at("plan"), 2),
            json::dump(warm.result.at("plan"), 2));
  EXPECT_EQ(json::content_hash(cold.result.at("plan")),
            json::content_hash(warm.result.at("plan")));
  EXPECT_EQ(counter("serve.plan_runs"), 1);

  const Response stats = tcp.call("stats", json::Value(json::Object{}));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.result.at("cache").get_int("shards", 0),
            options_.service.cache.shards);
}

TEST_F(TransportTest, SingleFlightCoalescesAcrossTransports) {
  MetricsOn metrics;
  start(base_options());

  // Open all connections first so the requests genuinely overlap.
  constexpr int kPerTransport = 3;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kPerTransport; ++i) {
    clients.push_back(
        std::make_unique<Client>("unix:" + options_.socket_path));
    clients.push_back(std::make_unique<Client>(server_->tcp_endpoint()));
  }

  std::vector<Response> responses(clients.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    threads.emplace_back([&, i] {
      responses[i] = clients[i]->call("plan", plan_params());
    });
  }
  for (std::thread& t : threads) t.join();

  std::set<std::string> distinct;
  int cold = 0;
  for (const Response& resp : responses) {
    ASSERT_TRUE(resp.ok()) << resp.error;
    if (!resp.cached) ++cold;
    distinct.insert(json::dump(resp.result.at("plan"), 2));
  }
  // One planner run served every client on both transports.
  EXPECT_EQ(counter("serve.plan_runs"), 1);
  EXPECT_EQ(cold, 1);
  EXPECT_EQ(distinct.size(), 1u);
}

// --- hardened read loop --------------------------------------------------

// Regression: the read loop used to append to the connection buffer without
// any cap, so a peer that never sent '\n' could grow it without bound.
TEST_F(TransportTest, OversizedUnterminatedLineIsAnsweredAndClosed) {
  MetricsOn metrics;
  Server::Options options = base_options();
  options.max_request_bytes = 4096;
  start(options);

  const int fd = raw_tcp_fd();
  // 64 KiB, no newline. The server must cut in after the cap, not buffer
  // it all; the send may fail part-way once the server closes — fine.
  send_all(fd, std::string(64 * 1024, 'x'));
  std::string buffer, line;
  ASSERT_TRUE(read_line(fd, buffer, line));
  const Response resp = Response::parse(line);
  EXPECT_EQ(resp.status, "error");
  EXPECT_NE(resp.error.find("exceeds"), std::string::npos) << resp.error;
  EXPECT_TRUE(read_eof(fd));
  ::close(fd);
  EXPECT_GE(counter("serve.oversized_requests"), 1);
}

TEST_F(TransportTest, OversizedCompleteLineIsAnsweredAndClosed) {
  MetricsOn metrics;
  Server::Options options = base_options();
  options.max_request_bytes = 4096;
  start(options);

  const int fd = raw_tcp_fd();
  // A syntactically valid request whose one line blows the cap.
  json::Object params;
  params["pad"] = std::string(8192, 'p');
  send_all(fd, request_line("big", "ping", json::Value(std::move(params))));
  std::string buffer, line;
  ASSERT_TRUE(read_line(fd, buffer, line));
  EXPECT_EQ(Response::parse(line).status, "error");
  EXPECT_TRUE(read_eof(fd));
  ::close(fd);
  EXPECT_GE(counter("serve.oversized_requests"), 1);
}

TEST_F(TransportTest, PipelinedRequestsAnswerInOrder) {
  start(base_options());
  const int fd = raw_tcp_fd();
  // Both requests in one segment; responses must come back in order.
  ASSERT_TRUE(
      send_all(fd, request_line("p1", "ping", json::Value(json::Object{})) +
                       request_line("p2", "ping",
                                    json::Value(json::Object{}))));
  std::string buffer, line;
  ASSERT_TRUE(read_line(fd, buffer, line));
  EXPECT_EQ(Response::parse(line).id, "p1");
  ASSERT_TRUE(read_line(fd, buffer, line));
  EXPECT_EQ(Response::parse(line).id, "p2");
  ::close(fd);
}

TEST_F(TransportTest, HalfCloseStillReceivesItsResponses) {
  MetricsOn metrics;
  start(base_options());
  const int fd = raw_tcp_fd();
  // Send sync work, then shut down the write side: "no more requests" must
  // not read as "client gone" — the response still has a way back.
  ASSERT_TRUE(send_all(fd, request_line("hc", "chaos", chaos_params(8))));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  std::string buffer, line;
  ASSERT_TRUE(read_line(fd, buffer, line, 60'000));
  const Response resp = Response::parse(line);
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_EQ(resp.id, "hc");
  EXPECT_EQ(resp.result.get_int("seeds_run", 0), 8);
  EXPECT_EQ(counter("serve.sync_disconnect_cancels"), 0);
  EXPECT_TRUE(read_eof(fd));
  ::close(fd);
}

TEST_F(TransportTest, IdleConnectionsAreClosedAfterTimeout) {
  MetricsOn metrics;
  Server::Options options = base_options();
  options.idle_timeout_ms = 100;
  start(options);

  const int fd = raw_tcp_fd();
  EXPECT_TRUE(read_eof(fd)) << "idle connection was never closed";
  ::close(fd);
  EXPECT_GE(counter("serve.idle_timeouts"), 1);

  // An active connection with sub-timeout gaps stays open.
  Client client(server_->tcp_endpoint());
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_TRUE(client.call("ping", json::Value(json::Object{})).ok());
  }
}

// Regression: finished connection threads were only reaped when the next
// client connected, so a connect/disconnect storm left fds and threads
// behind on an otherwise idle server.
TEST_F(TransportTest, DisconnectStormIsReapedWithoutNewAccepts) {
  start(base_options());
  {
    // Warm-up, so lazily-created fds don't skew the baseline count.
    Client warm(server_->tcp_endpoint());
    ASSERT_TRUE(warm.call("ping", json::Value(json::Object{})).ok());
  }
  ASSERT_TRUE(eventually([&] { return server_->tracked_connections() == 0; }));
  const std::size_t fds_before = open_fd_count();

  for (int i = 0; i < 40; ++i) {
    Client client(i % 2 == 0 ? server_->tcp_endpoint()
                             : "unix:" + options_.socket_path);
    ASSERT_TRUE(client.call("ping", json::Value(json::Object{})).ok());
  }
  // No new accepts from here on: the periodic reap alone must drive the
  // tracked set — and the fd table — back to the baseline.
  EXPECT_TRUE(
      eventually([&] { return server_->tracked_connections() == 0; }))
      << "tracked: " << server_->tracked_connections();
  EXPECT_TRUE(eventually([&] { return open_fd_count() <= fds_before; }))
      << "fds before " << fds_before << ", after " << open_fd_count();
}

// Regression: a sync work request whose client vanished kept its job
// running (and its worker slot busy) until completion; now the server
// cancels the job when the peer's socket reports POLLHUP.
TEST_F(TransportTest, VanishedPeerCancelsItsSyncJob) {
  MetricsOn metrics;
  Server::Options options = base_options();
  options.jobs.workers = 1;  // the doomed job owns the only worker
  start(options);

  // AF_UNIX reports a full close as POLLHUP deterministically (on TCP a
  // silent peer death is only detected at the next write).
  const int fd = raw_unix_fd();
  ASSERT_TRUE(send_all(fd, request_line("doomed", "chaos",
                                        chaos_params(100'000))));
  ASSERT_TRUE(eventually([&] { return server_->jobs().stats().running > 0; }))
      << "chaos job never started";
  ::close(fd);  // full close: both directions gone

  EXPECT_TRUE(eventually(
      [&] { return counter("serve.sync_disconnect_cancels") >= 1; }, 30'000))
      << "disconnect never cancelled the sync job";
  // The cooperative stop lands between seeds; the worker frees promptly
  // instead of grinding through the remaining ~100k seeds.
  EXPECT_TRUE(eventually(
      [&] { return server_->jobs().stats().running == 0; }, 30'000))
      << "cancelled job still running";

  // The daemon is healthy afterwards: the freed worker serves new clients.
  Client client(server_->tcp_endpoint());
  EXPECT_TRUE(client.call("ping", json::Value(json::Object{})).ok());
}

}  // namespace
}  // namespace klotski::serve
