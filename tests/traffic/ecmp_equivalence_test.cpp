// Randomized equivalence suite for the flat-path ECMP engine.
//
// The incremental router (epoch-stamped scratch, word-packed liveness,
// journal-driven dirty screening, sparse group caches) and the intra-check
// parallel mode both promise *bit-identical* results to a from-scratch
// evaluation. These tests drive a Table-3 preset through hundreds of random
// drain / undrain / add / remove mutations and hold them to that promise:
//  * after every mutation, the bound incremental router must produce exactly
//    the load vector of a freshly constructed router with no caches;
//  * routers with 2 and 4 workers must match the serial router exactly —
//    loads, failure identity, and the logical group_recomputes/group_reuses
//    counters (which are defined to be invariant under num_workers).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "klotski/pipeline/experiments.h"
#include "klotski/topo/topology.h"
#include "klotski/traffic/ecmp.h"
#include "klotski/util/rng.h"

namespace klotski {
namespace {

constexpr int kSteps = 200;

/// One random element-state mutation through the versioned setters, plus an
/// occasional bump_state_version() to force the journal-floor (full rescan)
/// fallback paths.
void mutate(topo::Topology& topo, util::Rng& rng, int step) {
  const topo::ElementState states[] = {topo::ElementState::kActive,
                                       topo::ElementState::kDrained,
                                       topo::ElementState::kAbsent};
  const auto state = states[rng.uniform_int(0, 2)];
  if (rng.uniform_int(0, 1) == 0) {
    const auto s = static_cast<topo::SwitchId>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.num_switches()) - 1));
    topo.set_switch_state(s, state);
  } else {
    const auto c = static_cast<topo::CircuitId>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.num_circuits()) - 1));
    topo.set_circuit_state(c, state);
  }
  if (step % 20 == 19) topo.bump_state_version();
}

struct AssignResult {
  bool ok = false;
  std::string failed;
  traffic::LoadVector loads;
};

AssignResult run_assign(traffic::EcmpRouter& router,
                        const traffic::DemandSet& demands) {
  AssignResult r;
  r.ok = router.assign_all(demands, r.loads, &r.failed);
  return r;
}

/// Drives a migration case through kSteps random mutations, holding the
/// bound incremental router to bit-identical loads against a from-scratch
/// router after every step. Shared by the per-family tests below.
void run_fresh_router_equivalence(migration::MigrationCase mig,
                                  std::uint64_t seed) {
  topo::Topology& topo = *mig.task.topo;
  const traffic::DemandSet& demands = mig.task.demands;
  ASSERT_FALSE(demands.empty());

  traffic::EcmpRouter incremental(topo);
  incremental.bind_demands(demands);

  util::Rng rng(seed);
  for (int step = 0; step < kSteps; ++step) {
    mutate(topo, rng, step);

    const AssignResult got = run_assign(incremental, demands);
    // The reference has no history: every group is computed from scratch.
    traffic::EcmpRouter fresh(topo);
    const AssignResult want = run_assign(fresh, demands);

    ASSERT_EQ(want.ok, got.ok) << "step " << step;
    if (!want.ok) {
      EXPECT_EQ(want.failed, got.failed) << "step " << step;
      continue;
    }
    ASSERT_EQ(want.loads.size(), got.loads.size());
    for (std::size_t i = 0; i < want.loads.size(); ++i) {
      // EXPECT_EQ, not NEAR: the incremental engine re-sums cached sparse
      // contributions in the exact order a dense recompute would use.
      ASSERT_EQ(want.loads[i], got.loads[i])
          << "step " << step << " slot " << i;
    }

    // Touched-circuit fast path: after a successful bound assign_all the
    // touched list must cover every loaded circuit, so the restricted
    // utilization scan is exact.
    ASSERT_TRUE(incremental.touched_valid());
    const traffic::WorstCircuit full = traffic::worst_circuit(topo, got.loads);
    const traffic::WorstCircuit fast =
        traffic::worst_circuit(topo, got.loads, incremental.touched_circuits());
    EXPECT_EQ(full.circuit, fast.circuit) << "step " << step;
    EXPECT_EQ(full.utilization, fast.utilization) << "step " << step;
    EXPECT_EQ(traffic::max_utilization(topo, got.loads),
              traffic::max_utilization(topo, got.loads,
                                       incremental.touched_circuits()))
        << "step " << step;
  }
}

TEST(EcmpEquivalence, RandomizedMutationsMatchFreshRouter) {
  run_fresh_router_equivalence(
      pipeline::build_experiment(pipeline::ExperimentId::kB,
                                 topo::PresetScale::kReduced),
      20260806);
}

TEST(EcmpEquivalence, RandomizedMutationsMatchFreshRouterFlat) {
  run_fresh_router_equivalence(
      pipeline::build_family_experiment(topo::TopologyFamily::kFlat,
                                        topo::PresetId::kB,
                                        topo::PresetScale::kReduced),
      20260810);
}

TEST(EcmpEquivalence, RandomizedMutationsMatchFreshRouterReconf) {
  run_fresh_router_equivalence(
      pipeline::build_family_experiment(topo::TopologyFamily::kReconf,
                                        topo::PresetId::kB,
                                        topo::PresetScale::kReduced),
      20260811);
}

/// Serial-vs-workers bit-identity over kSteps random mutations; shared by
/// the per-family EcmpParallel* tests (tier1.sh runs exactly those under
/// TSan via gtest_filter=EcmpParallel*).
void run_workers_match_serial(migration::MigrationCase mig,
                              std::uint64_t seed) {
  topo::Topology& topo = *mig.task.topo;
  const traffic::DemandSet& demands = mig.task.demands;

  traffic::EcmpRouter serial(topo);
  serial.bind_demands(demands);
  traffic::EcmpRouter two(topo);
  two.set_num_workers(2);
  two.bind_demands(demands);
  traffic::EcmpRouter four(topo);
  four.set_num_workers(4);
  four.bind_demands(demands);
  EXPECT_EQ(0, serial.num_workers());
  EXPECT_EQ(2, two.num_workers());
  EXPECT_EQ(4, four.num_workers());

  util::Rng rng(seed);
  for (int step = 0; step < kSteps; ++step) {
    mutate(topo, rng, step);

    const AssignResult want = run_assign(serial, demands);
    for (traffic::EcmpRouter* parallel : {&two, &four}) {
      const AssignResult got = run_assign(*parallel, demands);
      ASSERT_EQ(want.ok, got.ok) << "step " << step;
      EXPECT_EQ(want.failed, got.failed) << "step " << step;
      ASSERT_EQ(want.loads.size(), got.loads.size());
      for (std::size_t i = 0; i < want.loads.size(); ++i) {
        ASSERT_EQ(want.loads[i], got.loads[i])
            << "step " << step << " slot " << i;
      }
      // Logical counters replay the serial accounting even when the pool
      // physically recomputed groups past the first failure.
      EXPECT_EQ(serial.group_recomputes(), parallel->group_recomputes())
          << "step " << step;
      EXPECT_EQ(serial.group_reuses(), parallel->group_reuses())
          << "step " << step;
    }
  }
}

TEST(EcmpParallelEquivalence, WorkersMatchSerialBitForBit) {
  run_workers_match_serial(
      pipeline::build_experiment(pipeline::ExperimentId::kB,
                                 topo::PresetScale::kReduced),
      777);
}

TEST(EcmpParallelEquivalence, WorkersMatchSerialBitForBitFlat) {
  run_workers_match_serial(
      pipeline::build_family_experiment(topo::TopologyFamily::kFlat,
                                        topo::PresetId::kB,
                                        topo::PresetScale::kReduced),
      778);
}

TEST(EcmpParallelEquivalence, WorkersMatchSerialBitForBitReconf) {
  run_workers_match_serial(
      pipeline::build_family_experiment(topo::TopologyFamily::kReconf,
                                        topo::PresetId::kB,
                                        topo::PresetScale::kReduced),
      779);
}

TEST(EcmpParallelEquivalence, WorkerPoolResizeAndReuse) {
  migration::MigrationCase mig = pipeline::build_experiment(
      pipeline::ExperimentId::kB, topo::PresetScale::kReduced);
  topo::Topology& topo = *mig.task.topo;
  const traffic::DemandSet& demands = mig.task.demands;

  traffic::EcmpRouter serial(topo);
  serial.bind_demands(demands);
  traffic::EcmpRouter resized(topo);
  resized.bind_demands(demands);

  util::Rng rng(42);
  for (int step = 0; step < 60; ++step) {
    // Shrinking back to serial mid-stream must not disturb the caches.
    resized.set_num_workers(step % 3 == 0 ? 1 : (step % 3 == 1 ? 2 : 3));
    mutate(topo, rng, step);
    const AssignResult want = run_assign(serial, demands);
    const AssignResult got = run_assign(resized, demands);
    ASSERT_EQ(want.ok, got.ok) << "step " << step;
    EXPECT_EQ(want.failed, got.failed) << "step " << step;
    for (std::size_t i = 0; i < want.loads.size(); ++i) {
      ASSERT_EQ(want.loads[i], got.loads[i])
          << "step " << step << " slot " << i;
    }
    EXPECT_EQ(serial.group_recomputes(), resized.group_recomputes());
    EXPECT_EQ(serial.group_reuses(), resized.group_reuses());
  }
}

}  // namespace
}  // namespace klotski
