#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "klotski/traffic/forecast.h"

namespace klotski::traffic {
namespace {

DemandSet base_demands() {
  DemandSet demands(2);
  demands[0].name = "egress";
  demands[0].kind = DemandKind::kEgress;
  demands[0].volume_tbps = 10.0;
  demands[1].name = "ew";
  demands[1].kind = DemandKind::kEastWest;
  demands[1].volume_tbps = 4.0;
  return demands;
}

TEST(Forecast, StepZeroEqualsBase) {
  const Forecaster f(base_demands(), 0.05);
  const DemandSet at0 = f.at_step(0);
  EXPECT_DOUBLE_EQ(at0[0].volume_tbps, 10.0);
  EXPECT_DOUBLE_EQ(at0[1].volume_tbps, 4.0);
}

TEST(Forecast, CompoundGrowth) {
  const Forecaster f(base_demands(), 0.10);
  const DemandSet at3 = f.at_step(3);
  EXPECT_NEAR(at3[0].volume_tbps, 10.0 * std::pow(1.1, 3), 1e-9);
}

TEST(Forecast, NegativeGrowthShrinks) {
  const Forecaster f(base_demands(), -0.10);
  EXPECT_LT(f.at_step(2)[0].volume_tbps, 10.0);
}

TEST(Forecast, RejectsImpossibleGrowth) {
  EXPECT_THROW(Forecaster(base_demands(), -1.5), std::invalid_argument);
}

TEST(Forecast, SurgeAppliesOnlyToItsKindAndWindow) {
  Forecaster f(base_demands(), 0.0);
  SurgeEvent surge;
  surge.kind = DemandKind::kEastWest;
  surge.start_step = 2;
  surge.end_step = 4;
  surge.factor = 2.0;
  f.add_surge(surge);

  EXPECT_DOUBLE_EQ(f.at_step(1)[1].volume_tbps, 4.0);   // before
  EXPECT_DOUBLE_EQ(f.at_step(2)[1].volume_tbps, 8.0);   // inside
  EXPECT_DOUBLE_EQ(f.at_step(3)[1].volume_tbps, 8.0);   // inside
  EXPECT_DOUBLE_EQ(f.at_step(4)[1].volume_tbps, 4.0);   // end exclusive
  EXPECT_DOUBLE_EQ(f.at_step(2)[0].volume_tbps, 10.0);  // other kind
}

TEST(Forecast, OverlappingSurgesMultiply) {
  Forecaster f(base_demands(), 0.0);
  f.add_surge(SurgeEvent{"a", DemandKind::kEgress, 0, 5, 2.0});
  f.add_surge(SurgeEvent{"b", DemandKind::kEgress, 0, 5, 1.5});
  EXPECT_DOUBLE_EQ(f.at_step(1)[0].volume_tbps, 30.0);
}

TEST(Forecast, RejectsInvertedSurgeWindow) {
  Forecaster f(base_demands(), 0.0);
  EXPECT_THROW(f.add_surge(SurgeEvent{"bad", DemandKind::kEgress, 5, 2, 2.0}),
               std::invalid_argument);
}

TEST(Forecast, MaxRelativeChangeTracksGrowth) {
  const Forecaster f(base_demands(), 0.10);
  EXPECT_NEAR(f.max_relative_change(0, 1), 0.10, 1e-9);
  EXPECT_DOUBLE_EQ(f.max_relative_change(2, 2), 0.0);
}

TEST(Forecast, MaxRelativeChangeSeesSurges) {
  Forecaster f(base_demands(), 0.0);
  f.add_surge(SurgeEvent{"s", DemandKind::kEastWest, 1, 3, 1.6});
  EXPECT_NEAR(f.max_relative_change(0, 1), 0.6, 1e-9);
}

// --- composition-rule pins (forecast.h) -------------------------------
// These assert EXACT equality against expressions written in the pinned
// operation order. If a refactor folds factors differently, the doubles
// round differently and these fail — which is the point: seeded chaos and
// what-if sweeps depend on this association staying put.

TEST(Forecast, OverlappingBiasesComposeSequentiallyInInsertionOrder) {
  Forecaster f(base_demands(), 0.1);
  f.add_bias(ForecastBias{"b1", DemandKind::kEgress, 0, 5, 1.3});
  f.add_bias(ForecastBias{"b2", DemandKind::kEgress, 0, 5, 0.7});
  // at_step applies growth as one multiply; each bias is then its own
  // multiply, in insertion order.
  const double grown = 10.0 * std::pow(1.1, 2);
  EXPECT_EQ(f.forecast_at_step(2)[0].volume_tbps, (grown * 1.3) * 0.7);
  // Ground truth is untouched by biases.
  EXPECT_EQ(f.at_step(2)[0].volume_tbps, grown);
}

TEST(Forecast, BiasAndSurgeOnTheSameStepFoldSurgeFirst) {
  Forecaster f(base_demands(), 0.05);
  f.add_surge(SurgeEvent{"s", DemandKind::kEgress, 1, 3, 1.5});
  f.add_bias(ForecastBias{"b", DemandKind::kEgress, 1, 3, 1.2});
  // The surge folds into at_step's single per-demand factor
  // (growth * surge, one multiply onto the base); the bias multiplies the
  // result afterwards.
  const double actual = 10.0 * (std::pow(1.05, 2) * 1.5);
  EXPECT_EQ(f.at_step(2)[0].volume_tbps, actual);
  EXPECT_EQ(f.forecast_at_step(2)[0].volume_tbps, actual * 1.2);
  EXPECT_TRUE(f.biased_at(2));
  EXPECT_FALSE(f.biased_at(3));  // end exclusive
}

TEST(Forecast, ZeroLengthWindowsAreValidAndNeverActive) {
  Forecaster f(base_demands(), 0.0);
  // start == end is an empty [start, end) window, not an error …
  f.add_surge(SurgeEvent{"s", DemandKind::kEgress, 2, 2, 5.0});
  f.add_bias(ForecastBias{"b", DemandKind::kEgress, 2, 2, 5.0});
  for (int step = 0; step <= 3; ++step) {
    EXPECT_EQ(f.at_step(step)[0].volume_tbps, 10.0) << "step " << step;
    EXPECT_EQ(f.forecast_at_step(step)[0].volume_tbps, 10.0)
        << "step " << step;
    EXPECT_FALSE(f.biased_at(step)) << "step " << step;
  }
  // … while an inverted window still is one.
  EXPECT_THROW(f.add_bias(ForecastBias{"bad", DemandKind::kEgress, 3, 2, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(f.add_bias(ForecastBias{"bad", DemandKind::kEgress, 0, 2, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace klotski::traffic
