#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "klotski/traffic/forecast.h"

namespace klotski::traffic {
namespace {

DemandSet base_demands() {
  DemandSet demands(2);
  demands[0].name = "egress";
  demands[0].kind = DemandKind::kEgress;
  demands[0].volume_tbps = 10.0;
  demands[1].name = "ew";
  demands[1].kind = DemandKind::kEastWest;
  demands[1].volume_tbps = 4.0;
  return demands;
}

TEST(Forecast, StepZeroEqualsBase) {
  const Forecaster f(base_demands(), 0.05);
  const DemandSet at0 = f.at_step(0);
  EXPECT_DOUBLE_EQ(at0[0].volume_tbps, 10.0);
  EXPECT_DOUBLE_EQ(at0[1].volume_tbps, 4.0);
}

TEST(Forecast, CompoundGrowth) {
  const Forecaster f(base_demands(), 0.10);
  const DemandSet at3 = f.at_step(3);
  EXPECT_NEAR(at3[0].volume_tbps, 10.0 * std::pow(1.1, 3), 1e-9);
}

TEST(Forecast, NegativeGrowthShrinks) {
  const Forecaster f(base_demands(), -0.10);
  EXPECT_LT(f.at_step(2)[0].volume_tbps, 10.0);
}

TEST(Forecast, RejectsImpossibleGrowth) {
  EXPECT_THROW(Forecaster(base_demands(), -1.5), std::invalid_argument);
}

TEST(Forecast, SurgeAppliesOnlyToItsKindAndWindow) {
  Forecaster f(base_demands(), 0.0);
  SurgeEvent surge;
  surge.kind = DemandKind::kEastWest;
  surge.start_step = 2;
  surge.end_step = 4;
  surge.factor = 2.0;
  f.add_surge(surge);

  EXPECT_DOUBLE_EQ(f.at_step(1)[1].volume_tbps, 4.0);   // before
  EXPECT_DOUBLE_EQ(f.at_step(2)[1].volume_tbps, 8.0);   // inside
  EXPECT_DOUBLE_EQ(f.at_step(3)[1].volume_tbps, 8.0);   // inside
  EXPECT_DOUBLE_EQ(f.at_step(4)[1].volume_tbps, 4.0);   // end exclusive
  EXPECT_DOUBLE_EQ(f.at_step(2)[0].volume_tbps, 10.0);  // other kind
}

TEST(Forecast, OverlappingSurgesMultiply) {
  Forecaster f(base_demands(), 0.0);
  f.add_surge(SurgeEvent{"a", DemandKind::kEgress, 0, 5, 2.0});
  f.add_surge(SurgeEvent{"b", DemandKind::kEgress, 0, 5, 1.5});
  EXPECT_DOUBLE_EQ(f.at_step(1)[0].volume_tbps, 30.0);
}

TEST(Forecast, RejectsInvertedSurgeWindow) {
  Forecaster f(base_demands(), 0.0);
  EXPECT_THROW(f.add_surge(SurgeEvent{"bad", DemandKind::kEgress, 5, 2, 2.0}),
               std::invalid_argument);
}

TEST(Forecast, MaxRelativeChangeTracksGrowth) {
  const Forecaster f(base_demands(), 0.10);
  EXPECT_NEAR(f.max_relative_change(0, 1), 0.10, 1e-9);
  EXPECT_DOUBLE_EQ(f.max_relative_change(2, 2), 0.0);
}

TEST(Forecast, MaxRelativeChangeSeesSurges) {
  Forecaster f(base_demands(), 0.0);
  f.add_surge(SurgeEvent{"s", DemandKind::kEastWest, 1, 3, 1.6});
  EXPECT_NEAR(f.max_relative_change(0, 1), 0.6, 1e-9);
}

}  // namespace
}  // namespace klotski::traffic
