#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/traffic/demand_io.h"
#include "klotski/traffic/generator.h"

namespace klotski::traffic {
namespace {

TEST(DemandIo, KindRoundTrip) {
  for (const auto kind : {DemandKind::kEgress, DemandKind::kIngress,
                          DemandKind::kEastWest, DemandKind::kIntraDc}) {
    EXPECT_EQ(demand_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(demand_kind_from_string("sideways"), std::invalid_argument);
}

TEST(DemandIo, GeneratedDemandsRoundTrip) {
  const topo::Region region =
      topo::build_preset(topo::PresetId::kB, topo::PresetScale::kFull);
  const DemandSet demands = generate_demands(region);
  const DemandSet round =
      demands_from_json(region.topo, demands_to_json(region.topo, demands));

  ASSERT_EQ(round.size(), demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_EQ(round[i].name, demands[i].name);
    EXPECT_EQ(round[i].kind, demands[i].kind);
    EXPECT_DOUBLE_EQ(round[i].volume_tbps, demands[i].volume_tbps);
    EXPECT_EQ(round[i].sources, demands[i].sources);
    EXPECT_EQ(round[i].targets, demands[i].targets);
  }
}

TEST(DemandIo, EditedVolumeSurvives) {
  const topo::Region region =
      topo::build_preset(topo::PresetId::kA, topo::PresetScale::kFull);
  DemandSet demands = generate_demands(region);
  json::Value exported = demands_to_json(region.topo, demands);
  // An operator bumps the first demand by 30% in the matrix file.
  auto& first = exported.as_object()["demands"].as_array()[0].as_object();
  const double bumped = first["volume_tbps"].as_double() * 1.3;
  first["volume_tbps"] = json::Value(bumped);

  const DemandSet round = demands_from_json(region.topo, exported);
  EXPECT_NEAR(round[0].volume_tbps, bumped, 1e-12);
}

TEST(DemandIo, UnknownSwitchRejectedWithName) {
  const topo::Region region =
      topo::build_preset(topo::PresetId::kA, topo::PresetScale::kFull);
  const char* text = R"({"demands": [{
    "name": "bad", "kind": "egress", "volume_tbps": 1.0,
    "sources": ["ghost-switch"], "targets": ["ebb0"]}]})";
  try {
    demands_from_json(region.topo, json::parse(text));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ghost-switch"), std::string::npos);
  }
}

TEST(DemandIo, NonPositiveVolumeRejected) {
  const topo::Region region =
      topo::build_preset(topo::PresetId::kA, topo::PresetScale::kFull);
  const char* text = R"({"demands": [{
    "name": "zero", "kind": "egress", "volume_tbps": 0,
    "sources": ["eb0"], "targets": ["ebb0"]}]})";
  EXPECT_THROW(demands_from_json(region.topo, json::parse(text)),
               std::invalid_argument);
}

TEST(DemandIo, EmptyEndpointsRejected) {
  const topo::Region region =
      topo::build_preset(topo::PresetId::kA, topo::PresetScale::kFull);
  const char* text = R"({"demands": [{
    "name": "no-targets", "kind": "egress", "volume_tbps": 1.0,
    "sources": ["eb0"], "targets": []}]})";
  EXPECT_THROW(demands_from_json(region.topo, json::parse(text)),
               std::invalid_argument);
}

TEST(DemandIo, ImportedMatrixPlansEndToEnd) {
  // Full §7.1 loop: generate, export, re-import, and plan with the matrix.
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  task.demands = demands_from_json(
      *task.topo, demands_to_json(*task.topo, task.demands));

  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  const core::Plan plan =
      pipeline::make_planner("astar")->plan(task, *bundle.checker, {});
  EXPECT_TRUE(plan.found) << plan.failure;
}

}  // namespace
}  // namespace klotski::traffic
