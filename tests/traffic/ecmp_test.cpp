#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/traffic/ecmp.h"
#include "klotski/traffic/generator.h"
#include "klotski/util/rng.h"

namespace klotski::traffic {
namespace {

using testing::Diamond;

TEST(Ecmp, DiamondSplitsEqually) {
  Diamond d;
  EcmpRouter router(d.topo);
  LoadVector loads;
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  // 0.5 on each branch, in the s->t direction only.
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_sm1) * 2], 0.5);
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_sm2) * 2], 0.5);
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_m1t) * 2], 0.5);
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_m1t) * 2 + 1], 0.0);
}

TEST(Ecmp, DrainedBranchGetsNoTraffic) {
  Diamond d;
  d.topo.sw(d.m2).state = topo::ElementState::kDrained;
  EcmpRouter router(d.topo);
  LoadVector loads;
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_sm1) * 2], 1.0);
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_sm2) * 2], 0.0);
}

TEST(Ecmp, DrainedCircuitGetsNoTraffic) {
  Diamond d;
  d.topo.circuit(d.c_sm2).state = topo::ElementState::kDrained;
  EcmpRouter router(d.topo);
  LoadVector loads;
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_sm1) * 2], 1.0);
}

TEST(Ecmp, UnreachableSourceFailsAssignment) {
  Diamond d;
  d.topo.sw(d.m1).state = topo::ElementState::kAbsent;
  d.topo.sw(d.m2).state = topo::ElementState::kAbsent;
  EcmpRouter router(d.topo);
  LoadVector loads;
  EXPECT_FALSE(router.assign(d.demand(1.0), loads));
  EXPECT_FALSE(router.reachable(d.demand(1.0)));
}

TEST(Ecmp, NoActiveTargetFailsAssignment) {
  Diamond d;
  d.topo.sw(d.t).state = topo::ElementState::kDrained;
  EcmpRouter router(d.topo);
  LoadVector loads;
  EXPECT_FALSE(router.assign(d.demand(1.0), loads));
}

TEST(Ecmp, InactiveSourceIsSkipped) {
  Diamond d;
  Demand demand = d.demand(1.0);
  demand.sources = {d.s, d.m1};  // m1 is also a source
  d.topo.sw(d.s).state = topo::ElementState::kDrained;
  EcmpRouter router(d.topo);
  LoadVector loads;
  ASSERT_TRUE(router.assign(demand, loads));
  // All volume is injected at m1 now.
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_m1t) * 2], 1.0);
}

TEST(Ecmp, AllSourcesInactiveIsVacuouslySatisfied) {
  Diamond d;
  d.topo.sw(d.s).state = topo::ElementState::kAbsent;
  EcmpRouter router(d.topo);
  LoadVector loads;
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_m1t) * 2], 0.0);
}

TEST(Ecmp, SourceAtTargetAbsorbedImmediately) {
  Diamond d;
  Demand demand = d.demand(1.0);
  demand.sources = {d.t};
  EcmpRouter router(d.topo);
  LoadVector loads;
  ASSERT_TRUE(router.assign(demand, loads));
  for (const double load : loads) EXPECT_DOUBLE_EQ(load, 0.0);
}

TEST(Ecmp, MultipleAssignsAccumulate) {
  Diamond d;
  EcmpRouter router(d.topo);
  LoadVector loads;
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_sm1) * 2], 1.0);
}

TEST(Ecmp, ShortestPathOnly) {
  // s - a - t plus a longer s - b - c - t detour: ECMP must use only the
  // 2-hop path.
  using topo::ElementState;
  using topo::Generation;
  using topo::SwitchRole;
  topo::Topology t;
  const auto s = t.add_switch(SwitchRole::kRsw, Generation::kV1, {}, 8,
                              ElementState::kActive, "s");
  const auto a = t.add_switch(SwitchRole::kFsw, Generation::kV1, {}, 8,
                              ElementState::kActive, "a");
  const auto b = t.add_switch(SwitchRole::kFsw, Generation::kV1, {}, 8,
                              ElementState::kActive, "b");
  const auto c = t.add_switch(SwitchRole::kFsw, Generation::kV1, {}, 8,
                              ElementState::kActive, "c");
  const auto dst = t.add_switch(SwitchRole::kEbb, Generation::kV1, {}, 8,
                                ElementState::kActive, "t");
  t.add_circuit(s, a, 1.0, ElementState::kActive);
  const auto c_at = t.add_circuit(a, dst, 1.0, ElementState::kActive);
  const auto c_sb = t.add_circuit(s, b, 1.0, ElementState::kActive);
  t.add_circuit(b, c, 1.0, ElementState::kActive);
  t.add_circuit(c, dst, 1.0, ElementState::kActive);

  Demand demand;
  demand.sources = {s};
  demand.targets = {dst};
  demand.volume_tbps = 1.0;

  EcmpRouter router(t);
  LoadVector loads;
  ASSERT_TRUE(router.assign(demand, loads));
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(c_at) * 2], 1.0);
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(c_sb) * 2], 0.0);
}

TEST(Ecmp, WorstCircuitReportsHighestUtilization) {
  Diamond d;
  d.topo.circuit(d.c_m2t).capacity_tbps = 0.25;  // 0.5 load -> 200%
  EcmpRouter router(d.topo);
  LoadVector loads;
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  const WorstCircuit worst = worst_circuit(d.topo, loads);
  EXPECT_EQ(worst.circuit, d.c_m2t);
  EXPECT_DOUBLE_EQ(worst.utilization, 2.0);
  EXPECT_DOUBLE_EQ(max_utilization(d.topo, loads), 2.0);
}

TEST(Ecmp, EmptyLoadsHaveZeroUtilization) {
  Diamond d;
  const LoadVector loads(d.topo.num_circuits() * 2, 0.0);
  EXPECT_DOUBLE_EQ(max_utilization(d.topo, loads), 0.0);
  EXPECT_EQ(worst_circuit(d.topo, loads).circuit, topo::kInvalidCircuit);
}

// ---------------------------------------------------------------------------
// Property-based: flow conservation on synthesized regions under random
// drain patterns.

struct ConservationCase {
  topo::PresetId preset;
  std::uint64_t seed;
};

class EcmpConservation
    : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(EcmpConservation, InjectedVolumeIsAbsorbed) {
  const auto [preset, seed] = GetParam();
  topo::Region region = topo::build_preset(preset,
                                           topo::PresetScale::kReduced);
  util::Rng rng(seed);

  // Randomly drain ~15% of the circuits.
  for (std::size_t i = 0; i < region.topo.num_circuits(); ++i) {
    if (rng.chance(0.15)) {
      region.topo.circuit(static_cast<topo::CircuitId>(i)).state =
          topo::ElementState::kDrained;
    }
  }

  const DemandSet demands = generate_demands(region);
  EcmpRouter router(region.topo);
  for (const Demand& demand : demands) {
    LoadVector loads;
    if (!router.assign(demand, loads)) continue;  // disconnected is OK here

    // Non-negativity.
    for (const double load : loads) EXPECT_GE(load, -1e-9);

    // Conservation: total volume leaving the sources equals the demand
    // volume (if any source is active), and equals the volume arriving at
    // the targets.
    std::vector<double> net(region.topo.num_switches(), 0.0);
    for (const topo::Circuit& c : region.topo.circuits()) {
      const double ab = loads[static_cast<std::size_t>(c.id) * 2];
      const double ba = loads[static_cast<std::size_t>(c.id) * 2 + 1];
      net[static_cast<std::size_t>(c.a)] += ab - ba;
      net[static_cast<std::size_t>(c.b)] += ba - ab;
    }
    double out_of_sources = 0.0;
    std::size_t active_sources = 0;
    for (const topo::SwitchId s : demand.sources) {
      out_of_sources += net[static_cast<std::size_t>(s)];
      if (region.topo.sw(s).active()) ++active_sources;
    }
    if (active_sources > 0) {
      EXPECT_NEAR(out_of_sources, demand.volume_tbps, 1e-6) << demand.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EcmpConservation,
    ::testing::Values(ConservationCase{topo::PresetId::kA, 1},
                      ConservationCase{topo::PresetId::kA, 2},
                      ConservationCase{topo::PresetId::kB, 3},
                      ConservationCase{topo::PresetId::kB, 4},
                      ConservationCase{topo::PresetId::kC, 5}),
    [](const auto& info) {
      return to_string(info.param.preset) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace klotski::traffic
