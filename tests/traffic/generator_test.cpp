#include <gtest/gtest.h>

#include "klotski/topo/presets.h"
#include "klotski/traffic/ecmp.h"
#include "klotski/traffic/generator.h"

namespace klotski::traffic {
namespace {

topo::Region small_region() {
  return topo::build_preset(topo::PresetId::kB, topo::PresetScale::kFull);
}

TEST(Generator, EmitsAllDemandKindsForMultiDcRegion) {
  const topo::Region region = small_region();
  const DemandSet demands = generate_demands(region);
  int egress = 0, ingress = 0, east_west = 0, intra = 0;
  for (const Demand& d : demands) {
    switch (d.kind) {
      case DemandKind::kEgress: ++egress; break;
      case DemandKind::kIngress: ++ingress; break;
      case DemandKind::kEastWest: ++east_west; break;
      case DemandKind::kIntraDc: ++intra; break;
    }
  }
  EXPECT_EQ(egress, region.num_dcs());
  EXPECT_EQ(ingress, region.num_dcs());
  EXPECT_EQ(east_west, region.num_dcs() * (region.num_dcs() - 1));
  EXPECT_EQ(intra, region.num_dcs() * 2);
}

TEST(Generator, SingleDcRegionHasNoEastWest) {
  const topo::Region region =
      topo::build_preset(topo::PresetId::kA, topo::PresetScale::kFull);
  for (const Demand& d : generate_demands(region)) {
    EXPECT_NE(d.kind, DemandKind::kEastWest);
  }
}

TEST(Generator, VolumesScaleWithFractions) {
  const topo::Region region = small_region();
  DemandGenParams half;
  half.egress_frac = 0.10;
  const DemandSet base = generate_demands(region);
  const DemandSet reduced = generate_demands(region, half);
  double base_egress = 0, reduced_egress = 0;
  for (const Demand& d : base) {
    if (d.kind == DemandKind::kEgress) base_egress += d.volume_tbps;
  }
  for (const Demand& d : reduced) {
    if (d.kind == DemandKind::kEgress) reduced_egress += d.volume_tbps;
  }
  EXPECT_NEAR(reduced_egress / base_egress, 0.10 / 0.25, 1e-9);
}

TEST(Generator, ZeroFractionSuppressesKind) {
  const topo::Region region = small_region();
  DemandGenParams p;
  p.intra_dc_frac = 0.0;
  for (const Demand& d : generate_demands(region, p)) {
    EXPECT_NE(d.kind, DemandKind::kIntraDc);
  }
}

TEST(Generator, CapacityHelpersArePositiveAndOrdered) {
  const topo::Region region = small_region();
  for (int dc = 0; dc < region.num_dcs(); ++dc) {
    const double uplink = dc_uplink_capacity(region, dc);
    const double spine = dc_spine_capacity(region, dc);
    const double rsw = dc_rsw_uplink_capacity(region, dc);
    const double bottleneck = dc_bottleneck_capacity(region, dc);
    EXPECT_GT(uplink, 0.0);
    EXPECT_GT(spine, 0.0);
    EXPECT_GT(rsw, 0.0);
    EXPECT_LE(bottleneck, uplink);
    EXPECT_LE(bottleneck, spine);
    EXPECT_LE(bottleneck, rsw);
  }
}

TEST(Generator, IntraDcEndpointsArePodDisjoint) {
  const topo::Region region = small_region();
  for (const Demand& d : generate_demands(region)) {
    if (d.kind != DemandKind::kIntraDc) continue;
    std::set<int> source_pods, target_pods;
    for (const topo::SwitchId s : d.sources) {
      source_pods.insert(region.topo.sw(s).loc.pod);
    }
    for (const topo::SwitchId t : d.targets) {
      target_pods.insert(region.topo.sw(t).loc.pod);
    }
    for (const int pod : source_pods) {
      EXPECT_EQ(target_pods.count(pod), 0u);
    }
  }
}

class InitialFeasibility : public ::testing::TestWithParam<topo::PresetId> {};

// The calibrated defaults must leave every preset feasible at theta = 0.75
// (the precondition for every migration experiment).
TEST_P(InitialFeasibility, WorstUtilizationBelowDefaultTheta) {
  topo::Region region =
      topo::build_preset(GetParam(), topo::PresetScale::kReduced);
  const DemandSet demands = generate_demands(region);
  EcmpRouter router(region.topo);
  LoadVector loads(region.topo.num_circuits() * 2, 0.0);
  for (const Demand& d : demands) {
    ASSERT_TRUE(router.assign(d, loads)) << d.name;
  }
  EXPECT_LT(max_utilization(region.topo, loads), 0.75);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, InitialFeasibility,
                         ::testing::ValuesIn(topo::all_presets()),
                         [](const auto& info) {
                           return topo::to_string(info.param);
                         });

TEST(Demand, TotalVolumeAndScaled) {
  DemandSet demands(2);
  demands[0].volume_tbps = 1.5;
  demands[1].volume_tbps = 2.5;
  EXPECT_DOUBLE_EQ(total_volume(demands), 4.0);
  const DemandSet doubled = scaled(demands, 2.0);
  EXPECT_DOUBLE_EQ(total_volume(doubled), 8.0);
  EXPECT_DOUBLE_EQ(total_volume(demands), 4.0);  // original untouched
}

TEST(Demand, KindNames) {
  EXPECT_EQ(to_string(DemandKind::kEgress), "egress");
  EXPECT_EQ(to_string(DemandKind::kIntraDc), "intra-dc");
}

}  // namespace
}  // namespace klotski::traffic
