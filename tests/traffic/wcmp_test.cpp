#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/pipeline/edp.h"
#include "klotski/traffic/ecmp.h"

namespace klotski::traffic {
namespace {

using klotski::testing::Diamond;

TEST(Wcmp, SplitsProportionallyToCapacity) {
  Diamond d;
  d.topo.circuit(d.c_sm1).capacity_tbps = 3.0;  // m1 branch 3x wider
  d.topo.circuit(d.c_m1t).capacity_tbps = 3.0;
  EcmpRouter router(d.topo, SplitMode::kCapacityWeighted);
  LoadVector loads;
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_sm1) * 2], 0.75);
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_sm2) * 2], 0.25);
}

TEST(Wcmp, EqualCapacitiesMatchPlainEcmp) {
  Diamond ecmp_d;
  Diamond wcmp_d;
  EcmpRouter ecmp(ecmp_d.topo, SplitMode::kEqualSplit);
  EcmpRouter wcmp(wcmp_d.topo, SplitMode::kCapacityWeighted);
  LoadVector a, b;
  ASSERT_TRUE(ecmp.assign(ecmp_d.demand(1.0), a));
  ASSERT_TRUE(wcmp.assign(wcmp_d.demand(1.0), b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(Wcmp, BalancesMixedGenerationUtilization) {
  // The §7.1 outage scenario in miniature: one thin and one wide branch.
  // Plain ECMP overloads the thin one; WCMP equalizes utilization.
  Diamond d;
  d.topo.circuit(d.c_sm1).capacity_tbps = 4.0;
  d.topo.circuit(d.c_m1t).capacity_tbps = 4.0;
  // Thin branch keeps capacity 1.0. Demand 2.5:
  //   ECMP: 1.25 on the thin branch -> 125% utilization (overload).
  //   WCMP: 0.5 on thin (50%), 2.0 on wide (50%).
  {
    EcmpRouter router(d.topo, SplitMode::kEqualSplit);
    LoadVector loads;
    ASSERT_TRUE(router.assign(d.demand(2.5), loads));
    EXPECT_GT(max_utilization(d.topo, loads), 1.0);
  }
  {
    EcmpRouter router(d.topo, SplitMode::kCapacityWeighted);
    LoadVector loads;
    ASSERT_TRUE(router.assign(d.demand(2.5), loads));
    EXPECT_NEAR(max_utilization(d.topo, loads), 0.5, 1e-9);
  }
}

TEST(Wcmp, ModeSwitchableAtRuntime) {
  Diamond d;
  d.topo.circuit(d.c_sm1).capacity_tbps = 3.0;
  d.topo.circuit(d.c_m1t).capacity_tbps = 3.0;
  EcmpRouter router(d.topo);
  EXPECT_EQ(router.split_mode(), SplitMode::kEqualSplit);
  LoadVector loads;
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_sm1) * 2], 0.5);

  router.set_split_mode(SplitMode::kCapacityWeighted);
  loads.assign(loads.size(), 0.0);
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(d.c_sm1) * 2], 0.75);
}

TEST(Wcmp, ConservationHolds) {
  Diamond d;
  d.topo.circuit(d.c_sm1).capacity_tbps = 2.5;
  d.topo.circuit(d.c_m1t).capacity_tbps = 2.5;
  EcmpRouter router(d.topo, SplitMode::kCapacityWeighted);
  LoadVector loads;
  ASSERT_TRUE(router.assign(d.demand(1.0), loads));
  // Everything injected arrives: the two t-side circuit loads sum to 1.
  EXPECT_NEAR(loads[static_cast<std::size_t>(d.c_m1t) * 2] +
                  loads[static_cast<std::size_t>(d.c_m2t) * 2],
              1.0, 1e-12);
}

TEST(AssignAll, MatchesPerDemandAssignment) {
  // assign_all merges demands sharing a target set; the result must equal
  // the sum of individual assignments exactly.
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  EcmpRouter router(*mig.task.topo);

  LoadVector merged;
  ASSERT_TRUE(router.assign_all(mig.task.demands, merged));

  LoadVector separate(mig.task.topo->num_circuits() * 2, 0.0);
  for (const Demand& demand : mig.task.demands) {
    ASSERT_TRUE(router.assign(demand, separate));
  }
  ASSERT_EQ(merged.size(), separate.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_NEAR(merged[i], separate[i], 1e-9) << "slot " << i;
  }
}

TEST(AssignAll, ReportsFailedDemandByName) {
  Diamond d;
  d.topo.sw(d.m1).state = topo::ElementState::kAbsent;
  d.topo.sw(d.m2).state = topo::ElementState::kAbsent;
  EcmpRouter router(d.topo);
  LoadVector loads;
  std::string failed;
  EXPECT_FALSE(router.assign_all({d.demand(1.0)}, loads, &failed));
  EXPECT_EQ(failed, "s-to-t");
}

TEST(Wcmp, PlannerCanUseWcmpThroughPipeline) {
  // A WCMP checker stack plans successfully end to end.
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  pipeline::CheckerConfig config;
  config.routing = SplitMode::kCapacityWeighted;
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, config);
  const core::Plan plan =
      pipeline::make_planner("astar")->plan(mig.task, *bundle.checker, {});
  EXPECT_TRUE(plan.found) << plan.failure;
}

}  // namespace
}  // namespace klotski::traffic
