// The NPD documents shipped in examples/npd/ must stay parseable and
// plannable — they are the repository's public face for operators.
#include <gtest/gtest.h>

#include "klotski/npd/npd_io.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/util/file.h"

namespace klotski::npd {
namespace {

std::string npd_path(const char* file) {
  return std::string(KLOTSKI_SOURCE_DIR) + "/examples/npd/" + file;
}

class ShippedNpdFiles : public ::testing::TestWithParam<const char*> {};

TEST_P(ShippedNpdFiles, ParsesRoundTripsAndPlans) {
  const std::string text = util::read_file(npd_path(GetParam()));
  const NpdDocument doc = parse_npd(text);
  EXPECT_NE(doc.migration, MigrationKind::kNone);

  // Serialization round trip preserves the parsed document.
  const NpdDocument round = parse_npd(dump_npd(doc));
  EXPECT_EQ(round.migration, doc.migration);
  EXPECT_EQ(round.region.dcs, doc.region.dcs);
  EXPECT_EQ(round.region.grids, doc.region.grids);

  pipeline::EdpOptions options;
  options.planner_options.deadline_seconds = 300;
  const pipeline::EdpResult result = pipeline::run_pipeline(doc, options);
  ASSERT_TRUE(result.plan.found) << GetParam() << ": "
                                 << result.plan.failure;

  migration::MigrationTask& task =
      const_cast<migration::MigrationTask&>(result.migration.task);
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  EXPECT_TRUE(pipeline::audit_plan(task, *bundle.checker, result.plan).ok);
}

INSTANTIATE_TEST_SUITE_P(Files, ShippedNpdFiles,
                         ::testing::Values("region-b-hgrid.npd.json",
                                           "region-c-ssw-forklift.npd.json",
                                           "region-c-dmag.npd.json",
                                           "flat-b-forklift.npd.json",
                                           "reconf-b-rewire.npd.json"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace klotski::npd
