#include <gtest/gtest.h>

#include "klotski/npd/npd_convert.h"
#include "klotski/npd/npd_io.h"
#include "klotski/topo/presets.h"

namespace klotski::npd {
namespace {

NpdDocument sample_doc() {
  NpdDocument doc;
  doc.name = "test-region";
  doc.region =
      topo::preset_params(topo::PresetId::kB, topo::PresetScale::kFull);
  doc.migration = MigrationKind::kHgridV1ToV2;
  doc.hgrid.v2_grids = 3;
  doc.hgrid.fadu_chunks_per_grid_dc = 2;
  doc.demand.egress_frac = 0.22;
  return doc;
}

TEST(MigrationKind, RoundTrip) {
  for (const auto kind :
       {MigrationKind::kNone, MigrationKind::kHgridV1ToV2,
        MigrationKind::kSswForklift, MigrationKind::kDmag,
        MigrationKind::kFlatForklift, MigrationKind::kReconfRewire}) {
    EXPECT_EQ(migration_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(migration_kind_from_string("warp"), std::invalid_argument);
}

TEST(MigrationKind, FamilyOfAndDefaultMigrationAgree) {
  for (const auto family : topo::all_families()) {
    EXPECT_EQ(family_of(default_migration(family)), family);
  }
  EXPECT_EQ(family_of(MigrationKind::kSswForklift),
            topo::TopologyFamily::kClos);
  EXPECT_EQ(family_of(MigrationKind::kFlatForklift),
            topo::TopologyFamily::kFlat);
  EXPECT_EQ(family_of(MigrationKind::kReconfRewire),
            topo::TopologyFamily::kReconf);
}

TEST(NpdIo, RoundTripPreservesDocument) {
  const NpdDocument doc = sample_doc();
  const NpdDocument round = parse_npd(dump_npd(doc));

  EXPECT_EQ(round.name, doc.name);
  EXPECT_EQ(round.migration, doc.migration);
  EXPECT_EQ(round.region.dcs, doc.region.dcs);
  EXPECT_EQ(round.region.grids, doc.region.grids);
  EXPECT_EQ(round.region.fabrics.size(), doc.region.fabrics.size());
  EXPECT_EQ(round.region.fabrics[0].pods, doc.region.fabrics[0].pods);
  EXPECT_EQ(round.region.fabrics[0].rsw_fsw_links,
            doc.region.fabrics[0].rsw_fsw_links);
  EXPECT_DOUBLE_EQ(round.region.cap_fauu_eb, doc.region.cap_fauu_eb);
  EXPECT_EQ(round.region.port_slack_ssw, doc.region.port_slack_ssw);
  EXPECT_EQ(round.hgrid.v2_grids, doc.hgrid.v2_grids);
  EXPECT_EQ(round.hgrid.fadu_chunks_per_grid_dc,
            doc.hgrid.fadu_chunks_per_grid_dc);
  EXPECT_DOUBLE_EQ(round.demand.egress_frac, doc.demand.egress_frac);
}

TEST(NpdIo, SswAndDmagSectionsRoundTrip) {
  NpdDocument doc = sample_doc();
  doc.migration = MigrationKind::kSswForklift;
  doc.ssw.dc = 1;
  doc.ssw.v2_capacity_factor = 2.0;
  doc.ssw.blocks_per_plane = 3;
  NpdDocument round = parse_npd(dump_npd(doc));
  EXPECT_EQ(round.ssw.dc, 1);
  EXPECT_DOUBLE_EQ(round.ssw.v2_capacity_factor, 2.0);
  EXPECT_EQ(round.ssw.blocks_per_plane, 3);

  doc.migration = MigrationKind::kDmag;
  doc.dmag.ma_per_eb = 3;
  round = parse_npd(dump_npd(doc));
  EXPECT_EQ(round.dmag.ma_per_eb, 3);
}

TEST(NpdIo, DefaultsAppliedForOmittedSections) {
  const NpdDocument doc = parse_npd(R"({"name": "minimal"})");
  EXPECT_EQ(doc.name, "minimal");
  EXPECT_EQ(doc.migration, MigrationKind::kNone);
  EXPECT_EQ(doc.region.dcs, topo::RegionParams{}.dcs);
}

TEST(NpdIo, UnknownKeysAreRejectedWithKeyName) {
  try {
    parse_npd(R"({"name": "x", "hgrid": {"grids": 2, "girds": 3}})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("girds"), std::string::npos);
  }
}

TEST(NpdIo, UnknownRootKeyRejected) {
  EXPECT_THROW(parse_npd(R"({"nmae": "typo"})"), std::invalid_argument);
}

TEST(NpdIo, MalformedJsonSurfacesParserError) {
  EXPECT_THROW(parse_npd("{"), json::JsonError);
}

TEST(NpdIo, PolicyFlagsRoundTrip) {
  NpdDocument doc = sample_doc();
  doc.hgrid.policy.block_scale = 2.0;
  doc.hgrid.policy.use_operation_blocks = false;
  const NpdDocument round = parse_npd(dump_npd(doc));
  EXPECT_DOUBLE_EQ(round.hgrid.policy.block_scale, 2.0);
  EXPECT_FALSE(round.hgrid.policy.use_operation_blocks);
}

TEST(Npd, BuildRegionMatchesDirectBuild) {
  const NpdDocument doc = sample_doc();
  const topo::Region from_npd = build_region(doc);
  const topo::Region direct = topo::build_region(doc.region);
  EXPECT_EQ(from_npd.topo.num_switches(), direct.topo.num_switches());
  EXPECT_EQ(from_npd.topo.num_circuits(), direct.topo.num_circuits());
}

TEST(Npd, BuildCaseDispatchesOnMigrationKind) {
  NpdDocument doc = sample_doc();
  EXPECT_EQ(build_case(doc).task.name, "hgrid-v1-to-v2");
  doc.migration = MigrationKind::kSswForklift;
  EXPECT_EQ(build_case(doc).task.name, "ssw-forklift");
  doc.migration = MigrationKind::kDmag;
  EXPECT_EQ(build_case(doc).task.name, "dmag");
  doc.migration = MigrationKind::kNone;
  EXPECT_THROW(build_case(doc), std::invalid_argument);
}

TEST(NpdIo, FlatDocumentRoundTrips) {
  NpdDocument doc;
  doc.name = "flat-region";
  doc.family = topo::TopologyFamily::kFlat;
  doc.migration = MigrationKind::kFlatForklift;
  doc.flat.switches = 20;
  doc.flat.degree = 6;
  doc.flat.extra_links = 3;
  doc.flat.max_chord_span = 7;
  doc.flat.seed = 42;
  doc.flat_mig.upgrade_fraction = 0.4;
  doc.flat_mig.switch_chunks = 5;
  doc.flat_mig.origin_utilization_cap = 0.6;
  const NpdDocument round = parse_npd(dump_npd(doc));
  EXPECT_EQ(round.family, topo::TopologyFamily::kFlat);
  EXPECT_EQ(round.migration, MigrationKind::kFlatForklift);
  EXPECT_EQ(round.flat.switches, 20);
  EXPECT_EQ(round.flat.degree, 6);
  EXPECT_EQ(round.flat.extra_links, 3);
  EXPECT_EQ(round.flat.max_chord_span, 7);
  EXPECT_EQ(round.flat.seed, 42u);
  EXPECT_DOUBLE_EQ(round.flat_mig.upgrade_fraction, 0.4);
  EXPECT_EQ(round.flat_mig.switch_chunks, 5);
  EXPECT_DOUBLE_EQ(round.flat_mig.origin_utilization_cap, 0.6);
}

TEST(NpdIo, ReconfDocumentRoundTrips) {
  NpdDocument doc;
  doc.name = "reconf-region";
  doc.family = topo::TopologyFamily::kReconf;
  doc.migration = MigrationKind::kReconfRewire;
  doc.reconf.switches = 14;
  doc.reconf.v1_strides = {1, 2};
  doc.reconf.v2_strides = {1, 5};
  doc.reconf_mig.chunks_per_stride = 4;
  doc.reconf_mig.origin_utilization_cap = 0.45;
  const NpdDocument round = parse_npd(dump_npd(doc));
  EXPECT_EQ(round.family, topo::TopologyFamily::kReconf);
  EXPECT_EQ(round.migration, MigrationKind::kReconfRewire);
  EXPECT_EQ(round.reconf.switches, 14);
  EXPECT_EQ(round.reconf.v1_strides, (std::vector<int>{1, 2}));
  EXPECT_EQ(round.reconf.v2_strides, (std::vector<int>{1, 5}));
  EXPECT_EQ(round.reconf_mig.chunks_per_stride, 4);
  EXPECT_DOUBLE_EQ(round.reconf_mig.origin_utilization_cap, 0.45);
}

TEST(NpdIo, NonClosDocumentsOmitClosSections) {
  NpdDocument doc;
  doc.name = "flat-region";
  doc.family = topo::TopologyFamily::kFlat;
  doc.migration = MigrationKind::kFlatForklift;
  const std::string text = dump_npd(doc);
  EXPECT_EQ(text.find("\"fabric\""), std::string::npos);
  EXPECT_EQ(text.find("\"hgrid\""), std::string::npos);
  EXPECT_NE(text.find("\"flat\""), std::string::npos);
}

TEST(Npd, BuildCaseRejectsFamilyMismatchedMigration) {
  NpdDocument doc;
  doc.family = topo::TopologyFamily::kFlat;
  doc.migration = MigrationKind::kHgridV1ToV2;
  try {
    build_case(doc);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("does not apply"),
              std::string::npos);
  }

  doc.family = topo::TopologyFamily::kClos;
  doc.migration = MigrationKind::kReconfRewire;
  EXPECT_THROW(build_case(doc), std::invalid_argument);
}

TEST(Npd, BuildCaseDispatchesOnFamily) {
  NpdDocument doc;
  doc.family = topo::TopologyFamily::kFlat;
  doc.migration = MigrationKind::kFlatForklift;
  EXPECT_EQ(build_case(doc).task.name, "flat-forklift");

  doc.family = topo::TopologyFamily::kReconf;
  doc.migration = MigrationKind::kReconfRewire;
  EXPECT_EQ(build_case(doc).task.name, "reconf-rewire");
}

TEST(Npd, BuildRegionDispatchesOnFamily) {
  NpdDocument doc;
  doc.family = topo::TopologyFamily::kFlat;
  const topo::Region flat = build_region(doc);
  const topo::Region direct = topo::build_flat(doc.flat);
  EXPECT_EQ(flat.topo.num_switches(), direct.topo.num_switches());
  EXPECT_EQ(flat.topo.num_circuits(), direct.topo.num_circuits());

  doc.family = topo::TopologyFamily::kReconf;
  const topo::Region reconf = build_region(doc);
  EXPECT_EQ(reconf.topo.num_switches(),
            static_cast<std::size_t>(doc.reconf.switches));
}

TEST(Npd, DemandParamsFlowIntoBuildCase) {
  NpdDocument doc = sample_doc();
  doc.demand.egress_frac = 0.0;  // suppress egress demands entirely
  const migration::MigrationCase mig = build_case(doc);
  for (const traffic::Demand& d : mig.task.demands) {
    EXPECT_NE(d.kind, traffic::DemandKind::kEgress);
  }
}

// ---------------------------------------------------------------------------
// Explicit topology conversion

TEST(NpdConvert, TopologyRoundTrip) {
  const topo::Region region =
      topo::build_preset(topo::PresetId::kA, topo::PresetScale::kFull);
  const json::Value encoded = topology_to_json(region.topo);
  const topo::Topology decoded = topology_from_json(encoded);

  ASSERT_EQ(decoded.num_switches(), region.topo.num_switches());
  ASSERT_EQ(decoded.num_circuits(), region.topo.num_circuits());
  for (std::size_t i = 0; i < decoded.num_switches(); ++i) {
    const auto id = static_cast<topo::SwitchId>(i);
    EXPECT_EQ(decoded.sw(id).name, region.topo.sw(id).name);
    EXPECT_EQ(decoded.sw(id).role, region.topo.sw(id).role);
    EXPECT_EQ(decoded.sw(id).state, region.topo.sw(id).state);
    EXPECT_EQ(decoded.sw(id).max_ports, region.topo.sw(id).max_ports);
    EXPECT_EQ(decoded.sw(id).loc, region.topo.sw(id).loc);
  }
  for (std::size_t i = 0; i < decoded.num_circuits(); ++i) {
    const auto id = static_cast<topo::CircuitId>(i);
    EXPECT_DOUBLE_EQ(decoded.circuit(id).capacity_tbps,
                     region.topo.circuit(id).capacity_tbps);
    EXPECT_EQ(decoded.circuit(id).state, region.topo.circuit(id).state);
  }
}

TEST(NpdConvert, RejectsDanglingCircuitEndpoints) {
  const char* text = R"({
    "switches": [{"name": "a", "role": "RSW", "max_ports": 4}],
    "circuits": [{"a": "a", "b": "ghost", "capacity_tbps": 1.0}]
  })";
  EXPECT_THROW(topology_from_json(json::parse(text)), std::invalid_argument);
}

TEST(NpdConvert, RejectsDuplicateSwitchNames) {
  const char* text = R"({
    "switches": [{"name": "a", "role": "RSW"}, {"name": "a", "role": "FSW"}],
    "circuits": []
  })";
  EXPECT_THROW(topology_from_json(json::parse(text)), std::invalid_argument);
}

}  // namespace
}  // namespace klotski::npd
