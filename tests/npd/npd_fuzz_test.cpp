// Structured fuzz tests for the NPD format: randomized *valid* documents
// must round-trip (parse -> serialize -> parse is a fixpoint) and build the
// same region; a corpus of malformed documents must fail with a diagnostic,
// never crash.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "klotski/npd/npd.h"
#include "klotski/npd/npd_convert.h"
#include "klotski/npd/npd_io.h"
#include "klotski/util/rng.h"

namespace klotski {
namespace {

/// Randomized valid document: every schema section populated, both HGRID
/// generations, all migration kinds. Kept small so the whole fuzz run stays
/// in the tier-1 time budget.
npd::NpdDocument random_document(util::Rng& rng) {
  npd::NpdDocument doc;
  doc.name = "fuzz-" + std::to_string(rng.uniform_int(0, 1 << 20));
  doc.version = 1;

  topo::RegionParams& rp = doc.region;
  rp.dcs = static_cast<int>(rng.uniform_int(1, 2));
  rp.fabrics.clear();
  const int buildings = static_cast<int>(rng.uniform_int(1, rp.dcs));
  for (int i = 0; i < buildings; ++i) {
    topo::FabricParams fab;
    fab.pods = static_cast<int>(rng.uniform_int(1, 2));
    fab.rsws_per_pod = static_cast<int>(rng.uniform_int(1, 3));
    fab.planes = static_cast<int>(rng.uniform_int(1, 2));
    fab.ssws_per_plane = static_cast<int>(rng.uniform_int(1, 2));
    fab.rsw_fsw_links = 1;
    rp.fabrics.push_back(fab);
  }
  rp.grids = static_cast<int>(rng.uniform_int(1, 2));
  rp.fadus_per_grid_per_dc = static_cast<int>(rng.uniform_int(1, 2));
  rp.fauus_per_grid = static_cast<int>(rng.uniform_int(1, 2));
  rp.hgrid_gen =
      rng.chance(0.5) ? topo::Generation::kV1 : topo::Generation::kV2;
  rp.mesh = rng.chance(0.5) ? topo::MeshPattern::kPlaneAligned
                            : topo::MeshPattern::kInterleaved;
  rp.ebs = static_cast<int>(rng.uniform_int(1, 3));
  rp.drs = static_cast<int>(rng.uniform_int(1, 3));
  rp.ebbs = static_cast<int>(rng.uniform_int(1, 3));
  rp.cap_rsw_fsw = rng.uniform_real(0.05, 0.2);
  rp.cap_fsw_ssw = rng.uniform_real(0.1, 0.4);
  rp.cap_ssw_fadu = rng.uniform_real(0.2, 0.8);
  rp.cap_fadu_fauu = rng.uniform_real(0.4, 1.6);
  rp.cap_fauu_eb = rng.uniform_real(0.4, 1.6);
  rp.cap_fauu_dr = rng.uniform_real(0.4, 1.6);
  rp.cap_eb_ebb = rng.uniform_real(0.8, 3.2);
  rp.cap_dr_ebb = rng.uniform_real(0.8, 3.2);
  rp.port_slack_fabric = static_cast<int>(rng.uniform_int(0, 4));
  rp.port_slack_ssw = static_cast<int>(rng.uniform_int(0, 4));
  rp.port_slack_agg = static_cast<int>(rng.uniform_int(0, 4));
  rp.port_slack_eb = static_cast<int>(rng.uniform_int(0, 4));
  rp.port_slack_ebb = static_cast<int>(rng.uniform_int(0, 8));

  switch (rng.uniform_int(0, 3)) {
    case 0:
      doc.migration = npd::MigrationKind::kNone;
      break;
    case 1:
      // HGRID V1->V2 onboards the V2 generation, so the region starts V1.
      doc.migration = npd::MigrationKind::kHgridV1ToV2;
      rp.hgrid_gen = topo::Generation::kV1;
      doc.hgrid.v2_grids = rp.grids;
      doc.hgrid.v2_fadus_per_grid_per_dc = rp.fadus_per_grid_per_dc;
      doc.hgrid.v2_fauus_per_grid = rp.fauus_per_grid;
      doc.hgrid.fadu_chunks_per_grid_dc = 1;
      doc.hgrid.fauu_chunks_per_grid = 1;
      break;
    case 2:
      doc.migration = npd::MigrationKind::kSswForklift;
      doc.ssw.dc = static_cast<int>(rng.uniform_int(0, rp.dcs - 1));
      doc.ssw.v2_capacity_factor = rng.uniform_real(1.0, 2.0);
      doc.ssw.blocks_per_plane = 1;
      break;
    default:
      doc.migration = npd::MigrationKind::kDmag;
      doc.dmag.ma_per_eb = static_cast<int>(rng.uniform_int(1, 2));
      break;
  }

  doc.demand.egress_frac = rng.uniform_real(0.1, 0.4);
  doc.demand.ingress_frac = rng.uniform_real(0.1, 0.4);
  doc.demand.east_west_frac = rng.uniform_real(0.1, 0.4);
  doc.demand.intra_dc_frac = rng.uniform_real(0.0, 0.2);
  return doc;
}

TEST(NpdFuzz, RandomValidDocumentsRoundTripAndBuild) {
  util::Rng rng(0xF022'1234ULL);
  int migrations_built = 0;
  for (int i = 0; i < 60; ++i) {
    const npd::NpdDocument doc = random_document(rng);
    const std::string text = npd::dump_npd(doc);

    // parse(serialize(doc)) must be a serialization fixpoint.
    const npd::NpdDocument reparsed = npd::parse_npd(text);
    EXPECT_EQ(text, npd::dump_npd(reparsed)) << "doc " << i;

    // The reparsed document must describe the identical region.
    const topo::Region region = npd::build_region(doc);
    const topo::Region region2 = npd::build_region(reparsed);
    EXPECT_EQ(json::dump(npd::topology_to_json(region.topo)),
              json::dump(npd::topology_to_json(region2.topo)))
        << "doc " << i;
    EXPECT_EQ(region.topo.validate(), "") << "doc " << i;

    // Explicit topology JSON must round-trip losslessly too.
    const json::Value tj = npd::topology_to_json(region.topo);
    const topo::Topology rebuilt = npd::topology_from_json(tj);
    EXPECT_EQ(json::dump(npd::topology_to_json(rebuilt)), json::dump(tj))
        << "doc " << i;

    // Migration documents must build a self-consistent case.
    if (doc.migration != npd::MigrationKind::kNone) {
      const migration::MigrationCase mcase = npd::build_case(reparsed);
      EXPECT_EQ(mcase.task.validate(), "") << "doc " << i;
      EXPECT_GT(mcase.task.total_actions(), 0) << "doc " << i;
      ++migrations_built;
    }
  }
  EXPECT_GT(migrations_built, 10);  // the sampler actually covered kinds
}

TEST(NpdFuzz, BothGenerationsAppearInTheCorpus) {
  util::Rng rng(0xF022'1234ULL);
  bool v1 = false;
  bool v2 = false;
  for (int i = 0; i < 60; ++i) {
    const npd::NpdDocument doc = random_document(rng);
    (doc.region.hgrid_gen == topo::Generation::kV1 ? v1 : v2) = true;
  }
  EXPECT_TRUE(v1);
  EXPECT_TRUE(v2);
}

/// Malformed inputs: every entry must raise an exception whose message
/// carries a diagnostic — never a crash, never silent acceptance.
TEST(NpdFuzz, MalformedDocumentsFailWithDiagnostics) {
  const std::vector<std::pair<std::string, std::string>> corpus = {
      {"truncated JSON", "{\"name\": \"x\", "},
      {"root not an object", "[1, 2, 3]"},
      {"unknown root key", R"({"name": "x", "nonsense": 1})"},
      {"unknown fabric key", R"({"fabric": {"dcs": 2, "oops": 1}})"},
      {"unknown hgrid key", R"({"hgrid": {"grid_count": 4}})"},
      {"bad generation", R"({"hgrid": {"generation": "V3"}})"},
      {"bad mesh", R"({"hgrid": {"mesh": "diagonal"}})"},
      {"empty buildings", R"({"fabric": {"buildings": []}})"},
      {"bad migration type", R"({"migration": {"type": "teleport"}})"},
      {"unknown migration key", R"({"migration": {"type": "none", "x": 1}})"},
      {"non-integer version", R"({"version": "one"})"},
      {"non-numeric capacity",
       R"({"hardware": {"capacities": {"rsw_fsw": "fast"}}})"},
      {"unknown hardware key", R"({"hardware": {"power": 9000}})"},
      {"unknown demand key", R"({"demand": {"sideways_frac": 0.5}})"},
      {"buildings not an array", R"({"fabric": {"buildings": 3}})"},
  };
  for (const auto& [label, text] : corpus) {
    try {
      (void)npd::parse_npd(text);
      FAIL() << label << ": malformed NPD was accepted";
    } catch (const std::exception& e) {
      EXPECT_FALSE(std::string(e.what()).empty()) << label;
    }
  }
}

/// Malformed *explicit topology* documents must also fail loudly.
TEST(NpdFuzz, MalformedTopologyJsonFailsWithDiagnostics) {
  const std::vector<std::string> corpus = {
      R"({"switches": [], "circuits": [{"a": "x", "b": "y",
           "capacity_tbps": 1.0, "state": "active"}]})",
      R"({"switches": [{"name": "s", "role": "WARP", "gen": "V1",
           "state": "active", "max_ports": 4}], "circuits": []})",
      R"({"switches": [{"name": "s", "role": "RSW", "gen": "V9",
           "state": "active", "max_ports": 4}], "circuits": []})",
  };
  for (const std::string& text : corpus) {
    EXPECT_THROW((void)npd::topology_from_json(json::parse(text)),
                 std::exception)
        << text;
  }
}

}  // namespace
}  // namespace klotski
