#include <gtest/gtest.h>

#include "klotski/migration/policy.h"

namespace klotski::migration {
namespace {

TEST(Policy, DefaultScaleKeepsBaseChunks) {
  EXPECT_EQ(policy_chunks({}, 2, 8), 2);
}

TEST(Policy, ScaleMultipliesChunkCount) {
  PolicyParams p;
  p.block_scale = 2.0;
  EXPECT_EQ(policy_chunks(p, 2, 8), 4);
  p.block_scale = 4.0;
  EXPECT_EQ(policy_chunks(p, 2, 8), 8);
}

TEST(Policy, FractionalScaleCoarsens) {
  PolicyParams p;
  p.block_scale = 0.5;
  EXPECT_EQ(policy_chunks(p, 4, 8), 2);
  p.block_scale = 0.25;
  EXPECT_EQ(policy_chunks(p, 4, 8), 1);
}

TEST(Policy, ClampedToGroupSize) {
  PolicyParams p;
  p.block_scale = 100.0;
  EXPECT_EQ(policy_chunks(p, 2, 5), 5);
}

TEST(Policy, ClampedToAtLeastOne) {
  PolicyParams p;
  p.block_scale = 0.01;
  EXPECT_EQ(policy_chunks(p, 2, 5), 1);
}

TEST(Policy, WithoutOperationBlocksEverySwitchIsABlock) {
  PolicyParams p;
  p.use_operation_blocks = false;
  EXPECT_EQ(policy_chunks(p, 1, 7), 7);
}

TEST(Policy, EmptyGroupYieldsNoChunks) {
  EXPECT_EQ(policy_chunks({}, 2, 0), 0);
}

}  // namespace
}  // namespace klotski::migration
