#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/migration/block.h"

namespace klotski::migration {
namespace {

using klotski::testing::Diamond;

TEST(OperationBlock, ApplySetsStates) {
  Diamond d;
  OperationBlock block;
  block.ops = {
      {ElementOp::Kind::kSwitch, d.m1, topo::ElementState::kAbsent},
      {ElementOp::Kind::kCircuit, d.c_sm1, topo::ElementState::kAbsent},
  };
  block.apply(d.topo);
  EXPECT_EQ(d.topo.sw(d.m1).state, topo::ElementState::kAbsent);
  EXPECT_EQ(d.topo.circuit(d.c_sm1).state, topo::ElementState::kAbsent);
  EXPECT_EQ(d.topo.sw(d.m2).state, topo::ElementState::kActive);
}

TEST(OperationBlock, ApplyIsIdempotent) {
  Diamond d;
  OperationBlock block;
  block.ops = {{ElementOp::Kind::kSwitch, d.m1, topo::ElementState::kAbsent}};
  block.apply(d.topo);
  const topo::TopologyState once = topo::TopologyState::capture(d.topo);
  block.apply(d.topo);
  EXPECT_TRUE(once == topo::TopologyState::capture(d.topo));
}

TEST(OperationBlock, OverlappingBlocksCommute) {
  // Two blocks both set a shared circuit absent: any application order must
  // produce the same topology (the ordering-agnostic representation relies
  // on this).
  OperationBlock b1, b2;
  b1.ops = {{ElementOp::Kind::kSwitch, 1, topo::ElementState::kAbsent},
            {ElementOp::Kind::kCircuit, 0, topo::ElementState::kAbsent}};
  b2.ops = {{ElementOp::Kind::kSwitch, 2, topo::ElementState::kAbsent},
            {ElementOp::Kind::kCircuit, 0, topo::ElementState::kAbsent}};

  Diamond forward;
  b1.apply(forward.topo);
  b2.apply(forward.topo);
  Diamond backward;
  b2.apply(backward.topo);
  b1.apply(backward.topo);
  EXPECT_TRUE(topo::TopologyState::capture(forward.topo) ==
              topo::TopologyState::capture(backward.topo));
}

TEST(OperationBlock, Counters) {
  Diamond d;
  OperationBlock block;
  add_switch_with_circuits(d.topo, d.s, topo::ElementState::kAbsent, block);
  EXPECT_EQ(block.switch_count(), 1);
  EXPECT_EQ(block.circuit_count(), 2);  // s has two incident circuits
  EXPECT_DOUBLE_EQ(block.touched_capacity_tbps(d.topo), 2.0);
}

TEST(AddSwitchWithCircuits, IncludesAllIncident) {
  Diamond d;
  OperationBlock block;
  add_switch_with_circuits(d.topo, d.m1, topo::ElementState::kDrained,
                           block);
  block.apply(d.topo);
  EXPECT_EQ(d.topo.sw(d.m1).state, topo::ElementState::kDrained);
  EXPECT_EQ(d.topo.circuit(d.c_sm1).state, topo::ElementState::kDrained);
  EXPECT_EQ(d.topo.circuit(d.c_m1t).state, topo::ElementState::kDrained);
  EXPECT_EQ(d.topo.circuit(d.c_sm2).state, topo::ElementState::kActive);
}

// ---------------------------------------------------------------------------
// chunk_switches

TEST(ChunkSwitches, EvenSplit) {
  const std::vector<topo::SwitchId> items = {0, 1, 2, 3, 4, 5};
  const auto chunks = chunk_switches(items, 3);
  ASSERT_EQ(chunks.size(), 3u);
  for (const auto& chunk : chunks) EXPECT_EQ(chunk.size(), 2u);
}

TEST(ChunkSwitches, RemainderGoesToFirstChunks) {
  const std::vector<topo::SwitchId> items = {0, 1, 2, 3, 4};
  const auto chunks = chunk_switches(items, 3);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].size(), 2u);
  EXPECT_EQ(chunks[1].size(), 2u);
  EXPECT_EQ(chunks[2].size(), 1u);
}

TEST(ChunkSwitches, PreservesOrderAndElements) {
  const std::vector<topo::SwitchId> items = {7, 3, 9, 1};
  const auto chunks = chunk_switches(items, 2);
  std::vector<topo::SwitchId> flattened;
  for (const auto& chunk : chunks) {
    flattened.insert(flattened.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(flattened, items);
}

TEST(ChunkSwitches, ClampsChunkCount) {
  const std::vector<topo::SwitchId> items = {0, 1};
  EXPECT_EQ(chunk_switches(items, 10).size(), 2u);  // one per item
  EXPECT_EQ(chunk_switches(items, 0).size(), 1u);   // at least one chunk
  EXPECT_EQ(chunk_switches(items, -3).size(), 1u);
}

TEST(ChunkSwitches, EmptyInput) {
  EXPECT_TRUE(chunk_switches({}, 3).empty());
}

TEST(OpKind, Names) {
  EXPECT_EQ(to_string(OpKind::kDrain), "drain");
  EXPECT_EQ(to_string(OpKind::kUndrain), "undrain");
}

}  // namespace
}  // namespace klotski::migration
