#include <gtest/gtest.h>

#include <set>

#include "../test_helpers.h"
#include "klotski/migration/task_builder.h"
#include "klotski/topo/presets.h"

namespace klotski::migration {
namespace {

using klotski::testing::small_dmag_case;
using klotski::testing::small_hgrid_case;
using klotski::testing::small_ssw_case;

topo::RegionParams small_params() {
  return topo::preset_params(topo::PresetId::kA, topo::PresetScale::kFull);
}

// ---------------------------------------------------------------------------
// Invariants shared by all three task builders.

class TaskBuilderInvariants
    : public ::testing::TestWithParam<const char*> {
 protected:
  MigrationCase build() const {
    const std::string kind = GetParam();
    if (kind == "hgrid") return small_hgrid_case();
    if (kind == "ssw") return small_ssw_case();
    return small_dmag_case();
  }
};

TEST_P(TaskBuilderInvariants, TaskValidates) {
  MigrationCase mig = build();
  EXPECT_EQ(mig.task.validate(), "");
}

TEST_P(TaskBuilderInvariants, EverySwitchOperatedAtMostOnce) {
  MigrationCase mig = build();
  std::set<std::int32_t> seen;
  for (const auto& blocks : mig.task.blocks) {
    for (const OperationBlock& block : blocks) {
      for (const ElementOp& op : block.ops) {
        if (op.kind != ElementOp::Kind::kSwitch) continue;
        EXPECT_TRUE(seen.insert(op.id).second)
            << "switch " << mig.task.topo->sw(op.id).name
            << " appears in two blocks";
      }
    }
  }
}

TEST_P(TaskBuilderInvariants, OriginalStateIsCurrentState) {
  MigrationCase mig = build();
  EXPECT_TRUE(mig.task.original_state ==
              topo::TopologyState::capture(*mig.task.topo));
}

TEST_P(TaskBuilderInvariants, TargetDiffersFromOriginal) {
  MigrationCase mig = build();
  EXPECT_FALSE(mig.task.original_state == mig.task.target_state);
}

TEST_P(TaskBuilderInvariants, ActionCountsAreConsistent) {
  MigrationCase mig = build();
  const auto per_type = mig.task.actions_per_type();
  int total = 0;
  for (const auto n : per_type) total += n;
  EXPECT_EQ(total, mig.task.total_actions());
  EXPECT_EQ(per_type.size(),
            static_cast<std::size_t>(mig.task.num_action_types()));
}

TEST_P(TaskBuilderInvariants, BlockLabelsAreUnique) {
  MigrationCase mig = build();
  std::set<std::string> labels;
  for (const auto& blocks : mig.task.blocks) {
    for (const OperationBlock& block : blocks) {
      EXPECT_TRUE(labels.insert(block.label).second)
          << "duplicate label " << block.label;
    }
  }
}

TEST_P(TaskBuilderInvariants, PortBudgetsAdmitOriginalAndTarget) {
  MigrationCase mig = build();
  topo::Topology& topo = *mig.task.topo;
  mig.task.original_state.restore(topo);
  EXPECT_EQ(topo.validate(), "");
  mig.task.target_state.restore(topo);
  EXPECT_EQ(topo.validate(), "");
  mig.task.reset_to_original();
}

INSTANTIATE_TEST_SUITE_P(AllMigrationTypes, TaskBuilderInvariants,
                         ::testing::Values("hgrid", "ssw", "dmag"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// HGRID specifics

TEST(HgridBuilder, StagesMoreV2GridsByDefault) {
  MigrationCase mig = small_hgrid_case();
  // Default: ceil(1.5 * 2) = 3 V2 grids; more undrain than drain blocks.
  EXPECT_GT(mig.task.blocks[1].size(), mig.task.blocks[0].size());
}

TEST(HgridBuilder, TargetStateRemovesAllV1HgridSwitches) {
  MigrationCase mig = small_hgrid_case();
  mig.task.target_state.restore(*mig.task.topo);
  for (const topo::Switch& s : mig.task.topo->switches()) {
    if (s.role != topo::SwitchRole::kFadu &&
        s.role != topo::SwitchRole::kFauu) {
      continue;
    }
    if (s.gen == topo::Generation::kV1) {
      EXPECT_EQ(s.state, topo::ElementState::kAbsent) << s.name;
    } else {
      EXPECT_EQ(s.state, topo::ElementState::kActive) << s.name;
    }
  }
  mig.task.reset_to_original();
}

TEST(HgridBuilder, V2GridCountConfigurable) {
  HgridMigrationParams p;
  p.v2_grids = 5;
  MigrationCase mig = build_hgrid_migration(small_params(), p);
  std::set<int> v2_grid_ids;
  for (const topo::Switch& s : mig.task.topo->switches()) {
    if (s.gen == topo::Generation::kV2 &&
        s.role == topo::SwitchRole::kFauu) {
      v2_grid_ids.insert(s.loc.grid);
    }
  }
  EXPECT_EQ(v2_grid_ids.size(), 5u);
}

TEST(HgridBuilder, WithoutOperationBlocksOneSwitchPerBlock) {
  HgridMigrationParams p;
  p.policy.use_operation_blocks = false;
  MigrationCase mig = build_hgrid_migration(small_params(), p);
  for (const auto& blocks : mig.task.blocks) {
    for (const OperationBlock& block : blocks) {
      EXPECT_EQ(block.switch_count(), 1) << block.label;
    }
  }
}

TEST(HgridBuilder, BlockScaleChangesActionCount) {
  HgridMigrationParams base;
  base.fadu_chunks_per_grid_dc = 2;
  base.fauu_chunks_per_grid = 2;
  topo::RegionParams rp = small_params();
  rp.fadus_per_grid_per_dc = 4;
  rp.fauus_per_grid = 4;
  const int base_actions =
      build_hgrid_migration(rp, base).task.total_actions();

  HgridMigrationParams doubled = base;
  doubled.policy.block_scale = 2.0;
  EXPECT_GT(build_hgrid_migration(rp, doubled).task.total_actions(),
            base_actions);

  HgridMigrationParams halved = base;
  halved.policy.block_scale = 0.5;
  EXPECT_LT(build_hgrid_migration(rp, halved).task.total_actions(),
            base_actions);
}

TEST(HgridBuilder, SubUnityBlockScaleMergesGrids) {
  HgridMigrationParams merged;
  merged.policy.block_scale = 0.5;  // merge pairs of grids
  MigrationCase mig = build_hgrid_migration(small_params(), merged);
  // Preset A has 2 V1 grids -> one merged drain neighborhood:
  // one FADU block (per dc) + one FAUU block.
  EXPECT_EQ(mig.task.blocks[0].size(), 2u);
}

TEST(HgridBuilder, StagedHardwareIsAbsentInitially) {
  MigrationCase mig = small_hgrid_case();
  for (const topo::Switch& s : mig.task.topo->switches()) {
    if (s.gen == topo::Generation::kV2) {
      EXPECT_EQ(s.state, topo::ElementState::kAbsent) << s.name;
    }
  }
}

// ---------------------------------------------------------------------------
// SSW forklift specifics

TEST(SswBuilder, MirrorsWiringAtHigherCapacity) {
  MigrationCase mig = small_ssw_case();
  topo::Topology& topo = *mig.task.topo;
  // For every V2 SSW there is a V1 twin with identical neighbor multiset.
  for (const topo::Switch& s : topo.switches()) {
    if (s.role != topo::SwitchRole::kSsw ||
        s.gen != topo::Generation::kV2) {
      continue;
    }
    const std::string v1_name = s.name.substr(0, s.name.size() - 2);
    const topo::SwitchId twin = topo.find_switch(v1_name);
    ASSERT_NE(twin, topo::kInvalidSwitch) << v1_name;
    EXPECT_EQ(topo.incident(s.id).size(), topo.incident(twin).size());
  }
}

TEST(SswBuilder, OnlyRequestedDcForklifted) {
  SswForkliftParams p;
  topo::RegionParams rp =
      topo::preset_params(topo::PresetId::kB, topo::PresetScale::kFull);
  p.dc = 1;
  MigrationCase mig = build_ssw_forklift(rp, p);
  for (const topo::Switch& s : mig.task.topo->switches()) {
    if (s.role == topo::SwitchRole::kSsw &&
        s.gen == topo::Generation::kV2) {
      EXPECT_EQ(s.loc.dc, 1);
    }
  }
}

TEST(SswBuilder, AllDcsWhenRequested) {
  SswForkliftParams p;
  p.dc = -1;
  topo::RegionParams rp =
      topo::preset_params(topo::PresetId::kB, topo::PresetScale::kFull);
  MigrationCase mig = build_ssw_forklift(rp, p);
  std::set<int> dcs;
  for (const topo::Switch& s : mig.task.topo->switches()) {
    if (s.role == topo::SwitchRole::kSsw &&
        s.gen == topo::Generation::kV2) {
      dcs.insert(s.loc.dc);
    }
  }
  EXPECT_EQ(dcs.size(), 2u);
}

TEST(SswBuilder, RejectsOutOfRangeDc) {
  SswForkliftParams p;
  p.dc = 99;
  EXPECT_THROW(build_ssw_forklift(small_params(), p), std::invalid_argument);
}

TEST(SswBuilder, CapacityFactorApplied) {
  SswForkliftParams p;
  p.v2_capacity_factor = 2.0;
  MigrationCase mig = build_ssw_forklift(small_params(), p);
  const topo::Topology& topo = *mig.task.topo;
  for (const topo::Circuit& c : topo.circuits()) {
    const bool touches_v2_ssw =
        (topo.sw(c.a).role == topo::SwitchRole::kSsw &&
         topo.sw(c.a).gen == topo::Generation::kV2) ||
        (topo.sw(c.b).role == topo::SwitchRole::kSsw &&
         topo.sw(c.b).gen == topo::Generation::kV2);
    if (!touches_v2_ssw) continue;
    // Twice the corresponding layer capacity (0.2 FSW-side, 0.4 FADU-side).
    EXPECT_TRUE(c.capacity_tbps == 0.4 || c.capacity_tbps == 0.8)
        << c.capacity_tbps;
  }
}

// ---------------------------------------------------------------------------
// DMAG specifics

TEST(DmagBuilder, IntroducesMaRole) {
  MigrationCase mig = small_dmag_case();
  EXPECT_FALSE(
      mig.task.topo->switches_with_role(topo::SwitchRole::kMa).empty());
}

TEST(DmagBuilder, HasThreeActionTypes) {
  MigrationCase mig = small_dmag_case();
  EXPECT_EQ(mig.task.num_action_types(), 3);
}

TEST(DmagBuilder, TargetRetiresAllDirectFauuEbAndDrCircuits) {
  MigrationCase mig = small_dmag_case();
  topo::Topology& topo = *mig.task.topo;
  mig.task.target_state.restore(topo);
  for (const topo::Circuit& c : topo.circuits()) {
    const topo::Switch& a = topo.sw(c.a);
    const topo::Switch& b = topo.sw(c.b);
    const bool fauu_eb_or_dr =
        (a.role == topo::SwitchRole::kFauu &&
         (b.role == topo::SwitchRole::kEb ||
          b.role == topo::SwitchRole::kDr)) ||
        (b.role == topo::SwitchRole::kFauu &&
         (a.role == topo::SwitchRole::kEb ||
          a.role == topo::SwitchRole::kDr));
    if (fauu_eb_or_dr) {
      EXPECT_EQ(c.state, topo::ElementState::kAbsent);
    }
  }
  mig.task.reset_to_original();
}

TEST(DmagBuilder, EveryFauuReachesEveryEbViaMa) {
  MigrationCase mig = small_dmag_case();
  topo::Topology& topo = *mig.task.topo;
  mig.task.target_state.restore(topo);
  const auto ebs = topo.switches_with_role(topo::SwitchRole::kEb);
  for (const topo::Switch& s : topo.switches()) {
    if (s.role != topo::SwitchRole::kFauu) continue;
    std::set<topo::SwitchId> reachable_ebs;
    for (const topo::CircuitId cid : topo.incident(s.id)) {
      const topo::Circuit& c = topo.circuit(cid);
      if (c.state != topo::ElementState::kActive) continue;
      const topo::Switch& ma = topo.sw(c.other(s.id));
      if (ma.role != topo::SwitchRole::kMa) continue;
      for (const topo::CircuitId mcid : topo.incident(ma.id)) {
        const topo::Circuit& mc = topo.circuit(mcid);
        if (mc.state != topo::ElementState::kActive) continue;
        const topo::Switch& other = topo.sw(mc.other(ma.id));
        if (other.role == topo::SwitchRole::kEb) {
          reachable_ebs.insert(other.id);
        }
      }
    }
    EXPECT_EQ(reachable_ebs.size(), ebs.size()) << s.name;
  }
  mig.task.reset_to_original();
}

TEST(DmagBuilder, RejectsNonPositiveMaPerEb) {
  DmagMigrationParams p;
  p.ma_per_eb = 0;
  EXPECT_THROW(build_dmag_migration(small_params(), p),
               std::invalid_argument);
}

TEST(DmagBuilder, CircuitOnlyDrainBlocks) {
  MigrationCase mig = small_dmag_case();
  for (const OperationBlock& block : mig.task.blocks[0]) {
    EXPECT_EQ(block.switch_count(), 0) << block.label;
    EXPECT_GT(block.circuit_count(), 0) << block.label;
  }
}

}  // namespace
}  // namespace klotski::migration
