#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "../test_helpers.h"
#include "klotski/migration/family_tasks.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"

namespace klotski::migration {
namespace {

using klotski::testing::small_flat_case;
using klotski::testing::small_reconf_case;

// ---------------------------------------------------------------------------
// Invariants shared by both family task builders (mirrors the Clos-builder
// invariant suite in task_builder_test.cpp).

class FamilyTaskInvariants : public ::testing::TestWithParam<const char*> {
 protected:
  MigrationCase build() const {
    return std::string(GetParam()) == "flat" ? small_flat_case()
                                             : small_reconf_case();
  }
};

TEST_P(FamilyTaskInvariants, TaskValidates) {
  MigrationCase mig = build();
  EXPECT_EQ(mig.task.validate(), "");
}

TEST_P(FamilyTaskInvariants, OriginalStateIsCurrentState) {
  MigrationCase mig = build();
  EXPECT_TRUE(mig.task.original_state ==
              topo::TopologyState::capture(*mig.task.topo));
}

TEST_P(FamilyTaskInvariants, TargetDiffersFromOriginal) {
  MigrationCase mig = build();
  EXPECT_FALSE(mig.task.original_state == mig.task.target_state);
}

TEST_P(FamilyTaskInvariants, BlockLabelsAreUnique) {
  MigrationCase mig = build();
  std::set<std::string> labels;
  for (const auto& blocks : mig.task.blocks) {
    for (const OperationBlock& block : blocks) {
      EXPECT_TRUE(labels.insert(block.label).second)
          << "duplicate label " << block.label;
    }
  }
}

TEST_P(FamilyTaskInvariants, PortBudgetsAdmitOriginalAndTarget) {
  MigrationCase mig = build();
  topo::Topology& topo = *mig.task.topo;
  mig.task.original_state.restore(topo);
  EXPECT_EQ(topo.validate(), "");
  mig.task.target_state.restore(topo);
  EXPECT_EQ(topo.validate(), "");
  mig.task.reset_to_original();
}

INSTANTIATE_TEST_SUITE_P(BothFamilies, FamilyTaskInvariants,
                         ::testing::Values("flat", "reconf"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Flat partial forklift specifics

TEST(FlatMigration, UpgradedSetIsIndependent) {
  MigrationCase mig = small_flat_case();
  const topo::Topology& topo = *mig.task.topo;
  // Drained switches (type-0 blocks) must form an independent set: no
  // circuit of the original graph joins two of them, so every V2 mirror's
  // neighbors stay active through the whole migration.
  std::set<std::int32_t> drained;
  for (const OperationBlock& block : mig.task.blocks[0]) {
    for (const ElementOp& op : block.ops) {
      if (op.kind == ElementOp::Kind::kSwitch) drained.insert(op.id);
    }
  }
  EXPECT_FALSE(drained.empty());
  for (const std::int32_t sw : drained) {
    for (const topo::CircuitId cid :
         topo.incident(static_cast<topo::SwitchId>(sw))) {
      const topo::Circuit& c = topo.circuit(cid);
      const topo::SwitchId other =
          c.other(static_cast<topo::SwitchId>(sw));
      if (topo.sw(other).gen == topo::Generation::kV1) {
        EXPECT_EQ(drained.count(static_cast<std::int32_t>(other)), 0u)
            << "adjacent upgrades " << topo.sw(c.a).name << " and "
            << topo.sw(c.b).name;
      }
    }
  }
}

TEST(FlatMigration, TargetCapacityIncreases) {
  MigrationCase mig = small_flat_case();
  const double before = mig.task.topo->active_capacity_tbps();
  mig.task.target_state.restore(*mig.task.topo);
  const double after = mig.task.topo->active_capacity_tbps();
  mig.task.reset_to_original();
  EXPECT_GT(after, before);
}

TEST(FlatMigration, MirrorsPreserveDegree) {
  MigrationCase mig = small_flat_case();
  topo::Topology& topo = *mig.task.topo;
  for (const topo::Switch& s : topo.switches()) {
    if (s.gen != topo::Generation::kV2) continue;
    const std::string v1_name = s.name.substr(0, s.name.size() - 2);
    const topo::SwitchId twin = topo.find_switch(v1_name);
    ASSERT_NE(twin, topo::kInvalidSwitch) << v1_name;
    EXPECT_EQ(topo.incident(s.id).size(), topo.incident(twin).size());
  }
}

TEST(FlatMigration, RejectsBadFraction) {
  FlatMigrationParams p;
  p.upgrade_fraction = 0.0;
  EXPECT_THROW(build_flat_migration({}, p), std::invalid_argument);
  p.upgrade_fraction = 1.5;
  EXPECT_THROW(build_flat_migration({}, p), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Reconf rewire specifics

TEST(ReconfMigration, CircuitOnlyBlocks) {
  MigrationCase mig = small_reconf_case();
  for (const auto& blocks : mig.task.blocks) {
    for (const OperationBlock& block : blocks) {
      EXPECT_EQ(block.switch_count(), 0) << block.label;
      EXPECT_GT(block.circuit_count(), 0) << block.label;
    }
  }
}

TEST(ReconfMigration, TargetRewiresWithoutTouchingSharedStrides) {
  MigrationCase mig = small_reconf_case();
  topo::Topology& topo = *mig.task.topo;
  const topo::Region& region = *mig.region;
  mig.task.target_state.restore(topo);
  for (const topo::MeshStrideCircuits& group : region.mesh_strides) {
    const topo::ElementState want =
        group.shared || group.gen == topo::Generation::kV2
            ? topo::ElementState::kActive
            : topo::ElementState::kAbsent;
    for (const topo::CircuitId cid : group.circuits) {
      EXPECT_EQ(topo.circuit(cid).state, want)
          << "stride " << group.stride;
    }
  }
  mig.task.reset_to_original();
}

TEST(ReconfMigration, RejectsIdenticalPatterns) {
  topo::ReconfParams p;
  p.v2_strides = p.v1_strides;
  EXPECT_THROW(build_reconf_migration(p, {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Feasibility: the optimal planners find (and agree on) plans for the
// canonical family experiments — the calibration check that mesh demands
// forbid bulk drains without making the task unsolvable.

struct FamilyPreset {
  topo::TopologyFamily family;
  topo::PresetId preset;
};

class FamilyFeasibility : public ::testing::TestWithParam<FamilyPreset> {};

TEST_P(FamilyFeasibility, OptimalPlannersAgreeAndPassAudit) {
  MigrationCase mig = pipeline::build_family_experiment(
      GetParam().family, GetParam().preset, topo::PresetScale::kReduced);
  MigrationTask& task = mig.task;

  auto run = [&](const char* name) {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    core::PlannerOptions options;
    options.deadline_seconds = 120;
    return pipeline::make_planner(name)->plan(task, *bundle.checker, options);
  };

  const core::Plan astar = run("astar");
  const core::Plan dp = run("dp");
  ASSERT_TRUE(astar.found) << astar.failure;
  ASSERT_TRUE(dp.found) << dp.failure;
  EXPECT_DOUBLE_EQ(astar.cost, dp.cost);

  for (const core::Plan* plan : {&astar, &dp}) {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    EXPECT_TRUE(pipeline::audit_plan(task, *bundle.checker, *plan).ok)
        << plan->planner;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamilyGrid, FamilyFeasibility,
    ::testing::Values(
        FamilyPreset{topo::TopologyFamily::kFlat, topo::PresetId::kA},
        FamilyPreset{topo::TopologyFamily::kFlat, topo::PresetId::kB},
        FamilyPreset{topo::TopologyFamily::kReconf, topo::PresetId::kA},
        FamilyPreset{topo::TopologyFamily::kReconf, topo::PresetId::kB}),
    [](const auto& info) {
      return topo::to_string(info.param.family) + "_" +
             topo::to_string(info.param.preset);
    });

// The mesh demand calibration must actually bite: draining every operated
// element at once (the no-plan-at-all strawman) violates the safety
// constraints, otherwise the planning problem is trivial.
TEST(FamilyCalibration, BulkDrainViolatesConstraints) {
  for (const char* which : {"flat", "reconf"}) {
    MigrationCase mig = std::string(which) == "flat" ? small_flat_case()
                                                     : small_reconf_case();
    MigrationTask& task = mig.task;
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    for (const OperationBlock& block : task.blocks[0]) {
      block.apply(*task.topo);
    }
    EXPECT_FALSE(bundle.checker->check(*task.topo).satisfied)
        << which << ": draining all V1 at once should be unsafe";
    task.reset_to_original();
  }
}

}  // namespace
}  // namespace klotski::migration
