// Randomized equivalence suite for IncrementalSymmetry (DESIGN.md §11):
// across hundreds of seeded journal mutations — element state flips,
// capacity edits with out-of-band version bumps, journal-overflowing bursts
// and full state restores — every refresh() must equal a from-scratch
// compute_symmetry() bit for bit, and changed_switches() must equal the
// brute-force diff of class membership sets between consecutive partitions.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "../test_helpers.h"
#include "klotski/migration/symmetry.h"
#include "klotski/topo/families.h"
#include "klotski/topo/presets.h"

namespace klotski::migration {
namespace {

void expect_same_partition(const SymmetryPartition& incremental,
                           const SymmetryPartition& fresh, int mutation) {
  ASSERT_EQ(incremental.class_of, fresh.class_of)
      << "class_of diverged after mutation " << mutation;
  ASSERT_EQ(incremental.blocks, fresh.blocks)
      << "blocks diverged after mutation " << mutation;
}

/// Brute force: s changed iff the set of switches sharing s's class differs
/// between the two partitions.
std::vector<topo::SwitchId> changed_by_membership(
    const SymmetryPartition& before, const SymmetryPartition& after) {
  std::vector<topo::SwitchId> changed;
  for (std::size_t s = 0; s < after.class_of.size(); ++s) {
    const auto& now =
        after.blocks[static_cast<std::size_t>(after.class_of[s])];
    if (s >= before.class_of.size()) {
      changed.push_back(static_cast<topo::SwitchId>(s));
      continue;
    }
    const auto& then =
        before.blocks[static_cast<std::size_t>(before.class_of[s])];
    if (now != then) changed.push_back(static_cast<topo::SwitchId>(s));
  }
  return changed;
}

TEST(SymmetryIncremental, FirstRefreshEqualsFullComputeAndListsEverything) {
  const topo::Region region =
      topo::build_preset(topo::PresetId::kA, topo::PresetScale::kFull);
  IncrementalSymmetry inc;
  const SymmetryPartition& got = inc.refresh(region.topo);
  expect_same_partition(got, compute_symmetry(region.topo), 0);
  EXPECT_EQ(inc.changed_switches().size(), region.topo.num_switches());
  EXPECT_EQ(inc.full_refreshes(), 1);
}

TEST(SymmetryIncremental, NoChangeRefreshChangesNothing) {
  topo::Region region =
      topo::build_preset(topo::PresetId::kA, topo::PresetScale::kFull);
  IncrementalSymmetry inc;
  inc.refresh(region.topo);
  const SymmetryPartition& again = inc.refresh(region.topo);
  expect_same_partition(again, compute_symmetry(region.topo), 1);
  EXPECT_TRUE(inc.changed_switches().empty());
}

/// The randomized journal-mutation property: across `mutations` seeded
/// mutations of every flavor, refresh() must equal compute_symmetry() bit
/// for bit and changed_switches() must equal the brute-force membership
/// diff. Shared by the per-family suites below.
void run_randomized_mutations(topo::Region& region, std::uint64_t seed,
                              int mutations) {
  topo::Topology& topo = region.topo;
  const topo::TopologyState original = topo::TopologyState::capture(topo);
  const std::size_t num_switches = topo.num_switches();
  const std::size_t num_circuits = topo.num_circuits();
  ASSERT_GT(num_switches, 0u);
  ASSERT_GT(num_circuits, 0u);

  std::mt19937_64 rng(seed);
  IncrementalSymmetry inc;
  SymmetryPartition before = inc.refresh(topo);

  for (int mutation = 1; mutation <= mutations; ++mutation) {
    switch (rng() % 6) {
      case 0: {  // flip a switch through the journal
        const auto s = static_cast<topo::SwitchId>(rng() % num_switches);
        topo.set_switch_state(s, topo.sw(s).state == topo::ElementState::kActive
                                     ? topo::ElementState::kDrained
                                     : topo::ElementState::kActive);
        break;
      }
      case 1: {  // flip a circuit through the journal
        const auto c = static_cast<topo::CircuitId>(rng() % num_circuits);
        topo.set_circuit_state(c,
                               topo.circuit(c).state ==
                                       topo::ElementState::kActive
                                   ? topo::ElementState::kDrained
                                   : topo::ElementState::kActive);
        break;
      }
      case 2: {  // out-of-band capacity edit: journal knows nothing, the
                 // version bump forces the snapshot-diff fallback
        const auto c = static_cast<topo::CircuitId>(rng() % num_circuits);
        topo.circuit(c).capacity_tbps =
            topo.circuit(c).capacity_tbps > 1.0 ? 1.0 : 2.0;
        topo.bump_state_version();
        break;
      }
      case 3: {  // burst of flips — overflows short journals
        for (int i = 0; i < 40; ++i) {
          const auto s = static_cast<topo::SwitchId>(rng() % num_switches);
          topo.set_switch_state(
              s, topo.sw(s).state == topo::ElementState::kActive
                     ? topo::ElementState::kDrained
                     : topo::ElementState::kActive);
        }
        break;
      }
      case 4: {  // restore everything (versioned bulk rewrite)
        original.restore(topo);
        break;
      }
      default:  // refresh with no change at all
        break;
    }

    const SymmetryPartition& got = inc.refresh(topo);
    const SymmetryPartition fresh = compute_symmetry(topo);
    expect_same_partition(got, fresh, mutation);

    const std::vector<topo::SwitchId> expected =
        changed_by_membership(before, fresh);
    ASSERT_EQ(inc.changed_switches(), expected)
        << "changed_switches diverged after mutation " << mutation;
    before = fresh;
  }
  // The suite must actually exercise the incremental path, not fall back to
  // full recomputes throughout.
  EXPECT_GT(inc.incremental_refreshes(), 0);
}

TEST(SymmetryIncremental, RandomizedJournalMutationsMatchFullRecompute) {
  topo::Region region =
      topo::build_preset(topo::PresetId::kB, topo::PresetScale::kReduced);
  run_randomized_mutations(region, 20260807, 200);
}

TEST(SymmetryIncremental, RandomizedMutationsMatchFullRecomputeFlat) {
  topo::Region region = topo::build_flat(
      topo::flat_params(topo::PresetId::kB, topo::PresetScale::kReduced));
  run_randomized_mutations(region, 20260808, 200);
}

TEST(SymmetryIncremental, RandomizedMutationsMatchFullRecomputeReconf) {
  topo::Region region = topo::build_reconf(
      topo::reconf_params(topo::PresetId::kB, topo::PresetScale::kReduced));
  run_randomized_mutations(region, 20260809, 200);
}

TEST(SymmetryIncremental, FlatIrregularityShrinksSymmetryBlocks) {
  // Flat fabrics are intentionally irregular: the extra seeded chords must
  // break the ring automorphisms, so the partition has many more classes
  // than the role-uniform Clos layers would suggest.
  const topo::Region region = topo::build_flat(
      topo::flat_params(topo::PresetId::kB, topo::PresetScale::kReduced));
  const SymmetryPartition part = compute_symmetry(region.topo);
  EXPECT_GT(part.blocks.size(), region.topo.num_switches() / 4)
      << "flat fabric collapsed into a few symmetry classes; the chord "
         "seeding no longer produces degree irregularity";
}

TEST(SymmetryIncremental, SwitchingTopologyObjectsRunsFull) {
  topo::Region a =
      topo::build_preset(topo::PresetId::kA, topo::PresetScale::kFull);
  topo::Region b =
      topo::build_preset(topo::PresetId::kB, topo::PresetScale::kReduced);
  IncrementalSymmetry inc;
  inc.refresh(a.topo);
  const SymmetryPartition& got = inc.refresh(b.topo);
  expect_same_partition(got, compute_symmetry(b.topo), 1);
  EXPECT_EQ(inc.changed_switches().size(), b.topo.num_switches());
  EXPECT_EQ(inc.full_refreshes(), 2);
}

}  // namespace
}  // namespace klotski::migration
