#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/migration/symmetry.h"
#include "klotski/topo/presets.h"

namespace klotski::migration {
namespace {

using klotski::testing::Diamond;

TEST(Symmetry, DiamondMiddlesAreEquivalent) {
  Diamond d;
  const SymmetryPartition partition = compute_symmetry(d.topo);
  EXPECT_TRUE(equivalent(partition, d.m1, d.m2));
  EXPECT_FALSE(equivalent(partition, d.s, d.t));   // different roles
  EXPECT_FALSE(equivalent(partition, d.s, d.m1));
}

TEST(Symmetry, CapacityBreaksEquivalence) {
  Diamond d;
  d.topo.circuit(d.c_sm1).capacity_tbps = 2.0;
  const SymmetryPartition partition = compute_symmetry(d.topo);
  EXPECT_FALSE(equivalent(partition, d.m1, d.m2));
}

TEST(Symmetry, StateBreaksEquivalence) {
  Diamond d;
  d.topo.sw(d.m1).state = topo::ElementState::kDrained;
  const SymmetryPartition partition = compute_symmetry(d.topo);
  EXPECT_FALSE(equivalent(partition, d.m1, d.m2));
}

TEST(Symmetry, PortBudgetBreaksEquivalence) {
  Diamond d;
  d.topo.sw(d.m1).max_ports = 64;
  const SymmetryPartition partition = compute_symmetry(d.topo);
  EXPECT_FALSE(equivalent(partition, d.m1, d.m2));
}

TEST(Symmetry, RefinementPropagates) {
  // A path a - b - c - d: b and c have the same role and degree, but b's
  // neighbor a differs from c's neighbor d (different roles), so refinement
  // must separate b from c.
  topo::Topology t;
  const auto a = t.add_switch(topo::SwitchRole::kRsw, topo::Generation::kV1,
                              {}, 8, topo::ElementState::kActive, "a");
  const auto b = t.add_switch(topo::SwitchRole::kFsw, topo::Generation::kV1,
                              {}, 8, topo::ElementState::kActive, "b");
  const auto c = t.add_switch(topo::SwitchRole::kFsw, topo::Generation::kV1,
                              {}, 8, topo::ElementState::kActive, "c");
  const auto d = t.add_switch(topo::SwitchRole::kEbb, topo::Generation::kV1,
                              {}, 8, topo::ElementState::kActive, "d");
  t.add_circuit(a, b, 1.0, topo::ElementState::kActive);
  t.add_circuit(b, c, 1.0, topo::ElementState::kActive);
  t.add_circuit(c, d, 1.0, topo::ElementState::kActive);
  const SymmetryPartition partition = compute_symmetry(t);
  EXPECT_FALSE(equivalent(partition, b, c));
}

TEST(Symmetry, ClassOfCoversEverySwitch) {
  const topo::Region region =
      topo::build_preset(topo::PresetId::kB, topo::PresetScale::kFull);
  const SymmetryPartition partition = compute_symmetry(region.topo);
  ASSERT_EQ(partition.class_of.size(), region.topo.num_switches());
  std::size_t total = 0;
  for (const auto& block : partition.blocks) total += block.size();
  EXPECT_EQ(total, region.topo.num_switches());
  for (std::size_t c = 0; c < partition.blocks.size(); ++c) {
    for (const topo::SwitchId id : partition.blocks[c]) {
      EXPECT_EQ(partition.class_of[static_cast<std::size_t>(id)],
                static_cast<std::int32_t>(c));
    }
  }
}

TEST(Symmetry, PristineRegionHasLargeBlocks) {
  // Before any migration stages asymmetric hardware, the synthesized region
  // is highly symmetric: equivalent RSWs/SSWs form sizable classes.
  const topo::Region region =
      topo::build_preset(topo::PresetId::kB, topo::PresetScale::kFull);
  const SymmetryPartition partition = compute_symmetry(region.topo);
  EXPECT_GE(partition.largest_block(), 4u);
}

TEST(Symmetry, ClassesNeverMixRoleGenerationOrState) {
  // Everything a constraint can observe locally must be constant within a
  // class — otherwise treating class members as interchangeable would be
  // unsound. (Note the paper's §4.1 observation that production symmetry
  // blocks are tiny stems from organic heterogeneity our synthesizer does
  // not fully reproduce; pristine synthesized regions are *more* symmetric
  // than Meta's, see DESIGN.md.)
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  const SymmetryPartition partition = compute_symmetry(*mig.task.topo);
  for (const auto& block : partition.blocks) {
    const topo::Switch& first = mig.task.topo->sw(block.front());
    for (const topo::SwitchId id : block) {
      const topo::Switch& s = mig.task.topo->sw(id);
      EXPECT_EQ(s.role, first.role);
      EXPECT_EQ(s.gen, first.gen);
      EXPECT_EQ(s.state, first.state);
      EXPECT_EQ(s.max_ports, first.max_ports);
    }
  }
}

TEST(Symmetry, StagedV1AndV2HardwareNeverShareAClass) {
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  const SymmetryPartition partition = compute_symmetry(*mig.task.topo);
  for (const auto& block : partition.blocks) {
    bool has_v1 = false;
    bool has_v2 = false;
    for (const topo::SwitchId id : block) {
      (mig.task.topo->sw(id).gen == topo::Generation::kV1 ? has_v1 : has_v2) =
          true;
    }
    EXPECT_FALSE(has_v1 && has_v2);
  }
}

TEST(Symmetry, EquivalentSwitchesAreConstraintInterchangeable) {
  // Soundness: swapping the states of two equivalent switches must yield an
  // equally-feasible topology. Drain one of two equivalent middles and
  // check the worst utilization is the same either way.
  Diamond drained_m1;
  drained_m1.topo.sw(drained_m1.m1).state = topo::ElementState::kDrained;
  Diamond drained_m2;
  drained_m2.topo.sw(drained_m2.m2).state = topo::ElementState::kDrained;

  traffic::EcmpRouter r1(drained_m1.topo);
  traffic::EcmpRouter r2(drained_m2.topo);
  traffic::LoadVector l1, l2;
  ASSERT_TRUE(r1.assign(drained_m1.demand(1.0), l1));
  ASSERT_TRUE(r2.assign(drained_m2.demand(1.0), l2));
  EXPECT_DOUBLE_EQ(traffic::max_utilization(drained_m1.topo, l1),
                   traffic::max_utilization(drained_m2.topo, l2));
}

TEST(Symmetry, SizeHistogramSumsToBlockCount) {
  const topo::Region region =
      topo::build_preset(topo::PresetId::kA, topo::PresetScale::kFull);
  const SymmetryPartition partition = compute_symmetry(region.topo);
  std::size_t blocks = 0;
  for (const auto& [size, count] : partition.size_histogram()) {
    (void)size;
    blocks += count;
  }
  EXPECT_EQ(blocks, partition.num_blocks());
}

}  // namespace
}  // namespace klotski::migration
