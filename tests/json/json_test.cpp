#include <gtest/gtest.h>

#include "klotski/json/json.h"

namespace klotski::json {
namespace {

// ---------------------------------------------------------------------------
// Parsing scalars

TEST(JsonParse, Null) { EXPECT_TRUE(parse("null").is_null()); }

TEST(JsonParse, Booleans) {
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
}

TEST(JsonParse, Integers) {
  EXPECT_EQ(parse("0").as_int(), 0);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_EQ(parse("9007199254740993").as_int(), 9007199254740993LL);
}

TEST(JsonParse, Doubles) {
  EXPECT_DOUBLE_EQ(parse("1.5").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(parse("-2.5e3").as_double(), -2500.0);
  EXPECT_DOUBLE_EQ(parse("1e-3").as_double(), 0.001);
}

TEST(JsonParse, IntAcceptedAsDouble) {
  EXPECT_DOUBLE_EQ(parse("7").as_double(), 7.0);
}

TEST(JsonParse, IntegralDoubleAcceptedAsInt) {
  EXPECT_EQ(parse("3.0").as_int(), 3);
}

TEST(JsonParse, Strings) {
  EXPECT_EQ(parse("\"hello\"").as_string(), "hello");
  EXPECT_EQ(parse("\"\"").as_string(), "");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xC3\xA9");      // e-acute
  EXPECT_EQ(parse("\"\\u20ac\"").as_string(), "\xE2\x82\xAC");  // euro sign
}

// ---------------------------------------------------------------------------
// Containers

TEST(JsonParse, Arrays) {
  const Value v = parse("[1, 2, 3]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 3u);
  EXPECT_EQ(v.as_array()[2].as_int(), 3);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("[]").as_array().empty());
  EXPECT_TRUE(parse("{}").as_object().empty());
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a": {"b": [1, {"c": true}]}})");
  EXPECT_TRUE(v.at("a").at("b").as_array()[1].at("c").as_bool());
}

TEST(JsonParse, ObjectKeyOrderPreserved) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  std::vector<std::string> keys;
  for (const auto& [k, unused] : v.as_object()) {
    (void)unused;
    keys.push_back(k);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonParse, WhitespaceTolerated) {
  const Value v = parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

// ---------------------------------------------------------------------------
// Errors

TEST(JsonParse, TrailingGarbageRejected) {
  EXPECT_THROW(parse("true false"), JsonError);
}

TEST(JsonParse, UnterminatedStringRejected) {
  EXPECT_THROW(parse("\"abc"), JsonError);
}

TEST(JsonParse, BadEscapeRejected) {
  EXPECT_THROW(parse(R"("\q")"), JsonError);
}

TEST(JsonParse, UnescapedControlCharacterRejected) {
  EXPECT_THROW(parse("\"a\nb\""), JsonError);
}

TEST(JsonParse, MissingCommaRejected) {
  EXPECT_THROW(parse("[1 2]"), JsonError);
}

TEST(JsonParse, BareMinusRejected) { EXPECT_THROW(parse("-"), JsonError); }

TEST(JsonParse, ErrorMessagesIncludeLineAndColumn) {
  try {
    parse("{\n  \"a\": ???\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(JsonValue, TypeMismatchThrows) {
  EXPECT_THROW(parse("1").as_string(), JsonError);
  EXPECT_THROW(parse("\"x\"").as_int(), JsonError);
  EXPECT_THROW(parse("[]").as_object(), JsonError);
  EXPECT_THROW(parse("1.5").as_int(), JsonError);  // non-integral double
}

TEST(JsonValue, MissingKeyThrowsWithKeyName) {
  try {
    parse("{}").at("needle");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("needle"), std::string::npos);
  }
}

TEST(JsonValue, OptionalLookups) {
  const Value v = parse(R"({"i": 5, "d": 2.5, "s": "x", "b": true})");
  EXPECT_EQ(v.get_int("i", 0), 5);
  EXPECT_EQ(v.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(v.get_double("d", 0), 2.5);
  EXPECT_EQ(v.get_string("s", ""), "x");
  EXPECT_TRUE(v.get_bool("b", false));
}

// ---------------------------------------------------------------------------
// Serialization

TEST(JsonDump, CompactRoundTrip) {
  const char* text =
      R"({"name":"klotski","n":3,"pi":1.5,"flag":true,"none":null,)"
      R"("list":[1,"two",false],"nested":{"k":"v"}})";
  const Value v = parse(text);
  const Value round = parse(dump(v));
  EXPECT_TRUE(v == round);
}

TEST(JsonDump, PrettyRoundTrip) {
  const Value v = parse(R"({"a": [1, 2], "b": {"c": null}})");
  const std::string pretty = dump(v, 2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_TRUE(parse(pretty) == v);
}

TEST(JsonDump, EscapesSpecialCharacters) {
  const std::string out = dump(Value(std::string("a\"b\\c\nd\x01")));
  EXPECT_EQ(out, R"("a\"b\\c\nd\u0001")");
  EXPECT_EQ(parse(out).as_string(), "a\"b\\c\nd\x01");
}

TEST(JsonDump, DoublesSurviveRoundTrip) {
  const double values[] = {0.1, 1e-9, 12345.6789, -2.5e30};
  for (const double d : values) {
    EXPECT_DOUBLE_EQ(parse(dump(Value(d))).as_double(), d);
  }
}

// ---------------------------------------------------------------------------
// Equality

TEST(JsonEquality, NumericCrossTypeEquality) {
  EXPECT_TRUE(parse("3") == parse("3.0"));
  EXPECT_FALSE(parse("3") == parse("3.5"));
}

TEST(JsonEquality, ObjectsCompareByContentNotOrder) {
  EXPECT_TRUE(parse(R"({"a":1,"b":2})") == parse(R"({"b":2,"a":1})"));
  EXPECT_FALSE(parse(R"({"a":1})") == parse(R"({"a":1,"b":2})"));
}

TEST(JsonEquality, ArraysCompareElementwise) {
  EXPECT_TRUE(parse("[1,[2]]") == parse("[1,[2]]"));
  EXPECT_FALSE(parse("[1,2]") == parse("[2,1]"));
}

TEST(JsonObject, SubscriptInsertsAndFinds) {
  Object o;
  o["k"] = Value(1);
  o["k"] = Value(2);  // overwrite, no duplicate
  EXPECT_EQ(o.size(), 1u);
  ASSERT_NE(o.find("k"), nullptr);
  EXPECT_EQ(o.find("k")->as_int(), 2);
  EXPECT_EQ(o.find("absent"), nullptr);
}

}  // namespace
}  // namespace klotski::json
