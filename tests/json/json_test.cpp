#include <gtest/gtest.h>

#include <clocale>
#include <string>

#include "klotski/json/json.h"

namespace klotski::json {
namespace {

// ---------------------------------------------------------------------------
// Parsing scalars

TEST(JsonParse, Null) { EXPECT_TRUE(parse("null").is_null()); }

TEST(JsonParse, Booleans) {
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
}

TEST(JsonParse, Integers) {
  EXPECT_EQ(parse("0").as_int(), 0);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_EQ(parse("9007199254740993").as_int(), 9007199254740993LL);
}

TEST(JsonParse, Doubles) {
  EXPECT_DOUBLE_EQ(parse("1.5").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(parse("-2.5e3").as_double(), -2500.0);
  EXPECT_DOUBLE_EQ(parse("1e-3").as_double(), 0.001);
}

TEST(JsonParse, IntAcceptedAsDouble) {
  EXPECT_DOUBLE_EQ(parse("7").as_double(), 7.0);
}

TEST(JsonParse, IntegralDoubleAcceptedAsInt) {
  EXPECT_EQ(parse("3.0").as_int(), 3);
}

TEST(JsonParse, Strings) {
  EXPECT_EQ(parse("\"hello\"").as_string(), "hello");
  EXPECT_EQ(parse("\"\"").as_string(), "");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xC3\xA9");      // e-acute
  EXPECT_EQ(parse("\"\\u20ac\"").as_string(), "\xE2\x82\xAC");  // euro sign
}

TEST(JsonParse, SurrogatePairDecodesToOneCodePoint) {
  // U+1F600 GRINNING FACE: \ud83d\ude00 must become the single 4-byte
  // UTF-8 sequence F0 9F 98 80, not two 3-byte surrogate encodings.
  EXPECT_EQ(parse("\"\\ud83d\\ude00\"").as_string(), "\xF0\x9F\x98\x80");
  // U+10000, the first astral code point.
  EXPECT_EQ(parse("\"\\ud800\\udc00\"").as_string(), "\xF0\x90\x80\x80");
  // U+10FFFF, the last one.
  EXPECT_EQ(parse("\"\\udbff\\udfff\"").as_string(), "\xF4\x8F\xBF\xBF");
  // Uppercase hex digits work too.
  EXPECT_EQ(parse("\"\\uD83D\\uDE00\"").as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, LoneSurrogatesRejected) {
  EXPECT_THROW(parse("\"\\ud83d\""), JsonError);         // lone high
  EXPECT_THROW(parse("\"\\ude00\""), JsonError);         // lone low
  EXPECT_THROW(parse("\"\\ud83d rest\""), JsonError);    // high + text
  EXPECT_THROW(parse("\"\\ud83d\\u0041\""), JsonError);  // high + non-low
  EXPECT_THROW(parse("\"\\ud83d\\ud83d\""), JsonError);  // high + high
}

// ---------------------------------------------------------------------------
// Containers

TEST(JsonParse, Arrays) {
  const Value v = parse("[1, 2, 3]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 3u);
  EXPECT_EQ(v.as_array()[2].as_int(), 3);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("[]").as_array().empty());
  EXPECT_TRUE(parse("{}").as_object().empty());
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a": {"b": [1, {"c": true}]}})");
  EXPECT_TRUE(v.at("a").at("b").as_array()[1].at("c").as_bool());
}

TEST(JsonParse, ObjectKeyOrderPreserved) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  std::vector<std::string> keys;
  for (const auto& [k, unused] : v.as_object()) {
    (void)unused;
    keys.push_back(k);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonParse, WhitespaceTolerated) {
  const Value v = parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

// ---------------------------------------------------------------------------
// Errors

TEST(JsonParse, TrailingGarbageRejected) {
  EXPECT_THROW(parse("true false"), JsonError);
}

TEST(JsonParse, UnterminatedStringRejected) {
  EXPECT_THROW(parse("\"abc"), JsonError);
}

TEST(JsonParse, BadEscapeRejected) {
  EXPECT_THROW(parse(R"("\q")"), JsonError);
}

TEST(JsonParse, UnescapedControlCharacterRejected) {
  EXPECT_THROW(parse("\"a\nb\""), JsonError);
}

TEST(JsonParse, MissingCommaRejected) {
  EXPECT_THROW(parse("[1 2]"), JsonError);
}

TEST(JsonParse, BareMinusRejected) { EXPECT_THROW(parse("-"), JsonError); }

TEST(JsonParse, ErrorMessagesIncludeLineAndColumn) {
  try {
    parse("{\n  \"a\": ???\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(JsonValue, TypeMismatchThrows) {
  EXPECT_THROW(parse("1").as_string(), JsonError);
  EXPECT_THROW(parse("\"x\"").as_int(), JsonError);
  EXPECT_THROW(parse("[]").as_object(), JsonError);
  EXPECT_THROW(parse("1.5").as_int(), JsonError);  // non-integral double
}

TEST(JsonValue, MissingKeyThrowsWithKeyName) {
  try {
    parse("{}").at("needle");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("needle"), std::string::npos);
  }
}

TEST(JsonValue, OptionalLookups) {
  const Value v = parse(R"({"i": 5, "d": 2.5, "s": "x", "b": true})");
  EXPECT_EQ(v.get_int("i", 0), 5);
  EXPECT_EQ(v.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(v.get_double("d", 0), 2.5);
  EXPECT_EQ(v.get_string("s", ""), "x");
  EXPECT_TRUE(v.get_bool("b", false));
}

// ---------------------------------------------------------------------------
// Serialization

TEST(JsonDump, CompactRoundTrip) {
  const char* text =
      R"({"name":"klotski","n":3,"pi":1.5,"flag":true,"none":null,)"
      R"("list":[1,"two",false],"nested":{"k":"v"}})";
  const Value v = parse(text);
  const Value round = parse(dump(v));
  EXPECT_TRUE(v == round);
}

TEST(JsonDump, PrettyRoundTrip) {
  const Value v = parse(R"({"a": [1, 2], "b": {"c": null}})");
  const std::string pretty = dump(v, 2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_TRUE(parse(pretty) == v);
}

TEST(JsonDump, EscapesSpecialCharacters) {
  const std::string out = dump(Value(std::string("a\"b\\c\nd\x01")));
  EXPECT_EQ(out, R"("a\"b\\c\nd\u0001")");
  EXPECT_EQ(parse(out).as_string(), "a\"b\\c\nd\x01");
}

TEST(JsonDump, DoublesSurviveRoundTrip) {
  const double values[] = {0.1, 1e-9, 12345.6789, -2.5e30};
  for (const double d : values) {
    EXPECT_DOUBLE_EQ(parse(dump(Value(d))).as_double(), d);
  }
}

TEST(JsonDump, AstralCodePointsEmitSurrogatePairs) {
  // "😀" (U+1F600) serializes as an ASCII-safe surrogate-pair escape and
  // parses back to the identical 4-byte UTF-8 string.
  const std::string emoji = "\xF0\x9F\x98\x80";
  const std::string out = dump(Value(emoji));
  EXPECT_EQ(out, R"("\ud83d\ude00")");
  EXPECT_EQ(parse(out).as_string(), emoji);
}

TEST(JsonDump, BmpUtf8PassesThroughVerbatim) {
  const std::string text = "caf\xC3\xA9 \xE2\x82\xAC";  // café €
  EXPECT_EQ(dump(Value(text)), "\"" + text + "\"");
  EXPECT_EQ(parse(dump(Value(text))).as_string(), text);
}

TEST(JsonDump, InvalidUtf8BytesPassThroughUnmangled) {
  // A stray 0xF0 with no continuation bytes is not astral — it must not
  // eat the following characters.
  const std::string junk = "a\xF0z";
  EXPECT_EQ(dump(Value(junk)), "\"" + junk + "\"");
}

// ---------------------------------------------------------------------------
// Locale independence

namespace {

/// Runs `body` under a comma-decimal LC_NUMERIC when one is installed;
/// GTEST_SKIP (inside `body`'s test) is not needed — we just fall back to
/// "C", which keeps the assertions meaningful if weaker.
class ScopedCommaLocale {
 public:
  ScopedCommaLocale() {
    saved_ = std::setlocale(LC_NUMERIC, nullptr);
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8", "de_DE",
          "fr_FR"}) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        comma_ = true;
        return;
      }
    }
  }
  ~ScopedCommaLocale() { std::setlocale(LC_NUMERIC, saved_.c_str()); }
  bool comma() const { return comma_; }

 private:
  std::string saved_;
  bool comma_ = false;
};

}  // namespace

TEST(JsonLocale, NumbersRoundTripUnderCommaDecimalLocale) {
  ScopedCommaLocale locale;
  // Boundary doubles that %.17g / strtod corrupt under a comma locale.
  const double values[] = {1.5,    0.1,     1e-9, 12345.6789,
                           -2.5e3, 0.40132, 2.2250738585072014e-308};
  for (const double d : values) {
    const std::string text = dump(Value(d));
    EXPECT_EQ(text.find(','), std::string::npos)
        << "serializer leaked a locale comma: " << text;
    EXPECT_DOUBLE_EQ(parse(text).as_double(), d);
  }
  EXPECT_DOUBLE_EQ(parse("1.5").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(parse("[0.25]").as_array()[0].as_double(), 0.25);
}

// ---------------------------------------------------------------------------
// Equality

TEST(JsonEquality, NumericCrossTypeEquality) {
  EXPECT_TRUE(parse("3") == parse("3.0"));
  EXPECT_FALSE(parse("3") == parse("3.5"));
}

TEST(JsonEquality, ObjectsCompareByContentNotOrder) {
  EXPECT_TRUE(parse(R"({"a":1,"b":2})") == parse(R"({"b":2,"a":1})"));
  EXPECT_FALSE(parse(R"({"a":1})") == parse(R"({"a":1,"b":2})"));
}

TEST(JsonEquality, ArraysCompareElementwise) {
  EXPECT_TRUE(parse("[1,[2]]") == parse("[1,[2]]"));
  EXPECT_FALSE(parse("[1,2]") == parse("[2,1]"));
}

TEST(JsonObject, SubscriptInsertsAndFinds) {
  Object o;
  o["k"] = Value(1);
  o["k"] = Value(2);  // overwrite, no duplicate
  EXPECT_EQ(o.size(), 1u);
  ASSERT_NE(o.find("k"), nullptr);
  EXPECT_EQ(o.find("k")->as_int(), 2);
  EXPECT_EQ(o.find("absent"), nullptr);
}

}  // namespace
}  // namespace klotski::json
