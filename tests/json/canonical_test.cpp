#include "klotski/json/canonical.h"

#include <gtest/gtest.h>

#include "klotski/json/json.h"
#include "klotski/util/hash.h"

namespace klotski::json {
namespace {

TEST(CanonicalDump, SortsKeysAndCompacts) {
  const Value doc = parse(R"({"b": 2, "a": 1, "c": {"z": [1, 2], "y": 3}})");
  EXPECT_EQ(canonical_dump(doc), R"({"a":1,"b":2,"c":{"y":3,"z":[1,2]}})");
}

TEST(CanonicalDump, IntegralDoublesCollapseToIntegers) {
  EXPECT_EQ(canonical_dump(parse("[1.0, 2.5, -0.0, 0.0, 3]")),
            "[1,2.5,0,0,3]");
}

TEST(ContentHash, StableAcrossSemanticallyIdenticalDocs) {
  const Value a = parse(R"({"theta": 0.75, "npd": {"x": 1, "y": [1, 2]}})");
  const Value b = parse(
      "{ \"npd\" : {\"y\":[1,2],\"x\":1.0},\n  \"theta\" : 0.75 }");
  EXPECT_EQ(content_hash(a), content_hash(b));
}

TEST(ContentHash, EscapedAndLiteralStringsHashIdentically) {
  // \u0041 decodes to 'A'; the canonical form re-escapes both spellings
  // the same way.
  EXPECT_EQ(content_hash(parse(R"({"k": "\u0041BC"})")),
            content_hash(parse(R"({"k": "ABC"})")));
}

TEST(ContentHash, ChangesOnAnyValueChange) {
  const std::string base = content_hash(parse(R"({"a": 1, "b": [2, 3]})"));
  EXPECT_NE(base, content_hash(parse(R"({"a": 2, "b": [2, 3]})")));
  EXPECT_NE(base, content_hash(parse(R"({"a": 1, "b": [3, 2]})")));
  EXPECT_NE(base, content_hash(parse(R"({"a": 1, "b": [2, 3], "c": null})")));
  EXPECT_NE(base, content_hash(parse(R"({"a": 1, "c": [2, 3]})")));
}

TEST(ContentHash, DistinguishesTypes) {
  EXPECT_NE(content_hash(parse(R"({"a": "1"})")),
            content_hash(parse(R"({"a": 1})")));
  EXPECT_NE(content_hash(parse(R"({"a": null})")),
            content_hash(parse(R"({"a": false})")));
  EXPECT_NE(content_hash(parse(R"({"a": 1.5})")),
            content_hash(parse(R"({"a": 1})")));
}

TEST(ContentHash, IsThirtyTwoLowercaseHexChars) {
  const std::string hash = content_hash(parse(R"({"a": 1})"));
  ASSERT_EQ(hash.size(), 32u);
  for (const char c : hash) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

// The digest is an on-disk format (plan-cache spill file names); these
// exact values must never change across refactors.
TEST(StableDigest, ByteStreamIndependentOfChunking) {
  util::StableDigest one_shot;
  one_shot.update("hello world");
  util::StableDigest chunked;
  chunked.update("hel");
  chunked.update("");
  chunked.update("lo world");
  EXPECT_EQ(one_shot.hex(), chunked.hex());
  EXPECT_EQ(one_shot.hex(), util::stable_digest_hex("hello world"));
}

TEST(StableDigest, DistinctInputsDistinctDigests) {
  EXPECT_NE(util::stable_digest_hex(""), util::stable_digest_hex("a"));
  EXPECT_NE(util::stable_digest_hex("ab"), util::stable_digest_hex("ba"));
}

}  // namespace
}  // namespace klotski::json
