#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/topo/diff.h"

namespace klotski::topo {
namespace {

using klotski::testing::Diamond;

TEST(Diff, IdenticalStatesAreEmpty) {
  Diamond d;
  const TopologyState state = TopologyState::capture(d.topo);
  const StateDiff diff = diff_states(d.topo, state, state);
  EXPECT_TRUE(diff.empty());
  EXPECT_DOUBLE_EQ(diff.capacity_delta_tbps, 0.0);
}

TEST(Diff, ClassifiesEveryTransition) {
  Diamond d;
  const TopologyState before = TopologyState::capture(d.topo);

  d.topo.sw(d.m1).state = ElementState::kAbsent;    // removed
  d.topo.sw(d.m2).state = ElementState::kDrained;   // drained
  const TopologyState after = TopologyState::capture(d.topo);
  before.restore(d.topo);

  const StateDiff diff = diff_states(d.topo, before, after);
  EXPECT_EQ(diff.count_switches(ElementChange::kRemoved), 1u);
  EXPECT_EQ(diff.count_switches(ElementChange::kDrained), 1u);
  EXPECT_EQ(diff.count_switches(ElementChange::kInstalled), 0u);

  // The reverse diff classifies the inverse transitions.
  const StateDiff reverse = diff_states(d.topo, after, before);
  EXPECT_EQ(reverse.count_switches(ElementChange::kInstalled), 1u);
  EXPECT_EQ(reverse.count_switches(ElementChange::kActivated), 1u);
}

TEST(Diff, CapacityDeltaTracksCarriedCapacity) {
  Diamond d;
  const TopologyState before = TopologyState::capture(d.topo);
  // Drain m1: both of its circuits (2 x 1 Tbps) stop carrying traffic.
  d.topo.sw(d.m1).state = ElementState::kDrained;
  const TopologyState after = TopologyState::capture(d.topo);
  before.restore(d.topo);

  const StateDiff diff = diff_states(d.topo, before, after);
  EXPECT_DOUBLE_EQ(diff.capacity_delta_tbps, -2.0);
  EXPECT_DOUBLE_EQ(diff_states(d.topo, after, before).capacity_delta_tbps,
                   2.0);
}

TEST(Diff, MigrationOriginalToTargetMatchesTaskFootprint) {
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  const StateDiff diff = diff_states(*mig.task.topo,
                                     mig.task.original_state,
                                     mig.task.target_state);
  // Every V1 HGRID switch removed, every V2 one installed.
  std::size_t v1_hgrid = 0;
  std::size_t v2_hgrid = 0;
  for (const Switch& s : mig.task.topo->switches()) {
    if (s.role != SwitchRole::kFadu && s.role != SwitchRole::kFauu) continue;
    (s.gen == Generation::kV1 ? v1_hgrid : v2_hgrid) += 1;
  }
  EXPECT_EQ(diff.count_switches(ElementChange::kRemoved), v1_hgrid);
  EXPECT_EQ(diff.count_switches(ElementChange::kInstalled), v2_hgrid);
  // The migration's purpose: more capacity.
  EXPECT_GT(diff.capacity_delta_tbps, 0.0);
}

TEST(Diff, PerPhaseDiffsComposeToFullDiff) {
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  const core::Plan plan =
      pipeline::make_planner("astar")->plan(task, *bundle.checker, {});
  ASSERT_TRUE(plan.found);

  // Sum of per-phase capacity deltas == original->target capacity delta.
  double summed = 0.0;
  task.reset_to_original();
  TopologyState previous = task.original_state;
  for (const core::Phase& phase : plan.phases()) {
    for (const std::int32_t b : phase.block_indices) {
      task.blocks[static_cast<std::size_t>(phase.type)]
                 [static_cast<std::size_t>(b)]
                     .apply(*task.topo);
    }
    const TopologyState current = TopologyState::capture(*task.topo);
    summed += diff_states(*task.topo, previous, current).capacity_delta_tbps;
    previous = current;
  }
  task.reset_to_original();
  const double direct = diff_states(*task.topo, task.original_state,
                                    task.target_state)
                            .capacity_delta_tbps;
  EXPECT_NEAR(summed, direct, 1e-9);
}

TEST(Diff, RejectsShapeMismatch) {
  Diamond d;
  TopologyState bad = TopologyState::capture(d.topo);
  bad.switch_states.pop_back();
  const TopologyState good = TopologyState::capture(d.topo);
  EXPECT_THROW(diff_states(d.topo, bad, good), std::invalid_argument);
  EXPECT_THROW(diff_states(d.topo, good, bad), std::invalid_argument);
}

TEST(Diff, TextSummaryAggregatesByRole) {
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  const StateDiff diff = diff_states(*mig.task.topo,
                                     mig.task.original_state,
                                     mig.task.target_state);
  const std::string text = diff_to_text(*mig.task.topo, diff);
  EXPECT_NE(text.find("FADU/V1"), std::string::npos);
  EXPECT_NE(text.find("installed"), std::string::npos);
  EXPECT_NE(text.find("capacity delta"), std::string::npos);
}

TEST(Diff, ChangeNames) {
  EXPECT_EQ(to_string(ElementChange::kInstalled), "installed");
  EXPECT_EQ(to_string(ElementChange::kRemoved), "removed");
  EXPECT_EQ(to_string(ElementChange::kActivated), "activated");
  EXPECT_EQ(to_string(ElementChange::kDrained), "drained");
}

}  // namespace
}  // namespace klotski::topo
