#include <gtest/gtest.h>

#include <set>

#include "klotski/topo/builder.h"

namespace klotski::topo {
namespace {

RegionParams tiny_params() {
  RegionParams p;
  p.dcs = 2;
  FabricParams fab;
  fab.pods = 2;
  fab.rsws_per_pod = 3;
  fab.planes = 2;
  fab.ssws_per_plane = 2;
  p.fabrics = {fab};
  p.grids = 2;
  p.fadus_per_grid_per_dc = 2;
  p.fauus_per_grid = 2;
  return p;
}

TEST(Builder, ProducesValidTopology) {
  const Region region = build_region(tiny_params());
  EXPECT_EQ(region.topo.validate(), "");
}

TEST(Builder, SwitchCountsMatchParams) {
  const RegionParams p = tiny_params();
  const Region region = build_region(p);
  const auto& fab = p.fabrics[0];

  EXPECT_EQ(region.topo.switches_with_role(SwitchRole::kRsw).size(),
            static_cast<std::size_t>(p.dcs * fab.pods * fab.rsws_per_pod));
  EXPECT_EQ(region.topo.switches_with_role(SwitchRole::kFsw).size(),
            static_cast<std::size_t>(p.dcs * fab.pods * fab.planes));
  EXPECT_EQ(region.topo.switches_with_role(SwitchRole::kSsw).size(),
            static_cast<std::size_t>(p.dcs * fab.planes *
                                     fab.ssws_per_plane));
  EXPECT_EQ(region.topo.switches_with_role(SwitchRole::kFadu).size(),
            static_cast<std::size_t>(p.grids * p.dcs *
                                     p.fadus_per_grid_per_dc));
  EXPECT_EQ(region.topo.switches_with_role(SwitchRole::kFauu).size(),
            static_cast<std::size_t>(p.grids * p.fauus_per_grid));
  EXPECT_EQ(region.topo.switches_with_role(SwitchRole::kEb).size(),
            static_cast<std::size_t>(p.ebs));
  EXPECT_EQ(region.topo.switches_with_role(SwitchRole::kDr).size(),
            static_cast<std::size_t>(p.drs));
  EXPECT_EQ(region.topo.switches_with_role(SwitchRole::kEbb).size(),
            static_cast<std::size_t>(p.ebbs));
}

TEST(Builder, IndexStructuresAreConsistent) {
  const Region region = build_region(tiny_params());
  for (int dc = 0; dc < region.num_dcs(); ++dc) {
    for (const SwitchId id : region.rsws[dc]) {
      EXPECT_EQ(region.topo.sw(id).role, SwitchRole::kRsw);
      EXPECT_EQ(region.topo.sw(id).loc.dc, dc);
    }
    for (std::size_t plane = 0; plane < region.ssws[dc].size(); ++plane) {
      for (const SwitchId id : region.ssws[dc][plane]) {
        EXPECT_EQ(region.topo.sw(id).role, SwitchRole::kSsw);
        EXPECT_EQ(region.topo.sw(id).loc.plane,
                  static_cast<std::int16_t>(plane));
      }
    }
  }
  for (int g = 0; g < region.num_grids(); ++g) {
    for (const SwitchId id : region.fauus[g]) {
      EXPECT_EQ(region.topo.sw(id).role, SwitchRole::kFauu);
      EXPECT_EQ(region.topo.sw(id).loc.grid, g);
    }
  }
}

TEST(Builder, RswConnectsToEveryFswOfItsPod) {
  const Region region = build_region(tiny_params());
  const SwitchId rsw = region.rsws[0][0];
  int fsw_neighbors = 0;
  for (const CircuitId cid : region.topo.incident(rsw)) {
    const Circuit& c = region.topo.circuit(cid);
    const Switch& other = region.topo.sw(c.other(rsw));
    EXPECT_EQ(other.role, SwitchRole::kFsw);
    EXPECT_EQ(other.loc.pod, region.topo.sw(rsw).loc.pod);
    ++fsw_neighbors;
  }
  EXPECT_EQ(fsw_neighbors, tiny_params().fabrics[0].planes);
}

TEST(Builder, FswConnectsOnlyWithinItsPlane) {
  const Region region = build_region(tiny_params());
  for (const SwitchId fsw : region.fsws[0]) {
    for (const CircuitId cid : region.topo.incident(fsw)) {
      const Circuit& c = region.topo.circuit(cid);
      const Switch& other = region.topo.sw(c.other(fsw));
      if (other.role == SwitchRole::kSsw) {
        EXPECT_EQ(other.loc.plane, region.topo.sw(fsw).loc.plane);
      }
    }
  }
}

TEST(Builder, PlaneAlignedMeshCoversAllPlanesAcrossGrids) {
  RegionParams p = tiny_params();
  p.fadus_per_grid_per_dc = 1;  // one FADU per grid per DC, 2 planes
  p.grids = 2;
  const Region region = build_region(p);
  // Union of grids must give every plane an uplink (grid offset staggering).
  for (int dc = 0; dc < p.dcs; ++dc) {
    std::vector<bool> plane_covered(p.fabrics[0].planes, false);
    for (int g = 0; g < p.grids; ++g) {
      for (const SwitchId fadu : region.fadus[g][dc]) {
        for (const CircuitId cid : region.topo.incident(fadu)) {
          const Circuit& c = region.topo.circuit(cid);
          const Switch& other = region.topo.sw(c.other(fadu));
          if (other.role == SwitchRole::kSsw) {
            plane_covered[static_cast<std::size_t>(other.loc.plane)] = true;
          }
        }
      }
    }
    for (const bool covered : plane_covered) EXPECT_TRUE(covered);
  }
}

TEST(Builder, InterleavedMeshSpreadsAcrossPlanes) {
  RegionParams p = tiny_params();
  p.mesh = MeshPattern::kInterleaved;
  const Region region = build_region(p);
  // With interleaving a FADU may reach SSWs in multiple planes.
  int multi_plane_fadus = 0;
  for (int g = 0; g < p.grids; ++g) {
    for (int dc = 0; dc < p.dcs; ++dc) {
      for (const SwitchId fadu : region.fadus[g][dc]) {
        std::set<int> planes;
        for (const CircuitId cid : region.topo.incident(fadu)) {
          const Circuit& c = region.topo.circuit(cid);
          const Switch& other = region.topo.sw(c.other(fadu));
          if (other.role == SwitchRole::kSsw) planes.insert(other.loc.plane);
        }
        if (planes.size() > 1) ++multi_plane_fadus;
      }
    }
  }
  EXPECT_GT(multi_plane_fadus, 0);
}

TEST(Builder, FauuEbCircuitsIndexedByEb) {
  const RegionParams p = tiny_params();
  const Region region = build_region(p);
  ASSERT_EQ(region.fauu_eb_circuits_by_eb.size(),
            static_cast<std::size_t>(p.ebs));
  for (int e = 0; e < p.ebs; ++e) {
    EXPECT_EQ(region.fauu_eb_circuits_by_eb[e].size(),
              static_cast<std::size_t>(p.grids * p.fauus_per_grid));
    for (const CircuitId cid : region.fauu_eb_circuits_by_eb[e]) {
      const Circuit& c = region.topo.circuit(cid);
      EXPECT_TRUE(c.a == region.ebs[e] || c.b == region.ebs[e]);
    }
  }
}

TEST(Builder, HeterogeneousFabricsPerDc) {
  RegionParams p = tiny_params();
  FabricParams fab8 = p.fabrics[0];
  fab8.planes = 4;
  fab8.ssws_per_plane = 1;
  p.fabrics = {p.fabrics[0], fab8};
  p.fadus_per_grid_per_dc = 4;  // multiple of both plane counts
  const Region region = build_region(p);
  EXPECT_EQ(region.ssws[0].size(), 2u);
  EXPECT_EQ(region.ssws[1].size(), 4u);
  EXPECT_EQ(region.topo.validate(), "");
}

TEST(Builder, PortBudgetsHonorSlack) {
  RegionParams p = tiny_params();
  p.port_slack_ssw = 0;
  p.port_slack_eb = 0;
  const Region region = build_region(p);
  for (const Switch& s : region.topo.switches()) {
    const int occupied = region.topo.occupied_ports(s.id);
    if (s.role == SwitchRole::kSsw || s.role == SwitchRole::kEb) {
      EXPECT_EQ(s.max_ports, occupied) << s.name;
    } else {
      EXPECT_GE(s.max_ports, occupied) << s.name;
    }
  }
}

TEST(Builder, RejectsInvalidParams) {
  RegionParams p = tiny_params();
  p.dcs = 0;
  EXPECT_THROW(build_region(p), std::invalid_argument);

  p = tiny_params();
  p.fabrics.clear();
  EXPECT_THROW(build_region(p), std::invalid_argument);

  p = tiny_params();
  p.grids = 0;
  EXPECT_THROW(build_region(p), std::invalid_argument);

  p = tiny_params();
  p.fabrics[0].pods = -1;
  EXPECT_THROW(build_region(p), std::invalid_argument);
}

TEST(Builder, FabricParamsReplicatedToAllDcs) {
  RegionParams p = tiny_params();
  p.dcs = 3;  // only one FabricParams entry
  const Region region = build_region(p);
  EXPECT_EQ(region.fabric(0).pods, region.fabric(2).pods);
}

TEST(Builder, ParallelRswFswLinks) {
  RegionParams p = tiny_params();
  p.fabrics[0].rsw_fsw_links = 3;
  const Region region = build_region(p);
  const SwitchId rsw = region.rsws[0][0];
  EXPECT_EQ(region.topo.incident(rsw).size(),
            static_cast<std::size_t>(p.fabrics[0].planes * 3));
}

}  // namespace
}  // namespace klotski::topo
