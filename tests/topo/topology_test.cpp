#include <gtest/gtest.h>

#include "klotski/topo/topology.h"

namespace klotski::topo {
namespace {

Topology two_switch_topo(ElementState circuit_state = ElementState::kActive) {
  Topology t;
  t.add_switch(SwitchRole::kRsw, Generation::kV1, {}, 4,
               ElementState::kActive, "a");
  t.add_switch(SwitchRole::kFsw, Generation::kV1, {}, 4,
               ElementState::kActive, "b");
  t.add_circuit(0, 1, 1.0, circuit_state);
  return t;
}

TEST(SwitchTypes, RoleRoundTrip) {
  for (int r = 0; r < kNumSwitchRoles; ++r) {
    const auto role = static_cast<SwitchRole>(r);
    EXPECT_EQ(switch_role_from_string(std::string(to_string(role))), role);
  }
  EXPECT_THROW(switch_role_from_string("XYZ"), std::invalid_argument);
}

TEST(SwitchTypes, GenerationRoundTrip) {
  EXPECT_EQ(generation_from_string("V1"), Generation::kV1);
  EXPECT_EQ(generation_from_string("V2"), Generation::kV2);
  EXPECT_THROW(generation_from_string("V3"), std::invalid_argument);
}

TEST(SwitchTypes, ElementStateRoundTrip) {
  for (const auto state : {ElementState::kActive, ElementState::kDrained,
                           ElementState::kAbsent}) {
    EXPECT_EQ(element_state_from_string(std::string(to_string(state))),
              state);
  }
  EXPECT_THROW(element_state_from_string("gone"), std::invalid_argument);
}

TEST(Topology, AddSwitchAssignsDenseIds) {
  Topology t;
  EXPECT_EQ(t.add_switch(SwitchRole::kRsw, Generation::kV1, {}, 4,
                         ElementState::kActive, "x"),
            0);
  EXPECT_EQ(t.add_switch(SwitchRole::kRsw, Generation::kV1, {}, 4,
                         ElementState::kActive, "y"),
            1);
  EXPECT_EQ(t.num_switches(), 2u);
}

TEST(Topology, AddCircuitRejectsBadEndpoints) {
  Topology t = two_switch_topo();
  EXPECT_THROW(t.add_circuit(0, 5, 1.0, ElementState::kActive),
               std::out_of_range);
  EXPECT_THROW(t.add_circuit(0, 0, 1.0, ElementState::kActive),
               std::invalid_argument);
}

TEST(Topology, IncidentListsBothEndpoints) {
  Topology t = two_switch_topo();
  ASSERT_EQ(t.incident(0).size(), 1u);
  ASSERT_EQ(t.incident(1).size(), 1u);
  EXPECT_EQ(t.incident(0)[0], t.incident(1)[0]);
}

TEST(Topology, CircuitOther) {
  const Topology t = two_switch_topo();
  EXPECT_EQ(t.circuit(0).other(0), 1);
  EXPECT_EQ(t.circuit(0).other(1), 0);
}

TEST(Topology, CircuitCarriesTrafficRequiresAllActive) {
  Topology t = two_switch_topo();
  EXPECT_TRUE(t.circuit_carries_traffic(0));
  t.sw(0).state = ElementState::kDrained;
  EXPECT_FALSE(t.circuit_carries_traffic(0));
  t.sw(0).state = ElementState::kActive;
  t.circuit(0).state = ElementState::kDrained;
  EXPECT_FALSE(t.circuit_carries_traffic(0));
}

TEST(Topology, OccupiedPortsCountsPresentCircuitsToPresentPeers) {
  Topology t = two_switch_topo();
  EXPECT_EQ(t.occupied_ports(0), 1);
  // A drained circuit still occupies the port.
  t.circuit(0).state = ElementState::kDrained;
  EXPECT_EQ(t.occupied_ports(0), 1);
  // An absent circuit does not.
  t.circuit(0).state = ElementState::kAbsent;
  EXPECT_EQ(t.occupied_ports(0), 0);
  // A staged circuit to an absent far end is not wired yet.
  t.circuit(0).state = ElementState::kActive;
  t.sw(1).state = ElementState::kAbsent;
  EXPECT_EQ(t.occupied_ports(0), 0);
}

TEST(Topology, Counters) {
  Topology t = two_switch_topo();
  EXPECT_EQ(t.count_present_switches(), 2u);
  EXPECT_EQ(t.count_present_circuits(), 1u);
  EXPECT_EQ(t.count_active_circuits(), 1u);
  EXPECT_DOUBLE_EQ(t.active_capacity_tbps(), 1.0);
  t.sw(1).state = ElementState::kAbsent;
  EXPECT_EQ(t.count_present_switches(), 1u);
  EXPECT_EQ(t.count_active_circuits(), 0u);
  EXPECT_DOUBLE_EQ(t.active_capacity_tbps(), 0.0);
}

TEST(Topology, FindSwitchByName) {
  const Topology t = two_switch_topo();
  EXPECT_EQ(t.find_switch("b"), 1);
  EXPECT_EQ(t.find_switch("zz"), kInvalidSwitch);
}

TEST(Topology, SwitchesWithRole) {
  const Topology t = two_switch_topo();
  EXPECT_EQ(t.switches_with_role(SwitchRole::kRsw).size(), 1u);
  EXPECT_EQ(t.switches_with_role(SwitchRole::kEbb).size(), 0u);
}

TEST(TopologyValidate, DetectsDuplicateNames) {
  Topology t;
  t.add_switch(SwitchRole::kRsw, Generation::kV1, {}, 4,
               ElementState::kActive, "dup");
  t.add_switch(SwitchRole::kRsw, Generation::kV1, {}, 4,
               ElementState::kActive, "dup");
  EXPECT_NE(t.validate().find("duplicate"), std::string::npos);
}

TEST(TopologyValidate, DetectsPortOverflow) {
  Topology t;
  t.add_switch(SwitchRole::kRsw, Generation::kV1, {}, 1,
               ElementState::kActive, "a");
  t.add_switch(SwitchRole::kFsw, Generation::kV1, {}, 4,
               ElementState::kActive, "b");
  t.add_circuit(0, 1, 1.0, ElementState::kActive);
  t.add_circuit(0, 1, 1.0, ElementState::kActive);
  EXPECT_NE(t.validate().find("port budget"), std::string::npos);
}

TEST(TopologyValidate, AcceptsValidTopology) {
  EXPECT_EQ(two_switch_topo().validate(), "");
}

TEST(TopologyState, CaptureRestoreRoundTrip) {
  Topology t = two_switch_topo();
  const TopologyState snapshot = TopologyState::capture(t);
  t.sw(0).state = ElementState::kAbsent;
  t.circuit(0).state = ElementState::kDrained;
  snapshot.restore(t);
  EXPECT_EQ(t.sw(0).state, ElementState::kActive);
  EXPECT_EQ(t.circuit(0).state, ElementState::kActive);
}

TEST(TopologyState, RestoreRejectsShapeMismatch) {
  Topology t = two_switch_topo();
  TopologyState snapshot = TopologyState::capture(t);
  snapshot.switch_states.pop_back();
  EXPECT_THROW(snapshot.restore(t), std::invalid_argument);
}

TEST(TopologyState, EqualityComparesStates) {
  Topology t = two_switch_topo();
  const TopologyState a = TopologyState::capture(t);
  t.sw(0).state = ElementState::kDrained;
  const TopologyState b = TopologyState::capture(t);
  EXPECT_FALSE(a == b);
  t.sw(0).state = ElementState::kActive;
  EXPECT_TRUE(a == TopologyState::capture(t));
}

}  // namespace
}  // namespace klotski::topo
