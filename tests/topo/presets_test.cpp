#include <gtest/gtest.h>

#include "klotski/topo/presets.h"

namespace klotski::topo {
namespace {

class PresetTest : public ::testing::TestWithParam<PresetId> {};

TEST_P(PresetTest, ReducedBuildsValidTopology) {
  const Region region = build_preset(GetParam(), PresetScale::kReduced);
  EXPECT_EQ(region.topo.validate(), "");
}

TEST_P(PresetTest, ReducedIsNoLargerThanFull) {
  const RegionParams reduced = preset_params(GetParam(),
                                             PresetScale::kReduced);
  const RegionParams full = preset_params(GetParam(), PresetScale::kFull);
  EXPECT_LE(reduced.fabrics[0].pods, full.fabrics[0].pods);
  EXPECT_LE(reduced.fabrics[0].rsws_per_pod, full.fabrics[0].rsws_per_pod);
  // The HGRID block structure (and hence the planner search space) is
  // preserved across scales.
  EXPECT_EQ(reduced.grids, full.grids);
  EXPECT_EQ(reduced.fadus_per_grid_per_dc, full.fadus_per_grid_per_dc);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest,
                         ::testing::ValuesIn(all_presets()),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Presets, SizesAscendAtoE) {
  std::size_t previous = 0;
  for (const PresetId id : all_presets()) {
    const Region region = build_preset(id, PresetScale::kReduced);
    const std::size_t size = region.topo.num_switches();
    EXPECT_GT(size, previous) << "preset " << to_string(id);
    previous = size;
  }
}

TEST(Presets, FullScaleEMatchesTable3Order) {
  // Building full E is a few hundred thousand elements; verify the Table 3
  // order of magnitude (~10,000 switches, ~100,000 circuits).
  const Region region = build_preset(PresetId::kE, PresetScale::kFull);
  EXPECT_GE(region.topo.num_switches(), 8000u);
  EXPECT_LE(region.topo.num_switches(), 15000u);
  EXPECT_GE(region.topo.num_circuits(), 70000u);
  EXPECT_LE(region.topo.num_circuits(), 150000u);
}

TEST(Presets, FullScaleAMatchesTable3Order) {
  const Region region = build_preset(PresetId::kA, PresetScale::kFull);
  EXPECT_GE(region.topo.num_switches(), 25u);
  EXPECT_LE(region.topo.num_switches(), 60u);
  EXPECT_GE(region.topo.num_circuits(), 50u);
  EXPECT_LE(region.topo.num_circuits(), 120u);
}

TEST(Presets, DIsHeterogeneous) {
  const RegionParams p = preset_params(PresetId::kD, PresetScale::kFull);
  ASSERT_GE(p.fabrics.size(), 2u);
  // Figure 2(d): one DC upgraded to 8 planes.
  bool has_8_plane_dc = false;
  for (const FabricParams& fab : p.fabrics) {
    if (fab.planes == 8) has_8_plane_dc = true;
  }
  EXPECT_TRUE(has_8_plane_dc);
}

TEST(Presets, NamesAreStable) {
  EXPECT_EQ(to_string(PresetId::kA), "A");
  EXPECT_EQ(to_string(PresetId::kE), "E");
  EXPECT_EQ(all_presets().size(), 5u);
}

}  // namespace
}  // namespace klotski::topo
