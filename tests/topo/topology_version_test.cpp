#include <gtest/gtest.h>

#include <vector>

#include "../test_helpers.h"
#include "klotski/topo/topology.h"

namespace klotski::topo {
namespace {

using klotski::testing::Diamond;

TEST(TopologyVersion, NoOpStateWritesDoNotBump) {
  Diamond d;
  const std::uint64_t v = d.topo.state_version();
  d.topo.set_switch_state(d.m1, d.topo.sw(d.m1).state);
  d.topo.set_circuit_state(d.c_sm1, d.topo.circuit(d.c_sm1).state);
  EXPECT_EQ(d.topo.state_version(), v);
}

TEST(TopologyVersion, ChangesAreJournaledInOrder) {
  Diamond d;
  const std::uint64_t v0 = d.topo.state_version();
  d.topo.set_switch_state(d.m1, ElementState::kDrained);
  d.topo.set_circuit_state(d.c_m2t, ElementState::kAbsent);
  d.topo.set_switch_state(d.m1, ElementState::kActive);
  EXPECT_EQ(d.topo.state_version(), v0 + 3);

  std::vector<Topology::StateChange> changes;
  ASSERT_TRUE(d.topo.changes_since(v0, changes));
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_TRUE(Topology::change_is_switch(changes[0]));
  EXPECT_EQ(Topology::change_switch(changes[0]), d.m1);
  EXPECT_FALSE(Topology::change_is_switch(changes[1]));
  EXPECT_EQ(Topology::change_circuit(changes[1]), d.c_m2t);
  EXPECT_TRUE(Topology::change_is_switch(changes[2]));

  // A suffix of the window is also available.
  changes.clear();
  ASSERT_TRUE(d.topo.changes_since(v0 + 2, changes));
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_FALSE(Topology::change_is_switch(changes[0]) &&
               Topology::change_circuit(changes[0]) == d.c_m2t);

  // Asking from the current version yields an empty (but covered) window;
  // asking from the future fails.
  changes.clear();
  EXPECT_TRUE(d.topo.changes_since(d.topo.state_version(), changes));
  EXPECT_TRUE(changes.empty());
  EXPECT_FALSE(d.topo.changes_since(d.topo.state_version() + 1, changes));
}

TEST(TopologyVersion, BumpInvalidatesJournalCoverage) {
  Diamond d;
  const std::uint64_t v0 = d.topo.state_version();
  d.topo.set_switch_state(d.m1, ElementState::kDrained);
  d.topo.bump_state_version();
  std::vector<Topology::StateChange> changes;
  EXPECT_FALSE(d.topo.changes_since(v0, changes));
  // Changes after the bump are journaled again.
  const std::uint64_t v1 = d.topo.state_version();
  d.topo.set_switch_state(d.m2, ElementState::kDrained);
  changes.clear();
  ASSERT_TRUE(d.topo.changes_since(v1, changes));
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(Topology::change_switch(changes[0]), d.m2);
}

TEST(TopologyVersion, StructuralGrowthInvalidatesCoverage) {
  Diamond d;
  const std::uint64_t v0 = d.topo.state_version();
  d.topo.add_circuit(d.m1, d.m2, 1.0, ElementState::kActive);
  EXPECT_GT(d.topo.state_version(), v0);
  std::vector<Topology::StateChange> changes;
  EXPECT_FALSE(d.topo.changes_since(v0, changes));
}

TEST(TopologyVersion, JournalOverflowFallsBackCleanly) {
  Diamond d;
  const std::uint64_t v0 = d.topo.state_version();
  // Far more flips than the journal ring holds.
  for (int i = 0; i < 9000; ++i) {
    d.topo.set_switch_state(d.m1, (i & 1) != 0 ? ElementState::kActive
                                               : ElementState::kDrained);
  }
  std::vector<Topology::StateChange> changes;
  EXPECT_FALSE(d.topo.changes_since(v0, changes));
  // Recent history is still covered.
  changes.clear();
  ASSERT_TRUE(d.topo.changes_since(d.topo.state_version() - 4, changes));
  EXPECT_EQ(changes.size(), 4u);
  for (const Topology::StateChange e : changes) {
    EXPECT_EQ(Topology::change_switch(e), d.m1);
  }
}

TEST(TopologyVersion, RestoreOnlyBumpsForRealChanges) {
  Diamond d;
  const TopologyState snapshot = TopologyState::capture(d.topo);
  const std::uint64_t v0 = d.topo.state_version();
  snapshot.restore(d.topo);  // identical state: no version movement
  EXPECT_EQ(d.topo.state_version(), v0);

  d.topo.set_switch_state(d.m1, ElementState::kDrained);
  d.topo.set_circuit_state(d.c_sm2, ElementState::kAbsent);
  const std::uint64_t v1 = d.topo.state_version();
  snapshot.restore(d.topo);
  // Exactly the two divergent elements change back, and the journal covers
  // the round trip.
  EXPECT_EQ(d.topo.state_version(), v1 + 2);
  std::vector<Topology::StateChange> changes;
  ASSERT_TRUE(d.topo.changes_since(v0, changes));
  EXPECT_EQ(changes.size(), 4u);
}

}  // namespace
}  // namespace klotski::topo
