#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>
#include <vector>

#include "klotski/topo/families.h"
#include "klotski/topo/presets.h"

namespace klotski::topo {
namespace {

// BFS over active circuits only.
int active_component_size(const Topology& topo, SwitchId start) {
  std::vector<char> seen(topo.num_switches(), 0);
  std::queue<SwitchId> frontier;
  frontier.push(start);
  seen[static_cast<std::size_t>(start)] = 1;
  int count = 0;
  while (!frontier.empty()) {
    const SwitchId sw = frontier.front();
    frontier.pop();
    ++count;
    for (const CircuitId cid : topo.incident(sw)) {
      const Circuit& c = topo.circuit(cid);
      if (c.state != ElementState::kActive) continue;
      const SwitchId next = c.other(sw);
      if (seen[static_cast<std::size_t>(next)]) continue;
      seen[static_cast<std::size_t>(next)] = 1;
      frontier.push(next);
    }
  }
  return count;
}

TEST(FamilyNames, RoundTrip) {
  for (const TopologyFamily f : all_families()) {
    EXPECT_EQ(family_from_string(to_string(f)), f);
  }
  EXPECT_THROW(family_from_string("torus"), std::invalid_argument);
}

TEST(FlatFamily, BuildsValidConnectedFswOnlyFabric) {
  const Region region = build_flat({});
  EXPECT_EQ(region.family, TopologyFamily::kFlat);
  EXPECT_EQ(region.topo.validate(), "");
  EXPECT_EQ(region.mesh_nodes.size(), 24u);
  for (const Switch& s : region.topo.switches()) {
    EXPECT_EQ(s.role, SwitchRole::kFsw);
    EXPECT_EQ(s.state, ElementState::kActive);
  }
  EXPECT_EQ(active_component_size(region.topo, region.mesh_nodes[0]), 24);
}

TEST(FlatFamily, DeterministicPerSeedAndSensitiveToSeed) {
  FlatParams p;
  const Region a = build_flat(p);
  const Region b = build_flat(p);
  ASSERT_EQ(a.topo.num_circuits(), b.topo.num_circuits());
  for (std::size_t i = 0; i < a.topo.num_circuits(); ++i) {
    const auto id = static_cast<CircuitId>(i);
    EXPECT_EQ(a.topo.circuit(id).a, b.topo.circuit(id).a);
    EXPECT_EQ(a.topo.circuit(id).b, b.topo.circuit(id).b);
  }
  p.seed = 99;
  const Region c = build_flat(p);
  bool differs = c.topo.num_circuits() != a.topo.num_circuits();
  for (std::size_t i = 0; !differs && i < a.topo.num_circuits(); ++i) {
    const auto id = static_cast<CircuitId>(i);
    differs = a.topo.circuit(id).a != c.topo.circuit(id).a ||
              a.topo.circuit(id).b != c.topo.circuit(id).b;
  }
  EXPECT_TRUE(differs);
}

TEST(FlatFamily, DegreeKnobRaisesEdgeCount) {
  FlatParams lo, hi;
  lo.degree = 2;
  lo.extra_links = 0;
  hi.degree = 6;
  hi.extra_links = 0;
  const Region a = build_flat(lo);
  const Region b = build_flat(hi);
  // Degree 2 is exactly the ring; each extra matching round adds chords.
  EXPECT_EQ(a.topo.num_circuits(), 24u);
  EXPECT_GT(b.topo.num_circuits(), a.topo.num_circuits());
}

TEST(FlatFamily, ChordSpanBoundsRingDistance) {
  FlatParams p;
  p.switches = 32;
  p.max_chord_span = 4;
  const Region region = build_flat(p);
  const int n = p.switches;
  for (const Circuit& c : region.topo.circuits()) {
    const int a = region.topo.sw(c.a).loc.pod;
    const int b = region.topo.sw(c.b).loc.pod;
    const int d = std::min((a - b + n) % n, (b - a + n) % n);
    EXPECT_LE(d, p.max_chord_span);
  }
}

TEST(FlatFamily, NoParallelEdges) {
  FlatParams p;
  p.extra_links = 8;
  const Region region = build_flat(p);
  std::set<std::pair<SwitchId, SwitchId>> seen;
  for (const Circuit& c : region.topo.circuits()) {
    const auto key = std::minmax(c.a, c.b);
    EXPECT_TRUE(seen.insert(key).second)
        << "parallel edge " << c.a << "-" << c.b;
  }
}

TEST(FlatFamily, RejectsDegenerateParams) {
  auto with = [](auto mutate) {
    FlatParams p;
    mutate(p);
    return p;
  };
  EXPECT_THROW(build_flat(with([](FlatParams& p) { p.switches = 3; })),
               std::invalid_argument);
  // The satellite bugfix: zero-degree flat graphs are rejected with a clear
  // message instead of silently building a disconnected fabric.
  try {
    build_flat(with([](FlatParams& p) { p.degree = 0; }));
    FAIL() << "degree 0 must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("disconnected"), std::string::npos);
  }
  EXPECT_THROW(build_flat(with([](FlatParams& p) { p.degree = 24; })),
               std::invalid_argument);
  EXPECT_THROW(build_flat(with([](FlatParams& p) { p.extra_links = -1; })),
               std::invalid_argument);
  EXPECT_THROW(build_flat(with([](FlatParams& p) { p.max_chord_span = 1; })),
               std::invalid_argument);
  EXPECT_THROW(build_flat(with([](FlatParams& p) { p.max_chord_span = 13; })),
               std::invalid_argument);
  EXPECT_THROW(build_flat(with([](FlatParams& p) { p.cap_tbps = 0.0; })),
               std::invalid_argument);
  EXPECT_THROW(build_flat(with([](FlatParams& p) { p.port_slack = -1; })),
               std::invalid_argument);
}

TEST(ReconfFamily, BuildsSharedActiveAndStagedAbsentStrides) {
  const Region region = build_reconf({});  // v1 {1,2}, v2 {1,3}, n = 24
  EXPECT_EQ(region.family, TopologyFamily::kReconf);
  EXPECT_EQ(region.topo.validate(), "");
  ASSERT_EQ(region.mesh_strides.size(), 3u);

  const MeshStrideCircuits& ring = region.mesh_strides[0];
  EXPECT_EQ(ring.stride, 1);
  EXPECT_TRUE(ring.shared);

  const MeshStrideCircuits& v1_only = region.mesh_strides[1];
  EXPECT_EQ(v1_only.stride, 2);
  EXPECT_FALSE(v1_only.shared);
  EXPECT_EQ(v1_only.gen, Generation::kV1);
  for (const CircuitId cid : v1_only.circuits) {
    EXPECT_EQ(region.topo.circuit(cid).state, ElementState::kActive);
  }

  const MeshStrideCircuits& v2_only = region.mesh_strides[2];
  EXPECT_EQ(v2_only.stride, 3);
  EXPECT_FALSE(v2_only.shared);
  EXPECT_EQ(v2_only.gen, Generation::kV2);
  for (const CircuitId cid : v2_only.circuits) {
    EXPECT_EQ(region.topo.circuit(cid).state, ElementState::kAbsent);
  }

  // Both endpoints of the rewire are connected on their own.
  EXPECT_EQ(active_component_size(region.topo, region.mesh_nodes[0]), 24);
}

TEST(ReconfFamily, HalfRingStrideEmitsEachCircuitOnce) {
  ReconfParams p;
  p.switches = 8;
  p.v1_strides = {1};
  p.v2_strides = {1, 4};
  const Region region = build_reconf(p);
  ASSERT_EQ(region.mesh_strides.size(), 2u);
  EXPECT_EQ(region.mesh_strides[1].stride, 4);
  EXPECT_EQ(region.mesh_strides[1].circuits.size(), 4u);
}

TEST(ReconfFamily, RejectsDisconnectedAndMalformedPatterns) {
  auto with = [](auto mutate) {
    ReconfParams p;
    mutate(p);
    return p;
  };
  // {2} on a 24-ring splits into two disjoint 12-cycles (gcd 2); the
  // satellite bugfix rejects it with a clear message.
  try {
    build_reconf(with([](ReconfParams& p) { p.v1_strides = {2}; }));
    FAIL() << "disconnected v1 pattern must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("disconnected"), std::string::npos);
  }
  EXPECT_THROW(
      build_reconf(with([](ReconfParams& p) { p.v2_strides = {3, 6}; })),
      std::invalid_argument);
  EXPECT_THROW(build_reconf(with([](ReconfParams& p) { p.v1_strides = {}; })),
               std::invalid_argument);
  EXPECT_THROW(
      build_reconf(with([](ReconfParams& p) { p.v1_strides = {1, 1}; })),
      std::invalid_argument);
  EXPECT_THROW(
      build_reconf(with([](ReconfParams& p) { p.v1_strides = {1, 13}; })),
      std::invalid_argument);
  EXPECT_THROW(build_reconf(with([](ReconfParams& p) { p.cap_tbps = -1; })),
               std::invalid_argument);
}

class FamilyPresetTest : public ::testing::TestWithParam<PresetId> {};

TEST_P(FamilyPresetTest, FlatAndReconfPresetsBuildAtBothScales) {
  for (const PresetScale scale :
       {PresetScale::kReduced, PresetScale::kFull}) {
    const Region flat =
        build_family_preset(TopologyFamily::kFlat, GetParam(), scale);
    EXPECT_EQ(flat.topo.validate(), "");
    EXPECT_EQ(active_component_size(flat.topo, flat.mesh_nodes[0]),
              static_cast<int>(flat.mesh_nodes.size()));
    const Region reconf =
        build_family_preset(TopologyFamily::kReconf, GetParam(), scale);
    EXPECT_EQ(reconf.topo.validate(), "");
    EXPECT_EQ(active_component_size(reconf.topo, reconf.mesh_nodes[0]),
              static_cast<int>(reconf.mesh_nodes.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, FamilyPresetTest,
                         ::testing::ValuesIn(all_presets()),
                         [](const auto& info) { return to_string(info.param); });

TEST(FamilyPresets, FlatSizesAscendAtoE) {
  std::size_t previous = 0;
  for (const PresetId id : all_presets()) {
    const FlatParams p = flat_params(id, PresetScale::kFull);
    EXPECT_GT(static_cast<std::size_t>(p.switches), previous);
    previous = static_cast<std::size_t>(p.switches);
  }
}

}  // namespace
}  // namespace klotski::topo
