// Model-based chaos tests: seeded fault-injection sweeps through the replan
// driver must complete with zero invariant violations, reproduce
// byte-identical trajectories regardless of sweep thread count, and resume
// from a JSON-round-tripped checkpoint bit-identically (the self-test baked
// into every passing seed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "klotski/json/json.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/sim/chaos.h"
#include "klotski/sim/fault_script.h"

namespace klotski {
namespace {

int seeds_from_env(int fallback) {
  const char* env = std::getenv("KLOTSKI_CHAOS_SEEDS");
  if (env == nullptr || *env == '\0') return fallback;
  return std::max(1, std::atoi(env));
}

TEST(ChaosInvariants, PresetASweepPassesWithZeroViolations) {
  sim::ChaosParams params;
  params.preset = topo::PresetId::kA;
  const int seeds = seeds_from_env(100);
  const sim::ChaosSweepResult sweep =
      sim::run_chaos_sweep(0, seeds, 2, params);
  ASSERT_EQ(sweep.failures, 0) << "failing seeds: "
                               << [&] {
                                    std::string s;
                                    for (auto v : sweep.failing_seeds()) {
                                      s += std::to_string(v) + " ";
                                    }
                                    return s;
                                  }();
  for (const sim::ChaosVerdict& v : sweep.verdicts) {
    EXPECT_TRUE(v.completed) << "seed " << v.seed << ": " << v.failure;
    EXPECT_TRUE(v.invariants_ok) << "seed " << v.seed << ": " << v.failure;
    EXPECT_TRUE(v.resume_ok) << "seed " << v.seed << ": " << v.failure;
    EXPECT_FALSE(v.trajectory.empty()) << "seed " << v.seed;
  }
}

TEST(ChaosInvariants, PresetBSweepPassesWithZeroViolations) {
  sim::ChaosParams params;
  params.preset = topo::PresetId::kB;
  const int seeds = std::min(25, seeds_from_env(25));
  const sim::ChaosSweepResult sweep =
      sim::run_chaos_sweep(0, seeds, 2, params);
  EXPECT_EQ(sweep.failures, 0);
}

/// Family sweep: every seed must complete, hold the invariants, and pass
/// the baked-in checkpoint-resume self-test, exactly as the Clos sweeps do.
void run_family_sweep(topo::TopologyFamily family, int seeds) {
  sim::ChaosParams params;
  params.family = family;
  params.preset = topo::PresetId::kA;
  const sim::ChaosSweepResult sweep =
      sim::run_chaos_sweep(0, seeds, 2, params);
  ASSERT_EQ(sweep.failures, 0) << "failing seeds: "
                               << [&] {
                                    std::string s;
                                    for (auto v : sweep.failing_seeds()) {
                                      s += std::to_string(v) + " ";
                                    }
                                    return s;
                                  }();
  for (const sim::ChaosVerdict& v : sweep.verdicts) {
    EXPECT_TRUE(v.completed) << "seed " << v.seed << ": " << v.failure;
    EXPECT_TRUE(v.invariants_ok) << "seed " << v.seed << ": " << v.failure;
    EXPECT_TRUE(v.resume_ok) << "seed " << v.seed << ": " << v.failure;
    EXPECT_FALSE(v.trajectory.empty()) << "seed " << v.seed;
  }
}

TEST(ChaosInvariants, FlatSweepPassesWithZeroViolations) {
  run_family_sweep(topo::TopologyFamily::kFlat,
                   std::min(50, seeds_from_env(50)));
}

TEST(ChaosInvariants, ReconfSweepPassesWithZeroViolations) {
  run_family_sweep(topo::TopologyFamily::kReconf,
                   std::min(50, seeds_from_env(50)));
}

TEST(ChaosInvariants, FamilySeedsReproduceByteIdenticalTrajectories) {
  for (const auto family :
       {topo::TopologyFamily::kFlat, topo::TopologyFamily::kReconf}) {
    sim::ChaosParams params;
    params.family = family;
    params.preset = topo::PresetId::kA;
    const sim::ChaosVerdict first = sim::run_chaos_seed(7, params);
    const sim::ChaosVerdict second = sim::run_chaos_seed(7, params);
    EXPECT_EQ(first.trajectory, second.trajectory)
        << topo::to_string(family);
    EXPECT_EQ(first.executed_cost, second.executed_cost)
        << topo::to_string(family);
    EXPECT_EQ(first.phases, second.phases) << topo::to_string(family);
  }
}

TEST(ChaosInvariants, SweepVerdictsAreIdenticalAcrossThreadCounts) {
  sim::ChaosParams params;
  const int seeds = std::min(20, seeds_from_env(20));
  const sim::ChaosSweepResult serial =
      sim::run_chaos_sweep(100, seeds, 1, params);
  const sim::ChaosSweepResult threaded =
      sim::run_chaos_sweep(100, seeds, 4, params);
  ASSERT_EQ(serial.verdicts.size(), threaded.verdicts.size());
  for (std::size_t i = 0; i < serial.verdicts.size(); ++i) {
    const sim::ChaosVerdict& a = serial.verdicts[i];
    const sim::ChaosVerdict& b = threaded.verdicts[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.passed(), b.passed()) << "seed " << a.seed;
    // The trajectory is the byte-level determinism oracle: phase order,
    // steps, state signatures, and exact cost decimals must all match.
    EXPECT_EQ(a.trajectory, b.trajectory) << "seed " << a.seed;
    EXPECT_EQ(a.executed_cost, b.executed_cost) << "seed " << a.seed;
    EXPECT_EQ(a.replans, b.replans) << "seed " << a.seed;
  }
}

TEST(ChaosInvariants, SameSeedReproducesByteIdenticalTrajectory) {
  sim::ChaosParams params;
  const sim::ChaosVerdict first = sim::run_chaos_seed(7, params);
  const sim::ChaosVerdict second = sim::run_chaos_seed(7, params);
  EXPECT_EQ(first.trajectory, second.trajectory);
  EXPECT_EQ(first.executed_cost, second.executed_cost);
  EXPECT_EQ(first.phases, second.phases);
}

TEST(ChaosInvariants, FaultScriptIsDeterministicAndAvoidsOperatedElements) {
  const migration::MigrationCase mcase = pipeline::build_experiment(
      pipeline::ExperimentId::kA, topo::PresetScale::kReduced);
  sim::FaultScriptParams params;
  params.horizon = 40;
  params.expected_phases = 10;
  const sim::FaultScript a =
      sim::make_fault_script(3, mcase.task, params);
  const sim::FaultScript b =
      sim::make_fault_script(3, mcase.task, params);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].circuit, b.events[i].circuit);
    EXPECT_EQ(a.events[i].sw, b.events[i].sw);
    EXPECT_EQ(a.events[i].start_step, b.events[i].start_step);
  }

  // Collect operated elements; no fault may target one.
  std::vector<char> op_sw(mcase.task.topo->num_switches(), 0);
  std::vector<char> op_c(mcase.task.topo->num_circuits(), 0);
  for (const auto& blocks : mcase.task.blocks) {
    for (const auto& block : blocks) {
      for (const auto& op : block.ops) {
        if (op.kind == migration::ElementOp::Kind::kSwitch) {
          op_sw[static_cast<std::size_t>(op.id)] = 1;
        } else {
          op_c[static_cast<std::size_t>(op.id)] = 1;
        }
      }
    }
  }
  for (const sim::FaultEvent& e : a.events) {
    if (e.circuit != topo::kInvalidCircuit) {
      EXPECT_FALSE(op_c[static_cast<std::size_t>(e.circuit)]);
    }
    if (e.sw != topo::kInvalidSwitch) {
      EXPECT_FALSE(op_sw[static_cast<std::size_t>(e.sw)]);
    }
  }
}

TEST(ChaosInvariants, InjectorRestoresCapacitiesAfterRun) {
  migration::MigrationCase mcase = pipeline::build_experiment(
      pipeline::ExperimentId::kA, topo::PresetScale::kReduced);
  topo::Topology& topo = *mcase.task.topo;
  std::vector<double> before;
  for (const topo::Circuit& c : topo.circuits()) {
    before.push_back(c.capacity_tbps);
  }
  sim::FaultScriptParams params;
  params.horizon = 40;
  params.circuit_degrades = 4;
  const sim::FaultScript script =
      sim::make_fault_script(11, mcase.task, params);
  {
    sim::ScriptInjector injector(script, topo);
    std::vector<topo::SwitchId> dsw;
    std::vector<topo::CircuitId> dc;
    injector.apply(/*step=*/10, topo, dsw, dc);
    // The destructor restores.
  }
  for (std::size_t c = 0; c < before.size(); ++c) {
    EXPECT_EQ(topo.circuits()[c].capacity_tbps, before[c]) << "circuit " << c;
  }
}

// Warm-start replanning (DESIGN.md §11) is a latency optimization: every
// seed must reach the same verdict — pass/fail, invariants, trajectory,
// executed cost — whether re-plans repair the surviving suffix or start
// cold. This is the unit-test twin of the tier1.sh warm/cold parity gate.
// `require_warm_win` additionally demands that at least one seed actually
// exercised the repair path, so the parity check is not vacuous.
void run_warm_cold_parity(topo::TopologyFamily family, int seeds,
                          bool require_warm_win) {
  sim::ChaosParams warm_params;
  warm_params.family = family;
  warm_params.preset = topo::PresetId::kA;
  sim::ChaosParams cold_params = warm_params;
  cold_params.warm_repair = false;
  const sim::ChaosSweepResult warm =
      sim::run_chaos_sweep(0, seeds, 2, warm_params);
  const sim::ChaosSweepResult cold =
      sim::run_chaos_sweep(0, seeds, 2, cold_params);
  ASSERT_EQ(warm.verdicts.size(), cold.verdicts.size());
  int warm_wins = 0;
  for (std::size_t i = 0; i < warm.verdicts.size(); ++i) {
    const sim::ChaosVerdict& w = warm.verdicts[i];
    const sim::ChaosVerdict& c = cold.verdicts[i];
    ASSERT_EQ(w.seed, c.seed);
    EXPECT_EQ(w.passed(), c.passed()) << "seed " << w.seed;
    EXPECT_EQ(w.invariants_ok, c.invariants_ok) << "seed " << w.seed;
    EXPECT_EQ(w.trajectory, c.trajectory) << "seed " << w.seed;
    EXPECT_EQ(w.executed_cost, c.executed_cost) << "seed " << w.seed;
    // Cold runs must not report warm activity; warm accounting must be
    // internally consistent on every seed.
    EXPECT_EQ(c.warm_attempts, 0) << "seed " << c.seed;
    EXPECT_EQ(c.warm_wins, 0) << "seed " << c.seed;
    EXPECT_LE(w.warm_wins, w.warm_attempts) << "seed " << w.seed;
    if (w.warm_wins > 0) {
      EXPECT_TRUE(w.invariants_ok) << "seed " << w.seed;
      ++warm_wins;
    }
  }
  if (require_warm_win) EXPECT_GT(warm_wins, 0);
}

TEST(ChaosInvariants, WarmRepairIsSafetyNeutralAcrossTheSweep) {
  run_warm_cold_parity(topo::TopologyFamily::kClos,
                       std::min(20, seeds_from_env(20)),
                       /*require_warm_win=*/true);
}

TEST(ChaosInvariants, WarmRepairIsSafetyNeutralOnFlatFabrics) {
  run_warm_cold_parity(topo::TopologyFamily::kFlat,
                       std::min(20, seeds_from_env(20)),
                       /*require_warm_win=*/false);
}

TEST(ChaosInvariants, WarmRepairIsSafetyNeutralOnReconfMeshes) {
  run_warm_cold_parity(topo::TopologyFamily::kReconf,
                       std::min(20, seeds_from_env(20)),
                       /*require_warm_win=*/false);
}

TEST(ChaosInvariants, CheckpointJsonRejectsMalformedDocuments) {
  pipeline::ReplanCheckpoint cp;
  cp.done = core::CountVector{1, 2};
  cp.phases_executed = 3;
  const json::Value good = cp.to_json();

  // Round trip is exact.
  const pipeline::ReplanCheckpoint back = pipeline::ReplanCheckpoint::from_json(
      json::parse(json::dump(good)));
  EXPECT_EQ(json::dump(back.to_json()), json::dump(good));

  EXPECT_THROW(pipeline::ReplanCheckpoint::from_json(json::Value(42)),
               std::exception);
  EXPECT_THROW(pipeline::ReplanCheckpoint::from_json(
                   json::parse(R"({"schema": "klotski.replan-checkpoint.v9"})")),
               std::exception);
  EXPECT_THROW(pipeline::ReplanCheckpoint::from_json(
                   json::parse(R"({"schema": "klotski.replan-checkpoint.v1"})")),
               std::exception);
}

}  // namespace
}  // namespace klotski
