// Shared fixtures for the Klotski test suite: tiny hand-built topologies and
// standard migration cases small enough for exhaustive oracles.
#pragma once

#include <memory>

#include "klotski/migration/family_tasks.h"
#include "klotski/migration/task_builder.h"
#include "klotski/pipeline/edp.h"
#include "klotski/topo/presets.h"

namespace klotski::testing {

/// A 4-switch diamond: s0 - {m1, m2} - t3, all capacities 1 Tbps.
/// Useful for hand-checkable ECMP math.
struct Diamond {
  topo::Topology topo;
  topo::SwitchId s, m1, m2, t;
  topo::CircuitId c_sm1, c_sm2, c_m1t, c_m2t;

  Diamond() {
    using topo::ElementState;
    using topo::Generation;
    using topo::SwitchRole;
    s = topo.add_switch(SwitchRole::kRsw, Generation::kV1, {}, 8,
                        ElementState::kActive, "s");
    m1 = topo.add_switch(SwitchRole::kFsw, Generation::kV1, {}, 8,
                         ElementState::kActive, "m1");
    m2 = topo.add_switch(SwitchRole::kFsw, Generation::kV1, {}, 8,
                         ElementState::kActive, "m2");
    t = topo.add_switch(SwitchRole::kEbb, Generation::kV1, {}, 8,
                        ElementState::kActive, "t");
    c_sm1 = topo.add_circuit(s, m1, 1.0, ElementState::kActive);
    c_sm2 = topo.add_circuit(s, m2, 1.0, ElementState::kActive);
    c_m1t = topo.add_circuit(m1, t, 1.0, ElementState::kActive);
    c_m2t = topo.add_circuit(m2, t, 1.0, ElementState::kActive);
  }

  traffic::Demand demand(double volume) const {
    traffic::Demand d;
    d.name = "s-to-t";
    d.sources = {s};
    d.targets = {t};
    d.volume_tbps = volume;
    return d;
  }
};

/// The canonical small migration case used across planner tests: preset A
/// at full scale under HGRID V1->V2 (10 actions, 2 types).
inline migration::MigrationCase small_hgrid_case() {
  return migration::build_hgrid_migration(
      topo::preset_params(topo::PresetId::kA, topo::PresetScale::kFull), {});
}

inline migration::MigrationCase small_ssw_case() {
  return migration::build_ssw_forklift(
      topo::preset_params(topo::PresetId::kA, topo::PresetScale::kFull), {});
}

inline migration::MigrationCase small_dmag_case() {
  return migration::build_dmag_migration(
      topo::preset_params(topo::PresetId::kA, topo::PresetScale::kFull), {});
}

/// Non-Clos counterparts: the flat partial forklift and the reconfigurable
/// mesh rewire at preset A full scale.
inline migration::MigrationCase small_flat_case() {
  return migration::build_flat_migration(
      topo::flat_params(topo::PresetId::kA, topo::PresetScale::kFull), {});
}

inline migration::MigrationCase small_reconf_case() {
  return migration::build_reconf_migration(
      topo::reconf_params(topo::PresetId::kA, topo::PresetScale::kFull), {});
}

}  // namespace klotski::testing
