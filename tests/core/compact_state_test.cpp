#include <gtest/gtest.h>

#include <unordered_set>

#include "klotski/core/compact_state.h"

namespace klotski::core {
namespace {

TEST(CompactState, TotalActions) {
  EXPECT_EQ(total_actions({}), 0);
  EXPECT_EQ(total_actions({0, 0}), 0);
  EXPECT_EQ(total_actions({3, 4, 5}), 12);
}

TEST(CompactState, IsTarget) {
  EXPECT_TRUE(is_target({2, 3}, {2, 3}));
  EXPECT_FALSE(is_target({2, 2}, {2, 3}));
}

TEST(CompactState, HashEqualForEqualVectors) {
  CountVectorHash h;
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
}

TEST(CompactState, SearchStateEquality) {
  const SearchState a{{1, 2}, 0};
  const SearchState b{{1, 2}, 0};
  const SearchState c{{1, 2}, 1};
  const SearchState d{{2, 1}, 0};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(CompactState, SearchStateHashDistinguishesLastType) {
  SearchStateHash h;
  // Same counts with different last type are *different* search states
  // (the cost function depends on the last type) and should rarely collide.
  EXPECT_NE(h(SearchState{{1, 2}, 0}), h(SearchState{{1, 2}, 1}));
  EXPECT_NE(h(SearchState{{1, 2}, -1}), h(SearchState{{1, 2}, 0}));
}

TEST(CompactState, SearchStateHashUsableInSets) {
  std::unordered_set<SearchState, SearchStateHash> set;
  for (std::int32_t i = 0; i < 10; ++i) {
    for (std::int32_t j = 0; j < 10; ++j) {
      for (std::int32_t last = -1; last < 2; ++last) {
        set.insert(SearchState{{i, j}, last});
      }
    }
  }
  EXPECT_EQ(set.size(), 300u);
}

}  // namespace
}  // namespace klotski::core
