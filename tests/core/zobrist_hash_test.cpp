// The incremental Zobrist state hash (StateHasher): randomized apply/unapply
// walks must keep the incrementally maintained hash equal to a from-scratch
// rehash at every step, and the hash must spread the small, dense count
// vectors real searches produce without systematic collisions.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "klotski/core/compact_state.h"
#include "klotski/util/rng.h"

namespace klotski::core {
namespace {

TEST(StateHasher, IncrementalUpdateMatchesFullRehashOnRandomWalks) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    const auto num_types =
        static_cast<std::size_t>(rng.uniform_int(1, 6));
    CountVector target(num_types);
    CountVector counts(num_types, 0);
    for (auto& t : target) {
      t = static_cast<std::int32_t>(rng.uniform_int(1, 40));
    }

    std::uint64_t h = StateHasher::hash(counts);
    ASSERT_EQ(h, StateHasher::hash(counts.data(), counts.size()));

    for (int step = 0; step < 2000; ++step) {
      const auto t = rng.index(num_types);
      // Apply when possible, unapply when possible, mix both at random.
      const bool can_apply = counts[t] < target[t];
      const bool can_unapply = counts[t] > 0;
      if (!can_apply && !can_unapply) continue;
      const bool apply = can_apply && (!can_unapply || rng.chance(0.5));
      const std::int32_t from = counts[t];
      const std::int32_t to = apply ? from + 1 : from - 1;
      counts[t] = to;
      h = StateHasher::update(h, static_cast<std::int32_t>(t), from, to);
      ASSERT_EQ(h, StateHasher::hash(counts))
          << "seed " << seed << " step " << step;
    }
  }
}

TEST(StateHasher, UnapplyIsExactInverse) {
  const CountVector counts = {3, 1, 4};
  const std::uint64_t h = StateHasher::hash(counts);
  const std::uint64_t applied = StateHasher::update(h, 1, 1, 2);
  EXPECT_NE(applied, h);
  EXPECT_EQ(StateHasher::update(applied, 1, 2, 1), h);
}

TEST(StateHasher, CollisionSanityOverDenseLattice) {
  // Every state of a 3-type lattice (21^3 = 9261 states) x 4 last-type
  // values: all distinct 64-bit hashes. Expected collisions for ~37k
  // uniform draws from 2^64 are ~0; any collision here means systematic
  // structure leaking through the mix.
  std::unordered_set<std::uint64_t> count_hashes;
  std::unordered_set<std::uint64_t> state_hashes;
  CountVector v(3);
  for (v[0] = 0; v[0] <= 20; ++v[0]) {
    for (v[1] = 0; v[1] <= 20; ++v[1]) {
      for (v[2] = 0; v[2] <= 20; ++v[2]) {
        const std::uint64_t h = StateHasher::hash(v);
        EXPECT_TRUE(count_hashes.insert(h).second)
            << v[0] << "," << v[1] << "," << v[2];
        for (std::int32_t last = -1; last < 3; ++last) {
          EXPECT_TRUE(
              state_hashes.insert(StateHasher::with_last(h, last)).second);
        }
      }
    }
  }
  EXPECT_EQ(count_hashes.size(), 9261u);
  EXPECT_EQ(state_hashes.size(), 4u * 9261u);
}

TEST(StateHasher, ArityChangesTheHash) {
  const CountVector a = {1};
  const CountVector b = {1, 0};
  EXPECT_NE(StateHasher::hash(a), StateHasher::hash(b));
}

TEST(StateHasher, LastTypeDistinguishesSearchStates) {
  const std::uint64_t h = StateHasher::hash(CountVector{2, 2});
  EXPECT_NE(StateHasher::with_last(h, 0), StateHasher::with_last(h, 1));
  EXPECT_NE(StateHasher::with_last(h, -1), StateHasher::with_last(h, 0));
}

}  // namespace
}  // namespace klotski::core
