#include <gtest/gtest.h>

#include <algorithm>

#include "klotski/core/cost_model.h"

namespace klotski::core {
namespace {

TEST(CostModel, RejectsAlphaOutsideUnitInterval) {
  EXPECT_THROW(CostModel(-0.1), std::invalid_argument);
  EXPECT_THROW(CostModel(1.1), std::invalid_argument);
  EXPECT_NO_THROW(CostModel(0.0));
  EXPECT_NO_THROW(CostModel(1.0));
}

TEST(CostModel, TransitionCost) {
  const CostModel m(0.3);
  EXPECT_DOUBLE_EQ(m.transition_cost(-1, 0), 1.0);  // first action
  EXPECT_DOUBLE_EQ(m.transition_cost(0, 1), 1.0);   // type change
  EXPECT_DOUBLE_EQ(m.transition_cost(1, 1), 0.3);   // same type
}

TEST(CostModel, SequenceCostEqualsTypeChangesPlusOneAtAlphaZero) {
  const CostModel m(0.0);
  // Eq. 1: sum of 1(A_i != A_{i+1}) + 1.
  EXPECT_DOUBLE_EQ(m.sequence_cost({0, 0, 1, 1, 0}), 3.0);
  EXPECT_DOUBLE_EQ(m.sequence_cost({0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(m.sequence_cost({}), 0.0);
}

TEST(CostModel, SequenceCostMatchesRunFormula) {
  // f_cost(x) = 1 + alpha(x-1) per same-type run (§5).
  const CostModel m(0.5);
  // Runs: [0,0,0] (1 + 0.5*2 = 2), [1] (1), [0,0] (1 + 0.5 = 1.5).
  EXPECT_DOUBLE_EQ(m.sequence_cost({0, 0, 0, 1, 0, 0}), 4.5);
}

TEST(CostModel, AlphaOneMakesEveryActionCostOne) {
  const CostModel m(1.0);
  EXPECT_DOUBLE_EQ(m.sequence_cost({0, 0, 1, 1}), 4.0);
}

TEST(CostModel, HeuristicCountsRemainingTypesAtAlphaZero) {
  const CostModel m(0.0);
  // Two types remaining, neither is the last type: h = 2.
  EXPECT_DOUBLE_EQ(m.heuristic({0, 0}, {3, 2}, -1), 2.0);
  // One type exhausted: h = 1.
  EXPECT_DOUBLE_EQ(m.heuristic({3, 0}, {3, 2}, 0), 1.0);
  // Target reached: h = 0.
  EXPECT_DOUBLE_EQ(m.heuristic({3, 2}, {3, 2}, 1), 0.0);
}

TEST(CostModel, HeuristicDiscountsCurrentRun) {
  const CostModel m(0.0);
  // Remaining actions of the last type can be appended for free at alpha=0:
  // the naive "count remaining types" would say 2 and overestimate.
  EXPECT_DOUBLE_EQ(m.heuristic({1, 0}, {3, 2}, 0), 1.0);
}

TEST(CostModel, HeuristicGeneralizedByAlpha) {
  const CostModel m(0.5);
  // Type 0 is the current run with 2 remaining: 0.5 * 2 = 1.
  // Type 1 has 2 remaining: 1 + 0.5 * 1 = 1.5.
  EXPECT_DOUBLE_EQ(m.heuristic({1, 0}, {3, 2}, 0), 2.5);
}

TEST(CostModel, HeuristicNeverExceedsTrueCostExhaustive) {
  // Enumerate every completion sequence for a small remaining multiset and
  // verify admissibility: h(state) <= min completion cost.
  for (const double alpha : {0.0, 0.3, 1.0}) {
    const CostModel m(alpha);
    const CountVector target = {2, 2};
    for (std::int32_t i = 0; i <= 2; ++i) {
      for (std::int32_t j = 0; j <= 2; ++j) {
        for (std::int32_t last = -1; last < 2; ++last) {
          // Enumerate all orderings of the remaining multiset via DFS.
          double best = 1e18;
          CountVector counts = {i, j};
          auto dfs = [&](auto&& self, CountVector& c, std::int32_t l,
                         double g) -> void {
            if (c[0] == target[0] && c[1] == target[1]) {
              best = std::min(best, g);
              return;
            }
            for (std::int32_t a = 0; a < 2; ++a) {
              if (c[a] >= target[a]) continue;
              ++c[a];
              self(self, c, a, g + m.transition_cost(l, a));
              --c[a];
            }
          };
          dfs(dfs, counts, last, 0.0);
          if (best < 1e18) {
            EXPECT_LE(m.heuristic({i, j}, target, last), best + 1e-12)
                << "alpha=" << alpha << " i=" << i << " j=" << j
                << " last=" << last;
          }
        }
      }
    }
  }
}

TEST(CostModel, HeuristicIsConsistent) {
  // h(n) <= c(n, n') + h(n') for every transition: required for A* to be
  // optimal with a closed set.
  for (const double alpha : {0.0, 0.4, 1.0}) {
    const CostModel m(alpha);
    const CountVector target = {3, 3, 3};
    for (std::int32_t i = 0; i <= 3; ++i) {
      for (std::int32_t j = 0; j <= 3; ++j) {
        for (std::int32_t k = 0; k <= 3; ++k) {
          for (std::int32_t last = -1; last < 3; ++last) {
            const CountVector counts = {i, j, k};
            const double h = m.heuristic(counts, target, last);
            for (std::int32_t a = 0; a < 3; ++a) {
              if (counts[a] >= target[a]) continue;
              CountVector next = counts;
              ++next[a];
              const double h2 = m.heuristic(next, target, a);
              EXPECT_LE(h, m.transition_cost(last, a) + h2 + 1e-12);
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace klotski::core
