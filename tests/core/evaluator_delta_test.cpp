// Delta materialization must be indistinguishable from a full replay: same
// element states after arbitrary count-vector moves (including reverts and
// multi-type jumps) and same feasibility verdicts through the full
// incremental stack (versioned topology, incremental ECMP, checker memos).
#include <gtest/gtest.h>

#include <algorithm>

#include "../test_helpers.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/pipeline/edp.h"
#include "klotski/util/rng.h"

namespace klotski::core {
namespace {

using klotski::testing::Diamond;
using klotski::testing::small_dmag_case;
using klotski::testing::small_hgrid_case;
using klotski::testing::small_ssw_case;

CountVector random_step(const CountVector& current, const CountVector& target,
                        util::Rng& rng) {
  CountVector next = current;
  if (rng.chance(0.7)) {
    // Planner-like move: one type, one block up or down.
    const auto t = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(next.size()) - 1));
    const std::int32_t delta = rng.chance(0.5) ? 1 : -1;
    next[t] = std::clamp(next[t] + delta, 0, target[t]);
  } else {
    // Arbitrary jump, as after a cache-guided or batched evaluation.
    for (std::size_t t = 0; t < next.size(); ++t) {
      next[t] = static_cast<std::int32_t>(rng.uniform_int(0, target[t]));
    }
  }
  return next;
}

void expect_walk_matches_full_replay(migration::MigrationCase delta_case,
                                     migration::MigrationCase replay_case,
                                     std::uint64_t seed) {
  constraints::CompositeChecker no_checks;
  StateEvaluator delta_eval(delta_case.task, no_checks, false);
  StateEvaluator replay_eval(replay_case.task, no_checks, false);
  replay_eval.set_incremental(false);
  ASSERT_EQ(delta_eval.target(), replay_eval.target());

  util::Rng rng(seed);
  CountVector counts(delta_case.task.blocks.size(), 0);
  for (int step = 0; step < 200; ++step) {
    counts = random_step(counts, delta_eval.target(), rng);
    delta_eval.materialize(counts);
    replay_eval.materialize(counts);
    ASSERT_TRUE(topo::TopologyState::capture(*delta_case.task.topo) ==
                topo::TopologyState::capture(*replay_case.task.topo))
        << "divergence at step " << step;
  }
}

TEST(DeltaMaterialization, MatchesFullReplayHgrid) {
  expect_walk_matches_full_replay(small_hgrid_case(), small_hgrid_case(), 17);
}

TEST(DeltaMaterialization, MatchesFullReplaySsw) {
  expect_walk_matches_full_replay(small_ssw_case(), small_ssw_case(), 29);
}

TEST(DeltaMaterialization, MatchesFullReplayDmag) {
  expect_walk_matches_full_replay(small_dmag_case(), small_dmag_case(), 43);
}

// Hand-built overlap: two blocks of different types write the same circuit
// with different target states. Reverting the later block must expose the
// earlier block's state (canonical-order resolution), not the original.
TEST(DeltaMaterialization, OverlappingBlocksResolveInCanonicalOrder) {
  Diamond d;
  migration::MigrationTask task;
  task.topo = &d.topo;
  task.original_state = topo::TopologyState::capture(d.topo);

  migration::ActionType drain;
  drain.id = 0;
  drain.label = "drain";
  migration::ActionType remove;
  remove.id = 1;
  remove.label = "remove";
  task.action_types = {drain, remove};

  migration::OperationBlock b0;
  b0.id = 0;
  b0.type = 0;
  b0.ops.push_back(migration::ElementOp{migration::ElementOp::Kind::kCircuit,
                                        d.c_sm1, topo::ElementState::kDrained});
  migration::OperationBlock b1;
  b1.id = 1;
  b1.type = 1;
  b1.ops.push_back(migration::ElementOp{migration::ElementOp::Kind::kCircuit,
                                        d.c_sm1, topo::ElementState::kAbsent});
  task.blocks = {{b0}, {b1}};
  b0.apply(d.topo);
  b1.apply(d.topo);
  task.target_state = topo::TopologyState::capture(d.topo);
  task.reset_to_original();

  constraints::CompositeChecker no_checks;
  StateEvaluator evaluator(task, no_checks, false);
  const auto circuit_state = [&] { return d.topo.circuit(d.c_sm1).state; };

  evaluator.materialize({1, 1});
  EXPECT_EQ(circuit_state(), topo::ElementState::kAbsent);
  evaluator.materialize({1, 0});  // revert the shared later block
  EXPECT_EQ(circuit_state(), topo::ElementState::kDrained);
  evaluator.materialize({0, 1});  // type order, not application order, wins
  EXPECT_EQ(circuit_state(), topo::ElementState::kAbsent);
  evaluator.materialize({0, 0});
  EXPECT_EQ(circuit_state(), topo::ElementState::kActive);
  evaluator.materialize({1, 0});
  EXPECT_EQ(circuit_state(), topo::ElementState::kDrained);
}

// The full incremental stack (delta materialization + version-gated router
// caches + checker memos) must produce the same verdicts as a reference
// whose every cache is defeated via bump_state_version().
TEST(DeltaMaterialization, VerdictsMatchMemoDefeatingReference) {
  migration::MigrationCase inc_case = small_hgrid_case();
  migration::MigrationCase ref_case = small_hgrid_case();
  pipeline::CheckerConfig config;
  config.demand.max_utilization = 0.8;
  pipeline::CheckerBundle inc_bundle =
      pipeline::make_standard_checker(inc_case.task, config);
  pipeline::CheckerBundle ref_bundle =
      pipeline::make_standard_checker(ref_case.task, config);
  StateEvaluator inc_eval(inc_case.task, *inc_bundle.checker, false);
  StateEvaluator ref_eval(ref_case.task, *ref_bundle.checker, false);
  ref_eval.set_incremental(false);

  util::Rng rng(7);
  CountVector counts(inc_case.task.blocks.size(), 0);
  for (int step = 0; step < 120; ++step) {
    counts = random_step(counts, inc_eval.target(), rng);
    ref_case.task.topo->bump_state_version();  // kill every reference cache
    const bool inc = inc_eval.feasible(counts);
    const bool ref = ref_eval.feasible(counts);
    ASSERT_EQ(inc, ref) << "verdict divergence at step " << step;
  }
}

}  // namespace
}  // namespace klotski::core
