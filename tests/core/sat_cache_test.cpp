#include <gtest/gtest.h>

#include "klotski/core/sat_cache.h"

namespace klotski::core {
namespace {

TEST(SatCache, MissThenHit) {
  SatCache cache;
  EXPECT_FALSE(cache.lookup({1, 2}).has_value());
  cache.store({1, 2}, true);
  ASSERT_TRUE(cache.lookup({1, 2}).has_value());
  EXPECT_TRUE(*cache.lookup({1, 2}));
}

TEST(SatCache, StoresNegativeVerdicts) {
  SatCache cache;
  cache.store({0, 5}, false);
  ASSERT_TRUE(cache.lookup({0, 5}).has_value());
  EXPECT_FALSE(*cache.lookup({0, 5}));
}

TEST(SatCache, DistinguishesKeys) {
  SatCache cache;
  cache.store({1, 0}, true);
  cache.store({0, 1}, false);
  EXPECT_TRUE(*cache.lookup({1, 0}));
  EXPECT_FALSE(*cache.lookup({0, 1}));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SatCache, FirstStoreWins) {
  // The verdict of a topology never changes, so a duplicate store is a
  // no-op rather than an overwrite.
  SatCache cache;
  cache.store({2, 2}, true);
  cache.store({2, 2}, false);
  EXPECT_TRUE(*cache.lookup({2, 2}));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SatCache, Clear) {
  SatCache cache;
  cache.store({1}, true);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup({1}).has_value());
}

TEST(SatCache, MemoryFootprintIsCompact) {
  // The point of the compact representation (§4.2): thousands of cached
  // states fit in well under a megabyte.
  SatCache cache;
  for (std::int32_t i = 0; i < 100; ++i) {
    for (std::int32_t j = 0; j < 100; ++j) {
      cache.store({i, j}, (i + j) % 2 == 0);
    }
  }
  EXPECT_EQ(cache.size(), 10000u);
  EXPECT_LT(cache.approx_memory_bytes(), 2u * 1024 * 1024);
}

TEST(SatCache, EntryCapBoundsSizeAndCountsEvictions) {
  SatCache cache;
  cache.set_max_entries(100);
  for (std::int32_t i = 0; i < 1000; ++i) {
    cache.store({i, 0}, true);
  }
  // Two generations of at most max_entries each: size can never exceed 2x
  // the cap no matter how many distinct states are stored.
  EXPECT_LE(cache.size(), 200u);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_EQ(cache.evictions() + cache.size(), 1000u);
}

TEST(SatCache, RecentlyTouchedEntriesSurviveRotation) {
  // Generational eviction is LRU-ish: an old-generation hit promotes the
  // entry to the current generation, so states the search keeps probing
  // outlive rotations that drop cold entries.
  SatCache cache;
  cache.set_max_entries(64);
  cache.store({-1, -1}, false);
  for (std::int32_t i = 0; i < 1000; ++i) {
    cache.store({i, 7}, true);
    // Touch the hot key on every store so it is always promoted before its
    // generation is dropped.
    ASSERT_TRUE(cache.lookup({-1, -1}).has_value()) << "lost after " << i;
  }
  ASSERT_TRUE(cache.lookup({-1, -1}).has_value());
  EXPECT_FALSE(*cache.lookup({-1, -1}));
  // A key stored early and never touched again was evicted long ago.
  EXPECT_FALSE(cache.lookup({0, 7}).has_value());
}

TEST(SatCache, FirstStoreWinsAcrossGenerations) {
  SatCache cache;
  cache.set_max_entries(4);
  cache.store({9, 9}, true);
  // Push enough distinct keys to rotate {9, 9} into the old generation,
  // then try to overwrite it: the original verdict must survive.
  for (std::int32_t i = 0; i < 4; ++i) cache.store({i, 1}, false);
  cache.store({9, 9}, false);
  ASSERT_TRUE(cache.lookup({9, 9}).has_value());
  EXPECT_TRUE(*cache.lookup({9, 9}));
}

TEST(SatCache, CapOfOneStillServesHits) {
  SatCache cache;
  cache.set_max_entries(1);
  cache.store({5}, true);
  ASSERT_TRUE(cache.lookup({5}).has_value());
  cache.store({6}, false);
  ASSERT_TRUE(cache.lookup({6}).has_value());
  EXPECT_FALSE(*cache.lookup({6}));
}

}  // namespace
}  // namespace klotski::core
