#include <gtest/gtest.h>

#include "klotski/core/sat_cache.h"

namespace klotski::core {
namespace {

TEST(SatCache, MissThenHit) {
  SatCache cache;
  EXPECT_FALSE(cache.lookup({1, 2}).has_value());
  cache.store({1, 2}, true);
  ASSERT_TRUE(cache.lookup({1, 2}).has_value());
  EXPECT_TRUE(*cache.lookup({1, 2}));
}

TEST(SatCache, StoresNegativeVerdicts) {
  SatCache cache;
  cache.store({0, 5}, false);
  ASSERT_TRUE(cache.lookup({0, 5}).has_value());
  EXPECT_FALSE(*cache.lookup({0, 5}));
}

TEST(SatCache, DistinguishesKeys) {
  SatCache cache;
  cache.store({1, 0}, true);
  cache.store({0, 1}, false);
  EXPECT_TRUE(*cache.lookup({1, 0}));
  EXPECT_FALSE(*cache.lookup({0, 1}));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SatCache, FirstStoreWins) {
  // The verdict of a topology never changes, so a duplicate store is a
  // no-op rather than an overwrite.
  SatCache cache;
  cache.store({2, 2}, true);
  cache.store({2, 2}, false);
  EXPECT_TRUE(*cache.lookup({2, 2}));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SatCache, Clear) {
  SatCache cache;
  cache.store({1}, true);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup({1}).has_value());
}

TEST(SatCache, MemoryFootprintIsCompact) {
  // The point of the compact representation (§4.2): thousands of cached
  // states fit in well under a megabyte.
  SatCache cache;
  for (std::int32_t i = 0; i < 100; ++i) {
    for (std::int32_t j = 0; j < 100; ++j) {
      cache.store({i, j}, (i + j) % 2 == 0);
    }
  }
  EXPECT_EQ(cache.size(), 10000u);
  EXPECT_LT(cache.approx_memory_bytes(), 2u * 1024 * 1024);
}

}  // namespace
}  // namespace klotski::core
