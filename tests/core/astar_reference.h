// The pre-arena A* implementation, preserved verbatim as a test oracle.
//
// This is the planner exactly as it stood before the struct-of-arrays
// rewrite: per-node CountVector allocations, an unordered_map<SearchState>
// for duplicate detection, std::priority_queue for the open list. The
// equivalence suite runs it head to head against the production planner and
// asserts bit-identical results (actions, cost, stats, trace) whenever no
// memory budget is in play — which is what makes the SoA representation a
// pure storage change rather than an algorithmic one.
#pragma once

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "klotski/constraints/composite.h"
#include "klotski/core/cost_model.h"
#include "klotski/core/plan.h"
#include "klotski/core/planner.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/util/timer.h"

namespace klotski::testing {

inline core::Plan reference_astar_plan(migration::MigrationTask& task,
                                       constraints::CompositeChecker& checker,
                                       const core::PlannerOptions& options) {
  using namespace core;

  struct Node {
    CountVector counts;
    std::int32_t last = -1;
    double g = 0.0;
    std::int32_t parent = -1;
  };

  struct QueueEntry {
    double f = 0.0;
    std::int32_t finished = 0;
    long long seq = 0;
    std::int32_t node = -1;
  };

  struct QueueCompare {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.f != b.f) return a.f > b.f;
      if (a.finished != b.finished) return a.finished < b.finished;
      return a.seq > b.seq;
    }
  };

  util::Stopwatch stopwatch;
  const util::Deadline deadline =
      options.deadline_seconds > 0.0
          ? util::Deadline::after_seconds(options.deadline_seconds)
          : util::Deadline::unlimited();

  Plan plan;
  plan.planner = "astar";

  StateEvaluator evaluator(task, checker, options.use_satisfiability_cache);
  const CountVector& target = evaluator.target();
  const auto num_types = static_cast<std::int32_t>(target.size());
  const CostModel cost(options.alpha, options.type_weights);

  auto finish = [&](Plan&& p) {
    task.reset_to_original();
    p.stats.sat_checks = evaluator.sat_checks();
    p.stats.cache_hits = evaluator.cache_hits();
    p.stats.evaluations = evaluator.evaluations();
    p.stats.delta_applies = evaluator.delta_applies();
    p.stats.full_replays = evaluator.full_replays();
    p.stats.wall_seconds = stopwatch.elapsed_seconds();
    return std::move(p);
  };

  const CountVector origin(static_cast<std::size_t>(num_types), 0);
  if (!evaluator.feasible(origin)) {
    plan.failure = "original topology violates constraints";
    return finish(std::move(plan));
  }
  if (origin == target) {
    plan.found = true;
    return finish(std::move(plan));
  }
  if (!evaluator.feasible(target)) {
    plan.failure = "target topology violates constraints";
    return finish(std::move(plan));
  }

  std::vector<Node> nodes;
  nodes.push_back(Node{origin, -1, 0.0, -1});

  std::unordered_map<SearchState, double, SearchStateHash> best_g;
  best_g.emplace(SearchState{origin, -1}, 0.0);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, QueueCompare> open;
  long long seq = 0;
  open.push(QueueEntry{cost.heuristic(origin, target, -1), 0, seq++, 0});

  std::vector<std::int32_t> trace_nodes;

  while (!open.empty()) {
    if (plan.stats.visited_states % 64 == 0 && deadline.expired()) {
      plan.failure = "timeout";
      return finish(std::move(plan));
    }

    if (static_cast<long long>(open.size()) > plan.stats.frontier_peak) {
      plan.stats.frontier_peak = static_cast<long long>(open.size());
    }
    const QueueEntry entry = open.top();
    open.pop();
    const Node node = nodes[static_cast<std::size_t>(entry.node)];

    const auto it = best_g.find(SearchState{node.counts, node.last});
    if (it == best_g.end() || node.g > it->second) continue;

    ++plan.stats.visited_states;

    if (options.record_trace) {
      TraceEntry t;
      t.counts = node.counts;
      t.last_type = node.last;
      t.g = node.g;
      t.h = cost.heuristic(node.counts, target, node.last);
      plan.trace.push_back(std::move(t));
      trace_nodes.push_back(entry.node);
    }

    if (node.counts == target) {
      plan.found = true;
      plan.cost = node.g;
      std::vector<PlannedAction> reversed;
      std::unordered_map<std::int32_t, bool> on_path;
      for (std::int32_t at = entry.node; at != -1;
           at = nodes[static_cast<std::size_t>(at)].parent) {
        on_path[at] = true;
        const Node& n = nodes[static_cast<std::size_t>(at)];
        if (n.parent != -1) {
          reversed.push_back(PlannedAction{n.last, n.counts[n.last] - 1});
        }
      }
      plan.actions.assign(reversed.rbegin(), reversed.rend());
      if (options.record_trace) {
        for (std::size_t i = 0; i < trace_nodes.size(); ++i) {
          plan.trace[i].on_final_path = on_path.count(trace_nodes[i]) > 0;
        }
      }
      return finish(std::move(plan));
    }

    bool boundary_known = false;
    bool boundary_ok = false;

    for (std::int32_t a = 0; a < num_types; ++a) {
      if (node.counts[a] >= target[a]) continue;
      ++plan.stats.generated_states;

      CountVector next = node.counts;
      ++next[a];
      const double g = node.g + cost.transition_cost(node.last, a);

      const SearchState key{next, a};
      const auto found = best_g.find(key);
      if (found != best_g.end() && found->second <= g) continue;

      if (a != node.last) {
        if (!boundary_known) {
          boundary_ok = evaluator.feasible(node.counts);
          boundary_known = true;
        }
        if (!boundary_ok) continue;
      }

      best_g[key] = g;
      const auto index = static_cast<std::int32_t>(nodes.size());
      nodes.push_back(Node{std::move(next), a, g, entry.node});

      double h = 0.0;
      if (options.use_astar_heuristic) {
        h = options.use_paper_literal_heuristic
                ? cost.heuristic_paper_literal(nodes.back().counts, target)
                : cost.heuristic(nodes.back().counts, target, a);
      }
      open.push(QueueEntry{g + h, total_actions(nodes.back().counts), seq++,
                           index});
    }

    if (static_cast<long long>(nodes.size()) > options.max_states) {
      plan.failure = "state space too large";
      return finish(std::move(plan));
    }
  }

  plan.failure = "no feasible action sequence exists";
  return finish(std::move(plan));
}

}  // namespace klotski::testing
