// Tests for the OPEX per-type cost weights (§7.2) and the heuristic
// ablation modes.
#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/core/cost_model.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"

namespace klotski::core {
namespace {

TEST(OpexCostModel, WeightsScaleTransitions) {
  const CostModel m(0.5, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(m.transition_cost(-1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.transition_cost(0, 0), 1.0);   // 0.5 * 2.0
  EXPECT_DOUBLE_EQ(m.transition_cost(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.transition_cost(1, 1), 1.5);   // 0.5 * 3.0
}

TEST(OpexCostModel, EmptyWeightsMeanUnit) {
  const CostModel m(0.0);
  EXPECT_DOUBLE_EQ(m.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(m.weight(5), 1.0);
}

TEST(OpexCostModel, RejectsNonPositiveWeights) {
  EXPECT_THROW(CostModel(0.0, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(CostModel(0.0, {-2.0}), std::invalid_argument);
}

TEST(OpexCostModel, SequenceCostUsesWeights) {
  const CostModel m(0.0, {2.0, 5.0});
  // Runs: [0,0] (2.0), [1] (5.0), [0] (2.0).
  EXPECT_DOUBLE_EQ(m.sequence_cost({0, 0, 1, 0}), 9.0);
}

TEST(OpexCostModel, HeuristicScalesWithWeights) {
  const CostModel m(0.0, {2.0, 5.0});
  EXPECT_DOUBLE_EQ(m.heuristic({0, 0}, {3, 2}, -1), 7.0);
  EXPECT_DOUBLE_EQ(m.heuristic({1, 0}, {3, 2}, 0), 5.0);  // type 0 is free
}

TEST(OpexCostModel, WeightedHeuristicStaysConsistent) {
  const CostModel m(0.4, {1.0, 3.0, 0.5});
  const CountVector target = {2, 2, 2};
  for (std::int32_t i = 0; i <= 2; ++i) {
    for (std::int32_t j = 0; j <= 2; ++j) {
      for (std::int32_t k = 0; k <= 2; ++k) {
        for (std::int32_t last = -1; last < 3; ++last) {
          const CountVector counts = {i, j, k};
          const double h = m.heuristic(counts, target, last);
          for (std::int32_t a = 0; a < 3; ++a) {
            if (counts[static_cast<std::size_t>(a)] >=
                target[static_cast<std::size_t>(a)]) {
              continue;
            }
            CountVector next = counts;
            ++next[static_cast<std::size_t>(a)];
            EXPECT_LE(h, m.transition_cost(last, a) +
                             m.heuristic(next, target, a) + 1e-12);
          }
        }
      }
    }
  }
}

TEST(OpexPlanning, PlannersAgreeUnderWeights) {
  migration::MigrationCase mig = klotski::testing::small_dmag_case();
  migration::MigrationTask& task = mig.task;

  PlannerOptions options;
  options.type_weights = {1.0, 2.5, 0.5};  // DMAG has three action types
  options.alpha = 0.3;

  auto run = [&](const char* name) {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    return pipeline::make_planner(name)->plan(task, *bundle.checker,
                                              options);
  };
  const Plan astar = run("astar");
  const Plan dp = run("dp");
  const Plan oracle = run("brute");
  ASSERT_TRUE(astar.found) << astar.failure;
  ASSERT_TRUE(dp.found);
  ASSERT_TRUE(oracle.found);
  EXPECT_NEAR(astar.cost, oracle.cost, 1e-9);
  EXPECT_NEAR(dp.cost, oracle.cost, 1e-9);
}

TEST(OpexPlanning, ExpensiveTypeGetsBatched) {
  // With a very expensive undrain type, the optimal plan minimizes the
  // number of undrain runs; the weighted optimum is at least the weight of
  // one undrain run plus one drain run.
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  PlannerOptions options;
  options.type_weights = {1.0, 10.0};
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  const Plan plan =
      pipeline::make_planner("astar")->plan(mig.task, *bundle.checker,
                                            options);
  ASSERT_TRUE(plan.found);
  EXPECT_GE(plan.cost, 11.0);
  // Re-derive the reported cost with the weighted model.
  CostModel model(0.0, options.type_weights);
  std::vector<std::int32_t> types;
  for (const PlannedAction& action : plan.actions) types.push_back(action.type);
  EXPECT_DOUBLE_EQ(plan.cost, model.sequence_cost(types));
}

// ---------------------------------------------------------------------------
// Paper-literal heuristic ablation

TEST(PaperLiteralHeuristic, OverestimatesOnCurrentRun) {
  const CostModel m(0.0);
  // Mid-run of type 0 with both types remaining: the literal Eq. 9 counts
  // type 0 at full price even though extending the run is free.
  EXPECT_DOUBLE_EQ(m.heuristic_paper_literal({1, 0}, {3, 2}), 2.0);
  EXPECT_DOUBLE_EQ(m.heuristic({1, 0}, {3, 2}, 0), 1.0);
}

TEST(PaperLiteralHeuristic, AStarStillTerminatesAndAuditsClean) {
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  PlannerOptions literal;
  literal.use_paper_literal_heuristic = true;
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  const Plan plan = pipeline::make_planner("astar")->plan(
      mig.task, *bundle.checker, literal);
  ASSERT_TRUE(plan.found) << plan.failure;
  // The plan is always *valid*; optimality is what the literal form risks.
  pipeline::CheckerBundle audit_bundle =
      pipeline::make_standard_checker(mig.task, {});
  EXPECT_TRUE(
      pipeline::audit_plan(mig.task, *audit_bundle.checker, plan).ok);
  // And its cost can never be better than the admissible-heuristic optimum.
  pipeline::CheckerBundle opt_bundle =
      pipeline::make_standard_checker(mig.task, {});
  const Plan optimal = pipeline::make_planner("astar")->plan(
      mig.task, *opt_bundle.checker, {});
  EXPECT_GE(plan.cost, optimal.cost);
}

}  // namespace
}  // namespace klotski::core
