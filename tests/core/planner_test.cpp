#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/baselines/brute_force_planner.h"
#include "klotski/core/astar_planner.h"
#include "klotski/core/dp_planner.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"

namespace klotski::core {
namespace {

using klotski::testing::small_dmag_case;
using klotski::testing::small_hgrid_case;
using klotski::testing::small_ssw_case;

struct PlannerCase {
  const char* task;
  double theta;
  double alpha;
};

std::string case_name(const ::testing::TestParamInfo<PlannerCase>& info) {
  std::string name = info.param.task;
  name += "_theta" + std::to_string(static_cast<int>(info.param.theta * 100));
  name += "_alpha" + std::to_string(static_cast<int>(info.param.alpha * 10));
  return name;
}

migration::MigrationCase build_case(const std::string& kind) {
  if (kind == "hgrid") return small_hgrid_case();
  if (kind == "ssw") return small_ssw_case();
  return small_dmag_case();
}

class PlannerOptimality : public ::testing::TestWithParam<PlannerCase> {};

// The core claim of Figures 8(a)/9(a): Klotski-A* and Klotski-DP always
// find the optimal plan, verified here against the brute-force oracle on
// small tasks, across migration types, utilization bounds, and alphas.
TEST_P(PlannerOptimality, AStarAndDpMatchBruteForce) {
  const PlannerCase param = GetParam();
  migration::MigrationCase mig = build_case(param.task);
  migration::MigrationTask& task = mig.task;

  pipeline::CheckerConfig config;
  config.demand.max_utilization = param.theta;
  PlannerOptions options;
  options.alpha = param.alpha;

  auto run = [&](const char* name) {
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    return pipeline::make_planner(name)->plan(task, *bundle.checker,
                                              options);
  };

  const Plan oracle = run("brute");
  const Plan astar = run("astar");
  const Plan dp = run("dp");

  ASSERT_EQ(astar.found, oracle.found) << astar.failure;
  ASSERT_EQ(dp.found, oracle.found) << dp.failure;
  if (!oracle.found) return;

  EXPECT_DOUBLE_EQ(astar.cost, oracle.cost);
  EXPECT_DOUBLE_EQ(dp.cost, oracle.cost);

  // Reported cost must match an independent recomputation from the actions.
  EXPECT_DOUBLE_EQ(astar.cost, astar.recompute_cost(param.alpha));
  EXPECT_DOUBLE_EQ(dp.cost, dp.recompute_cost(param.alpha));

  // And every plan must survive the independent audit.
  for (const Plan* plan : {&astar, &dp, &oracle}) {
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    const pipeline::AuditReport report =
        pipeline::audit_plan(task, *bundle.checker, *plan);
    EXPECT_TRUE(report.ok) << plan->planner << ": "
                           << (report.issues.empty() ? ""
                                                     : report.issues[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlannerOptimality,
    ::testing::Values(PlannerCase{"hgrid", 0.75, 0.0},
                      PlannerCase{"hgrid", 0.65, 0.0},
                      PlannerCase{"hgrid", 0.95, 0.0},
                      PlannerCase{"hgrid", 0.75, 0.5},
                      PlannerCase{"hgrid", 0.75, 1.0},
                      PlannerCase{"ssw", 0.75, 0.0},
                      PlannerCase{"ssw", 0.55, 0.0},
                      PlannerCase{"ssw", 0.75, 0.3},
                      PlannerCase{"dmag", 0.75, 0.0},
                      PlannerCase{"dmag", 0.85, 0.2}),
    case_name);

// ---------------------------------------------------------------------------
// Ablation variants stay optimal.

TEST(PlannerVariants, UniformCostSearchIsOptimalButSlower) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;

  PlannerOptions with_h;
  const Plan astar = [&] {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    return AStarPlanner().plan(task, *bundle.checker, with_h);
  }();

  PlannerOptions without_h;
  without_h.use_astar_heuristic = false;
  const Plan ucs = [&] {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    return AStarPlanner().plan(task, *bundle.checker, without_h);
  }();

  ASSERT_TRUE(astar.found);
  ASSERT_TRUE(ucs.found);
  EXPECT_DOUBLE_EQ(astar.cost, ucs.cost);
  EXPECT_LE(astar.stats.visited_states, ucs.stats.visited_states);
}

TEST(PlannerVariants, NoCacheIsOptimalWithMoreChecks) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;

  PlannerOptions cached;
  const Plan with_cache = [&] {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    return AStarPlanner().plan(task, *bundle.checker, cached);
  }();

  PlannerOptions uncached;
  uncached.use_satisfiability_cache = false;
  const Plan without_cache = [&] {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    return AStarPlanner().plan(task, *bundle.checker, uncached);
  }();

  ASSERT_TRUE(with_cache.found);
  ASSERT_TRUE(without_cache.found);
  EXPECT_DOUBLE_EQ(with_cache.cost, without_cache.cost);
  EXPECT_GE(without_cache.stats.sat_checks, with_cache.stats.sat_checks);
  EXPECT_EQ(without_cache.stats.cache_hits, 0);
}

// ---------------------------------------------------------------------------
// Monotonicity properties of the optimum (Figures 12 and 13).

TEST(PlannerProperties, OptimalCostNonIncreasingInTheta) {
  migration::MigrationCase mig = small_ssw_case();
  migration::MigrationTask& task = mig.task;
  double previous = 1e18;
  for (const double theta : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    pipeline::CheckerConfig config;
    config.demand.max_utilization = theta;
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    const Plan plan = AStarPlanner().plan(task, *bundle.checker, {});
    ASSERT_TRUE(plan.found) << "theta=" << theta << ": " << plan.failure;
    EXPECT_LE(plan.cost, previous) << "theta=" << theta;
    previous = plan.cost;
  }
}

TEST(PlannerProperties, OptimalCostNonDecreasingInAlpha) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  double previous = 0.0;
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    PlannerOptions options;
    options.alpha = alpha;
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    const Plan plan = AStarPlanner().plan(task, *bundle.checker, options);
    ASSERT_TRUE(plan.found);
    EXPECT_GE(plan.cost, previous - 1e-12) << "alpha=" << alpha;
    previous = plan.cost;
  }
}

TEST(PlannerProperties, AlphaOneCostEqualsActionCount) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  PlannerOptions options;
  options.alpha = 1.0;
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  const Plan plan = AStarPlanner().plan(task, *bundle.checker, options);
  ASSERT_TRUE(plan.found);
  EXPECT_DOUBLE_EQ(plan.cost, task.total_actions());
}

// ---------------------------------------------------------------------------
// Edge cases and failure modes.

TEST(PlannerEdgeCases, InfeasibleOriginalTopologyReported) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  pipeline::CheckerConfig config;
  config.demand.max_utilization = 0.01;  // everything is over this bound
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(task, config);
  for (const char* name : {"astar", "dp", "brute"}) {
    const Plan plan =
        pipeline::make_planner(name)->plan(task, *bundle.checker, {});
    EXPECT_FALSE(plan.found) << name;
    EXPECT_NE(plan.failure.find("original topology"), std::string::npos)
        << name;
  }
}

TEST(PlannerEdgeCases, EmptyTaskIsTriviallyPlanned) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  for (auto& blocks : task.blocks) blocks.clear();
  task.target_state = task.original_state;
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  for (const char* name : {"astar", "dp"}) {
    const Plan plan =
        pipeline::make_planner(name)->plan(task, *bundle.checker, {});
    EXPECT_TRUE(plan.found) << name;
    EXPECT_DOUBLE_EQ(plan.cost, 0.0);
    EXPECT_TRUE(plan.actions.empty());
  }
}

TEST(PlannerEdgeCases, DeadlineProducesTimeoutFailure) {
  migration::MigrationCase mig = migration::build_hgrid_migration(
      topo::preset_params(topo::PresetId::kC, topo::PresetScale::kReduced),
      {});
  migration::MigrationTask& task = mig.task;
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  PlannerOptions options;
  options.deadline_seconds = 1e-9;
  const Plan plan = DpPlanner().plan(task, *bundle.checker, options);
  EXPECT_FALSE(plan.found);
  // Either the origin check or the timeout fires first; both are failures
  // with a reason.
  EXPECT_FALSE(plan.failure.empty());
}

TEST(PlannerEdgeCases, TopologyRestoredAfterPlanning) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  const topo::TopologyState before = topo::TopologyState::capture(*task.topo);
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  AStarPlanner().plan(task, *bundle.checker, {});
  EXPECT_TRUE(before == topo::TopologyState::capture(*task.topo));
}

TEST(PlannerEdgeCases, DpRefusesExplosiveStateSpaces) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  PlannerOptions options;
  options.max_states = 4;  // absurdly small
  const Plan plan = DpPlanner().plan(task, *bundle.checker, options);
  EXPECT_FALSE(plan.found);
  EXPECT_NE(plan.failure.find("too large"), std::string::npos);
}

TEST(PlannerEdgeCases, BruteForceRefusesLargeTasks) {
  migration::MigrationCase mig = migration::build_hgrid_migration(
      topo::preset_params(topo::PresetId::kC, topo::PresetScale::kReduced),
      {});
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  const Plan plan =
      baselines::BruteForcePlanner().plan(mig.task, *bundle.checker, {});
  EXPECT_FALSE(plan.found);
  EXPECT_NE(plan.failure.find("too large"), std::string::npos);
}


TEST(PlannerTrace, RecordsExpansionsAndFinalPath) {
  migration::MigrationCase mig = small_hgrid_case();
  PlannerOptions options;
  options.record_trace = true;
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(mig.task, {});
  const Plan plan = AStarPlanner().plan(mig.task, *bundle.checker, options);
  ASSERT_TRUE(plan.found);
  EXPECT_EQ(static_cast<long long>(plan.trace.size()),
            plan.stats.visited_states);

  // The final path has exactly |actions| + 1 entries (origin .. target),
  // starts at the origin, and its g values are non-decreasing.
  std::size_t on_path = 0;
  double previous_g = -1.0;
  for (const TraceEntry& entry : plan.trace) {
    if (!entry.on_final_path) continue;
    ++on_path;
    EXPECT_GE(entry.g, previous_g);
    previous_g = entry.g;
    // f never exceeds the optimal cost along the returned path
    // (admissibility witnessed by the trace).
    EXPECT_LE(entry.g + entry.h, plan.cost + 1e-9);
  }
  EXPECT_EQ(on_path, plan.actions.size() + 1);
  EXPECT_EQ(total_actions(plan.trace.front().counts), 0);
}

TEST(PlannerTrace, OffByDefault) {
  migration::MigrationCase mig = small_hgrid_case();
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(mig.task, {});
  const Plan plan = AStarPlanner().plan(mig.task, *bundle.checker, {});
  EXPECT_TRUE(plan.trace.empty());
}

// ---------------------------------------------------------------------------
// Plan structure.

TEST(PlanStructure, PhasesGroupConsecutiveTypes) {
  Plan plan;
  plan.found = true;
  plan.actions = {{0, 0}, {0, 1}, {1, 0}, {0, 2}, {0, 3}};
  const std::vector<Phase> phases = plan.phases();
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].type, 0);
  EXPECT_EQ(phases[0].block_indices.size(), 2u);
  EXPECT_EQ(phases[1].type, 1);
  EXPECT_EQ(phases[2].block_indices.size(), 2u);
}

TEST(PlanStructure, RecomputeCostMatchesModel) {
  Plan plan;
  plan.actions = {{0, 0}, {0, 1}, {1, 0}};
  EXPECT_DOUBLE_EQ(plan.recompute_cost(0.0), 2.0);
  EXPECT_DOUBLE_EQ(plan.recompute_cost(1.0), 3.0);
  EXPECT_DOUBLE_EQ(plan.recompute_cost(0.5), 2.5);
}

}  // namespace
}  // namespace klotski::core
