// Memory-bounded A*: a task wide enough that the search arena outgrows a
// small --mem-budget-mb must trigger open-list eviction and arena compaction,
// degrade to beam search, record all of it in the plan provenance — and still
// return a valid plan instead of growing without bound.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_helpers.h"
#include "astar_reference.h"
#include "klotski/constraints/composite.h"
#include "klotski/core/astar_planner.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/plan_export.h"

namespace klotski::core {
namespace {

// A synthetic three-type migration over a tiny topology: `width` no-op
// blocks per type. The planner sees a (width+1)^3 count lattice whose
// frontier grows quadratically — wide enough to exceed the minimum beam
// width and need real memory — while every state stays trivially feasible
// under an empty checker, so the test exercises pure search mechanics.
struct WideCase {
  static constexpr std::int32_t kTypes = 3;

  klotski::testing::Diamond diamond;
  migration::MigrationTask task;

  explicit WideCase(int width) {
    task.name = "wide-synthetic";
    task.topo = &diamond.topo;
    task.original_state = topo::TopologyState::capture(diamond.topo);
    task.target_state = task.original_state;
    task.blocks.resize(kTypes);
    for (std::int32_t t = 0; t < kTypes; ++t) {
      migration::ActionType type;
      type.id = t;
      type.label = "synthetic-" + std::to_string(t);
      type.op = t % 2 == 0 ? migration::OpKind::kDrain
                           : migration::OpKind::kUndrain;
      task.action_types.push_back(type);
      for (int b = 0; b < width; ++b) {
        migration::OperationBlock block;
        block.id = b;
        block.type = t;
        block.label = type.label + "/" + std::to_string(b);
        task.blocks[static_cast<std::size_t>(t)].push_back(std::move(block));
      }
    }
  }
};

// Uniform action cost and no heuristic: the search walks the full lattice,
// which is the worst case for frontier growth.
PlannerOptions lattice_options() {
  PlannerOptions options;
  options.alpha = 1.0;
  options.use_astar_heuristic = false;
  return options;
}

TEST(MemBudget, SmallBudgetDegradesToBeamAndStillFindsAPlan) {
  WideCase wide(50);
  constraints::CompositeChecker checker;

  PlannerOptions options = lattice_options();
  options.mem_budget_mb = 2.0;

  const Plan plan = AStarPlanner().plan(wide.task, checker, options);
  ASSERT_TRUE(plan.found) << plan.failure;

  // Provenance must record the degradation.
  EXPECT_EQ(plan.provenance.mem_budget_mb, 2.0);
  EXPECT_TRUE(plan.provenance.beam_degraded);
  EXPECT_GT(plan.provenance.evicted_states, 0);
  EXPECT_GT(plan.provenance.compactions, 0);
  EXPECT_GT(plan.provenance.peak_tracked_bytes, 0);

  // Every action cost 1 (alpha=1), so any complete plan is optimal: the beam
  // may change which path is taken but not its cost.
  EXPECT_EQ(plan.actions.size(), 150u);
  EXPECT_DOUBLE_EQ(plan.cost, 150.0);
  EXPECT_DOUBLE_EQ(plan.cost, plan.recompute_cost(options.alpha));

  // The plan survives the independent audit.
  const pipeline::AuditReport report =
      pipeline::audit_plan(wide.task, checker, plan);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(MemBudget, UnbudgetedRunReportsNoDegradation) {
  WideCase wide(20);
  constraints::CompositeChecker checker;

  const Plan plan = AStarPlanner().plan(wide.task, checker, lattice_options());
  ASSERT_TRUE(plan.found) << plan.failure;
  EXPECT_EQ(plan.provenance.mem_budget_mb, 0.0);
  EXPECT_FALSE(plan.provenance.beam_degraded);
  EXPECT_EQ(plan.provenance.evicted_states, 0);
  EXPECT_EQ(plan.provenance.compactions, 0);
}

TEST(MemBudget, GenerousBudgetMatchesUnbudgetedRunExactly) {
  // A budget the search never reaches must leave the result bit-identical to
  // the unbudgeted planner (and to the reference implementation): the budget
  // machinery only changes behavior once eviction actually fires.
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  migration::MigrationTask& task = mig.task;

  PlannerOptions unbudgeted;
  Plan reference;
  {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    reference =
        klotski::testing::reference_astar_plan(task, *bundle.checker,
                                               unbudgeted);
  }

  PlannerOptions budgeted;
  budgeted.mem_budget_mb = 512.0;
  Plan plan;
  {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    plan = AStarPlanner().plan(task, *bundle.checker, budgeted);
  }

  ASSERT_TRUE(plan.found);
  EXPECT_EQ(plan.cost, reference.cost);
  ASSERT_EQ(plan.actions.size(), reference.actions.size());
  for (std::size_t i = 0; i < plan.actions.size(); ++i) {
    EXPECT_EQ(plan.actions[i].type, reference.actions[i].type);
    EXPECT_EQ(plan.actions[i].block_index, reference.actions[i].block_index);
  }
  EXPECT_EQ(plan.stats.visited_states, reference.stats.visited_states);
  EXPECT_EQ(plan.stats.generated_states, reference.stats.generated_states);
  EXPECT_FALSE(plan.provenance.beam_degraded);
  EXPECT_EQ(plan.provenance.evicted_states, 0);
  EXPECT_GT(plan.provenance.peak_tracked_bytes, 0);
}

TEST(MemBudget, ProvenanceRoundTripsThroughJson) {
  WideCase wide(50);
  constraints::CompositeChecker checker;

  PlannerOptions options = lattice_options();
  options.mem_budget_mb = 2.0;
  const Plan plan = AStarPlanner().plan(wide.task, checker, options);
  ASSERT_TRUE(plan.found) << plan.failure;
  ASSERT_TRUE(plan.provenance.beam_degraded);

  const json::Value doc = pipeline::plan_to_json(wide.task, plan);
  ASSERT_TRUE(doc.as_object().contains("provenance"));

  const Plan parsed = pipeline::plan_from_json(wide.task, doc);
  EXPECT_EQ(parsed.provenance.mem_budget_mb, plan.provenance.mem_budget_mb);
  EXPECT_EQ(parsed.provenance.beam_degraded, plan.provenance.beam_degraded);
  EXPECT_EQ(parsed.provenance.evicted_states, plan.provenance.evicted_states);
  EXPECT_EQ(parsed.provenance.compactions, plan.provenance.compactions);
  EXPECT_EQ(parsed.provenance.peak_tracked_bytes,
            plan.provenance.peak_tracked_bytes);
}

TEST(MemBudget, UnbudgetedPlansOmitProvenanceFromJson) {
  migration::MigrationCase mig = klotski::testing::small_hgrid_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  const Plan plan = AStarPlanner().plan(mig.task, *bundle.checker, {});
  ASSERT_TRUE(plan.found);
  const json::Value doc = pipeline::plan_to_json(mig.task, plan);
  EXPECT_FALSE(doc.as_object().contains("provenance"));
}

}  // namespace
}  // namespace klotski::core
