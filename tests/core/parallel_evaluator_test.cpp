// ParallelEvaluator correctness: batch verdicts must match serial
// evaluation, and planners running with num_threads = 4 must return plans
// identical to the serial search (DP additionally keeps identical stats,
// since its batches contain exactly the states the lazy path evaluates).
#include <gtest/gtest.h>

#include <algorithm>

#include "../test_helpers.h"
#include "klotski/core/parallel_evaluator.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/pipeline/edp.h"
#include "klotski/util/rng.h"

namespace klotski::core {
namespace {

migration::MigrationCase preset_case(topo::PresetId id) {
  return migration::build_hgrid_migration(
      topo::preset_params(id, topo::PresetScale::kReduced), {});
}

TEST(ParallelEvaluator, BatchVerdictsMatchSerial) {
  migration::MigrationCase parallel_case = preset_case(topo::PresetId::kA);
  migration::MigrationCase serial_case = preset_case(topo::PresetId::kA);
  pipeline::CheckerConfig config;

  pipeline::CheckerBundle parallel_bundle =
      pipeline::make_standard_checker(parallel_case.task, config);
  StateEvaluator shared(parallel_case.task, *parallel_bundle.checker, true);
  ParallelEvaluator pe(shared, pipeline::make_standard_checker_factory(config),
                       4);
  ASSERT_TRUE(pe.parallel());

  pipeline::CheckerBundle serial_bundle =
      pipeline::make_standard_checker(serial_case.task, config);
  StateEvaluator serial(serial_case.task, *serial_bundle.checker, false);

  // Distinct random states across several batches (repeats across batches
  // exercise the shared-cache filter).
  util::Rng rng(5);
  const CountVector& target = shared.target();
  for (int round = 0; round < 6; ++round) {
    std::vector<CountVector> batch;
    for (int i = 0; i < 9; ++i) {
      CountVector v(target.size());
      for (std::size_t t = 0; t < v.size(); ++t) {
        v[t] = static_cast<std::int32_t>(rng.uniform_int(0, target[t]));
      }
      if (std::find(batch.begin(), batch.end(), v) == batch.end()) {
        batch.push_back(std::move(v));
      }
    }
    const auto& verdicts = pe.evaluate_batch(batch);
    ASSERT_EQ(verdicts.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(verdicts[i] != 0, serial.feasible(batch[i]))
          << "round " << round << " entry " << i;
    }
  }
  // Each distinct state was evaluated once and stored; repeats across
  // batches were served from the shared cache without stat movement.
  EXPECT_EQ(static_cast<long long>(shared.cache().size()),
            shared.sat_checks());
  EXPECT_LE(shared.sat_checks(), serial.sat_checks());
}

struct PresetParam {
  topo::PresetId id;
  const char* name;
};

class ParallelPlannerDeterminism
    : public ::testing::TestWithParam<PresetParam> {};

TEST_P(ParallelPlannerDeterminism, DpPlanAndStatsAreBitIdentical) {
  migration::MigrationCase serial_case = preset_case(GetParam().id);
  migration::MigrationCase parallel_case = preset_case(GetParam().id);
  pipeline::CheckerConfig config;

  PlannerOptions serial_options;
  serial_options.deadline_seconds = 300.0;
  PlannerOptions parallel_options = serial_options;
  parallel_options.num_threads = 4;
  parallel_options.checker_factory =
      pipeline::make_standard_checker_factory(config);

  pipeline::CheckerBundle serial_bundle =
      pipeline::make_standard_checker(serial_case.task, config);
  const Plan serial = pipeline::make_planner("dp")->plan(
      serial_case.task, *serial_bundle.checker, serial_options);

  pipeline::CheckerBundle parallel_bundle =
      pipeline::make_standard_checker(parallel_case.task, config);
  const Plan parallel = pipeline::make_planner("dp")->plan(
      parallel_case.task, *parallel_bundle.checker, parallel_options);

  ASSERT_EQ(serial.found, parallel.found) << parallel.failure;
  EXPECT_EQ(serial.cost, parallel.cost);
  ASSERT_EQ(serial.actions.size(), parallel.actions.size());
  for (std::size_t i = 0; i < serial.actions.size(); ++i) {
    EXPECT_EQ(serial.actions[i].type, parallel.actions[i].type);
    EXPECT_EQ(serial.actions[i].block_index, parallel.actions[i].block_index);
  }
  // The DP batch contains exactly the states the serial lazy path would
  // have evaluated, so even the bookkeeping is identical.
  EXPECT_EQ(serial.stats.sat_checks, parallel.stats.sat_checks);
  EXPECT_EQ(serial.stats.cache_hits, parallel.stats.cache_hits);
  EXPECT_EQ(serial.stats.visited_states, parallel.stats.visited_states);
  EXPECT_EQ(serial.stats.generated_states, parallel.stats.generated_states);
}

TEST_P(ParallelPlannerDeterminism, AStarPlanIsIdentical) {
  migration::MigrationCase serial_case = preset_case(GetParam().id);
  migration::MigrationCase parallel_case = preset_case(GetParam().id);
  pipeline::CheckerConfig config;

  PlannerOptions serial_options;
  serial_options.deadline_seconds = 300.0;
  PlannerOptions parallel_options = serial_options;
  parallel_options.num_threads = 4;
  parallel_options.checker_factory =
      pipeline::make_standard_checker_factory(config);

  pipeline::CheckerBundle serial_bundle =
      pipeline::make_standard_checker(serial_case.task, config);
  const Plan serial = pipeline::make_planner("astar")->plan(
      serial_case.task, *serial_bundle.checker, serial_options);

  pipeline::CheckerBundle parallel_bundle =
      pipeline::make_standard_checker(parallel_case.task, config);
  const Plan parallel = pipeline::make_planner("astar")->plan(
      parallel_case.task, *parallel_bundle.checker, parallel_options);

  ASSERT_EQ(serial.found, parallel.found) << parallel.failure;
  EXPECT_EQ(serial.cost, parallel.cost);
  ASSERT_EQ(serial.actions.size(), parallel.actions.size());
  for (std::size_t i = 0; i < serial.actions.size(); ++i) {
    EXPECT_EQ(serial.actions[i].type, parallel.actions[i].type);
    EXPECT_EQ(serial.actions[i].block_index, parallel.actions[i].block_index);
  }
  // A* prefetch is speculative, so sat-check counts may differ — but the
  // search order, and therefore the number of expansions, must not.
  EXPECT_EQ(serial.stats.visited_states, parallel.stats.visited_states);
}

INSTANTIATE_TEST_SUITE_P(
    PresetsAToC, ParallelPlannerDeterminism,
    ::testing::Values(PresetParam{topo::PresetId::kA, "A"},
                      PresetParam{topo::PresetId::kB, "B"},
                      PresetParam{topo::PresetId::kC, "C"}),
    [](const ::testing::TestParamInfo<PresetParam>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace klotski::core
