// Randomized equivalence: the SoA + incremental-hash A* must be bit-identical
// to the pre-refactor implementation (preserved in astar_reference.h) on every
// observable — found/cost/actions/trace and all search statistics — whenever
// no memory budget is configured. The storage rewrite is a representation
// change only; any divergence here is a bug, not a tolerance issue.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_helpers.h"
#include "astar_reference.h"
#include "klotski/core/astar_planner.h"
#include "klotski/pipeline/edp.h"
#include "klotski/util/rng.h"

namespace klotski::core {
namespace {

using klotski::testing::reference_astar_plan;
using klotski::testing::small_dmag_case;
using klotski::testing::small_flat_case;
using klotski::testing::small_hgrid_case;
using klotski::testing::small_reconf_case;
using klotski::testing::small_ssw_case;

migration::MigrationCase build_case(int kind) {
  if (kind == 0) return small_hgrid_case();
  if (kind == 1) return small_ssw_case();
  if (kind == 2) return small_dmag_case();
  if (kind == 3) return small_flat_case();
  return small_reconf_case();
}

void expect_identical(const Plan& reference, const Plan& actual,
                      const std::string& label) {
  ASSERT_EQ(actual.found, reference.found)
      << label << ": " << actual.failure << " vs " << reference.failure;
  EXPECT_EQ(actual.failure, reference.failure) << label;

  // Bit-identical cost, not approximately equal: both planners must take the
  // same additions in the same order.
  EXPECT_EQ(actual.cost, reference.cost) << label;

  ASSERT_EQ(actual.actions.size(), reference.actions.size()) << label;
  for (std::size_t i = 0; i < actual.actions.size(); ++i) {
    EXPECT_EQ(actual.actions[i].type, reference.actions[i].type)
        << label << " action " << i;
    EXPECT_EQ(actual.actions[i].block_index, reference.actions[i].block_index)
        << label << " action " << i;
  }

  // The full stats block: identical expansion order implies identical
  // counters, including cache behavior and the frontier high-water mark.
  EXPECT_EQ(actual.stats.visited_states, reference.stats.visited_states)
      << label;
  EXPECT_EQ(actual.stats.generated_states, reference.stats.generated_states)
      << label;
  EXPECT_EQ(actual.stats.sat_checks, reference.stats.sat_checks) << label;
  EXPECT_EQ(actual.stats.cache_hits, reference.stats.cache_hits) << label;
  EXPECT_EQ(actual.stats.evaluations, reference.stats.evaluations) << label;
  EXPECT_EQ(actual.stats.delta_applies, reference.stats.delta_applies)
      << label;
  EXPECT_EQ(actual.stats.full_replays, reference.stats.full_replays) << label;
  EXPECT_EQ(actual.stats.frontier_peak, reference.stats.frontier_peak)
      << label;

  ASSERT_EQ(actual.trace.size(), reference.trace.size()) << label;
  for (std::size_t i = 0; i < actual.trace.size(); ++i) {
    EXPECT_EQ(actual.trace[i].counts, reference.trace[i].counts)
        << label << " trace " << i;
    EXPECT_EQ(actual.trace[i].last_type, reference.trace[i].last_type)
        << label << " trace " << i;
    EXPECT_EQ(actual.trace[i].g, reference.trace[i].g)
        << label << " trace " << i;
    EXPECT_EQ(actual.trace[i].h, reference.trace[i].h)
        << label << " trace " << i;
    EXPECT_EQ(actual.trace[i].on_final_path, reference.trace[i].on_final_path)
        << label << " trace " << i;
  }
}

TEST(SoAEquivalence, RandomizedConfigsMatchReferenceImplementation) {
  util::Rng rng(0x50A50A);
  const double thetas[] = {0.55, 0.65, 0.75, 0.85, 0.95};

  for (int trial = 0; trial < 30; ++trial) {
    const int kind = static_cast<int>(rng.index(5));
    migration::MigrationCase mig = build_case(kind);
    migration::MigrationTask& task = mig.task;

    pipeline::CheckerConfig config;
    config.demand.max_utilization = thetas[rng.index(5)];

    PlannerOptions options;
    options.alpha = rng.uniform_real(0.0, 1.0);
    options.use_astar_heuristic = rng.chance(0.7);
    options.use_paper_literal_heuristic = rng.chance(0.3);
    options.use_satisfiability_cache = rng.chance(0.8);
    options.record_trace = rng.chance(0.5);

    const std::string label =
        "trial " + std::to_string(trial) + " kind " + std::to_string(kind) +
        " theta " + std::to_string(config.demand.max_utilization) +
        " alpha " + std::to_string(options.alpha) +
        (options.use_astar_heuristic ? " h" : " ucs") +
        (options.use_paper_literal_heuristic ? " lit" : "") +
        (options.use_satisfiability_cache ? " cache" : "") +
        (options.record_trace ? " trace" : "");

    Plan reference;
    {
      pipeline::CheckerBundle bundle =
          pipeline::make_standard_checker(task, config);
      reference = reference_astar_plan(task, *bundle.checker, options);
    }
    Plan actual;
    {
      pipeline::CheckerBundle bundle =
          pipeline::make_standard_checker(task, config);
      actual = AStarPlanner().plan(task, *bundle.checker, options);
    }
    expect_identical(reference, actual, label);
  }
}

TEST(SoAEquivalence, InfeasibleOriginMatchesReference) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  pipeline::CheckerConfig config;
  config.demand.max_utilization = 0.01;

  Plan reference;
  {
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    reference = reference_astar_plan(task, *bundle.checker, {});
  }
  Plan actual;
  {
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    actual = AStarPlanner().plan(task, *bundle.checker, {});
  }
  expect_identical(reference, actual, "infeasible origin");
  EXPECT_FALSE(actual.found);
}

TEST(SoAEquivalence, MaxStatesFailureMatchesReference) {
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  PlannerOptions options;
  options.max_states = 4;

  Plan reference;
  {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    reference = reference_astar_plan(task, *bundle.checker, options);
  }
  Plan actual;
  {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    actual = AStarPlanner().plan(task, *bundle.checker, options);
  }
  expect_identical(reference, actual, "max_states");
  EXPECT_FALSE(actual.found);
}

}  // namespace
}  // namespace klotski::core
