#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/pipeline/edp.h"
#include "klotski/util/rng.h"

namespace klotski::core {
namespace {

using klotski::testing::small_hgrid_case;

TEST(StateEvaluator, TargetMatchesBlockCounts) {
  migration::MigrationCase mig = small_hgrid_case();
  constraints::CompositeChecker checker;
  StateEvaluator evaluator(mig.task, checker, true);
  ASSERT_EQ(evaluator.target().size(), mig.task.blocks.size());
  for (std::size_t t = 0; t < mig.task.blocks.size(); ++t) {
    EXPECT_EQ(evaluator.target()[t],
              static_cast<std::int32_t>(mig.task.blocks[t].size()));
  }
}

TEST(StateEvaluator, MaterializeOriginAndTarget) {
  migration::MigrationCase mig = small_hgrid_case();
  constraints::CompositeChecker checker;
  StateEvaluator evaluator(mig.task, checker, true);

  evaluator.materialize(CountVector(mig.task.blocks.size(), 0));
  EXPECT_TRUE(mig.task.original_state ==
              topo::TopologyState::capture(*mig.task.topo));

  evaluator.materialize(evaluator.target());
  EXPECT_TRUE(mig.task.target_state ==
              topo::TopologyState::capture(*mig.task.topo));
  mig.task.reset_to_original();
}

TEST(StateEvaluator, MaterializeRejectsBadCounts) {
  migration::MigrationCase mig = small_hgrid_case();
  constraints::CompositeChecker checker;
  StateEvaluator evaluator(mig.task, checker, true);
  EXPECT_THROW(evaluator.materialize({0}), std::invalid_argument);
  CountVector over = evaluator.target();
  over[0] += 1;
  EXPECT_THROW(evaluator.materialize(over), std::out_of_range);
}

TEST(StateEvaluator, CacheAvoidsRepeatChecks) {
  migration::MigrationCase mig = small_hgrid_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  StateEvaluator evaluator(mig.task, *bundle.checker, /*use_cache=*/true);

  const CountVector counts(mig.task.blocks.size(), 0);
  EXPECT_TRUE(evaluator.feasible(counts));
  EXPECT_TRUE(evaluator.feasible(counts));
  EXPECT_TRUE(evaluator.feasible(counts));
  EXPECT_EQ(evaluator.sat_checks(), 1);
  EXPECT_EQ(evaluator.cache_hits(), 2);
  EXPECT_EQ(evaluator.cache().size(), 1u);
}

TEST(StateEvaluator, WithoutCacheRechecksEveryTime) {
  migration::MigrationCase mig = small_hgrid_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  StateEvaluator evaluator(mig.task, *bundle.checker, /*use_cache=*/false);

  const CountVector counts(mig.task.blocks.size(), 0);
  evaluator.feasible(counts);
  evaluator.feasible(counts);
  EXPECT_EQ(evaluator.sat_checks(), 2);
  EXPECT_EQ(evaluator.cache_hits(), 0);
}

TEST(StateEvaluator, OrderingAgnosticSoundness) {
  // The central §4.2 claim: the topology reached by any interleaving of a
  // fixed per-type prefix multiset is the same, so caching on the count
  // vector is sound. materialize() applies canonical prefixes; verify that
  // manually applying the blocks in several shuffled orders gives the same
  // element states.
  migration::MigrationCase mig = small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  constraints::CompositeChecker checker;
  StateEvaluator evaluator(task, checker, true);

  CountVector counts(task.blocks.size(), 0);
  counts[0] = 2;
  counts[1] = 1;
  evaluator.materialize(counts);
  const topo::TopologyState reference =
      topo::TopologyState::capture(*task.topo);

  util::Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    // Collect the prefix blocks and apply them in a random order.
    std::vector<const migration::OperationBlock*> blocks;
    for (std::size_t t = 0; t < task.blocks.size(); ++t) {
      for (std::int32_t i = 0; i < counts[t]; ++i) {
        blocks.push_back(&task.blocks[t][static_cast<std::size_t>(i)]);
      }
    }
    std::vector<std::size_t> order(blocks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);

    task.reset_to_original();
    for (const std::size_t i : order) blocks[i]->apply(*task.topo);
    EXPECT_TRUE(reference == topo::TopologyState::capture(*task.topo))
        << "trial " << trial;
  }
  task.reset_to_original();
}

TEST(StateEvaluator, FeasibilityMatchesDirectCheck) {
  migration::MigrationCase mig = small_hgrid_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  StateEvaluator evaluator(mig.task, *bundle.checker, true);

  // Draining everything without undraining any V2 grid must be infeasible
  // (no uplink capacity left), while the target must be feasible.
  CountVector all_drained(mig.task.blocks.size(), 0);
  all_drained[0] = static_cast<std::int32_t>(mig.task.blocks[0].size());
  EXPECT_FALSE(evaluator.feasible(all_drained));
  EXPECT_TRUE(evaluator.feasible(evaluator.target()));
}

}  // namespace
}  // namespace klotski::core
