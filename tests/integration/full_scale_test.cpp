// Full-scale (paper-scale) structural validation. Building even the largest
// preset takes well under a second, so every structural property of Table 3
// is asserted here at full size; planning at full scale is exercised on the
// presets where it completes in test time (the complete full-scale planner
// numbers are recorded in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/topo/presets.h"
#include "klotski/traffic/ecmp.h"
#include "klotski/traffic/generator.h"

namespace klotski {
namespace {

struct Table3Band {
  pipeline::ExperimentId id;
  std::size_t min_switches, max_switches;
  std::size_t min_circuits, max_circuits;
  int min_actions, max_actions;
};

class FullScaleTable3 : public ::testing::TestWithParam<Table3Band> {};

TEST_P(FullScaleTable3, MatchesPaperBands) {
  const Table3Band band = GetParam();
  migration::MigrationCase mig =
      pipeline::build_experiment(band.id, topo::PresetScale::kFull);
  const migration::MigrationTask& task = mig.task;

  EXPECT_GE(task.topo->count_present_switches(), band.min_switches);
  EXPECT_LE(task.topo->count_present_switches(), band.max_switches);
  EXPECT_GE(task.topo->count_present_circuits(), band.min_circuits);
  EXPECT_LE(task.topo->count_present_circuits(), band.max_circuits);
  EXPECT_GE(task.total_actions(), band.min_actions);
  EXPECT_LE(task.total_actions(), band.max_actions);
}

TEST_P(FullScaleTable3, TaskValidatesAndOriginIsSafe) {
  migration::MigrationCase mig =
      pipeline::build_experiment(GetParam().id, topo::PresetScale::kFull);
  EXPECT_EQ(mig.task.validate(), "");

  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  mig.task.reset_to_original();
  const constraints::Verdict origin = bundle.checker->check(*mig.task.topo);
  EXPECT_TRUE(origin.satisfied) << origin.violation;

  mig.task.target_state.restore(*mig.task.topo);
  const constraints::Verdict target = bundle.checker->check(*mig.task.topo);
  EXPECT_TRUE(target.satisfied) << target.violation;
  mig.task.reset_to_original();
}

INSTANTIATE_TEST_SUITE_P(
    PaperBands, FullScaleTable3,
    ::testing::Values(
        // Paper: A ~40 sw / ~80 ckt; B ~100 / ~600; C ~600 / ~8,000;
        // D ~1,000 / ~20,000; E and variants ~10,000 / ~100,000.
        Table3Band{pipeline::ExperimentId::kA, 25, 60, 50, 120, 6, 60},
        Table3Band{pipeline::ExperimentId::kB, 80, 150, 400, 800, 10, 120},
        Table3Band{pipeline::ExperimentId::kC, 450, 800, 6000, 10000, 60,
                   350},
        Table3Band{pipeline::ExperimentId::kD, 800, 1500, 15000, 25000, 80,
                   350},
        Table3Band{pipeline::ExperimentId::kE, 8000, 15000, 70000, 150000,
                   400, 900},
        Table3Band{pipeline::ExperimentId::kEDmag, 8000, 15000, 70000,
                   150000, 60, 160},
        Table3Band{pipeline::ExperimentId::kESsw, 8000, 15000, 70000, 150000,
                   150, 400}),
    [](const auto& info) {
      std::string name = pipeline::to_string(info.param.id);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FullScale, EDemandsAreCalibratedFeasible) {
  topo::Region region =
      topo::build_preset(topo::PresetId::kE, topo::PresetScale::kFull);
  const traffic::DemandSet demands = traffic::generate_demands(region);
  traffic::EcmpRouter router(region.topo);
  traffic::LoadVector loads;
  ASSERT_TRUE(router.assign_all(demands, loads));
  const double worst = traffic::max_utilization(region.topo, loads);
  EXPECT_LT(worst, 0.75);  // feasible at the default theta
  EXPECT_GT(worst, 0.20);  // ... but not trivially so
}

TEST(FullScale, CPlansOptimallyAndAudits) {
  // Full-scale C (588 switches / 7,456 circuits / 120 actions) plans in
  // seconds; the A*/DP equality and the audit run here at paper scale.
  migration::MigrationCase mig = pipeline::build_experiment(
      pipeline::ExperimentId::kC, topo::PresetScale::kFull);
  migration::MigrationTask& task = mig.task;

  core::PlannerOptions options;
  options.deadline_seconds = 300;
  auto run = [&](const char* name) {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    return pipeline::make_planner(name)->plan(task, *bundle.checker,
                                              options);
  };
  const core::Plan astar = run("astar");
  const core::Plan dp = run("dp");
  ASSERT_TRUE(astar.found) << astar.failure;
  ASSERT_TRUE(dp.found) << dp.failure;
  EXPECT_DOUBLE_EQ(astar.cost, dp.cost);

  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  EXPECT_TRUE(pipeline::audit_plan(task, *bundle.checker, astar).ok);
}

TEST(FullScale, EDmagPlansWithinBudget) {
  // The E-DMAG full-scale task has ~100 actions over three types: small
  // enough to plan in test time even on the 107k-circuit topology.
  migration::MigrationCase mig = pipeline::build_experiment(
      pipeline::ExperimentId::kEDmag, topo::PresetScale::kFull);
  core::PlannerOptions options;
  options.deadline_seconds = 400;
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  const core::Plan plan =
      pipeline::make_planner("astar")->plan(mig.task, *bundle.checker,
                                            options);
  ASSERT_TRUE(plan.found) << plan.failure;
  pipeline::CheckerBundle audit_bundle =
      pipeline::make_standard_checker(mig.task, {});
  EXPECT_TRUE(pipeline::audit_plan(mig.task, *audit_bundle.checker, plan).ok);
}

}  // namespace
}  // namespace klotski
