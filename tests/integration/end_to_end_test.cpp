#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/npd/npd_io.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/traffic/ecmp.h"

namespace klotski {
namespace {

// NPD text -> parse -> build -> plan -> audit -> export -> reparse: the
// full life cycle EDP-Lite manages (§5), end to end from a JSON document.
TEST(EndToEnd, NpdTextToExportedPlan) {
  const char* npd_text = R"({
    "name": "e2e-region",
    "fabric": {
      "dcs": 2,
      "buildings": [{"pods": 2, "rsws_per_pod": 4, "planes": 2,
                     "ssws_per_plane": 2, "rsw_fsw_links": 1}]
    },
    "hgrid": {"grids": 2, "fadus_per_grid_per_dc": 2, "fauus_per_grid": 2,
              "generation": "V1", "mesh": "plane-aligned"},
    "eb": {"count": 2},
    "dr": {"count": 2},
    "bb": {"ebbs": 2},
    "migration": {"type": "hgrid-v1-to-v2", "v2_grids": 3},
    "demand": {"egress_frac": 0.2, "ingress_frac": 0.2,
               "east_west_frac": 0.08, "intra_dc_frac": 0.15}
  })";

  const npd::NpdDocument doc = npd::parse_npd(npd_text);
  EXPECT_EQ(doc.name, "e2e-region");

  const pipeline::EdpResult result = pipeline::run_pipeline(doc, {});
  ASSERT_TRUE(result.plan.found) << result.plan.failure;

  migration::MigrationTask& task =
      const_cast<migration::MigrationTask&>(result.migration.task);
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  const pipeline::AuditReport audit =
      pipeline::audit_plan(task, *bundle.checker, result.plan);
  EXPECT_TRUE(audit.ok) << (audit.issues.empty() ? "" : audit.issues[0]);

  // The exported plan JSON is parseable and self-consistent.
  const std::string exported =
      json::dump(pipeline::plan_to_json(task, result.plan), 2);
  const json::Value reparsed = json::parse(exported);
  EXPECT_DOUBLE_EQ(reparsed.at("cost").as_double(), result.plan.cost);
}

// Every optimal planner agrees on every reduced experiment, and every plan
// passes the audit: the Figure 8/9 optimality claim at test scale.
class ExperimentAgreement
    : public ::testing::TestWithParam<pipeline::ExperimentId> {};

TEST_P(ExperimentAgreement, OptimalPlannersAgreeAndPassAudit) {
  migration::MigrationCase mig =
      pipeline::build_experiment(GetParam(), topo::PresetScale::kReduced);
  migration::MigrationTask& task = mig.task;

  auto run = [&](const char* name) {
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, {});
    core::PlannerOptions options;
    options.deadline_seconds = 120;
    return pipeline::make_planner(name)->plan(task, *bundle.checker,
                                              options);
  };

  const core::Plan astar = run("astar");
  const core::Plan dp = run("dp");
  ASSERT_TRUE(astar.found) << astar.failure;
  ASSERT_TRUE(dp.found) << dp.failure;
  EXPECT_DOUBLE_EQ(astar.cost, dp.cost);

  for (const core::Plan* plan : {&astar, &dp}) {
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, {});
    EXPECT_TRUE(pipeline::audit_plan(task, *bundle.checker, *plan).ok)
        << plan->planner;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllExperiments, ExperimentAgreement,
    ::testing::Values(pipeline::ExperimentId::kA, pipeline::ExperimentId::kB,
                      pipeline::ExperimentId::kC, pipeline::ExperimentId::kD,
                      pipeline::ExperimentId::kE,
                      pipeline::ExperimentId::kEDmag,
                      pipeline::ExperimentId::kESsw),
    [](const auto& info) {
      std::string name = pipeline::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The DMAG migration must actually move traffic onto the MA layer.
TEST(EndToEnd, DmagShiftsTrafficOntoMaLayer) {
  migration::MigrationCase mig = testing::small_dmag_case();
  migration::MigrationTask& task = mig.task;

  auto ma_load = [&]() {
    traffic::EcmpRouter router(*task.topo);
    traffic::LoadVector loads(task.topo->num_circuits() * 2, 0.0);
    for (const traffic::Demand& d : task.demands) router.assign(d, loads);
    double total = 0.0;
    for (const topo::Circuit& c : task.topo->circuits()) {
      if (task.topo->sw(c.a).role == topo::SwitchRole::kMa ||
          task.topo->sw(c.b).role == topo::SwitchRole::kMa) {
        total += loads[static_cast<std::size_t>(c.id) * 2] +
                 loads[static_cast<std::size_t>(c.id) * 2 + 1];
      }
    }
    return total;
  };

  task.reset_to_original();
  EXPECT_DOUBLE_EQ(ma_load(), 0.0);

  task.target_state.restore(*task.topo);
  EXPECT_GT(ma_load(), 0.0);
  task.reset_to_original();
}

// An HGRID migration must end with strictly more uplink capacity (the
// stated purpose of the V1 -> V2 upgrade: more nodes, more capacity).
TEST(EndToEnd, HgridMigrationIncreasesCapacity) {
  migration::MigrationCase mig = testing::small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  const double before = task.topo->active_capacity_tbps();
  task.target_state.restore(*task.topo);
  const double after = task.topo->active_capacity_tbps();
  task.reset_to_original();
  EXPECT_GT(after, before);
}

// The SSW forklift must end with higher spine capacity in the forklifted DC.
TEST(EndToEnd, SswForkliftIncreasesSpineCapacity) {
  migration::MigrationCase mig = testing::small_ssw_case();
  migration::MigrationTask& task = mig.task;
  const double before = task.topo->active_capacity_tbps();
  task.target_state.restore(*task.topo);
  const double after = task.topo->active_capacity_tbps();
  task.reset_to_original();
  EXPECT_GT(after, before);
}

// Every intermediate phase of an optimal plan keeps every demand routable
// with real headroom — the paper's core safety property, re-verified here
// with direct ECMP math rather than through the checker.
TEST(EndToEnd, EveryPhaseKeepsDemandsRoutable) {
  migration::MigrationCase mig = testing::small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
  const core::Plan plan =
      pipeline::make_planner("astar")->plan(task, *bundle.checker, {});
  ASSERT_TRUE(plan.found);

  traffic::EcmpRouter router(*task.topo);
  task.reset_to_original();
  for (const core::Phase& phase : plan.phases()) {
    for (const std::int32_t b : phase.block_indices) {
      task.blocks[static_cast<std::size_t>(phase.type)]
                 [static_cast<std::size_t>(b)]
                     .apply(*task.topo);
    }
    traffic::LoadVector loads(task.topo->num_circuits() * 2, 0.0);
    for (const traffic::Demand& d : task.demands) {
      EXPECT_TRUE(router.assign(d, loads)) << d.name;
    }
    EXPECT_LE(traffic::max_utilization(*task.topo, loads), 0.75 + 1e-9);
  }
  task.reset_to_original();
}

}  // namespace
}  // namespace klotski
