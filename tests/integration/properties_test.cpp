// Property-based sweeps over randomized task configurations: for every
// sampled (region shape, theta, alpha) the A* plan must exist iff the DP
// plan exists, costs must agree, and every found plan must survive the
// independent audit. This is the broadest optimality/safety net in the
// suite.
#include <gtest/gtest.h>

#include "klotski/migration/task_builder.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/topo/presets.h"
#include "klotski/util/rng.h"

namespace klotski {
namespace {

struct RandomCase {
  std::uint64_t seed;
};

topo::RegionParams random_region(util::Rng& rng) {
  topo::RegionParams p;
  p.dcs = static_cast<int>(rng.uniform_int(1, 2));
  topo::FabricParams fab;
  fab.pods = static_cast<int>(rng.uniform_int(2, 3));
  fab.rsws_per_pod = static_cast<int>(rng.uniform_int(2, 5));
  fab.planes = rng.chance(0.5) ? 2 : 4;
  fab.ssws_per_plane = static_cast<int>(rng.uniform_int(1, 2));
  p.fabrics = {fab};
  p.grids = static_cast<int>(rng.uniform_int(2, 3));
  p.fadus_per_grid_per_dc = fab.planes;  // keep plane coverage uniform
  p.fauus_per_grid = static_cast<int>(rng.uniform_int(1, 2));
  p.ebs = 2;
  p.drs = 2;
  p.ebbs = 2;
  p.mesh = rng.chance(0.3) ? topo::MeshPattern::kInterleaved
                           : topo::MeshPattern::kPlaneAligned;
  return p;
}

class RandomizedPlanning : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomizedPlanning, AStarAndDpAgreeAndAudit) {
  util::Rng rng(GetParam().seed);
  const topo::RegionParams region = random_region(rng);
  const double theta = rng.uniform_real(0.6, 0.95);
  const double alpha = rng.chance(0.5) ? 0.0 : rng.uniform_real(0.0, 1.0);

  // Randomly pick one of the three migration types.
  migration::MigrationCase mig = [&]() -> migration::MigrationCase {
    const auto kind = rng.uniform_int(0, 2);
    if (kind == 0) {
      migration::HgridMigrationParams p;
      p.v2_grids = static_cast<int>(rng.uniform_int(region.grids,
                                                    region.grids + 2));
      return migration::build_hgrid_migration(region, p);
    }
    if (kind == 1) {
      migration::SswForkliftParams p;
      p.dc = 0;
      return migration::build_ssw_forklift(region, p);
    }
    migration::DmagMigrationParams p;
    p.ma_per_eb = static_cast<int>(rng.uniform_int(1, 2));
    return migration::build_dmag_migration(region, p);
  }();
  migration::MigrationTask& task = mig.task;

  pipeline::CheckerConfig config;
  config.demand.max_utilization = theta;
  core::PlannerOptions options;
  options.alpha = alpha;
  options.deadline_seconds = 120;

  auto run = [&](const char* name) {
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    return pipeline::make_planner(name)->plan(task, *bundle.checker,
                                              options);
  };

  const core::Plan astar = run("astar");
  const core::Plan dp = run("dp");

  ASSERT_EQ(astar.found, dp.found)
      << "astar: " << astar.failure << " / dp: " << dp.failure;
  if (!astar.found) return;

  EXPECT_NEAR(astar.cost, dp.cost, 1e-9);
  EXPECT_NEAR(astar.cost, astar.recompute_cost(alpha), 1e-9);

  for (const core::Plan* plan : {&astar, &dp}) {
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    const pipeline::AuditReport report =
        pipeline::audit_plan(task, *bundle.checker, *plan);
    EXPECT_TRUE(report.ok)
        << plan->planner << ": "
        << (report.issues.empty() ? "" : report.issues[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedPlanning,
                         ::testing::Values(RandomCase{101}, RandomCase{102},
                                           RandomCase{103}, RandomCase{104},
                                           RandomCase{105}, RandomCase{106},
                                           RandomCase{107}, RandomCase{108},
                                           RandomCase{109}, RandomCase{110},
                                           RandomCase{111}, RandomCase{112}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// Funneling margins only ever tighten plans: the optimal cost with a margin
// is >= the cost without.
TEST(Properties, FunnelingMarginNeverCheapensPlans) {
  migration::MigrationCase mig = migration::build_hgrid_migration(
      topo::preset_params(topo::PresetId::kA, topo::PresetScale::kFull), {});
  migration::MigrationTask& task = mig.task;

  auto optimal_cost = [&](double margin) -> double {
    pipeline::CheckerConfig config;
    config.demand.funneling_margin = margin;
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    const core::Plan plan =
        pipeline::make_planner("astar")->plan(task, *bundle.checker, {});
    return plan.found ? plan.cost : 1e18;
  };

  const double base = optimal_cost(0.0);
  ASSERT_LT(base, 1e18);
  EXPECT_GE(optimal_cost(0.1), base);
  EXPECT_GE(optimal_cost(0.3), base);
}

// Space/power caps only ever tighten plans.
TEST(Properties, SpacePowerCapNeverCheapensPlans) {
  migration::MigrationCase mig = migration::build_hgrid_migration(
      topo::preset_params(topo::PresetId::kA, topo::PresetScale::kFull), {});
  migration::MigrationTask& task = mig.task;

  auto optimal_cost = [&](int cap) -> double {
    pipeline::CheckerConfig config;
    config.space_power.max_present_per_grid = cap;
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    const core::Plan plan =
        pipeline::make_planner("astar")->plan(task, *bundle.checker, {});
    return plan.found ? plan.cost : 1e18;
  };

  const double base = optimal_cost(0);  // disabled
  ASSERT_LT(base, 1e18);
  EXPECT_GE(optimal_cost(64), base);
}

// More operation blocks can never increase the optimal cost (Figure 11):
// finer splits strictly enlarge the feasible plan space.
TEST(Properties, FinerBlocksNeverIncreaseOptimalCost) {
  const topo::RegionParams region =
      topo::preset_params(topo::PresetId::kB, topo::PresetScale::kFull);
  double previous = 1e18;
  for (const double scale : {0.5, 1.0, 2.0}) {
    migration::HgridMigrationParams p;
    p.fadu_chunks_per_grid_dc = 2;
    p.fauu_chunks_per_grid = 2;
    p.policy.block_scale = scale;
    migration::MigrationCase mig =
        migration::build_hgrid_migration(region, p);
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(mig.task, {});
    const core::Plan plan =
        pipeline::make_planner("astar")->plan(mig.task, *bundle.checker, {});
    const double cost = plan.found ? plan.cost : 1e18;
    EXPECT_LE(cost, previous) << "scale=" << scale;
    previous = cost;
  }
}

}  // namespace
}  // namespace klotski
