// Cross-configuration matrix: planner agreement and audit over the product
// of {migration type} x {meshing pattern} x {routing policy}, plus
// full-scale builder validation for every preset. This is the "does every
// combination of knobs still produce optimal, safe plans" net.
#include <gtest/gtest.h>

#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/topo/presets.h"

namespace klotski {
namespace {

struct MatrixCase {
  const char* migration;  // "hgrid" | "ssw" | "dmag"
  topo::MeshPattern mesh;
  traffic::SplitMode routing;
};

std::string matrix_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name = info.param.migration;
  name += info.param.mesh == topo::MeshPattern::kPlaneAligned ? "_aligned"
                                                              : "_interleaved";
  name += info.param.routing == traffic::SplitMode::kEqualSplit ? "_ecmp"
                                                                : "_wcmp";
  return name;
}

migration::MigrationCase build(const MatrixCase& param) {
  topo::RegionParams region =
      topo::preset_params(topo::PresetId::kA, topo::PresetScale::kFull);
  region.mesh = param.mesh;
  const std::string kind = param.migration;
  if (kind == "hgrid") return migration::build_hgrid_migration(region, {});
  if (kind == "ssw") return migration::build_ssw_forklift(region, {});
  return migration::build_dmag_migration(region, {});
}

class ConfigurationMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigurationMatrix, PlannersAgreeAndAudit) {
  migration::MigrationCase mig = build(GetParam());
  migration::MigrationTask& task = mig.task;
  ASSERT_EQ(task.validate(), "");

  pipeline::CheckerConfig config;
  config.routing = GetParam().routing;

  auto run = [&](const char* name) {
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    core::PlannerOptions options;
    options.deadline_seconds = 120;
    return pipeline::make_planner(name)->plan(task, *bundle.checker,
                                              options);
  };

  const core::Plan astar = run("astar");
  const core::Plan dp = run("dp");
  const core::Plan oracle = run("brute");
  ASSERT_EQ(astar.found, oracle.found) << astar.failure;
  ASSERT_EQ(dp.found, oracle.found) << dp.failure;
  if (!oracle.found) return;
  EXPECT_DOUBLE_EQ(astar.cost, oracle.cost);
  EXPECT_DOUBLE_EQ(dp.cost, oracle.cost);

  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(task, config);
  const pipeline::AuditReport report =
      pipeline::audit_plan(task, *bundle.checker, astar);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

INSTANTIATE_TEST_SUITE_P(
    AllKnobs, ConfigurationMatrix,
    ::testing::Values(
        MatrixCase{"hgrid", topo::MeshPattern::kPlaneAligned,
                   traffic::SplitMode::kEqualSplit},
        MatrixCase{"hgrid", topo::MeshPattern::kPlaneAligned,
                   traffic::SplitMode::kCapacityWeighted},
        MatrixCase{"hgrid", topo::MeshPattern::kInterleaved,
                   traffic::SplitMode::kEqualSplit},
        MatrixCase{"hgrid", topo::MeshPattern::kInterleaved,
                   traffic::SplitMode::kCapacityWeighted},
        MatrixCase{"ssw", topo::MeshPattern::kPlaneAligned,
                   traffic::SplitMode::kEqualSplit},
        MatrixCase{"ssw", topo::MeshPattern::kInterleaved,
                   traffic::SplitMode::kEqualSplit},
        MatrixCase{"ssw", topo::MeshPattern::kPlaneAligned,
                   traffic::SplitMode::kCapacityWeighted},
        MatrixCase{"dmag", topo::MeshPattern::kPlaneAligned,
                   traffic::SplitMode::kEqualSplit},
        MatrixCase{"dmag", topo::MeshPattern::kInterleaved,
                   traffic::SplitMode::kEqualSplit},
        MatrixCase{"dmag", topo::MeshPattern::kPlaneAligned,
                   traffic::SplitMode::kCapacityWeighted}),
    matrix_name);

// ---------------------------------------------------------------------------
// Every preset builds a structurally valid region at both scales.

struct BuildCase {
  topo::PresetId preset;
  topo::PresetScale scale;
};

class PresetBuilds : public ::testing::TestWithParam<BuildCase> {};

TEST_P(PresetBuilds, TopologyValidates) {
  const topo::Region region =
      topo::build_preset(GetParam().preset, GetParam().scale);
  EXPECT_EQ(region.topo.validate(), "");
  // Index structures cover every fabric switch exactly once.
  std::size_t indexed = 0;
  for (int dc = 0; dc < region.num_dcs(); ++dc) {
    indexed += region.rsws[dc].size() + region.fsws[dc].size();
    for (const auto& plane : region.ssws[dc]) indexed += plane.size();
  }
  for (int g = 0; g < region.num_grids(); ++g) {
    indexed += region.fauus[g].size();
    for (const auto& per_dc : region.fadus[g]) indexed += per_dc.size();
  }
  indexed += region.ebs.size() + region.drs.size() + region.ebbs.size();
  EXPECT_EQ(indexed, region.topo.num_switches());
}

INSTANTIATE_TEST_SUITE_P(
    AllPresetsBothScales, PresetBuilds,
    ::testing::Values(
        BuildCase{topo::PresetId::kA, topo::PresetScale::kReduced},
        BuildCase{topo::PresetId::kA, topo::PresetScale::kFull},
        BuildCase{topo::PresetId::kB, topo::PresetScale::kReduced},
        BuildCase{topo::PresetId::kB, topo::PresetScale::kFull},
        BuildCase{topo::PresetId::kC, topo::PresetScale::kReduced},
        BuildCase{topo::PresetId::kC, topo::PresetScale::kFull},
        BuildCase{topo::PresetId::kD, topo::PresetScale::kReduced},
        BuildCase{topo::PresetId::kD, topo::PresetScale::kFull},
        BuildCase{topo::PresetId::kE, topo::PresetScale::kReduced},
        BuildCase{topo::PresetId::kE, topo::PresetScale::kFull}),
    [](const auto& info) {
      return topo::to_string(info.param.preset) +
             (info.param.scale == topo::PresetScale::kFull
                  ? std::string("_full")
                  : std::string("_reduced"));
    });

}  // namespace
}  // namespace klotski
