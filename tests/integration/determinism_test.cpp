// Determinism and equivalence properties:
//  * planners are deterministic (same inputs -> byte-identical plans),
//  * the satisfiability cache never changes a verdict (ESC is an
//    optimization, not an approximation),
//  * grouped ECMP assignment equals per-demand assignment on arbitrary
//    intermediate topologies,
//  * randomly generated JSON documents survive dump/parse round trips.
#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/json/json.h"
#include "klotski/pipeline/edp.h"
#include "klotski/util/rng.h"

namespace klotski {
namespace {

TEST(Determinism, PlannersProduceIdenticalPlansOnRepeat) {
  for (const char* name : {"astar", "dp", "mrc", "janus"}) {
    migration::MigrationCase mig = testing::small_hgrid_case();
    auto run = [&]() {
      pipeline::CheckerBundle bundle =
          pipeline::make_standard_checker(mig.task, {});
      return pipeline::make_planner(name)->plan(mig.task, *bundle.checker,
                                                {});
    };
    const core::Plan first = run();
    const core::Plan second = run();
    ASSERT_EQ(first.found, second.found) << name;
    if (!first.found) continue;
    EXPECT_DOUBLE_EQ(first.cost, second.cost) << name;
    ASSERT_EQ(first.actions.size(), second.actions.size()) << name;
    for (std::size_t i = 0; i < first.actions.size(); ++i) {
      EXPECT_EQ(first.actions[i], second.actions[i]) << name << " @" << i;
    }
  }
}

TEST(Determinism, TaskBuildersAreDeterministic) {
  migration::MigrationCase a = testing::small_dmag_case();
  migration::MigrationCase b = testing::small_dmag_case();
  ASSERT_EQ(a.task.topo->num_switches(), b.task.topo->num_switches());
  ASSERT_EQ(a.task.topo->num_circuits(), b.task.topo->num_circuits());
  EXPECT_TRUE(a.task.original_state ==
              topo::TopologyState::capture(*b.task.topo));
  ASSERT_EQ(a.task.blocks.size(), b.task.blocks.size());
  for (std::size_t t = 0; t < a.task.blocks.size(); ++t) {
    ASSERT_EQ(a.task.blocks[t].size(), b.task.blocks[t].size());
    for (std::size_t i = 0; i < a.task.blocks[t].size(); ++i) {
      EXPECT_EQ(a.task.blocks[t][i].label, b.task.blocks[t][i].label);
      EXPECT_EQ(a.task.blocks[t][i].ops.size(),
                b.task.blocks[t][i].ops.size());
    }
  }
}

TEST(CacheEquivalence, EscNeverChangesAVerdict) {
  migration::MigrationCase mig = testing::small_ssw_case();
  migration::MigrationTask& task = mig.task;
  pipeline::CheckerBundle cached_stack =
      pipeline::make_standard_checker(task, {});
  pipeline::CheckerBundle raw_stack =
      pipeline::make_standard_checker(task, {});
  core::StateEvaluator cached(task, *cached_stack.checker, true);
  core::StateEvaluator raw(task, *raw_stack.checker, false);

  util::Rng rng(404);
  const core::CountVector& target = cached.target();
  for (int trial = 0; trial < 200; ++trial) {
    core::CountVector counts(target.size());
    for (std::size_t t = 0; t < target.size(); ++t) {
      counts[t] =
          static_cast<std::int32_t>(rng.uniform_int(0, target[t]));
    }
    EXPECT_EQ(cached.feasible(counts), raw.feasible(counts))
        << "trial " << trial;
    // Ask the cached evaluator twice: the second answer must not drift.
    EXPECT_EQ(cached.feasible(counts), raw.feasible(counts));
  }
  EXPECT_GT(cached.cache_hits(), 0);
  task.reset_to_original();
}

TEST(CacheEquivalence, AssignAllMatchesPerDemandOnIntermediateStates) {
  migration::MigrationCase mig = testing::small_hgrid_case();
  migration::MigrationTask& task = mig.task;
  constraints::CompositeChecker no_constraints;
  core::StateEvaluator evaluator(task, no_constraints, false);
  traffic::EcmpRouter router(*task.topo);

  util::Rng rng(77);
  const core::CountVector& target = evaluator.target();
  for (int trial = 0; trial < 20; ++trial) {
    core::CountVector counts(target.size());
    for (std::size_t t = 0; t < target.size(); ++t) {
      counts[t] =
          static_cast<std::int32_t>(rng.uniform_int(0, target[t]));
    }
    evaluator.materialize(counts);

    traffic::LoadVector merged;
    const bool merged_ok = router.assign_all(task.demands, merged);
    traffic::LoadVector separate(task.topo->num_circuits() * 2, 0.0);
    bool separate_ok = true;
    for (const traffic::Demand& d : task.demands) {
      separate_ok = separate_ok && router.assign(d, separate);
    }
    ASSERT_EQ(merged_ok, separate_ok) << "trial " << trial;
    if (!merged_ok) continue;
    for (std::size_t i = 0; i < merged.size(); ++i) {
      ASSERT_NEAR(merged[i], separate[i], 1e-9)
          << "trial " << trial << " slot " << i;
    }
  }
  task.reset_to_original();
}

// ---------------------------------------------------------------------------
// JSON fuzz round-trip

json::Value random_json(util::Rng& rng, int depth) {
  const auto kind = rng.uniform_int(0, depth <= 0 ? 4 : 6);
  switch (kind) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(rng.chance(0.5));
    case 2: return json::Value(rng.uniform_int(-1'000'000, 1'000'000));
    case 3: return json::Value(rng.uniform_real(-1e6, 1e6));
    case 4: {
      std::string s;
      const auto len = rng.uniform_int(0, 12);
      for (int i = 0; i < len; ++i) {
        // Mix printable ASCII with characters that need escaping.
        const char* alphabet = "ab\"\\\n\tz 0/";
        s.push_back(alphabet[rng.index(10)]);
      }
      return json::Value(std::move(s));
    }
    case 5: {
      json::Array arr;
      const auto len = rng.uniform_int(0, 5);
      for (int i = 0; i < len; ++i) arr.push_back(random_json(rng, depth - 1));
      return json::Value(std::move(arr));
    }
    default: {
      json::Object obj;
      const auto len = rng.uniform_int(0, 5);
      for (int i = 0; i < len; ++i) {
        obj["k" + std::to_string(i)] = random_json(rng, depth - 1);
      }
      return json::Value(std::move(obj));
    }
  }
}

class JsonFuzz : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzz, DumpParseRoundTrip) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const json::Value v = random_json(rng, 4);
    EXPECT_TRUE(json::parse(json::dump(v)) == v) << json::dump(v);
    EXPECT_TRUE(json::parse(json::dump(v, 2)) == v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace klotski
