#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "klotski/constraints/composite.h"
#include "klotski/constraints/demand_checker.h"
#include "klotski/constraints/port_checker.h"
#include "klotski/constraints/space_power_checker.h"

namespace klotski::constraints {
namespace {

using klotski::testing::Diamond;

// ---------------------------------------------------------------------------
// Port checker

TEST(PortChecker, PassesWithinBudget) {
  Diamond d;
  PortChecker checker;
  EXPECT_TRUE(checker.check(d.topo).satisfied);
}

TEST(PortChecker, FailsOnOverflowAndNamesTheSwitch) {
  Diamond d;
  d.topo.sw(d.s).max_ports = 1;  // s has two circuits
  PortChecker checker;
  const Verdict v = checker.check(d.topo);
  EXPECT_FALSE(v.satisfied);
  EXPECT_NE(v.violation.find("s"), std::string::npos);
}

TEST(PortChecker, AbsentSwitchesAreNotChecked) {
  Diamond d;
  d.topo.sw(d.s).max_ports = 1;
  d.topo.sw(d.s).state = topo::ElementState::kAbsent;
  PortChecker checker;
  EXPECT_TRUE(checker.check(d.topo).satisfied);
}

TEST(PortChecker, StagedCircuitsDoNotOccupyPorts) {
  Diamond d;
  d.topo.sw(d.s).max_ports = 2;
  // A staged (absent) extra circuit must not count.
  d.topo.add_circuit(d.s, d.t, 1.0, topo::ElementState::kAbsent);
  PortChecker checker;
  EXPECT_TRUE(checker.check(d.topo).satisfied);
}

// ---------------------------------------------------------------------------
// Demand checker

TEST(DemandChecker, PassesUnderThreshold) {
  Diamond d;
  traffic::EcmpRouter router(d.topo);
  DemandChecker checker(router, {d.demand(1.0)}, {.max_utilization = 0.75});
  // 0.5 load on 1.0 capacity = 50% < 75%.
  EXPECT_TRUE(checker.check(d.topo).satisfied);
  EXPECT_NEAR(checker.last_max_utilization(), 0.5, 1e-9);
}

TEST(DemandChecker, FailsOverThreshold) {
  Diamond d;
  traffic::EcmpRouter router(d.topo);
  DemandChecker checker(router, {d.demand(1.8)}, {.max_utilization = 0.75});
  const Verdict v = checker.check(d.topo);
  EXPECT_FALSE(v.satisfied);
  EXPECT_NE(v.violation.find("theta"), std::string::npos);
}

TEST(DemandChecker, FailsOnDisconnection) {
  Diamond d;
  d.topo.sw(d.m1).state = topo::ElementState::kAbsent;
  d.topo.sw(d.m2).state = topo::ElementState::kAbsent;
  traffic::EcmpRouter router(d.topo);
  DemandChecker checker(router, {d.demand(0.1)}, {});
  const Verdict v = checker.check(d.topo);
  EXPECT_FALSE(v.satisfied);
  EXPECT_NE(v.violation.find("no path"), std::string::npos);
}

TEST(DemandChecker, AggregatesAcrossDemands) {
  Diamond d;
  traffic::EcmpRouter router(d.topo);
  // Two demands of 0.8 each: per-branch load = 0.8 > 0.75.
  DemandChecker checker(router, {d.demand(0.8), d.demand(0.8)},
                        {.max_utilization = 0.75});
  EXPECT_FALSE(checker.check(d.topo).satisfied);
}

TEST(DemandChecker, ThetaMonotonicity) {
  Diamond d;
  traffic::EcmpRouter router(d.topo);
  DemandChecker checker(router, {d.demand(1.2)}, {});
  checker.set_max_utilization(0.55);
  EXPECT_FALSE(checker.check(d.topo).satisfied);  // 60% > 55%
  checker.set_max_utilization(0.65);
  EXPECT_TRUE(checker.check(d.topo).satisfied);   // 60% < 65%
}

TEST(DemandChecker, FunnelingMarginTightensNearDrains) {
  Diamond d;
  traffic::EcmpRouter router(d.topo);
  // Drain one branch: the other carries 0.7 (70%).
  d.topo.circuit(d.c_sm2).state = topo::ElementState::kDrained;
  d.topo.circuit(d.c_m2t).state = topo::ElementState::kDrained;

  DemandCheckerParams strict;
  strict.max_utilization = 0.75;
  strict.funneling_margin = 0.0;
  DemandChecker no_margin(router, {d.demand(0.7)}, strict);
  EXPECT_TRUE(no_margin.check(d.topo).satisfied);

  strict.funneling_margin = 0.2;  // 0.7 * 1.2 = 84% > 75%
  DemandChecker with_margin(router, {d.demand(0.7)}, strict);
  EXPECT_FALSE(with_margin.check(d.topo).satisfied);
}

TEST(DemandChecker, SetDemandsReplacesLoad) {
  Diamond d;
  traffic::EcmpRouter router(d.topo);
  DemandChecker checker(router, {d.demand(1.8)}, {});
  EXPECT_FALSE(checker.check(d.topo).satisfied);
  checker.set_demands({d.demand(0.2)});
  EXPECT_TRUE(checker.check(d.topo).satisfied);
}

// ---------------------------------------------------------------------------
// Space/power checker

topo::Topology grid_topology(int switches_in_grid, int grid = 0) {
  topo::Topology t;
  for (int i = 0; i < switches_in_grid; ++i) {
    topo::Location loc;
    loc.grid = static_cast<std::int16_t>(grid);
    t.add_switch(topo::SwitchRole::kFadu, topo::Generation::kV1, loc, 8,
                 topo::ElementState::kActive, "f" + std::to_string(i));
  }
  return t;
}

TEST(SpacePowerChecker, GridCapEnforced) {
  topo::Topology t = grid_topology(4);
  SpacePowerChecker ok(SpacePowerParams{.max_present_per_grid = 4});
  EXPECT_TRUE(ok.check(t).satisfied);
  SpacePowerChecker tight(SpacePowerParams{.max_present_per_grid = 3});
  EXPECT_FALSE(tight.check(t).satisfied);
}

TEST(SpacePowerChecker, AbsentSwitchesDoNotCount) {
  topo::Topology t = grid_topology(4);
  t.sw(0).state = topo::ElementState::kAbsent;
  SpacePowerChecker tight(SpacePowerParams{.max_present_per_grid = 3});
  EXPECT_TRUE(tight.check(t).satisfied);
}

TEST(SpacePowerChecker, ZeroDisablesCap) {
  topo::Topology t = grid_topology(100);
  SpacePowerChecker disabled(SpacePowerParams{});
  EXPECT_TRUE(disabled.check(t).satisfied);
}

TEST(SpacePowerChecker, PlaneCapCountsSsws) {
  topo::Topology t;
  for (int i = 0; i < 3; ++i) {
    topo::Location loc;
    loc.dc = 0;
    loc.plane = 1;
    t.add_switch(topo::SwitchRole::kSsw, topo::Generation::kV1, loc, 8,
                 topo::ElementState::kActive, "s" + std::to_string(i));
  }
  SpacePowerChecker tight(SpacePowerParams{.max_present_per_plane = 2});
  EXPECT_FALSE(tight.check(t).satisfied);
  SpacePowerChecker ok(SpacePowerParams{.max_present_per_plane = 3});
  EXPECT_TRUE(ok.check(t).satisfied);
}

// ---------------------------------------------------------------------------
// Composite

class FlagChecker : public Checker {
 public:
  FlagChecker(bool pass, int* calls) : pass_(pass), calls_(calls) {}
  Verdict check(const topo::Topology&) override {
    ++*calls_;
    return pass_ ? Verdict::ok() : Verdict::fail("flag");
  }
  std::string name() const override { return "flag"; }

 private:
  bool pass_;
  int* calls_;
};

TEST(Composite, ShortCircuitsOnFirstFailure) {
  Diamond d;
  int first_calls = 0, second_calls = 0;
  CompositeChecker composite;
  composite.add(std::make_unique<FlagChecker>(false, &first_calls));
  composite.add(std::make_unique<FlagChecker>(true, &second_calls));
  EXPECT_FALSE(composite.check(d.topo).satisfied);
  EXPECT_EQ(first_calls, 1);
  EXPECT_EQ(second_calls, 0);
}

TEST(Composite, CountsChecks) {
  Diamond d;
  CompositeChecker composite;
  composite.check(d.topo);
  composite.check(d.topo);
  EXPECT_EQ(composite.checks_performed(), 2);
  composite.reset_counter();
  EXPECT_EQ(composite.checks_performed(), 0);
}

TEST(Composite, EmptyCompositeAlwaysSatisfied) {
  Diamond d;
  CompositeChecker composite;
  EXPECT_TRUE(composite.check(d.topo).satisfied);
}

}  // namespace
}  // namespace klotski::constraints
