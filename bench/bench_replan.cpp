// bench_replan — warm-start replanning latency (DESIGN.md §11).
//
// Runs the same seeded chaos sweep twice — once with warm repair enabled
// and once forced cold — and compares per-round replanning latency. Every
// planning round after a seed's initial plan is a "replan"; in the warm
// configuration a replan is either a suffix repair (no search at all) or a
// fallback full search after the repair gates declined. The headline
// comparison is the median latency of warm-repaired rounds against the
// median replan latency of the all-cold sweep, at byte-identical safety:
// both sweeps must pass and fail the exact same seeds.
//
// Fault scripts, presets and the driver configuration are identical across
// the two sweeps (same seeds, checkpoint self-test off so the measurement
// is the replan path, not the resume oracle), so every latency difference
// is attributable to the warm-start machinery.
//
// Usage:
//   bench_replan [--preset=b] [--seeds=1000] [--first-seed=0]
//                [--threads=N] [--slack=1.25] [--json=out.json]
//
// The JSON document (schema klotski.bench_replan.v1) carries one row per
// configuration (replan_scratch / replan_warm); bench/bench_to_json.sh
// folds it into BENCH_core.json under "bench_replan" and
// scripts/bench_compare.py gates both the row presence and the speedup.
//
// Exit status: 0 ok; 1 the two sweeps diverged in safety (different
// verdicts) or the warm sweep never repaired anything; 2 usage error.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "klotski/json/json.h"
#include "klotski/sim/chaos.h"
#include "klotski/util/flags.h"
#include "klotski/util/string_util.h"
#include "klotski/util/table.h"

namespace {

using namespace klotski;

bool parse_preset(const std::string& text, topo::PresetId& out) {
  if (text == "a") out = topo::PresetId::kA;
  else if (text == "b") out = topo::PresetId::kB;
  else if (text == "c") out = topo::PresetId::kC;
  else if (text == "d") out = topo::PresetId::kD;
  else if (text == "e") out = topo::PresetId::kE;
  else return false;
  return true;
}

struct LatencyStats {
  std::size_t count = 0;
  double median_ms = 0.0;
  double mean_ms = 0.0;
  double p90_ms = 0.0;
};

LatencyStats stats_of(std::vector<double> seconds) {
  LatencyStats s;
  s.count = seconds.size();
  if (seconds.empty()) return s;
  std::sort(seconds.begin(), seconds.end());
  double sum = 0.0;
  for (const double v : seconds) sum += v;
  s.mean_ms = sum / static_cast<double>(seconds.size()) * 1e3;
  s.median_ms = seconds[seconds.size() / 2] * 1e3;
  s.p90_ms = seconds[std::min(seconds.size() - 1, seconds.size() * 9 / 10)] *
             1e3;
  return s;
}

struct SweepSummary {
  int passed = 0;
  int warm_attempts = 0;
  int warm_wins = 0;
  int fallback_full = 0;
  double total_cost = 0.0;  // executed cost summed over passing seeds
  std::vector<double> replan_seconds;  // every round after the initial plan
  std::vector<double> repair_seconds;  // the warm-repaired subset
  std::vector<std::uint64_t> failing;
};

SweepSummary summarize(const sim::ChaosSweepResult& sweep) {
  SweepSummary out;
  for (const sim::ChaosVerdict& v : sweep.verdicts) {
    if (v.passed()) {
      ++out.passed;
      out.total_cost += v.executed_cost;
    } else {
      out.failing.push_back(v.seed);
    }
    out.warm_attempts += v.warm_attempts;
    out.warm_wins += v.warm_wins;
    out.fallback_full += v.fallback_full;
    for (std::size_t i = 1; i < v.rounds.size(); ++i) {
      out.replan_seconds.push_back(v.rounds[i].seconds);
      if (v.rounds[i].warm) out.repair_seconds.push_back(v.rounds[i].seconds);
    }
  }
  return out;
}

json::Value row_json(const std::string& name, const SweepSummary& s,
                     const LatencyStats& replans, int seeds) {
  json::Object row;
  row["name"] = name;
  row["seeds"] = seeds;
  row["passed"] = s.passed;
  row["replans"] = static_cast<std::int64_t>(replans.count);
  row["median_ms"] = replans.median_ms;
  row["mean_ms"] = replans.mean_ms;
  row["p90_ms"] = replans.p90_ms;
  row["warm_attempts"] = s.warm_attempts;
  row["warm_wins"] = s.warm_wins;
  row["fallback_full"] = s.fallback_full;
  row["total_cost"] = s.total_cost;
  return json::Value(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  for (const std::string& name : flags.names()) {
    if (name != "preset" && name != "seeds" && name != "first-seed" &&
        name != "threads" && name != "slack" && name != "json") {
      std::cerr << "bench_replan: unknown flag --" << name << "\n";
      return 2;
    }
  }

  sim::ChaosParams params;
  if (!parse_preset(flags.get_string("preset", "b"), params.preset)) {
    std::cerr << "bench_replan: unknown --preset (want a..e)\n";
    return 2;
  }
  const int seeds = static_cast<int>(flags.get_int("seeds", 1000));
  const auto first_seed =
      static_cast<std::uint64_t>(flags.get_int("first-seed", 0));
  const int threads = static_cast<int>(flags.get_int(
      "threads",
      static_cast<long long>(std::max(1u, std::thread::hardware_concurrency()))));
  params.repair_cost_slack = flags.get_double("slack", 1.25);
  // The resume oracle re-executes half of every run — latency noise, not
  // signal, for a replan-path benchmark (tier-1 covers it).
  params.checkpoint_self_test = false;
  if (seeds < 1 || threads < 1) {
    std::cerr << "bench_replan: --seeds and --threads must be >= 1\n";
    return 2;
  }

  params.warm_repair = false;
  const sim::ChaosSweepResult cold =
      sim::run_chaos_sweep(first_seed, seeds, threads, params);
  params.warm_repair = true;
  const sim::ChaosSweepResult warm =
      sim::run_chaos_sweep(first_seed, seeds, threads, params);

  const SweepSummary cold_sum = summarize(cold);
  const SweepSummary warm_sum = summarize(warm);
  const LatencyStats cold_replans = stats_of(cold_sum.replan_seconds);
  const LatencyStats warm_replans = stats_of(warm_sum.replan_seconds);
  const LatencyStats repairs = stats_of(warm_sum.repair_seconds);

  util::Table table({"Config", "Passed", "Replans", "Median(ms)", "Mean(ms)",
                     "p90(ms)", "WarmWins"});
  table.set_title("Warm-start replanning, preset " +
                  std::string(topo::to_string(params.preset)) + ", " +
                  std::to_string(seeds) + " seeds");
  table.add_row({"scratch", std::to_string(cold_sum.passed),
                 std::to_string(cold_replans.count),
                 util::format_double(cold_replans.median_ms, 3),
                 util::format_double(cold_replans.mean_ms, 3),
                 util::format_double(cold_replans.p90_ms, 3), "-"});
  table.add_row({"warm", std::to_string(warm_sum.passed),
                 std::to_string(warm_replans.count),
                 util::format_double(warm_replans.median_ms, 3),
                 util::format_double(warm_replans.mean_ms, 3),
                 util::format_double(warm_replans.p90_ms, 3),
                 std::to_string(warm_sum.warm_wins) + "/" +
                     std::to_string(warm_sum.warm_attempts)});
  table.add_row({"warm (repaired rounds)", "-", std::to_string(repairs.count),
                 util::format_double(repairs.median_ms, 3),
                 util::format_double(repairs.mean_ms, 3),
                 util::format_double(repairs.p90_ms, 3), "-"});
  table.print(std::cout);

  // Equal safety is the precondition for any latency claim: warm and cold
  // sweeps must reach the same verdict on every seed.
  const bool same_safety = cold_sum.failing == warm_sum.failing &&
                           cold_sum.passed == warm_sum.passed;
  const double speedup_repair =
      repairs.median_ms > 0.0 ? cold_replans.median_ms / repairs.median_ms
                              : 0.0;
  const double speedup_overall =
      warm_replans.median_ms > 0.0
          ? cold_replans.median_ms / warm_replans.median_ms
          : 0.0;
  std::cout << "\nsafety parity: " << (same_safety ? "ok" : "BROKEN")
            << "  repair speedup (median): "
            << util::format_double(speedup_repair, 2)
            << "x  overall replan speedup (median): "
            << util::format_double(speedup_overall, 2) << "x\n";

  const std::string json_out = flags.get_string("json", "");
  if (!json_out.empty()) {
    json::Object doc;
    doc["schema"] = "klotski.bench_replan.v1";
    doc["preset"] = std::string(topo::to_string(params.preset));
    doc["seeds"] = seeds;
    doc["repair_cost_slack"] = params.repair_cost_slack;
    doc["safety_parity"] = same_safety;
    json::Array rows;
    rows.push_back(row_json("replan_scratch", cold_sum, cold_replans, seeds));
    {
      json::Value warm_row = row_json("replan_warm", warm_sum, warm_replans,
                                      seeds);
      warm_row.as_object()["repair_median_ms"] = repairs.median_ms;
      warm_row.as_object()["repair_mean_ms"] = repairs.mean_ms;
      warm_row.as_object()["repair_p90_ms"] = repairs.p90_ms;
      warm_row.as_object()["repairs"] =
          static_cast<std::int64_t>(repairs.count);
      warm_row.as_object()["speedup_repair_median"] = speedup_repair;
      warm_row.as_object()["speedup_overall_median"] = speedup_overall;
      rows.push_back(std::move(warm_row));
    }
    doc["rows"] = json::Value(std::move(rows));
    std::ofstream out(json_out);
    out << json::dump(json::Value(std::move(doc)), 2) << "\n";
    if (!out) {
      std::cerr << "bench_replan: cannot write " << json_out << "\n";
      return 1;
    }
    std::cout << "wrote " << json_out << "\n";
  }

  if (!same_safety) {
    std::cerr << "bench_replan: FAIL — warm and cold sweeps diverged\n";
    return 1;
  }
  if (warm_sum.warm_wins == 0) {
    std::cerr << "bench_replan: FAIL — warm sweep never repaired a suffix\n";
    return 1;
  }
  return 0;
}
