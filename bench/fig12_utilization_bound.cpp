// Figure 12: impact of the utilization-rate bound theta (demand
// constraints, Eq. 5) on preset E under HGRID V1->V2.
//
// Paper shape: a lower bound means stricter constraints, so fewer
// switches/circuits can drain together and the optimal cost rises;
// under loose bounds Klotski-A* visits only a few states and is up to
// 3.2x faster than Klotski-DP.
#include "bench_common.h"

int main() {
  using namespace klotski;
  bench::print_scale_banner("Figure 12 — utilization bound sweep on E");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  // Same capacity-neutral, elevated-demand configuration as Figure 11: the
  // utilization bound then directly caps how many grids may be down at
  // once, spreading the optimal cost across the theta sweep.
  migration::HgridMigrationParams params =
      pipeline::hgrid_params_for(topo::PresetId::kE, scale);
  params.v2_grids = topo::preset_params(topo::PresetId::kE, scale).grids;
  params.demand.egress_frac = 0.30;
  params.demand.ingress_frac = 0.30;
  migration::MigrationCase mig = migration::build_hgrid_migration(
      topo::preset_params(topo::PresetId::kE, scale), params);
  migration::MigrationTask& task = mig.task;

  util::Table table({"theta (%)", "Optimal Cost", "A* visited",
                     "DP time (x of A*)", "A* seconds"});
  table.set_title("Figure 12: utilization rate bound sweep (preset E)");

  for (const double theta : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    pipeline::CheckerConfig config;
    config.demand.max_utilization = theta;

    const bench::PlannerRun astar =
        bench::run_planner(task, "astar", {}, config);
    const bench::PlannerRun dp = bench::run_planner(task, "dp", {}, config);

    table.add_row(
        {util::format_double(theta * 100, 0),
         astar.plan.found ? util::format_double(astar.plan.cost, 2)
                          : "x (" + astar.plan.failure + ")",
         std::to_string(astar.plan.stats.visited_states),
         bench::time_cell(dp, astar.plan.stats.wall_seconds),
         util::format_double(astar.plan.stats.wall_seconds, 4)});
  }

  table.print(std::cout);
  std::cout << "\nPaper reference: optimal cost decreases as theta loosens; "
               "A* speedup over DP grows with theta (up to 3.2x).\n";
  return 0;
}
