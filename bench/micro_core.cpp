// Microbenchmarks for the planner's hot paths: ECMP assignment, full
// satisfiability checks, compact-state hashing, cache lookups, topology
// state capture/restore, and block application. These are the per-state
// costs in Theorems 1-2 (Theta(|S| + |C|) per check).
#include <benchmark/benchmark.h>

#include "klotski/core/sat_cache.h"
#include "klotski/migration/symmetry.h"
#include "klotski/topo/diff.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/topo/presets.h"
#include "klotski/util/rng.h"

namespace {

using namespace klotski;

migration::MigrationCase& shared_case() {
  static migration::MigrationCase mig = pipeline::build_experiment(
      pipeline::ExperimentId::kC, topo::PresetScale::kReduced);
  return mig;
}

void BM_EcmpAssignOneDemand(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  traffic::EcmpRouter router(*mig.task.topo);
  traffic::LoadVector loads;
  const traffic::Demand& demand = mig.task.demands.front();
  for (auto _ : state) {
    loads.assign(mig.task.topo->num_circuits() * 2, 0.0);
    benchmark::DoNotOptimize(router.assign(demand, loads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(
                              mig.task.topo->num_circuits()));
}
BENCHMARK(BM_EcmpAssignOneDemand);

void BM_FullSatisfiabilityCheck(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  mig.task.reset_to_original();
  for (auto _ : state) {
    // Invalidate the version-keyed checker memos: this measures a full
    // constraint evaluation, not the memo fast path.
    mig.task.topo->bump_state_version();
    benchmark::DoNotOptimize(bundle.checker->check(*mig.task.topo));
  }
}
BENCHMARK(BM_FullSatisfiabilityCheck);

void BM_EvaluatorFeasibleCacheMiss(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  core::StateEvaluator evaluator(mig.task, *bundle.checker,
                                 /*use_cache=*/false);
  // This measures the cost of one cold evaluation (Theta(|S| + |C|)), so
  // defeat the incremental fast path honestly: no delta materialization and
  // a version bump per iteration to invalidate router and checker memos.
  evaluator.set_incremental(false);
  core::CountVector counts(mig.task.blocks.size(), 0);
  for (auto _ : state) {
    mig.task.topo->bump_state_version();
    benchmark::DoNotOptimize(evaluator.feasible(counts));
  }
}
BENCHMARK(BM_EvaluatorFeasibleCacheMiss);

// The incremental fast path on the planner's most common pattern: asking
// about a state the topology already holds. Delta materialization is a
// no-op and the version-keyed checker memos answer directly.
void BM_EvaluatorFeasibleIncrementalRepeat(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  core::StateEvaluator evaluator(mig.task, *bundle.checker,
                                 /*use_cache=*/false);
  core::CountVector counts(mig.task.blocks.size(), 0);
  evaluator.feasible(counts);  // settle onto the state
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.feasible(counts));
  }
}
BENCHMARK(BM_EvaluatorFeasibleIncrementalRepeat);

// A four-state ring of neighboring count vectors (each step flips one
// block), the second most common planner pattern. Exercises delta
// materialization plus journal-driven router cache invalidation.
void ring_walk_bench(benchmark::State& state, bool incremental) {
  migration::MigrationCase& mig = shared_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  core::StateEvaluator evaluator(mig.task, *bundle.checker,
                                 /*use_cache=*/false);
  evaluator.set_incremental(incremental);
  std::vector<core::CountVector> ring;
  core::CountVector base(mig.task.blocks.size(), 0);
  ring.push_back(base);
  base[0] = 1;
  ring.push_back(base);
  if (base.size() > 1) {
    base[1] = 1;
    ring.push_back(base);
    base[0] = 0;
    ring.push_back(base);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    if (!incremental) mig.task.topo->bump_state_version();
    benchmark::DoNotOptimize(evaluator.feasible(ring[i]));
    i = (i + 1) % ring.size();
  }
  mig.task.reset_to_original();
}

void BM_EvaluatorFeasibleIncrementalWalk(benchmark::State& state) {
  ring_walk_bench(state, /*incremental=*/true);
}
BENCHMARK(BM_EvaluatorFeasibleIncrementalWalk);

void BM_EvaluatorFeasibleFullReplayWalk(benchmark::State& state) {
  ring_walk_bench(state, /*incremental=*/false);
}
BENCHMARK(BM_EvaluatorFeasibleFullReplayWalk);

void BM_EvaluatorFeasibleCacheHit(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  core::StateEvaluator evaluator(mig.task, *bundle.checker,
                                 /*use_cache=*/true);
  core::CountVector counts(mig.task.blocks.size(), 0);
  evaluator.feasible(counts);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.feasible(counts));
  }
}
BENCHMARK(BM_EvaluatorFeasibleCacheHit);

void BM_CompactStateHash(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<core::CountVector> keys;
  for (int i = 0; i < 1024; ++i) {
    core::CountVector v(4);
    for (auto& x : v) x = static_cast<std::int32_t>(rng.uniform_int(0, 200));
    keys.push_back(std::move(v));
  }
  core::CountVectorHash hash;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash(keys[i++ & 1023]));
  }
}
BENCHMARK(BM_CompactStateHash);

void BM_SatCacheLookup(benchmark::State& state) {
  util::Rng rng(11);
  core::SatCache cache;
  std::vector<core::CountVector> keys;
  for (int i = 0; i < 4096; ++i) {
    core::CountVector v(4);
    for (auto& x : v) x = static_cast<std::int32_t>(rng.uniform_int(0, 200));
    cache.store(v, (i & 1) == 0);
    keys.push_back(std::move(v));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(keys[i++ & 4095]));
  }
}
BENCHMARK(BM_SatCacheLookup);

void BM_TopologyStateRestore(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  const topo::TopologyState snapshot =
      topo::TopologyState::capture(*mig.task.topo);
  for (auto _ : state) {
    snapshot.restore(*mig.task.topo);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TopologyStateRestore);

void BM_BlockApply(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  const migration::OperationBlock& block = mig.task.blocks[0][0];
  for (auto _ : state) {
    block.apply(*mig.task.topo);
    benchmark::ClobberMemory();
  }
  mig.task.reset_to_original();
}
BENCHMARK(BM_BlockApply);


void BM_SymmetryComputation(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        migration::compute_symmetry(*mig.task.topo).num_blocks());
  }
}
BENCHMARK(BM_SymmetryComputation);

void BM_StateDiff(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo::diff_states(*mig.task.topo, mig.task.original_state,
                          mig.task.target_state)
            .capacity_delta_tbps);
  }
}
BENCHMARK(BM_StateDiff);

void BM_AssignAllDemands(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  traffic::EcmpRouter router(*mig.task.topo);
  traffic::LoadVector loads;
  for (auto _ : state) {
    // Defeat the liveness-refresh version gate so every iteration pays the
    // full unbound assignment cost (the pre-caching behavior).
    mig.task.topo->bump_state_version();
    loads.assign(mig.task.topo->num_circuits() * 2, 0.0);
    benchmark::DoNotOptimize(router.assign_all(mig.task.demands, loads));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<long long>(mig.task.demands.size()));
}
BENCHMARK(BM_AssignAllDemands);

void BM_AssignAllDemandsBound(benchmark::State& state) {
  // Bound demand set on an unchanged topology: per-group caches hit and the
  // call reduces to one vector accumulation.
  migration::MigrationCase& mig = shared_case();
  traffic::EcmpRouter router(*mig.task.topo);
  router.bind_demands(mig.task.demands);
  traffic::LoadVector loads;
  for (auto _ : state) {
    loads.assign(mig.task.topo->num_circuits() * 2, 0.0);
    benchmark::DoNotOptimize(router.assign_all(mig.task.demands, loads));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<long long>(mig.task.demands.size()));
}
BENCHMARK(BM_AssignAllDemandsBound);

}  // namespace
