// Microbenchmarks for the planner's hot paths: ECMP assignment, full
// satisfiability checks, compact-state hashing, cache lookups, topology
// state capture/restore, and block application. These are the per-state
// costs in Theorems 1-2 (Theta(|S| + |C|) per check).
#include <benchmark/benchmark.h>

#include "klotski/core/sat_cache.h"
#include "klotski/migration/symmetry.h"
#include "klotski/topo/diff.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/topo/presets.h"
#include "klotski/util/rng.h"

namespace {

using namespace klotski;

migration::MigrationCase& shared_case() {
  static migration::MigrationCase mig = pipeline::build_experiment(
      pipeline::ExperimentId::kC, topo::PresetScale::kReduced);
  return mig;
}

void BM_EcmpAssignOneDemand(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  traffic::EcmpRouter router(*mig.task.topo);
  traffic::LoadVector loads;
  const traffic::Demand& demand = mig.task.demands.front();
  for (auto _ : state) {
    loads.assign(mig.task.topo->num_circuits() * 2, 0.0);
    benchmark::DoNotOptimize(router.assign(demand, loads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(
                              mig.task.topo->num_circuits()));
}
BENCHMARK(BM_EcmpAssignOneDemand);

void BM_FullSatisfiabilityCheck(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  mig.task.reset_to_original();
  for (auto _ : state) {
    // Invalidate the version-keyed checker memos: this measures a full
    // constraint evaluation, not the memo fast path.
    mig.task.topo->bump_state_version();
    benchmark::DoNotOptimize(bundle.checker->check(*mig.task.topo));
  }
}
BENCHMARK(BM_FullSatisfiabilityCheck);

void BM_EvaluatorFeasibleCacheMiss(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  core::StateEvaluator evaluator(mig.task, *bundle.checker,
                                 /*use_cache=*/false);
  // This measures the cost of one cold evaluation (Theta(|S| + |C|)), so
  // defeat the incremental fast path honestly: no delta materialization and
  // a version bump per iteration to invalidate router and checker memos.
  evaluator.set_incremental(false);
  core::CountVector counts(mig.task.blocks.size(), 0);
  for (auto _ : state) {
    mig.task.topo->bump_state_version();
    benchmark::DoNotOptimize(evaluator.feasible(counts));
  }
}
BENCHMARK(BM_EvaluatorFeasibleCacheMiss);

// The incremental fast path on the planner's most common pattern: asking
// about a state the topology already holds. Delta materialization is a
// no-op and the version-keyed checker memos answer directly.
void BM_EvaluatorFeasibleIncrementalRepeat(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  core::StateEvaluator evaluator(mig.task, *bundle.checker,
                                 /*use_cache=*/false);
  core::CountVector counts(mig.task.blocks.size(), 0);
  evaluator.feasible(counts);  // settle onto the state
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.feasible(counts));
  }
}
BENCHMARK(BM_EvaluatorFeasibleIncrementalRepeat);

// A four-state ring of neighboring count vectors (each step flips one
// block), the second most common planner pattern. Exercises delta
// materialization plus journal-driven router cache invalidation.
void ring_walk_bench(benchmark::State& state, bool incremental) {
  migration::MigrationCase& mig = shared_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  core::StateEvaluator evaluator(mig.task, *bundle.checker,
                                 /*use_cache=*/false);
  evaluator.set_incremental(incremental);
  std::vector<core::CountVector> ring;
  core::CountVector base(mig.task.blocks.size(), 0);
  ring.push_back(base);
  base[0] = 1;
  ring.push_back(base);
  if (base.size() > 1) {
    base[1] = 1;
    ring.push_back(base);
    base[0] = 0;
    ring.push_back(base);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    if (!incremental) mig.task.topo->bump_state_version();
    benchmark::DoNotOptimize(evaluator.feasible(ring[i]));
    i = (i + 1) % ring.size();
  }
  mig.task.reset_to_original();
}

void BM_EvaluatorFeasibleIncrementalWalk(benchmark::State& state) {
  ring_walk_bench(state, /*incremental=*/true);
}
BENCHMARK(BM_EvaluatorFeasibleIncrementalWalk);

void BM_EvaluatorFeasibleFullReplayWalk(benchmark::State& state) {
  ring_walk_bench(state, /*incremental=*/false);
}
BENCHMARK(BM_EvaluatorFeasibleFullReplayWalk);

void BM_EvaluatorFeasibleCacheHit(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(mig.task, {});
  core::StateEvaluator evaluator(mig.task, *bundle.checker,
                                 /*use_cache=*/true);
  core::CountVector counts(mig.task.blocks.size(), 0);
  evaluator.feasible(counts);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.feasible(counts));
  }
}
BENCHMARK(BM_EvaluatorFeasibleCacheHit);

void BM_CompactStateHash(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<core::CountVector> keys;
  for (int i = 0; i < 1024; ++i) {
    core::CountVector v(4);
    for (auto& x : v) x = static_cast<std::int32_t>(rng.uniform_int(0, 200));
    keys.push_back(std::move(v));
  }
  core::CountVectorHash hash;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash(keys[i++ & 1023]));
  }
}
BENCHMARK(BM_CompactStateHash);

void BM_SatCacheLookup(benchmark::State& state) {
  util::Rng rng(11);
  core::SatCache cache;
  std::vector<core::CountVector> keys;
  for (int i = 0; i < 4096; ++i) {
    core::CountVector v(4);
    for (auto& x : v) x = static_cast<std::int32_t>(rng.uniform_int(0, 200));
    cache.store(v, (i & 1) == 0);
    keys.push_back(std::move(v));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(keys[i++ & 4095]));
  }
}
BENCHMARK(BM_SatCacheLookup);

void BM_TopologyStateRestore(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  const topo::TopologyState snapshot =
      topo::TopologyState::capture(*mig.task.topo);
  for (auto _ : state) {
    snapshot.restore(*mig.task.topo);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TopologyStateRestore);

void BM_BlockApply(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  const migration::OperationBlock& block = mig.task.blocks[0][0];
  for (auto _ : state) {
    block.apply(*mig.task.topo);
    benchmark::ClobberMemory();
  }
  mig.task.reset_to_original();
}
BENCHMARK(BM_BlockApply);


void BM_SymmetryComputation(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        migration::compute_symmetry(*mig.task.topo).num_blocks());
  }
}
BENCHMARK(BM_SymmetryComputation);

void BM_StateDiff(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo::diff_states(*mig.task.topo, mig.task.original_state,
                          mig.task.target_state)
            .capacity_delta_tbps);
  }
}
BENCHMARK(BM_StateDiff);

void BM_AssignAllDemands(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  traffic::EcmpRouter router(*mig.task.topo);
  traffic::LoadVector loads;
  for (auto _ : state) {
    // Defeat the liveness-refresh version gate so every iteration pays the
    // full unbound assignment cost (the pre-caching behavior).
    mig.task.topo->bump_state_version();
    loads.assign(mig.task.topo->num_circuits() * 2, 0.0);
    benchmark::DoNotOptimize(router.assign_all(mig.task.demands, loads));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<long long>(mig.task.demands.size()));
}
BENCHMARK(BM_AssignAllDemands);

void BM_AssignAllDemandsBound(benchmark::State& state) {
  // Bound demand set on an unchanged topology: per-group caches hit and the
  // call reduces to one vector accumulation.
  migration::MigrationCase& mig = shared_case();
  traffic::EcmpRouter router(*mig.task.topo);
  router.bind_demands(mig.task.demands);
  traffic::LoadVector loads;
  for (auto _ : state) {
    loads.assign(mig.task.topo->num_circuits() * 2, 0.0);
    benchmark::DoNotOptimize(router.assign_all(mig.task.demands, loads));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<long long>(mig.task.demands.size()));
}
BENCHMARK(BM_AssignAllDemandsBound);

// Finds a traffic-carrying circuit whose drain keeps every bound demand
// routable, so a drain/undrain walk stays on the incremental group path (an
// unroutable set would invalidate the caches and turn the walk into full
// recomputes). Returns kInvalidCircuit when no such circuit exists.
topo::CircuitId find_flippable_circuit(topo::Topology& topo,
                                       traffic::EcmpRouter& router,
                                       const traffic::DemandSet& demands) {
  traffic::LoadVector loads;
  for (const topo::Circuit& c : topo.circuits()) {
    if (!topo.circuit_carries_traffic(c.id)) continue;
    topo.set_circuit_state(c.id, topo::ElementState::kDrained);
    loads.assign(topo.num_circuits() * 2, 0.0);
    const bool ok = router.assign_all(demands, loads);
    topo.set_circuit_state(c.id, topo::ElementState::kActive);
    loads.assign(topo.num_circuits() * 2, 0.0);
    router.assign_all(demands, loads);
    if (ok) return c.id;
  }
  return topo::kInvalidCircuit;
}

// The planner's sparse dirty-group walk: every iteration flips one circuit
// and runs one bound assign_all, so only the demand groups whose cached DAG
// the circuit could touch recompute and the rest are reused from cache.
void BM_AssignAllDirtyGroups(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  topo::Topology topo = *mig.task.topo;  // private copy: benches share the case
  traffic::EcmpRouter router(topo);
  router.bind_demands(mig.task.demands);
  traffic::LoadVector loads;
  loads.assign(topo.num_circuits() * 2, 0.0);
  router.assign_all(mig.task.demands, loads);

  const topo::CircuitId flip =
      find_flippable_circuit(topo, router, mig.task.demands);
  if (flip == topo::kInvalidCircuit) {
    state.SkipWithError("no drainable circuit keeps all demands routable");
    return;
  }
  bool drained = false;
  for (auto _ : state) {
    drained = !drained;
    topo.set_circuit_state(flip, drained ? topo::ElementState::kDrained
                                         : topo::ElementState::kActive);
    loads.assign(topo.num_circuits() * 2, 0.0);
    benchmark::DoNotOptimize(router.assign_all(mig.task.demands, loads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(mig.task.demands.size()));
}
BENCHMARK(BM_AssignAllDirtyGroups);

// Same walk keyed on a switch flip: draining a switch dirties every group
// that sources or sinks at it (the per-group relevant-set screening) plus
// the groups its incident circuits could affect.
void BM_AssignAllSwitchDirtyWalk(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  topo::Topology topo = *mig.task.topo;
  traffic::EcmpRouter router(topo);
  router.bind_demands(mig.task.demands);
  traffic::LoadVector loads;
  loads.assign(topo.num_circuits() * 2, 0.0);
  router.assign_all(mig.task.demands, loads);

  // A switch whose drain keeps every demand routable (same screening as the
  // circuit walk above).
  topo::SwitchId flip = topo::kInvalidSwitch;
  for (const topo::Switch& s : topo.switches()) {
    if (!s.active()) continue;
    topo.set_switch_state(s.id, topo::ElementState::kDrained);
    loads.assign(topo.num_circuits() * 2, 0.0);
    const bool ok = router.assign_all(mig.task.demands, loads);
    topo.set_switch_state(s.id, topo::ElementState::kActive);
    loads.assign(topo.num_circuits() * 2, 0.0);
    router.assign_all(mig.task.demands, loads);
    if (ok) {
      flip = s.id;
      break;
    }
  }
  if (flip == topo::kInvalidSwitch) {
    state.SkipWithError("no drainable switch keeps all demands routable");
    return;
  }
  bool drained = false;
  for (auto _ : state) {
    drained = !drained;
    topo.set_switch_state(flip, drained ? topo::ElementState::kDrained
                                        : topo::ElementState::kActive);
    loads.assign(topo.num_circuits() * 2, 0.0);
    benchmark::DoNotOptimize(router.assign_all(mig.task.demands, loads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(mig.task.demands.size()));
}
BENCHMARK(BM_AssignAllSwitchDirtyWalk);

// Per-assignment scratch-reset cost when the reachable component is tiny:
// drain every circuit around one, leaving a two-switch island. The BFS
// visits two switches, so whatever the router pays beyond that is fixed
// overhead (the pre-epoch engine cleared O(|S|) dist/volume per call).
void BM_BfsEpochReset(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  topo::Topology topo = *mig.task.topo;
  const topo::Circuit island = topo.circuits().front();
  for (const topo::Circuit& c : topo.circuits()) {
    if (c.id == island.id) continue;
    if (c.a == island.a || c.b == island.a || c.a == island.b ||
        c.b == island.b) {
      topo.set_circuit_state(c.id, topo::ElementState::kDrained);
    }
  }
  traffic::Demand demand;
  demand.name = "island";
  demand.sources = {island.a};
  demand.targets = {island.b};
  demand.volume_tbps = 1.0;

  traffic::EcmpRouter router(topo);
  traffic::LoadVector loads(topo.num_circuits() * 2, 0.0);
  for (auto _ : state) {
    // Loads accumulate across iterations; the cost measured is the per-call
    // scratch reset + two-switch BFS, not the (unused) load values.
    benchmark::DoNotOptimize(router.assign(demand, loads));
  }
}
BENCHMARK(BM_BfsEpochReset);

// Full-circuit utilization scan over an assign_all load vector (the
// DemandChecker epilogue); baseline for the touched-circuit fast path.
void BM_WorstCircuitScan(benchmark::State& state) {
  migration::MigrationCase& mig = shared_case();
  traffic::EcmpRouter router(*mig.task.topo);
  traffic::LoadVector loads;
  loads.assign(mig.task.topo->num_circuits() * 2, 0.0);
  router.assign_all(mig.task.demands, loads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(traffic::max_utilization(*mig.task.topo, loads));
  }
}
BENCHMARK(BM_WorstCircuitScan);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The system benchmark library reports its own build type (often "debug"
  // for distro packages); record how *this* binary was compiled so
  // bench/bench_to_json.sh can refuse to ship debug numbers.
  benchmark::AddCustomContext("klotski_build_type",
#ifdef NDEBUG
                              "release"
#else
                              "debug"
#endif
  );
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
