// Figure 13: impact of the generalized cost function f_cost(x) = 1 +
// alpha*(x-1) (§5) on preset E under HGRID V1->V2.
//
// Paper shape: the optimal cost increases with alpha (parallel same-type
// work is no longer free), both planners stay optimal, and Klotski-A* has
// a shorter planning time than Klotski-DP for every alpha.
#include "bench_common.h"

int main() {
  using namespace klotski;
  bench::print_scale_banner("Figure 13 — cost-function alpha sweep on E");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  migration::MigrationCase mig =
      pipeline::build_experiment(pipeline::ExperimentId::kE, scale);
  migration::MigrationTask& task = mig.task;

  util::Table table({"alpha", "Optimal Cost (A*)", "DP Cost",
                     "DP time (x of A*)", "A* seconds"});
  table.set_title("Figure 13: cost-function sweep (preset E)");

  for (const double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    core::PlannerOptions options;
    options.alpha = alpha;
    const bench::PlannerRun astar = bench::run_planner(task, "astar", options);
    const bench::PlannerRun dp = bench::run_planner(task, "dp", options);

    table.add_row(
        {util::format_double(alpha, 1),
         astar.plan.found ? util::format_double(astar.plan.cost, 2) : "x",
         dp.plan.found ? util::format_double(dp.plan.cost, 2) : "x",
         bench::time_cell(dp, astar.plan.stats.wall_seconds),
         util::format_double(astar.plan.stats.wall_seconds, 4)});
  }

  table.print(std::cout);
  std::cout << "\nPaper reference: optimal cost grows with alpha; both "
               "planners agree on the optimum; A* is faster throughout.\n";
  return 0;
}
