// Table 3: configurations for each evaluated topology — switches, circuits,
// and actions for A..E (HGRID V1->V2) plus E-DMAG and E-SSW.
#include "bench_common.h"

int main() {
  using namespace klotski;
  bench::print_scale_banner("Table 3 — topology configurations");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  util::Table table({"Topology", "Switches", "Circuits", "Actions",
                     "Paper (switches/circuits/actions)"});
  table.set_title("Table 3: configurations for each topology");

  struct Row {
    pipeline::ExperimentId id;
    const char* paper;
  };
  const Row rows[] = {
      {pipeline::ExperimentId::kA, "~40 / ~80 / ~50"},
      {pipeline::ExperimentId::kB, "~100 / ~600 / ~100"},
      {pipeline::ExperimentId::kC, "~600 / ~8,000 / ~300"},
      {pipeline::ExperimentId::kD, "~1,000 / ~20,000 / ~300"},
      {pipeline::ExperimentId::kE, "~10,000 / ~100,000 / ~700"},
      {pipeline::ExperimentId::kEDmag, "~10,000 / ~100,000 / ~100"},
      {pipeline::ExperimentId::kESsw, "~10,000 / ~100,000 / ~300"},
  };

  for (const Row& row : rows) {
    migration::MigrationCase mig = pipeline::build_experiment(row.id, scale);
    const migration::MigrationTask& task = mig.task;
    table.add_row(
        {pipeline::to_string(row.id),
         util::with_commas(static_cast<long long>(
             task.topo->count_present_switches())),
         util::with_commas(static_cast<long long>(
             task.topo->count_present_circuits())),
         std::to_string(task.total_actions()), row.paper});
  }

  table.print(std::cout);
  std::cout << "\nSwitch/circuit counts are for the original (present) "
               "topology; staged V2 hardware is excluded until undrained.\n";
  return 0;
}
