// OPEX cost-model ablation (§7.2): per-action-type operator cost weights.
//
// "Different sequences of steps could have different costs in terms of
// human efficiency. Indeed, we are adding a cost model to Klotski which can
// optimize for OPEX spending." This harness plans the DMAG migration under
// several OPEX weightings and shows how the optimal sequence restructures:
// as one action type's crew cost grows, the optimum batches that type into
// fewer runs, trading extra runs of the cheap types for fewer expensive
// context switches.
#include "bench_common.h"

namespace {

// Number of runs (phases) of a given action type in a plan.
int runs_of_type(const klotski::core::Plan& plan, std::int32_t type) {
  int runs = 0;
  for (const klotski::core::Phase& phase : plan.phases()) {
    if (phase.type == type) ++runs;
  }
  return runs;
}

}  // namespace

int main() {
  using namespace klotski;
  bench::print_scale_banner("OPEX ablation — per-type crew cost weights");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  migration::MigrationCase mig =
      pipeline::build_experiment(pipeline::ExperimentId::kEDmag, scale);
  migration::MigrationTask& task = mig.task;

  util::Table table({"MA-undrain crew weight", "Optimal OPEX",
                     "Closed-form floor", "undrain-ma runs", "A* seconds"});
  table.set_title(
      "DMAG migration under OPEX weights (drain crews cost 1.0, alpha=0.1)");

  // Closed-form lower bound: each type needs at least one run, and a run of
  // length x costs w(1 + alpha(x-1)), so OPEX >= sum_t w_t (1+alpha(N_t-1)).
  const double alpha = 0.1;
  auto floor_for = [&](const std::vector<double>& weights) {
    double floor = 0.0;
    const auto counts = task.actions_per_type();
    for (std::size_t t = 0; t < counts.size(); ++t) {
      floor += weights[t] * (1.0 + alpha * (counts[t] - 1));
    }
    return floor;
  };

  bool matches_floor_everywhere = true;
  for (const double ma_weight : {1.0, 2.0, 4.0, 8.0}) {
    core::PlannerOptions options;
    options.alpha = alpha;
    // Action types: 0 = drain-fauu-eb, 1 = undrain-ma, 2 = drain-fauu-dr.
    options.type_weights = {1.0, ma_weight, 1.0};

    const bench::PlannerRun run = bench::run_planner(task, "astar", options);
    if (!run.plan.found) {
      table.add_row({util::format_double(ma_weight, 1),
                     "x (" + run.plan.failure + ")", "-", "-", "-"});
      matches_floor_everywhere = false;
      continue;
    }
    const double floor = floor_for(options.type_weights);
    if (run.plan.cost > floor + 1e-9) matches_floor_everywhere = false;
    table.add_row({util::format_double(ma_weight, 1),
                   util::format_double(run.plan.cost, 2),
                   util::format_double(floor, 2),
                   std::to_string(runs_of_type(run.plan, 1)),
                   util::format_double(run.plan.stats.wall_seconds, 4)});
  }

  table.print(std::cout);
  std::cout << "\nThe weighted planner stays optimal: on the DMAG task the "
               "single-run-per-type structure is feasible, so the optimal "
               "OPEX "
            << (matches_floor_everywhere ? "meets" : "exceeds")
            << " the closed-form floor sum_t w_t(1 + alpha(N_t - 1)); when "
               "constraints force extra runs (e.g. the Figure 11 tight "
               "configuration) the gap above the floor is exactly the extra "
               "crew dispatches the safety constraints cost.\n";
  return 0;
}
