// Table 1: migration statistics per DC for the three production migration
// types — switches, circuits, affected capacity, and duration.
//
// Duration model: one phase of a plan is one field-operation window; window
// lengths per migration type come from the paper's reported ranges (HGRID
// and SSW-forklift steps involve physical rewiring across rooms, DMAG steps
// are mostly circuit work).
#include <cmath>

#include "bench_common.h"

namespace {

struct DurationModel {
  double days_per_phase;
};

std::string duration_cell(std::size_t phases, double days_per_phase) {
  const double days = static_cast<double>(phases) * days_per_phase;
  if (days >= 30) {
    return klotski::util::format_double(days / 30.0, 1) + " month(s)";
  }
  return klotski::util::format_double(days / 7.0, 1) + " week(s)";
}

}  // namespace

int main() {
  using namespace klotski;
  bench::print_scale_banner("Table 1 — migration statistics per DC");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  util::Table table({"Migration", "Switches", "Circuits",
                     "Capacity change (Tbps)", "Duration",
                     "Paper (per DC)"});
  table.set_title("Table 1: per-DC migration statistics");

  struct Row {
    pipeline::ExperimentId id;
    const char* label;
    DurationModel duration;
    const char* paper;
  };
  const Row rows[] = {
      {pipeline::ExperimentId::kE, "HGRID", {21.0},
       "320-352 sw, 13.7k-26.8k ckt, 1.3-6.3T, 4-9 months"},
      {pipeline::ExperimentId::kESsw, "SSW Forklift", {14.0},
       "144-288 sw, 14.1k-40.3k ckt, 14-16T, 3-4 months"},
      {pipeline::ExperimentId::kEDmag, "DMAG", {2.0},
       "48-64 sw, 1.6k-5.6k ckt, 0.2-0.5T, 1-2 week(s)"},
  };

  for (const Row& row : rows) {
    migration::MigrationCase mig = pipeline::build_experiment(row.id, scale);
    migration::MigrationTask& task = mig.task;
    const int dcs = mig.region->num_dcs();

    const bench::PlannerRun astar = bench::run_planner(task, "astar");
    const std::size_t phases =
        astar.plan.found ? astar.plan.phases().size() : 0;

    // Affected capacity: net change in traffic-carrying capacity between
    // the original and target topologies (the migration's purpose is a
    // capacity upgrade; DMAG's is a routing change, so its delta is small).
    const double capacity_before = task.topo->active_capacity_tbps();
    task.target_state.restore(*task.topo);
    const double capacity_after = task.topo->active_capacity_tbps();
    task.reset_to_original();
    const double capacity_delta = std::abs(capacity_after - capacity_before);

    // Per-DC statistics (the paper reports per-DC numbers; the HGRID and
    // DMAG migrations span the whole region).
    table.add_row({row.label,
                   std::to_string(task.operated_switches() / dcs),
                   util::with_commas(task.operated_circuits() / dcs),
                   util::format_double(capacity_delta /
                                           static_cast<double>(dcs), 1),
                   astar.plan.found
                       ? duration_cell(phases, row.duration.days_per_phase)
                       : "x",
                   row.paper});
  }

  table.print(std::cout);
  std::cout << "\nNote: absolute sizes depend on the bench scale; the "
               "ordering (SSW-forklift largest capacity, DMAG smallest and "
               "shortest) is the property under test.\n";
  return 0;
}
