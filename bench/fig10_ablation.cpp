// Figure 10: impact of Klotski's design choices, on topologies A..E
// (HGRID V1->V2):
//   * Klotski w/o OB  — no operation blocks (symmetry-block granularity)
//   * Klotski w/o A*  — uniform-cost search instead of the A* priority
//   * Klotski w/o ESC — no ordering-agnostic satisfiability cache
//
// Paper shape: w/o OB fails on C..E and is 4.4-26.7x slower on small
// topologies; w/o A* is 7-1456.5x slower; w/o ESC 1.1-3.5x slower (bigger
// effect on large topologies). All variants that finish stay optimal.
#include "bench_common.h"

int main() {
  using namespace klotski;
  bench::print_scale_banner("Figure 10 — ablation of Klotski design choices");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  util::Table cost_table({"Topology", "w/o OB", "w/o A*", "w/o ESC",
                          "Klotski-A*"});
  cost_table.set_title("Figure 10(a): plan cost normalized by the optimum");
  util::Table time_table({"Topology", "w/o OB", "w/o A*", "w/o ESC",
                          "Klotski-A*", "A* seconds"});
  time_table.set_title(
      "Figure 10(b): planning time normalized by Klotski-A* (x)");

  for (const pipeline::ExperimentId id :
       pipeline::scalability_experiments()) {
    const auto preset = static_cast<topo::PresetId>(id);
    migration::MigrationCase mig = pipeline::build_experiment(id, scale);
    migration::MigrationTask& task = mig.task;

    const bench::PlannerRun astar = bench::run_planner(task, "astar");

    core::PlannerOptions no_heuristic;
    no_heuristic.use_astar_heuristic = false;
    const bench::PlannerRun no_astar =
        bench::run_planner(task, "astar", no_heuristic);

    core::PlannerOptions no_cache;
    no_cache.use_satisfiability_cache = false;
    const bench::PlannerRun no_esc =
        bench::run_planner(task, "astar", no_cache);

    // w/o OB: rebuild the task at symmetry-block granularity.
    migration::HgridMigrationParams fine = pipeline::hgrid_params_for(
        preset, scale);
    fine.policy.use_operation_blocks = false;
    migration::MigrationCase fine_mig = migration::build_hgrid_migration(
        topo::preset_params(preset, scale), fine);
    const bench::PlannerRun no_ob =
        bench::run_planner(fine_mig.task, "astar");

    const double optimal = astar.plan.found ? astar.plan.cost : 0.0;
    const double base = astar.plan.stats.wall_seconds;

    // w/o OB plans a finer task: compare raw cost against the default
    // task's optimum (finer blocks can genuinely reach a lower cost).
    cost_table.add_row({pipeline::to_string(id),
                        bench::cost_cell(no_ob, optimal),
                        bench::cost_cell(no_astar, optimal),
                        bench::cost_cell(no_esc, optimal),
                        bench::cost_cell(astar, optimal)});
    time_table.add_row({pipeline::to_string(id),
                        bench::time_cell(no_ob, base),
                        bench::time_cell(no_astar, base),
                        bench::time_cell(no_esc, base),
                        bench::time_cell(astar, base),
                        util::format_double(base, 4)});
  }

  cost_table.print(std::cout);
  std::cout << "\n";
  time_table.print(std::cout);
  std::cout << "\nPaper reference: w/o OB fails (x) on C-E within the "
               "deadline; w/o A* 7-1456.5x; w/o ESC 1.1-3.5x.\n";
  return 0;
}
