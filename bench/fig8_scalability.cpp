// Figure 8: optimality and planning time of MRC, Janus, Klotski-DP and
// Klotski-A* on topologies A..E under the HGRID V1->V2 migration.
//
// Paper shape: all planners except MRC find the optimal cost; MRC is
// 7.1-262.6x and Janus 8.4-380.7x slower than Klotski-A*, Klotski-DP
// 1.7-3.8x slower.
#include "bench_common.h"

int main() {
  using namespace klotski;
  bench::print_scale_banner("Figure 8 — scalability over topologies A..E");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  util::Table cost_table(
      {"Topology", "Actions", "MRC", "Janus", "Klotski-DP", "Klotski-A*"});
  cost_table.set_title("Figure 8(a): plan cost normalized by the optimum");
  util::Table time_table(
      {"Topology", "MRC", "Janus", "Klotski-DP", "Klotski-A*", "A* seconds"});
  time_table.set_title(
      "Figure 8(b): planning time normalized by Klotski-A* (x)");

  for (const pipeline::ExperimentId id :
       pipeline::scalability_experiments()) {
    migration::MigrationCase mig = pipeline::build_experiment(id, scale);
    migration::MigrationTask& task = mig.task;

    const bench::PlannerRun astar = bench::run_planner(task, "astar");
    const bench::PlannerRun dp = bench::run_planner(task, "dp");
    const bench::PlannerRun janus = bench::run_planner(task, "janus");
    const bench::PlannerRun mrc = bench::run_planner(task, "mrc");

    const double optimal = astar.plan.found ? astar.plan.cost : 0.0;
    const double base = astar.plan.stats.wall_seconds;

    cost_table.add_row({pipeline::to_string(id),
                        std::to_string(task.total_actions()),
                        bench::cost_cell(mrc, optimal),
                        bench::cost_cell(janus, optimal),
                        bench::cost_cell(dp, optimal),
                        bench::cost_cell(astar, optimal)});
    time_table.add_row({pipeline::to_string(id), bench::time_cell(mrc, base),
                        bench::time_cell(janus, base),
                        bench::time_cell(dp, base),
                        bench::time_cell(astar, base),
                        util::format_double(base, 4)});
  }

  cost_table.print(std::cout);
  std::cout << "\n";
  time_table.print(std::cout);
  std::cout << "\nPaper reference: MRC 7.1-262.6x, Janus 8.4-380.7x, "
               "Klotski-DP 1.7-3.8x slower than Klotski-A*; only MRC is "
               "suboptimal.\n";
  return 0;
}
