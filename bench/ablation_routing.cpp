// Routing ablation (§7.1): plain ECMP vs capacity-weighted ECMP (WCMP).
//
// ECMP is capacity-blind: a thin legacy circuit receives the same share as
// a fat modern one — the mechanism behind the §7.1 packet-loss outage
// ("the old generation could not provide sufficient capacity even with the
// minimum unit of capacity loss"). Operators work around it with temporary
// weighted routing configurations; this ablation quantifies what that buys
// the planner.
//
// Workload: the DMAG migration with a progressively thinner legacy
// FAUU->DR shortcut. Mid-migration, egress splits across the remaining
// direct EB circuits and the thin DR circuits; under plain ECMP the DR
// circuits take a full equal share and saturate early, capping how many EB
// groups can drain per step. WCMP sends the DR path only its fair
// capacity-weighted share, so bigger batches stay safe and the optimal
// cost drops.
#include "bench_common.h"

#include "klotski/core/state_evaluator.h"

namespace {

// Largest k such that draining the first k FAUU-EB groups in one step is
// safe — the "how much capacity can one operation move" limit that the
// routing policy directly controls.
int max_first_drain_batch(klotski::migration::MigrationTask& task,
                          klotski::traffic::SplitMode mode) {
  using namespace klotski;
  pipeline::CheckerConfig config;
  config.routing = mode;
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(task, config);
  core::StateEvaluator evaluator(task, *bundle.checker, true);
  core::CountVector counts(task.blocks.size(), 0);
  int best = 0;
  for (std::int32_t k = 1;
       k <= static_cast<std::int32_t>(task.blocks[0].size()); ++k) {
    counts[0] = k;
    if (!evaluator.feasible(counts)) break;
    best = k;
  }
  task.reset_to_original();
  return best;
}

}  // namespace

int main() {
  using namespace klotski;
  bench::print_scale_banner(
      "Routing ablation — ECMP vs WCMP on the DMAG migration");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  util::Table table({"DR/EB capacity ratio", "ECMP cost", "WCMP cost",
                     "ECMP max 1st batch", "WCMP max 1st batch",
                     "ECMP A* seconds", "WCMP A* seconds"});
  table.set_title(
      "Optimal DMAG plan cost under the two routing policies (preset C)");

  for (const double ratio : {1.0, 0.5, 0.25, 0.125, 0.0625}) {
    topo::RegionParams region =
        topo::preset_params(topo::PresetId::kC, scale);
    // Thin the whole legacy DR path (access and trunk circuits) so both
    // hops of a WCMP split see the reduced capacity; WCMP is a local
    // per-hop policy, not global traffic engineering.
    region.cap_fauu_dr = region.cap_fauu_eb * ratio;
    region.cap_dr_ebb = region.cap_eb_ebb * ratio;

    migration::DmagMigrationParams params = pipeline::dmag_params_for(scale);
    params.demand.egress_frac = 0.30;
    params.demand.ingress_frac = 0.30;
    migration::MigrationCase mig =
        migration::build_dmag_migration(region, params);
    migration::MigrationTask& task = mig.task;

    pipeline::CheckerConfig ecmp;
    ecmp.routing = traffic::SplitMode::kEqualSplit;
    const bench::PlannerRun ecmp_run =
        bench::run_planner(task, "astar", {}, ecmp);

    pipeline::CheckerConfig wcmp;
    wcmp.routing = traffic::SplitMode::kCapacityWeighted;
    const bench::PlannerRun wcmp_run =
        bench::run_planner(task, "astar", {}, wcmp);

    table.add_row(
        {util::format_double(ratio, 4),
         ecmp_run.plan.found ? util::format_double(ecmp_run.plan.cost, 2)
                             : "x (" + ecmp_run.plan.failure + ")",
         wcmp_run.plan.found ? util::format_double(wcmp_run.plan.cost, 2)
                             : "x (" + wcmp_run.plan.failure + ")",
         std::to_string(max_first_drain_batch(
             task, traffic::SplitMode::kEqualSplit)),
         std::to_string(max_first_drain_batch(
             task, traffic::SplitMode::kCapacityWeighted)),
         util::format_double(ecmp_run.plan.stats.wall_seconds, 4),
         util::format_double(wcmp_run.plan.stats.wall_seconds, 4)});
  }

  table.print(std::cout);
  std::cout << "\nExpectation: WCMP cost <= ECMP cost and its safe batch is "
               "typically at least as large, with the gap opening as the legacy DR "
               "path thins. Under plain ECMP a thin enough DR path receives "
               "a full equal share and saturates — the §7.1 outage, seen by "
               "the planner ahead of time as a shrinking safe batch (and "
               "eventually an unplannable migration).\n";
  return 0;
}
