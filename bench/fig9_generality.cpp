// Figure 9: generality over migration types — E (HGRID), E-DMAG, E-SSW.
//
// Paper shape: Klotski-A* is up to 7.1x faster than MRC, 8.4x than Janus,
// 2.1x than Klotski-DP; MRC and Janus cannot plan E-DMAG (topology-changing
// migration), marked with a cross.
#include "bench_common.h"

int main() {
  using namespace klotski;
  bench::print_scale_banner(
      "Figure 9 — generality over migration types (E, E-DMAG, E-SSW)");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  util::Table cost_table(
      {"Migration", "Actions", "MRC", "Janus", "Klotski-DP", "Klotski-A*"});
  cost_table.set_title("Figure 9(a): plan cost normalized by the optimum");
  util::Table time_table(
      {"Migration", "MRC", "Janus", "Klotski-DP", "Klotski-A*",
       "A* seconds"});
  time_table.set_title(
      "Figure 9(b): planning time normalized by Klotski-A* (x)");

  for (const pipeline::ExperimentId id : pipeline::generality_experiments()) {
    migration::MigrationCase mig = pipeline::build_experiment(id, scale);
    migration::MigrationTask& task = mig.task;

    const bench::PlannerRun astar = bench::run_planner(task, "astar");
    const bench::PlannerRun dp = bench::run_planner(task, "dp");
    const bench::PlannerRun janus = bench::run_planner(task, "janus");
    const bench::PlannerRun mrc = bench::run_planner(task, "mrc");

    const double optimal = astar.plan.found ? astar.plan.cost : 0.0;
    const double base = astar.plan.stats.wall_seconds;

    cost_table.add_row({pipeline::to_string(id),
                        std::to_string(task.total_actions()),
                        bench::cost_cell(mrc, optimal),
                        bench::cost_cell(janus, optimal),
                        bench::cost_cell(dp, optimal),
                        bench::cost_cell(astar, optimal)});
    time_table.add_row({pipeline::to_string(id), bench::time_cell(mrc, base),
                        bench::time_cell(janus, base),
                        bench::time_cell(dp, base),
                        bench::time_cell(astar, base),
                        util::format_double(base, 4)});
  }

  cost_table.print(std::cout);
  std::cout << "\n";
  time_table.print(std::cout);
  std::cout << "\nPaper reference: MRC and Janus cannot plan E-DMAG (cross); "
               "Klotski plans all three migration types.\n";
  return 0;
}
