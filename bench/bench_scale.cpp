// Planner scaling sweep over presets A..E: states/sec, peak RSS, plan
// length, and (for budgeted rows) the beam-search optimality gap.
//
// Two modes per preset:
//  * "plan" — the production configuration: standard checker stack, A*
//    heuristic, default alpha. Check cost dominates here, so this row shows
//    end-to-end planning throughput.
//  * "core" — planner-core-dominant: empty checker, uniform action cost
//    (alpha=1) and no heuristic, and finer operation blocks. Every visited
//    state costs only search bookkeeping, so this row isolates the SoA
//    arena / dedup / open-list machinery the memory budget governs.
//
// Each row runs in a forked child whose peak-RSS counter is reset first
// (echo 5 > /proc/self/clear_refs), so VmHWM afterwards is that row's own
// high-water mark rather than the sweep's. The child reports its row as JSON
// over a pipe; the parent prints the table and optionally writes a
// "klotski.bench_scale.v1" document for BENCH_core.json.
//
// Usage:
//   bench_scale [--mode=all|plan|core] [--presets=ABCDE] [--scale=full]
//               [--families=clos,flat,reconf] [--json=out.json]
//               [--budget-mb=48] [--deadline=600]
//               [--plan-block-scale=4] [--core-block-scale=16]
//
// Non-Clos families run the same selected presets; their rows are keyed
// "flat-B" / "reconf-B" in the preset column so bench_compare.py gates them
// independently of the Clos rows.
//
// The largest selected preset additionally gets a budgeted core row
// (--budget-mb, 0 disables) whose provenance and optimality gap against the
// unbudgeted core row are recorded.
//
// Unbudgeted core rows also re-run the pre-arena reference planner
// (tests/core/astar_reference.h) in the same child and record the
// speedup_vs_reference ratio — a same-binary, same-machine A/B that stays
// meaningful when absolute states/sec drift between capture machines.
// Disable with --reference=0.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "klotski/constraints/composite.h"
#include "klotski/core/astar_planner.h"
#include "klotski/json/json.h"
#include "klotski/migration/family_tasks.h"
#include "klotski/migration/task_builder.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/topo/presets.h"
#include "klotski/util/flags.h"
#include "klotski/util/string_util.h"
#include "klotski/util/table.h"
#include "../tests/core/astar_reference.h"

namespace {

using namespace klotski;

struct RowSpec {
  topo::PresetId preset = topo::PresetId::kA;
  std::string mode;  // "plan" or "core"
  double block_scale = 1.0;
  double budget_mb = 0.0;
  double deadline_seconds = 0.0;
  topo::PresetScale scale = topo::PresetScale::kFull;
  bool reference = false;
  topo::TopologyFamily family = topo::TopologyFamily::kClos;
};

/// Row label for the "preset" column/JSON key: Clos keeps the bare letter
/// (stable against pre-family baselines); other families are prefixed.
std::string preset_label(const RowSpec& spec) {
  if (spec.family == topo::TopologyFamily::kClos) {
    return topo::to_string(spec.preset);
  }
  return topo::to_string(spec.family) + "-" + topo::to_string(spec.preset);
}

/// Resets the process peak-RSS counter so VmHWM measures only what follows.
void reset_peak_rss() {
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
}

double peak_rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      long long kb = 0;
      std::sscanf(line.c_str(), "VmHWM: %lld kB", &kb);
      return static_cast<double>(kb) / 1024.0;
    }
  }
  return 0.0;
}

/// Runs one sweep row in-process and returns its JSON row object.
json::Value run_row(const RowSpec& spec) {
  reset_peak_rss();

  migration::MigrationCase mig;
  switch (spec.family) {
    case topo::TopologyFamily::kClos: {
      migration::HgridMigrationParams params;
      params.policy.block_scale = spec.block_scale;
      mig = migration::build_hgrid_migration(
          topo::preset_params(spec.preset, spec.scale), params);
      break;
    }
    case topo::TopologyFamily::kFlat: {
      migration::FlatMigrationParams params =
          pipeline::flat_migration_params_for(spec.preset, spec.scale);
      params.policy.block_scale = spec.block_scale;
      mig = migration::build_flat_migration(
          topo::flat_params(spec.preset, spec.scale), params);
      break;
    }
    case topo::TopologyFamily::kReconf: {
      migration::ReconfMigrationParams params =
          pipeline::reconf_migration_params_for(spec.preset, spec.scale);
      params.policy.block_scale = spec.block_scale;
      mig = migration::build_reconf_migration(
          topo::reconf_params(spec.preset, spec.scale), params);
      break;
    }
  }
  migration::MigrationTask& task = mig.task;

  core::PlannerOptions options;
  options.deadline_seconds = spec.deadline_seconds;
  options.mem_budget_mb = spec.budget_mb;

  core::Plan plan;
  if (spec.mode == "core") {
    options.use_astar_heuristic = false;
    options.alpha = 1.0;
    constraints::CompositeChecker empty_checker;
    plan = core::AStarPlanner().plan(task, empty_checker, options);
  } else {
    pipeline::CheckerBundle bundle = pipeline::make_standard_checker(task, {});
    plan = core::AStarPlanner().plan(task, *bundle.checker, options);
  }

  json::Object row;
  row["preset"] = preset_label(spec);
  row["mode"] = spec.mode;
  row["block_scale"] = spec.block_scale;
  row["actions"] = static_cast<std::int64_t>(task.total_actions());
  row["found"] = plan.found;
  if (!plan.found) row["failure"] = plan.failure;
  row["cost"] = plan.cost;
  row["plan_length"] = static_cast<std::int64_t>(plan.actions.size());
  row["visited_states"] =
      static_cast<std::int64_t>(plan.stats.visited_states);
  row["generated_states"] =
      static_cast<std::int64_t>(plan.stats.generated_states);
  row["wall_seconds"] = plan.stats.wall_seconds;
  const double states_per_sec =
      plan.stats.wall_seconds > 0.0
          ? static_cast<double>(plan.stats.visited_states) /
                plan.stats.wall_seconds
          : 0.0;
  row["states_per_sec"] = states_per_sec;
  // Capture RSS before the optional reference re-run so the row's
  // high-water mark reflects only the arena-based planner.
  row["peak_rss_mb"] = peak_rss_mb();
  if (spec.reference && spec.mode == "core" && spec.budget_mb <= 0.0) {
    constraints::CompositeChecker empty_checker;
    const core::Plan ref =
        testing::reference_astar_plan(task, empty_checker, options);
    const double ref_sps =
        ref.stats.wall_seconds > 0.0
            ? static_cast<double>(ref.stats.visited_states) /
                  ref.stats.wall_seconds
            : 0.0;
    row["reference_states_per_sec"] = ref_sps;
    if (ref_sps > 0.0) {
      row["speedup_vs_reference"] = states_per_sec / ref_sps;
    }
  }
  if (spec.budget_mb > 0.0) {
    row["budget_mb"] = spec.budget_mb;
    row["beam_degraded"] = plan.provenance.beam_degraded;
    row["evicted_states"] =
        static_cast<std::int64_t>(plan.provenance.evicted_states);
    row["compactions"] =
        static_cast<std::int64_t>(plan.provenance.compactions);
    row["peak_tracked_mb"] =
        static_cast<double>(plan.provenance.peak_tracked_bytes) /
        (1024.0 * 1024.0);
  }
  return json::Value(std::move(row));
}

/// Forks a child for the row so each measurement gets its own address
/// space: the parent's allocations never inflate a row's VmHWM and one
/// row's arena cannot warm the next row's allocator.
std::optional<json::Value> run_row_forked(const RowSpec& spec) {
  int fds[2];
  if (pipe(fds) != 0) return std::nullopt;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return std::nullopt;
  }
  if (pid == 0) {
    close(fds[0]);
    const std::string out = json::dump(run_row(spec));
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = write(fds[1], out.data() + off, out.size() - off);
      if (n <= 0) _exit(3);
      off += static_cast<std::size_t>(n);
    }
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  std::string payload;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) {
    payload.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || payload.empty()) {
    std::cerr << "bench_scale: row " << preset_label(spec) << "/"
              << spec.mode << " failed (status " << status << ")\n";
    return std::nullopt;
  }
  return json::parse(payload);
}

std::string cell(const json::Value& row, const char* key, int digits = 0) {
  return util::format_double(row.get_double(key, 0.0), digits);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  for (const std::string& name : flags.names()) {
    if (name != "mode" && name != "presets" && name != "scale" &&
        name != "families" && name != "json" && name != "budget-mb" &&
        name != "deadline" && name != "plan-block-scale" &&
        name != "core-block-scale" && name != "reference") {
      std::cerr << "bench_scale: unknown flag --" << name << "\n";
      return 2;
    }
  }

  const std::string mode = flags.get_string("mode", "all");
  const std::string presets = flags.get_string("presets", "ABCDE");
  const std::string scale_name = flags.get_string("scale", "full");
  const std::string json_out = flags.get_string("json", "");
  const double budget_mb = flags.get_double("budget-mb", 48.0);
  const double deadline = flags.get_double("deadline", 600.0);
  const double plan_bs = flags.get_double("plan-block-scale", 4.0);
  const double core_bs = flags.get_double("core-block-scale", 16.0);
  const bool reference = flags.get_bool("reference", true);
  const topo::PresetScale scale = scale_name == "reduced"
                                      ? topo::PresetScale::kReduced
                                      : topo::PresetScale::kFull;

  std::vector<topo::TopologyFamily> families;
  {
    const std::string families_arg = flags.get_string("families", "clos");
    for (const std::string& token : util::split(families_arg, ',')) {
      try {
        families.push_back(
            topo::family_from_string(std::string(util::trim(token))));
      } catch (const std::invalid_argument&) {
        std::cerr << "bench_scale: unknown family '" << token
                  << "' (want clos|flat|reconf)\n";
        return 2;
      }
    }
  }

  std::vector<RowSpec> specs;
  topo::PresetId largest = topo::PresetId::kA;
  bool any = false;
  for (const topo::TopologyFamily family : families) {
    for (const topo::PresetId id : topo::all_presets()) {
      if (presets.find(topo::to_string(id)) == std::string::npos) continue;
      if (family == topo::TopologyFamily::kClos) largest = id;
      any = true;
      if (mode == "all" || mode == "plan") {
        specs.push_back(
            {id, "plan", plan_bs, 0.0, deadline, scale, false, family});
      }
      if (mode == "all" || mode == "core") {
        // The reference A/B re-run only accompanies Clos rows: one slow
        // pre-arena pass per sweep is plenty for the same-machine ratio.
        specs.push_back({id, "core", core_bs, 0.0, deadline, scale,
                         reference && family == topo::TopologyFamily::kClos,
                         family});
      }
    }
  }
  if (!any || (mode != "all" && mode != "plan" && mode != "core")) {
    std::cerr << "usage: bench_scale [--mode=all|plan|core] "
                 "[--presets=ABCDE] [--scale=full|reduced] "
                 "[--families=clos,flat,reconf] [--json=out.json] "
                 "[--budget-mb=48] [--deadline=600] [--reference=0|1]\n";
    return 2;
  }
  // Budgeted core row on the largest selected Clos preset: exercises
  // eviction at the scale where it matters and records the degradation
  // provenance.
  const bool have_clos =
      std::find(families.begin(), families.end(),
                topo::TopologyFamily::kClos) != families.end();
  if (budget_mb > 0.0 && have_clos && (mode == "all" || mode == "core")) {
    specs.push_back({largest, "core", core_bs, budget_mb, deadline, scale,
                     false, topo::TopologyFamily::kClos});
  }

  util::Table table({"Preset", "Mode", "Actions", "Found", "Cost", "Visited",
                     "States/s", "Seconds", "PeakRSS(MB)", "Budget(MB)",
                     "Beam", "vsRef"});
  table.set_title("Planner scaling sweep (scale: " + scale_name + ")");

  json::Array rows;
  double core_cost_of_largest = -1.0;
  for (const RowSpec& spec : specs) {
    std::optional<json::Value> row = run_row_forked(spec);
    if (!row.has_value()) continue;
    if (spec.mode == "core" && spec.preset == largest &&
        spec.family == topo::TopologyFamily::kClos) {
      if (spec.budget_mb <= 0.0) {
        core_cost_of_largest = row->get_double("cost", -1.0);
      } else if (core_cost_of_largest > 0.0 &&
                 row->get_bool("found", false)) {
        // Beam degradation may trade optimality for memory; record the gap
        // against the unbudgeted run of the same configuration.
        row->as_object()["optimality_gap"] =
            row->get_double("cost", 0.0) / core_cost_of_largest - 1.0;
      }
    }
    table.add_row(
        {row->get_string("preset", "?"), row->get_string("mode", "?"),
         cell(*row, "actions"),
         row->get_bool("found", false) ? "yes" : "NO",
         cell(*row, "cost", 1), cell(*row, "visited_states"),
         cell(*row, "states_per_sec"), cell(*row, "wall_seconds", 3),
         cell(*row, "peak_rss_mb", 1),
         spec.budget_mb > 0.0 ? cell(*row, "budget_mb") : "-",
         spec.budget_mb > 0.0
             ? (row->get_bool("beam_degraded", false) ? "degraded" : "no")
             : "-",
         row->as_object().contains("speedup_vs_reference")
             ? util::format_double(
                   row->get_double("speedup_vs_reference", 0.0), 2) + "x"
             : "-"});
    rows.push_back(std::move(*row));
  }

  table.print(std::cout);

  if (!json_out.empty()) {
    json::Object doc;
    doc["schema"] = "klotski.bench_scale.v1";
    doc["scale"] = scale_name;
    doc["rows"] = json::Value(std::move(rows));
    std::ofstream out(json_out);
    out << json::dump(json::Value(std::move(doc)), 2) << "\n";
    if (!out) {
      std::cerr << "bench_scale: cannot write " << json_out << "\n";
      return 1;
    }
    std::cout << "\nwrote " << json_out << "\n";
  }
  return 0;
}
