// Shared helpers for the table/figure harnesses.
//
// Every harness prints the paper-style rows for its table or figure. By
// default the reduced-scale experiment set is used so the whole suite
// (including the slow MRC/Janus baselines, which the paper capped at 24
// hours) completes in minutes; set KLOTSKI_BENCH_FULL=1 for paper-scale
// topologies and KLOTSKI_BENCH_DEADLINE=<seconds> to change the per-planner
// budget.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/util/string_util.h"
#include "klotski/util/table.h"

namespace klotski::bench {

inline double bench_deadline_seconds() {
  if (const char* raw = std::getenv("KLOTSKI_BENCH_DEADLINE")) {
    const double v = std::atof(raw);
    if (v > 0) return v;
  }
  // Reduced runs finish in well under this; full runs get a generous cap
  // standing in for the paper's 24 h budget.
  return pipeline::bench_scale_from_env() == topo::PresetScale::kFull
             ? 3600.0
             : 120.0;
}

struct PlannerRun {
  std::string planner;
  core::Plan plan;
  bool audited_ok = false;
};

/// Runs one planner on a task with a fresh checker stack, then audits.
inline PlannerRun run_planner(migration::MigrationTask& task,
                              const std::string& planner_name,
                              core::PlannerOptions options = {},
                              pipeline::CheckerConfig checker_config = {}) {
  PlannerRun run;
  run.planner = planner_name;
  if (options.deadline_seconds <= 0) {
    options.deadline_seconds = bench_deadline_seconds();
  }
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(task, checker_config);
  auto planner = pipeline::make_planner(planner_name);
  run.plan = planner->plan(task, *bundle.checker, options);
  if (run.plan.found) {
    pipeline::CheckerBundle audit_bundle =
        pipeline::make_standard_checker(task, checker_config);
    run.audited_ok =
        pipeline::audit_plan(task, *audit_bundle.checker, run.plan).ok;
  }
  return run;
}

/// "x" marks a planner that cannot plan the task (paper's cross).
inline std::string cost_cell(const PlannerRun& run, double optimal_cost) {
  if (!run.plan.found) return "x (" + run.plan.failure + ")";
  if (optimal_cost <= 0) return util::format_double(run.plan.cost, 2);
  return util::format_double(run.plan.cost / optimal_cost, 2);
}

inline std::string time_cell(const PlannerRun& run, double base_seconds) {
  if (!run.plan.found) return "x";
  if (base_seconds <= 0) {
    return util::format_double(run.plan.stats.wall_seconds, 4) + "s";
  }
  return util::format_double(run.plan.stats.wall_seconds / base_seconds, 2) +
         "x";
}

inline void print_scale_banner(const char* what) {
  const bool full =
      pipeline::bench_scale_from_env() == topo::PresetScale::kFull;
  std::cout << "# " << what << " — scale: " << (full ? "FULL (paper-scale)"
                                                     : "reduced")
            << (full ? ""
                     : "  [set KLOTSKI_BENCH_FULL=1 for paper-scale runs]")
            << "\n\n";
}

}  // namespace klotski::bench
