// Planner-vs-baselines across topology families — Clos HGRID, flat fabric,
// reconfigurable mesh (DESIGN.md §12).
//
// The Clos rows reproduce the familiar Figure 7/9 shape; the point of the
// flat and reconf rows is that the baselines' structural assumptions break
// on irregular graphs. Janus batches by symmetry classes, and a seeded flat
// fabric has almost no symmetry left, so its batches collapse toward
// one-action phases (cost blows up) when they stay feasible at all. MRC's
// greedy max-residual-capacity ordering has no lookahead over the
// port-slack coupling of the reconf rewire and deadlocks. Klotski plans
// every family; brute force (<= 16 actions) anchors optimality on the tiny
// preset-A tasks.
#include "bench_common.h"

int main() {
  using namespace klotski;
  bench::print_scale_banner(
      "Family baselines — planner vs baselines per topology family");

  util::Table cost_table({"Case", "Actions", "Brute", "MRC", "Janus",
                          "Klotski-DP", "Klotski-A*"});
  cost_table.set_title(
      "Family baselines (a): plan cost normalized by the best known");
  util::Table time_table(
      {"Case", "MRC", "Janus", "Klotski-DP", "Klotski-A*", "A* seconds"});
  time_table.set_title(
      "Family baselines (b): planning time normalized by Klotski-A* (x)");

  const topo::PresetScale scale = pipeline::bench_scale_from_env();
  for (const topo::TopologyFamily family : topo::all_families()) {
    for (const topo::PresetId preset : {topo::PresetId::kA,
                                        topo::PresetId::kB}) {
      migration::MigrationCase mig =
          pipeline::build_family_experiment(family, preset, scale);
      migration::MigrationTask& task = mig.task;
      const std::string label =
          topo::to_string(family) + "-" + topo::to_string(preset);

      const bench::PlannerRun astar = bench::run_planner(task, "astar");
      const bench::PlannerRun dp = bench::run_planner(task, "dp");
      const bench::PlannerRun janus = bench::run_planner(task, "janus");
      const bench::PlannerRun mrc = bench::run_planner(task, "mrc");
      const bench::PlannerRun brute = bench::run_planner(task, "brute");

      // Brute is exhaustive-optimal where it runs; A* is the anchor
      // elsewhere.
      const double best = brute.plan.found ? brute.plan.cost
                          : astar.plan.found ? astar.plan.cost
                                             : 0.0;
      const double base = astar.plan.found ? astar.plan.stats.wall_seconds
                                           : 0.0;

      cost_table.add_row({label, std::to_string(task.total_actions()),
                          bench::cost_cell(brute, best),
                          bench::cost_cell(mrc, best),
                          bench::cost_cell(janus, best),
                          bench::cost_cell(dp, best),
                          bench::cost_cell(astar, best)});
      time_table.add_row({label, bench::time_cell(mrc, base),
                          bench::time_cell(janus, base),
                          bench::time_cell(dp, base),
                          bench::time_cell(astar, base),
                          util::format_double(base, 4)});
    }
  }

  cost_table.print(std::cout);
  std::cout << "\n";
  time_table.print(std::cout);
  std::cout << "\nPaper shape: the baselines' structural assumptions (Clos "
               "symmetry, residual-capacity greedy) degrade or fail outside "
               "Clos; Klotski plans every family.\n";
  return 0;
}
