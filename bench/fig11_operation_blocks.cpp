// Figure 11: impact of the operation-block organization policy.
//
// The block_scale multiplier changes the number of operation blocks
// (0.25x merges whole grids together; 4x splits groups into fine chunks).
// Paper shape: the minimum cost is negatively related to the number of
// operation blocks (0.25x E has no feasible sequence at all — too much
// capacity moves at once); more blocks increase planning time; Klotski-A*
// is 1.1-1.8x faster than Klotski-DP throughout.
#include "bench_common.h"

int main() {
  using namespace klotski;
  bench::print_scale_banner("Figure 11 — operation-block count sweep on E");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  util::Table table({"# Operation Blocks", "Actions", "Min Cost",
                     "DP time (x of A*)", "A* seconds"});
  table.set_title("Figure 11: block-count multiplier sweep (preset E, HGRID)");

  for (const double block_scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    migration::HgridMigrationParams params =
        pipeline::hgrid_params_for(topo::PresetId::kE, scale);
    // A capacity-neutral refresh (as many V2 grids as V1) with elevated
    // demand: the SSW port budget then admits no staged-hardware cushion,
    // so the amount of capacity one operation block moves is exactly what
    // decides feasibility — the trade-off Figure 11 studies.
    params.v2_grids =
        topo::preset_params(topo::PresetId::kE, scale).grids;
    params.demand.egress_frac = 0.30;
    params.demand.ingress_frac = 0.30;
    if (scale == topo::PresetScale::kReduced) {
      params.fadu_chunks_per_grid_dc = 2;
      params.fauu_chunks_per_grid = 2;
    }
    params.policy.block_scale = block_scale;
    migration::MigrationCase mig = migration::build_hgrid_migration(
        topo::preset_params(topo::PresetId::kE, scale), params);
    migration::MigrationTask& task = mig.task;

    const bench::PlannerRun astar = bench::run_planner(task, "astar");
    const bench::PlannerRun dp = bench::run_planner(task, "dp");

    table.add_row(
        {util::format_double(block_scale, 2) + "x",
         std::to_string(task.total_actions()),
         astar.plan.found ? util::format_double(astar.plan.cost, 2)
                          : "x (" + astar.plan.failure + ")",
         bench::time_cell(dp, astar.plan.stats.wall_seconds),
         util::format_double(astar.plan.stats.wall_seconds, 4)});
  }

  table.print(std::cout);
  std::cout << "\nPaper reference: cost decreases with more operation "
               "blocks; 0.25x E is infeasible; A* 1.1-1.8x faster than "
               "DP.\n";
  return 0;
}
