#!/usr/bin/env bash
# Runs the micro_core google-benchmark suite and writes its results as JSON
# (BENCH_core.json by default) for regression tracking.
#
# Benchmark JSON is only meaningful from an optimized binary, so this script
# owns its build: it configures and builds a Release (-O2 -DNDEBUG) tree in
# the given build dir (creating it when missing) and then verifies the
# binary's own klotski_build_type context marker before emitting JSON — a
# debug binary is refused, never silently recorded. (The system
# libbenchmark's library_build_type reflects how *Debian* built the library,
# not how we built micro_core, hence the custom marker.)
#
# Usage: bench/bench_to_json.sh [build-dir] [output.json]
#   build-dir defaults to build-release; it is configured with
#   CMAKE_BUILD_TYPE=Release if it has no cache yet.
set -euo pipefail

BUILD_DIR="${1:-build-release}"
OUT="${2:-BENCH_core.json}"
BIN="${BUILD_DIR}/bench/micro_core"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -S "${SRC_DIR}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
fi

BUILD_TYPE="$(grep -E '^CMAKE_BUILD_TYPE:' "${BUILD_DIR}/CMakeCache.txt" |
  cut -d= -f2)"
case "${BUILD_TYPE}" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *)
    echo "error: ${BUILD_DIR} is configured as '${BUILD_TYPE:-<empty>}'," >&2
    echo "       refusing to record benchmark numbers from a non-Release" >&2
    echo "       build. Use a dedicated dir: bench/bench_to_json.sh build-release" >&2
    exit 1
    ;;
esac

cmake --build "${BUILD_DIR}" --target micro_core -j"$(nproc)"

TMP="$(mktemp "${OUT}.XXXXXX")"
trap 'rm -f "${TMP}"' EXIT

"${BIN}" \
  --benchmark_min_time=0.2 \
  --benchmark_out="${TMP}" \
  --benchmark_out_format=json

# Belt and braces: the binary stamps its own NDEBUG state into the context.
if ! grep -q '"klotski_build_type": "release"' "${TMP}"; then
  echo "error: ${BIN} reports a debug klotski_build_type marker;" >&2
  echo "       discarding its numbers instead of writing ${OUT}" >&2
  exit 1
fi

mv "${TMP}" "${OUT}"
trap - EXIT
echo "wrote ${OUT}"
