#!/usr/bin/env bash
# Runs the micro_core google-benchmark suite plus the bench_scale preset
# sweep and the bench_replan warm-start sweep, and writes the combined
# results as JSON (BENCH_core.json by default) for regression tracking. The
# bench_scale rows land under a top-level "bench_scale" key (schema
# klotski.bench_scale.v1) carrying states/sec and peak-RSS per preset; the
# bench_replan rows land under "bench_replan" (klotski.bench_replan.v1)
# carrying warm vs scratch replan latency. scripts/bench_compare.py gates
# both alongside cpu_time.
#
# KLOTSKI_BENCH_SCALE_ARGS overrides the sweep arguments (default: core+plan
# modes over presets A..E in every topology family — clos, flat, reconf —
# with a 48 MB budgeted row on Clos E; family rows are keyed "flat-B/core"
# etc. so bench_compare.py gates them independently); set it to e.g.
# "--mode=core --presets=ABC --budget-mb=0" for a quicker capture.
# KLOTSKI_BENCH_REPLAN_ARGS likewise overrides the bench_replan arguments
# (default: the acceptance configuration — preset B, 1000 seeds).
#
# Benchmark JSON is only meaningful from an optimized binary, so this script
# owns its build: it configures and builds a Release (-O2 -DNDEBUG) tree in
# the given build dir (creating it when missing) and then verifies the
# binary's own klotski_build_type context marker before emitting JSON — a
# debug binary is refused, never silently recorded. (The system
# libbenchmark's library_build_type reflects how *Debian* built the library,
# not how we built micro_core, hence the custom marker.)
#
# Usage: bench/bench_to_json.sh [build-dir] [output.json]
#   build-dir defaults to build-release; it is configured with
#   CMAKE_BUILD_TYPE=Release if it has no cache yet.
set -euo pipefail

BUILD_DIR="${1:-build-release}"
OUT="${2:-BENCH_core.json}"
BIN="${BUILD_DIR}/bench/micro_core"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -S "${SRC_DIR}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
fi

BUILD_TYPE="$(grep -E '^CMAKE_BUILD_TYPE:' "${BUILD_DIR}/CMakeCache.txt" |
  cut -d= -f2)"
case "${BUILD_TYPE}" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *)
    echo "error: ${BUILD_DIR} is configured as '${BUILD_TYPE:-<empty>}'," >&2
    echo "       refusing to record benchmark numbers from a non-Release" >&2
    echo "       build. Use a dedicated dir: bench/bench_to_json.sh build-release" >&2
    exit 1
    ;;
esac

cmake --build "${BUILD_DIR}" --target micro_core bench_scale bench_replan \
  -j"$(nproc)"

TMP="$(mktemp "${OUT}.XXXXXX")"
SCALE_TMP="$(mktemp "${OUT}.scale.XXXXXX")"
REPLAN_TMP="$(mktemp "${OUT}.replan.XXXXXX")"
trap 'rm -f "${TMP}" "${SCALE_TMP}" "${REPLAN_TMP}"' EXIT

"${BIN}" \
  --benchmark_min_time=0.2 \
  --benchmark_out="${TMP}" \
  --benchmark_out_format=json

# Belt and braces: the binary stamps its own NDEBUG state into the context.
if ! grep -q '"klotski_build_type": "release"' "${TMP}"; then
  echo "error: ${BIN} reports a debug klotski_build_type marker;" >&2
  echo "       discarding its numbers instead of writing ${OUT}" >&2
  exit 1
fi

# shellcheck disable=SC2086  # word splitting of the args override is wanted
"${BUILD_DIR}/bench/bench_scale" \
  ${KLOTSKI_BENCH_SCALE_ARGS:---families=clos,flat,reconf} \
  --json="${SCALE_TMP}"

# shellcheck disable=SC2086
"${BUILD_DIR}/bench/bench_replan" ${KLOTSKI_BENCH_REPLAN_ARGS:-} \
  --json="${REPLAN_TMP}"

python3 - "${TMP}" "${SCALE_TMP}" "${REPLAN_TMP}" <<'EOF'
import json, sys
bench_path, scale_path, replan_path = sys.argv[1], sys.argv[2], sys.argv[3]
with open(bench_path, encoding="utf-8") as f:
    doc = json.load(f)
with open(scale_path, encoding="utf-8") as f:
    doc["bench_scale"] = json.load(f)
with open(replan_path, encoding="utf-8") as f:
    doc["bench_replan"] = json.load(f)
with open(bench_path, "w", encoding="utf-8") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF

mv "${TMP}" "${OUT}"
rm -f "${SCALE_TMP}" "${REPLAN_TMP}"
trap - EXIT
echo "wrote ${OUT}"
