#!/usr/bin/env bash
# Runs the micro_core google-benchmark suite and writes its results as JSON
# (BENCH_core.json by default) for regression tracking.
#
# Usage: bench/bench_to_json.sh [build-dir] [output.json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_core.json}"
BIN="${BUILD_DIR}/bench/micro_core"

if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not built (cmake --build ${BUILD_DIR} --target micro_core)" >&2
  exit 1
fi

"${BIN}" \
  --benchmark_min_time=0.2 \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json

echo "wrote ${OUT}"
