// Figure 7: DP vs A* planner on the paper's toy example — two action types
// with two actions each and no binding constraints.
//
// Paper shape: the A* planner visits 5 states and performs 4 satisfiability
// checks, while the DP planner visits all 9 states (8 beyond the origin)
// and performs 8 checks, because DP must fill every cell of the compact
// state lattice whereas A* returns at the first pop of the target.
#include <iostream>

#include "klotski/core/astar_planner.h"
#include "klotski/core/dp_planner.h"
#include "klotski/util/string_util.h"
#include "klotski/util/table.h"

namespace {

// A 2-type / 4-action toy task: two old switches to drain, two staged
// switches to undrain, constraints never binding.
struct Toy {
  klotski::topo::Topology topo;
  klotski::migration::MigrationTask task;

  Toy() {
    using namespace klotski;
    std::vector<topo::SwitchId> old_switches;
    std::vector<topo::SwitchId> new_switches;
    for (int i = 0; i < 2; ++i) {
      old_switches.push_back(topo.add_switch(
          topo::SwitchRole::kFadu, topo::Generation::kV1, {}, 8,
          topo::ElementState::kActive, "old" + std::to_string(i)));
      new_switches.push_back(topo.add_switch(
          topo::SwitchRole::kFadu, topo::Generation::kV2, {}, 8,
          topo::ElementState::kAbsent, "new" + std::to_string(i)));
    }
    task.name = "fig7-toy";
    task.topo = &topo;
    task.action_types = {
        migration::ActionType{0, "action-type-0", migration::OpKind::kDrain,
                              topo::SwitchRole::kFadu, topo::Generation::kV1},
        migration::ActionType{1, "action-type-1", migration::OpKind::kUndrain,
                              topo::SwitchRole::kFadu, topo::Generation::kV2},
    };
    task.blocks.resize(2);
    for (int i = 0; i < 2; ++i) {
      migration::OperationBlock drain;
      drain.id = i;
      drain.type = 0;
      drain.label = "drain-old" + std::to_string(i);
      drain.ops.push_back({migration::ElementOp::Kind::kSwitch,
                           old_switches[i], topo::ElementState::kAbsent});
      task.blocks[0].push_back(std::move(drain));

      migration::OperationBlock undrain;
      undrain.id = 2 + i;
      undrain.type = 1;
      undrain.label = "undrain-new" + std::to_string(i);
      undrain.ops.push_back({migration::ElementOp::Kind::kSwitch,
                             new_switches[i], topo::ElementState::kActive});
      task.blocks[1].push_back(std::move(undrain));
    }
    task.original_state = topo::TopologyState::capture(topo);
    for (const auto& blocks : task.blocks) {
      for (const auto& block : blocks) block.apply(topo);
    }
    task.target_state = topo::TopologyState::capture(topo);
    task.original_state.restore(topo);
  }
};

}  // namespace

int main() {
  using namespace klotski;
  std::cout << "# Figure 7 — DP vs A* on the 2-type / 4-action toy example\n\n";

  util::Table table({"Planner", "Cost", "Visited states", "Sat checks"});

  {
    Toy toy;
    constraints::CompositeChecker checker;  // no constraints: all states ok
    core::DpPlanner dp;
    const core::Plan plan = dp.plan(toy.task, checker, {});
    table.add_row({plan.planner, util::format_double(plan.cost),
                   std::to_string(plan.stats.visited_states),
                   std::to_string(plan.stats.sat_checks)});
  }
  core::Plan traced;
  {
    Toy toy;
    constraints::CompositeChecker checker;
    core::AStarPlanner astar;
    core::PlannerOptions options;
    options.record_trace = true;
    traced = astar.plan(toy.task, checker, options);
    table.add_row({traced.planner, util::format_double(traced.cost),
                   std::to_string(traced.stats.visited_states),
                   std::to_string(traced.stats.sat_checks)});
  }

  table.print(std::cout);

  // The Figure 6 search-process view: every state the A* planner popped,
  // with its priority decomposition f = g + h; '*' marks the returned path.
  std::cout << "\nA* expansion order (compact states (v0,v1), f = g + h):\n";
  for (const core::TraceEntry& entry : traced.trace) {
    std::cout << "  " << (entry.on_final_path ? "*" : " ") << " ("
              << entry.counts[0] << "," << entry.counts[1] << ") last="
              << (entry.last_type < 0 ? std::string("-")
                                      : std::to_string(entry.last_type))
              << "  f=" << util::format_double(entry.g + entry.h) << " (g="
              << util::format_double(entry.g) << ", h="
              << util::format_double(entry.h) << ")\n";
  }
  std::cout << "\nPaper reference: the A* planner visits five states and "
               "performs four satisfiability checks, the DP planner visits "
               "all nine states and performs eight checks.\n";
  return 0;
}
