// Heuristic ablation: the corrected admissible h(n) (DESIGN.md) vs Eq. 9
// applied literally.
//
// The paper defines h(n) as the number of remaining action types
// (generalized by Eq. 9). Taken literally it counts the *current run's*
// type at full price even though extending that run costs only alpha per
// action — an overestimate, which voids A*'s optimality guarantee. This
// harness measures, across the scalability experiments and several alphas:
//   * whether the literal form ever returns a worse-than-optimal plan,
//   * how many states each variant visits.
#include "bench_common.h"

int main() {
  using namespace klotski;
  bench::print_scale_banner(
      "Heuristic ablation — corrected admissible h vs literal Eq. 9");
  const topo::PresetScale scale = pipeline::bench_scale_from_env();

  util::Table table({"Topology", "alpha", "Optimal cost", "Literal-h cost",
                     "Visited (admissible)", "Visited (literal)"});
  table.set_title("Admissible vs paper-literal heuristic");

  int suboptimal = 0;
  for (const pipeline::ExperimentId id :
       {pipeline::ExperimentId::kA, pipeline::ExperimentId::kB,
        pipeline::ExperimentId::kC}) {
    for (const double alpha : {0.0, 0.5}) {
      migration::MigrationCase mig = pipeline::build_experiment(id, scale);
      migration::MigrationTask& task = mig.task;

      core::PlannerOptions admissible;
      admissible.alpha = alpha;
      const bench::PlannerRun exact =
          bench::run_planner(task, "astar", admissible);

      core::PlannerOptions literal = admissible;
      literal.use_paper_literal_heuristic = true;
      const bench::PlannerRun approx =
          bench::run_planner(task, "astar", literal);

      if (exact.plan.found && approx.plan.found &&
          approx.plan.cost > exact.plan.cost + 1e-9) {
        ++suboptimal;
      }
      table.add_row(
          {pipeline::to_string(id), util::format_double(alpha, 1),
           exact.plan.found ? util::format_double(exact.plan.cost, 2) : "x",
           approx.plan.found ? util::format_double(approx.plan.cost, 2)
                             : "x",
           std::to_string(exact.plan.stats.visited_states),
           std::to_string(approx.plan.stats.visited_states)});
    }
  }

  table.print(std::cout);
  std::cout << "\nCases where the literal heuristic returned a "
               "worse-than-optimal plan: "
            << suboptimal
            << ".\nThe literal form overestimates whenever the current "
               "run's type still has remaining actions (the unit test "
               "OpexTest.PaperLiteralHeuristic exhibits the overestimate "
               "directly); on these tasks it happened to stay optimal, but "
               "only the corrected form carries the A* optimality "
               "guarantee — which is why the implementation discounts the "
               "current run (DESIGN.md).\n";
  return 0;
}
