#!/usr/bin/env bash
# Tier-1 verification: configure + build + full ctest suite, then the
# threading tests again under ThreadSanitizer from a separate build tree
# (KLOTSKI_SANITIZE=thread), so data races in the parallel evaluator fail
# the gate even when the plain run happens to pass.
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

# Chaos gate: seeded fault-injection sweeps through the replan driver with
# invariant checking and a checkpoint kill/resume self-test on every seed
# (DESIGN.md §8). KLOTSKI_CHAOS_SEEDS scales the sweep (default 25; the
# nightly recipe in EXPERIMENTS.md runs 1000). On failure klotski_chaos
# exits non-zero listing every failing seed; reproduce one with
#   ./build/tools/klotski_chaos --preset=X --seed=N --trajectory
CHAOS_SEEDS="${KLOTSKI_CHAOS_SEEDS:-25}"
# Each preset sweeps twice — warm repair on (the default) and forced cold —
# and the verdicts must match seed for seed: warm-start replanning is a
# latency optimization, never a behavior change (DESIGN.md §11). The warm
# run also writes its metrics so klotski_metrics_check can cross-check the
# replan.warm_attempts == warm_wins + fallback_full identity.
CHAOS_TMP="$(mktemp -d)"
for preset in a b; do
  ./build/tools/klotski_chaos --preset="${preset}" --seeds="${CHAOS_SEEDS}" \
    --threads="${JOBS}" \
    --metrics-out="${CHAOS_TMP}/chaos-${preset}-warm-metrics.json" \
    | tee "${CHAOS_TMP}/chaos-${preset}-warm.txt"
  ./build/tools/klotski_chaos --preset="${preset}" --seeds="${CHAOS_SEEDS}" \
    --threads="${JOBS}" --no-warm-repair \
    | tee "${CHAOS_TMP}/chaos-${preset}-cold.txt"
  for run in warm cold; do
    sed -E -e 's/, warm [0-9]+\/[0-9]+, median replan [0-9.e+-]+ ms//' \
      -e 's/ warm=[0-9]+\/[0-9]+//' \
      "${CHAOS_TMP}/chaos-${preset}-${run}.txt" \
      > "${CHAOS_TMP}/chaos-${preset}-${run}-verdicts.txt"
  done
  if ! diff -u "${CHAOS_TMP}/chaos-${preset}-warm-verdicts.txt" \
      "${CHAOS_TMP}/chaos-${preset}-cold-verdicts.txt"; then
    echo "tier1: FAIL — warm and cold chaos verdicts differ (preset ${preset})" >&2
    exit 1
  fi
  ./build/tools/klotski_metrics_check \
    --metrics="${CHAOS_TMP}/chaos-${preset}-warm-metrics.json"
done
# The non-Clos families ride the same gate: one reduced sweep per family
# (preset A) proves the chaos driver, the invariant checkers, and the
# checkpoint kill/resume path hold on irregular graphs too (DESIGN.md §12).
for family in flat reconf; do
  ./build/tools/klotski_chaos --family="${family}" --preset=a \
    --seeds="${CHAOS_SEEDS}" --threads="${JOBS}" \
    | tee "${CHAOS_TMP}/chaos-${family}-a.txt"
done
rm -rf "${CHAOS_TMP}"

# Serve smoke gate: daemon up on both transports (unix socket + TCP
# loopback), served-vs-CLI byte identity (cold + cache hit), cross-transport
# content-hash identity, servectl against the TCP endpoint, mixed loadgen
# over each transport, graceful SIGTERM drain with flushed metrics
# (DESIGN.md §9).
scripts/serve_smoke.sh build

# Serve throughput gate: uncapped mixed workload over TCP loopback with many
# connections must sustain >= 2000 qps (the fleet-front-door acceptance
# bar); writes the consolidated per-transport report to a scratch path —
# the checked-in BENCH_serve.json comes from a quiet machine.
SERVE_BENCH_TMP="$(mktemp -d)"
scripts/serve_bench.sh build "${SERVE_BENCH_TMP}/BENCH_serve.json"
rm -rf "${SERVE_BENCH_TMP}"

# What-if robustness gate (DESIGN.md §13): a Monte Carlo sweep over the
# preset-A plan must produce byte-identical klotski.whatif.v1 reports at
# --threads=1 and --threads=N, and the same sweep submitted to a daemon
# must come back byte-identical to the local run — the report is a pure
# function of (inputs, seed, N), never of the execution venue.
WHATIF_TMP="$(mktemp -d)"
WHATIF_SOCK="/tmp/kwhatif-$$.sock"
./build/tools/klotski_synth --preset=A --scale=reduced \
  --out="${WHATIF_TMP}/a.npd.json"
./build/tools/klotski_plan --npd="${WHATIF_TMP}/a.npd.json" \
  --out="${WHATIF_TMP}/plan.json" > /dev/null
./build/tools/klotski_whatif --npd="${WHATIF_TMP}/a.npd.json" \
  --plan="${WHATIF_TMP}/plan.json" --trajectories=40 --seed=11 \
  --threads=1 --out="${WHATIF_TMP}/report-t1.json"
./build/tools/klotski_whatif --npd="${WHATIF_TMP}/a.npd.json" \
  --plan="${WHATIF_TMP}/plan.json" --trajectories=40 --seed=11 \
  --threads="${JOBS}" --out="${WHATIF_TMP}/report-tN.json"
cmp "${WHATIF_TMP}/report-t1.json" "${WHATIF_TMP}/report-tN.json" || {
  echo "tier1: FAIL — whatif report differs across thread counts" >&2
  exit 1
}
./build/tools/klotski_served --socket="${WHATIF_SOCK}" --workers=2 \
  2> "${WHATIF_TMP}/served.log" &
WHATIF_SERVED_PID=$!
for _ in $(seq 1 100); do
  [[ -S "${WHATIF_SOCK}" ]] && break
  sleep 0.05
done
[[ -S "${WHATIF_SOCK}" ]] || {
  echo "tier1: FAIL — whatif daemon never bound ${WHATIF_SOCK}" >&2
  cat "${WHATIF_TMP}/served.log" >&2; exit 1; }
# Cold remote run, then an identical one that must be answered from the
# daemon's content-addressed cache — same bytes both times, same bytes as
# the local sweep.
for run in remote cached; do
  ./build/tools/klotski_whatif --npd="${WHATIF_TMP}/a.npd.json" \
    --plan="${WHATIF_TMP}/plan.json" --trajectories=40 --seed=11 \
    --connect="${WHATIF_SOCK}" --out="${WHATIF_TMP}/report-${run}.json"
done
for run in remote cached; do
  cmp "${WHATIF_TMP}/report-t1.json" "${WHATIF_TMP}/report-${run}.json" || {
    echo "tier1: FAIL — ${run} whatif report differs from the local run" >&2
    exit 1
  }
done
kill -TERM "${WHATIF_SERVED_PID}"
wait "${WHATIF_SERVED_PID}" || {
  echo "tier1: FAIL — whatif daemon drain failed" >&2; exit 1; }
rm -rf "${WHATIF_TMP}" "${WHATIF_SOCK}"

cmake -B build-tsan -S . -DKLOTSKI_SANITIZE=thread
cmake --build build-tsan -j"${JOBS}" --target test_core test_obs test_traffic test_sim test_whatif test_serve
# Run the binaries directly: only these targets are built in the TSan tree,
# and ctest would trip over the undiscovered sibling test targets.
./build-tsan/tests/test_core \
  --gtest_filter='ParallelEvaluator.*:PresetsAToC/ParallelPlannerDeterminism.*'
./build-tsan/tests/test_obs
# Intra-check router parallelism: the EcmpRouter worker pool under TSan.
./build-tsan/tests/test_traffic --gtest_filter='EcmpParallel*'
# Chaos sweep worker pool: per-seed isolation means the only shared state
# is the verdict vector and the obs counters — TSan checks that claim.
KLOTSKI_CHAOS_SEEDS=10 ./build-tsan/tests/test_sim \
  --gtest_filter='ChaosInvariants.SweepVerdictsAreIdenticalAcrossThreadCounts'
# What-if sweep worker pool: workers claim trajectory indices from one
# atomic counter and store outcomes by index — TSan checks that the only
# sharing really is that counter plus the indexed slots.
./build-tsan/tests/test_whatif \
  --gtest_filter='WhatIf.ReportIsInvariantToThreadCount'
# Plan service under TSan: sharded single-flight cache, worker pool, drain,
# both transports' connection threads, the periodic reaper, and the
# disconnect-cancel path all exercise cross-thread handoffs.
./build-tsan/tests/test_serve

# AddressSanitizer over the randomized ECMP equivalence suite: the flat-path
# engine's epoch stamping / sparse slot bookkeeping is exactly the kind of
# code where a stale-index bug reads garbage instead of crashing.
cmake -B build-asan -S . -DKLOTSKI_SANITIZE=address
cmake --build build-asan -j"${JOBS}" --target test_traffic test_sim test_core test_util test_migration test_whatif
./build-asan/tests/test_traffic \
  --gtest_filter='EcmpEquivalence.*:EcmpParallel*'
# Chaos engine under ASan: fault scripts mutate live capacities, tear
# blocks mid-apply, and resume from checkpoints — prime territory for
# stale-pointer and overrun bugs that a plain run reads right through.
KLOTSKI_CHAOS_SEEDS=10 ./build-asan/tests/test_sim
# Search arena under ASan: the SoA planner hands out raw row pointers into
# chunked pools and compaction slides rows with memcpy + index remaps —
# exactly where an off-by-one reads the neighboring node without crashing.
# The equivalence and budget suites drive every compaction/eviction path.
./build-asan/tests/test_util --gtest_filter='PodPool.*:StridedPool.*'
./build-asan/tests/test_core \
  --gtest_filter='SoAEquivalence.*:MemBudget.*:StateHasher.*:SatCache.*'
# What-if engine under ASan: every trajectory rebuilds a private case,
# mutates its demand volumes in place, and walks cumulative phase states —
# a stale demand pointer or an off-by-one phase index reads garbage here
# without crashing a plain run.
./build-asan/tests/test_whatif \
  --gtest_filter='WhatIf.AggressiveDemandKnobsSurfaceUnsafeFutures:AllFamilies/*'
# Incremental symmetry under ASan: the randomized journal-mutation suite
# drives the dirty-set recomputation over hundreds of topology edits —
# stale class indices or an under-sized scratch vector would read garbage
# here long before a plain run noticed.
./build-asan/tests/test_migration --gtest_filter='SymmetryIncremental.*'

# Observability smoke: plan a small preset with --metrics-out/--trace-out at
# --threads=1 and --threads=4, check both artifacts re-parse with the
# in-tree JSON parser, that sat_cache_hits + sat_cache_misses ==
# evaluations, and that the evaluator counters are thread-invariant (the DP
# planner batches exactly the states the serial run evaluates).
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "${OBS_TMP}"' EXIT
./build/tools/klotski_synth --preset=A --scale=reduced \
  --out="${OBS_TMP}/a.npd.json"
for threads in 1 4; do
  ./build/tools/klotski_plan --npd="${OBS_TMP}/a.npd.json" --planner=dp \
    --threads="${threads}" \
    --metrics-out="${OBS_TMP}/metrics-t${threads}.json" \
    --trace-out="${OBS_TMP}/trace-t${threads}.json" \
    --out="${OBS_TMP}/plan-t${threads}.json"
  ./build/tools/klotski_metrics_check \
    --metrics="${OBS_TMP}/metrics-t${threads}.json" \
    --trace="${OBS_TMP}/trace-t${threads}.json"
done
./build/tools/klotski_metrics_check \
  --metrics="${OBS_TMP}/metrics-t1.json" \
  --expect-same="${OBS_TMP}/metrics-t4.json"
# A numeric flag with trailing garbage must be a loud usage error (exit 2).
if ./build/tools/klotski_plan --npd="${OBS_TMP}/a.npd.json" --threads=abc \
    > /dev/null 2>&1; then
  echo "tier1: FAIL — --threads=abc was not rejected" >&2
  exit 1
fi

# bench_scale smoke: the largest preset that fits CI comfortably, core mode
# (planner-dominant, sub-second), with a budget below the sweep's tracked
# peak so the compaction + provenance path runs end to end outside the unit
# tests (open-list eviction needs a frontier wider than the minimum beam —
# tests/core/mem_budget_test.cpp covers that; HGRID frontiers stay narrow).
# The JSON must re-parse and carry a budgeted row that compacted and still
# planned. Numbers from this smoke are NOT recorded — BENCH_core.json comes
# from bench/bench_to_json.sh on a Release build.
./build/bench/bench_scale --mode=core --presets=C --budget-mb=1 \
  --deadline=120 --json="${OBS_TMP}/bench_scale_smoke.json"
python3 - "${OBS_TMP}/bench_scale_smoke.json" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    doc = json.load(f)
assert doc.get("schema") == "klotski.bench_scale.v1", doc.get("schema")
rows = doc.get("rows", [])
assert any(r.get("found") and not r.get("budget_mb") for r in rows), rows
budgeted = [r for r in rows if r.get("budget_mb")]
assert budgeted and all(r.get("found") for r in budgeted), rows
assert all(r.get("compactions", 0) > 0 for r in budgeted), budgeted
print("bench_scale smoke: %d rows ok" % len(rows))
EOF

# Opt-in perf gate: export KLOTSKI_BENCH_BASELINE=path/to/baseline.json to
# rebuild the Release bench suite (bench/bench_to_json.sh) and fail tier-1
# if any micro_core benchmark's cpu_time regressed by more than 25% against
# the baseline (scripts/bench_compare.py, stdlib-only). Off by default: the
# microbenches take minutes and perf numbers from shared CI boxes are noisy,
# so this is for perf-sensitive branches run on quiet hardware, e.g.
#   KLOTSKI_BENCH_BASELINE=BENCH_core.json scripts/tier1.sh
if [[ -n "${KLOTSKI_BENCH_BASELINE:-}" ]]; then
  bench/bench_to_json.sh build-release "${OBS_TMP}/bench_current.json"
  python3 scripts/bench_compare.py "${KLOTSKI_BENCH_BASELINE}" \
    "${OBS_TMP}/bench_current.json"
fi

echo "tier1: OK"
