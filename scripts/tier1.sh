#!/usr/bin/env bash
# Tier-1 verification: configure + build + full ctest suite, then the
# threading tests again under ThreadSanitizer from a separate build tree
# (KLOTSKI_SANITIZE=thread), so data races in the parallel evaluator fail
# the gate even when the plain run happens to pass.
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

cmake -B build-tsan -S . -DKLOTSKI_SANITIZE=thread
cmake --build build-tsan -j"${JOBS}" --target test_core test_obs
# Run the binaries directly: only these targets are built in the TSan tree,
# and ctest would trip over the undiscovered sibling test targets.
./build-tsan/tests/test_core \
  --gtest_filter='ParallelEvaluator.*:PresetsAToC/ParallelPlannerDeterminism.*'
./build-tsan/tests/test_obs

# Observability smoke: plan a small preset with --metrics-out/--trace-out at
# --threads=1 and --threads=4, check both artifacts re-parse with the
# in-tree JSON parser, that sat_cache_hits + sat_cache_misses ==
# evaluations, and that the evaluator counters are thread-invariant (the DP
# planner batches exactly the states the serial run evaluates).
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "${OBS_TMP}"' EXIT
./build/tools/klotski_synth --preset=A --scale=reduced \
  --out="${OBS_TMP}/a.npd.json"
for threads in 1 4; do
  ./build/tools/klotski_plan --npd="${OBS_TMP}/a.npd.json" --planner=dp \
    --threads="${threads}" \
    --metrics-out="${OBS_TMP}/metrics-t${threads}.json" \
    --trace-out="${OBS_TMP}/trace-t${threads}.json" \
    --out="${OBS_TMP}/plan-t${threads}.json"
  ./build/tools/klotski_metrics_check \
    --metrics="${OBS_TMP}/metrics-t${threads}.json" \
    --trace="${OBS_TMP}/trace-t${threads}.json"
done
./build/tools/klotski_metrics_check \
  --metrics="${OBS_TMP}/metrics-t1.json" \
  --expect-same="${OBS_TMP}/metrics-t4.json"
# A numeric flag with trailing garbage must be a loud usage error (exit 2).
if ./build/tools/klotski_plan --npd="${OBS_TMP}/a.npd.json" --threads=abc \
    > /dev/null 2>&1; then
  echo "tier1: FAIL — --threads=abc was not rejected" >&2
  exit 1
fi

echo "tier1: OK"
