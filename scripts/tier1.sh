#!/usr/bin/env bash
# Tier-1 verification: configure + build + full ctest suite, then the
# threading tests again under ThreadSanitizer from a separate build tree
# (KLOTSKI_SANITIZE=thread), so data races in the parallel evaluator fail
# the gate even when the plain run happens to pass.
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

cmake -B build-tsan -S . -DKLOTSKI_SANITIZE=thread
cmake --build build-tsan -j"${JOBS}" --target test_core
# Run the binary directly: only test_core is built in the TSan tree, and
# ctest would trip over the undiscovered sibling test targets.
./build-tsan/tests/test_core \
  --gtest_filter='ParallelEvaluator.*:PresetsAToC/ParallelPlannerDeterminism.*'

echo "tier1: OK"
