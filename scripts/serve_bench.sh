#!/usr/bin/env bash
# Serve throughput bench: boots klotski_served on both transports and runs
# an uncapped (qps=0) mixed plan/ping/stats workload over the unix socket
# and over TCP loopback with many connections, writing one consolidated
# report ("klotski.serve-bench.v1") with a row per transport — p50/p90/p99
# latency and achieved QPS per row.
#
# The TCP row is the fleet-front-door acceptance gate: it must sustain at
# least ${KLOTSKI_BENCH_MIN_QPS:-2000} requests/s of mixed cache-hit/miss
# traffic on loopback, or the script fails.
#
# A third row ("serve_replan") measures warm-start replanning through the
# daemon: a remote klotski_chaos sweep submitted over the unix socket, with
# the per-epoch replan latency the daemon reports (DESIGN.md §11). Sweep
# size via KLOTSKI_BENCH_REPLAN_SEEDS (default 25).
#
# A fourth row ("whatif_batch") measures the what-if engine as a batch
# workload (DESIGN.md §13): one cold Monte Carlo robustness sweep submitted
# over the unix socket — trajectories/s of end-to-end job latency — plus
# the latency of the identical repeated request, which must be answered
# from the content-addressed cache. Sweep size via KLOTSKI_BENCH_WHATIF_TRAJ
# (default 200).
#
# Usage: scripts/serve_bench.sh [build-dir] [out-json]
#   build-dir  tree with the built tools   (default: build)
#   out-json   consolidated report path    (default: BENCH_serve.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
OUT="${2:-BENCH_serve.json}"
MIN_QPS="${KLOTSKI_BENCH_MIN_QPS:-2000}"
REQUESTS="${KLOTSKI_BENCH_REQUESTS:-6000}"
REPLAN_SEEDS="${KLOTSKI_BENCH_REPLAN_SEEDS:-25}"
WHATIF_TRAJ="${KLOTSKI_BENCH_WHATIF_TRAJ:-200}"

TMP="$(mktemp -d)"
SOCK="/tmp/kbench-$$.sock"
cleanup() {
  [[ -n "${SERVED_PID:-}" ]] && kill -9 "${SERVED_PID}" 2>/dev/null || true
  rm -rf "${TMP}" "${SOCK}"
}
trap cleanup EXIT

"./${BUILD}/tools/klotski_synth" --preset=A --scale=reduced \
  --out="${TMP}/a.npd.json" > /dev/null

"./${BUILD}/tools/klotski_served" --socket="${SOCK}" \
  --listen=127.0.0.1:0 --endpoint-out="${TMP}/tcp.endpoint" \
  --workers=4 --max-queue=64 --cache-capacity=64 --cache-shards=8 \
  2> "${TMP}/served.log" &
SERVED_PID=$!
for _ in $(seq 1 100); do
  [[ -S "${SOCK}" && -s "${TMP}/tcp.endpoint" ]] && break
  sleep 0.05
done
[[ -S "${SOCK}" && -s "${TMP}/tcp.endpoint" ]] || {
  echo "serve_bench: daemon never came up" >&2
  cat "${TMP}/served.log" >&2; exit 1; }
TCP_EP="$(cat "${TMP}/tcp.endpoint")"

# Warm the plan variants once so both measured runs see the same
# steady-state mix of cache hits and misses.
"./${BUILD}/tools/klotski_loadgen" --connect="${SOCK}" \
  --npd="${TMP}/a.npd.json" --requests=40 --qps=0 --connections=4 \
  --report="${TMP}/warm.json" 2> /dev/null

"./${BUILD}/tools/klotski_loadgen" --connect="${SOCK}" \
  --npd="${TMP}/a.npd.json" --requests="${REQUESTS}" --qps=0 \
  --connections=16 --report="${TMP}/unix.json" \
  2> "${TMP}/loadgen-unix.log"
"./${BUILD}/tools/klotski_loadgen" --connect="${TCP_EP}" \
  --npd="${TMP}/a.npd.json" --requests="${REQUESTS}" --qps=0 \
  --connections=32 --report="${TMP}/tcp.json" \
  2> "${TMP}/loadgen-tcp.log"

# Remote replan bench: one chaos sweep submitted as a daemon job; the
# summary line carries the warm-repair tallies and the median per-epoch
# replan latency measured inside the serve worker.
"./${BUILD}/tools/klotski_chaos" --connect="${SOCK}" --preset=a \
  --seeds="${REPLAN_SEEDS}" | tee "${TMP}/replan.txt"
REPLAN_SUMMARY="$(grep 'median replan' "${TMP}/replan.txt")"
REPLAN_MS="$(sed -n 's/.*median replan \([0-9.eE+-]*\) ms.*/\1/p' \
  <<< "${REPLAN_SUMMARY}")"
WARM_WINS="$(sed -n 's/.*warm \([0-9]*\)\/[0-9]*.*/\1/p' \
  <<< "${REPLAN_SUMMARY}")"
WARM_ATTEMPTS="$(sed -n 's/.*warm [0-9]*\/\([0-9]*\).*/\1/p' \
  <<< "${REPLAN_SUMMARY}")"
[[ -n "${REPLAN_MS}" && -n "${WARM_ATTEMPTS}" ]] || {
  echo "serve_bench: FAIL — could not parse the remote replan summary" >&2
  exit 1
}
printf '{\n  "name": "serve_replan",\n  "transport": "unix",\n' \
  > "${TMP}/replan.json"
printf '  "preset": "a",\n  "seeds": %s,\n' "${REPLAN_SEEDS}" \
  >> "${TMP}/replan.json"
printf '  "warm_wins": %s,\n  "warm_attempts": %s,\n' \
  "${WARM_WINS}" "${WARM_ATTEMPTS}" >> "${TMP}/replan.json"
printf '  "median_replan_ms": %s\n}\n' "${REPLAN_MS}" >> "${TMP}/replan.json"

# What-if batch bench: a cold robustness sweep as one daemon job, then the
# identical request again — the repeat must be a cache hit, so its latency
# is the serve/cache overhead floor for batch results.
"./${BUILD}/tools/klotski_plan" --npd="${TMP}/a.npd.json" \
  --out="${TMP}/a.plan.json" > /dev/null 2> /dev/null
wall_s() {  # wall seconds of "$@", via the shell's epoch-nanosecond clock
  local t0 t1
  t0="$(date +%s%N)"
  "$@"
  t1="$(date +%s%N)"
  awk -v a="${t0}" -v b="${t1}" 'BEGIN { printf "%.6f", (b - a) / 1e9 }'
}
WHATIF_COLD_S="$(wall_s "./${BUILD}/tools/klotski_whatif" \
  --npd="${TMP}/a.npd.json" --plan="${TMP}/a.plan.json" \
  --trajectories="${WHATIF_TRAJ}" --seed=17 --connect="${SOCK}" \
  --out="${TMP}/whatif-cold.json" 2> /dev/null)"
WHATIF_HIT_S="$(wall_s "./${BUILD}/tools/klotski_whatif" \
  --npd="${TMP}/a.npd.json" --plan="${TMP}/a.plan.json" \
  --trajectories="${WHATIF_TRAJ}" --seed=17 --connect="${SOCK}" \
  --out="${TMP}/whatif-hit.json" 2> /dev/null)"
cmp "${TMP}/whatif-cold.json" "${TMP}/whatif-hit.json" || {
  echo "serve_bench: FAIL — repeated whatif request returned different" \
       "bytes" >&2
  exit 1
}
WHATIF_TPS="$(awk -v n="${WHATIF_TRAJ}" -v s="${WHATIF_COLD_S}" \
  'BEGIN { printf "%.1f", n / s }')"
printf '{\n  "name": "whatif_batch",\n  "transport": "unix",\n' \
  > "${TMP}/whatif.json"
printf '  "trajectories": %s,\n  "cold_seconds": %s,\n' \
  "${WHATIF_TRAJ}" "${WHATIF_COLD_S}" >> "${TMP}/whatif.json"
printf '  "trajectories_per_sec": %s,\n' "${WHATIF_TPS}" \
  >> "${TMP}/whatif.json"
printf '  "cache_hit_seconds": %s\n}\n' "${WHATIF_HIT_S}" \
  >> "${TMP}/whatif.json"

kill -TERM "${SERVED_PID}"
wait "${SERVED_PID}" || { echo "serve_bench: drain failed" >&2; exit 1; }
SERVED_PID=""

qps_of() {
  sed -n 's/.*"achieved_qps": \([0-9.eE+-]*\).*/\1/p' "$1" | head -1
}
TCP_QPS="$(qps_of "${TMP}/tcp.json")"
UNIX_QPS="$(qps_of "${TMP}/unix.json")"

{
  printf '{\n  "schema": "klotski.serve-bench.v1",\n'
  printf '  "generated_by": "scripts/serve_bench.sh",\n'
  printf '  "requests_per_row": %s,\n' "${REQUESTS}"
  printf '  "rows": [\n'
  sed 's/^/    /' "${TMP}/unix.json" | sed '$s/$/,/'
  sed 's/^/    /' "${TMP}/tcp.json" | sed '$s/$/,/'
  sed 's/^/    /' "${TMP}/replan.json" | sed '$s/$/,/'
  sed 's/^/    /' "${TMP}/whatif.json"
  printf '  ]\n}\n'
} > "${OUT}"
echo "serve_bench: unix ${UNIX_QPS} qps, tcp ${TCP_QPS} qps," \
     "remote replan ${REPLAN_MS} ms," \
     "whatif ${WHATIF_TPS} traj/s -> ${OUT}"

awk -v got="${TCP_QPS}" -v want="${MIN_QPS}" \
  'BEGIN { exit (got + 0 >= want + 0) ? 0 : 1 }' || {
  echo "serve_bench: FAIL — TCP loopback sustained ${TCP_QPS} qps" \
       "(< ${MIN_QPS})" >&2
  exit 1
}
