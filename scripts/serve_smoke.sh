#!/usr/bin/env bash
# Serve smoke gate: boots klotski_served on both transports (unix socket +
# TCP loopback), proves the serving path is byte-equivalent to the CLI
# pipeline on each transport and across them (content-hash check), runs a
# mixed loadgen workload over both, drives servectl against the TCP
# endpoint, and verifies the graceful SIGTERM drain (exit 0, metrics
# flushed).
#
# Usage: scripts/serve_smoke.sh [build-dir] [report-out]
#   build-dir   tree with the built tools       (default: build)
#   report-out  loadgen JSON report path        (default: none)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
REPORT="${2:-}"

TMP="$(mktemp -d)"
# Unix socket paths must stay short (sun_path ~100 bytes); mktemp -d paths
# can be long, so the socket lives under /tmp directly.
SOCK="/tmp/ksmoke-$$.sock"
cleanup() {
  [[ -n "${SERVED_PID:-}" ]] && kill -9 "${SERVED_PID}" 2>/dev/null || true
  rm -rf "${TMP}" "${SOCK}"
}
trap cleanup EXIT

"./${BUILD}/tools/klotski_synth" --preset=A --scale=reduced \
  --out="${TMP}/a.npd.json"

# Reference plan straight from the CLI pipeline.
"./${BUILD}/tools/klotski_plan" --npd="${TMP}/a.npd.json" \
  --out="${TMP}/cli.plan.json" 2> /dev/null

# Boot the daemon on both transports; TCP binds an ephemeral loopback port
# reported via --endpoint-out, so the script never guesses a free port.
"./${BUILD}/tools/klotski_served" --socket="${SOCK}" \
  --listen=127.0.0.1:0 --endpoint-out="${TMP}/tcp.endpoint" \
  --workers=4 --max-queue=16 --cache-capacity=16 --cache-shards=4 \
  --spill-dir="${TMP}/spill" \
  --metrics-out="${TMP}/served.metrics.json" \
  2> "${TMP}/served.log" &
SERVED_PID=$!
for _ in $(seq 1 100); do
  [[ -S "${SOCK}" && -s "${TMP}/tcp.endpoint" ]] && break
  sleep 0.05
done
[[ -S "${SOCK}" && -s "${TMP}/tcp.endpoint" ]] || {
  echo "serve_smoke: daemon never bound ${SOCK} + TCP" >&2
  cat "${TMP}/served.log" >&2; exit 1; }
TCP_EP="$(cat "${TMP}/tcp.endpoint")"

# 1. Byte-identity: served plan (cold, then cache hit) against the CLI,
#    modulo stats.wall_seconds — the one real-wall-clock field, which
#    differs even between two klotski_plan runs.
normalize() {
  sed 's/"wall_seconds": [0-9.eE+-]*/"wall_seconds": 0/' "$1"
}
"./${BUILD}/tools/klotski_loadgen" --socket="${SOCK}" \
  --npd="${TMP}/a.npd.json" --once --result-out="${TMP}/cold.plan.json" \
  2> "${TMP}/loadgen-cold.log"
"./${BUILD}/tools/klotski_loadgen" --socket="${SOCK}" \
  --npd="${TMP}/a.npd.json" --once --result-out="${TMP}/hit.plan.json" \
  2> "${TMP}/loadgen-hit.log"
grep -q '(cached)' "${TMP}/loadgen-hit.log" || {
  echo "serve_smoke: FAIL — second identical request was not a cache hit" >&2
  exit 1
}
if ! cmp -s <(normalize "${TMP}/cli.plan.json") \
            <(normalize "${TMP}/cold.plan.json"); then
  echo "serve_smoke: FAIL — served cold plan differs from klotski_plan" >&2
  diff <(normalize "${TMP}/cli.plan.json") \
       <(normalize "${TMP}/cold.plan.json") | head >&2
  exit 1
fi
# The cache hit must be byte-identical to the cold response, no exceptions:
# both are the same cached bytes.
cmp "${TMP}/cold.plan.json" "${TMP}/hit.plan.json" || {
  echo "serve_smoke: FAIL — cache hit differs from cold response" >&2
  exit 1
}

# 2. Transport invariance: the same request over TCP loopback returns the
#    cached bytes — identical across transports by content hash and by cmp.
"./${BUILD}/tools/klotski_loadgen" --connect="${TCP_EP}" \
  --npd="${TMP}/a.npd.json" --once --result-out="${TMP}/tcp.plan.json" \
  2> "${TMP}/loadgen-tcp.log"
grep -q '(cached)' "${TMP}/loadgen-tcp.log" || {
  echo "serve_smoke: FAIL — TCP request missed the shared cache" >&2
  exit 1
}
UNIX_HASH="$(sha256sum < "${TMP}/cold.plan.json" | cut -d' ' -f1)"
TCP_HASH="$(sha256sum < "${TMP}/tcp.plan.json" | cut -d' ' -f1)"
if [[ "${UNIX_HASH}" != "${TCP_HASH}" ]]; then
  echo "serve_smoke: FAIL — plan content hash differs across transports" >&2
  echo "  unix ${UNIX_HASH}" >&2
  echo "  tcp  ${TCP_HASH}" >&2
  exit 1
fi

# 3. servectl against the TCP endpoint: ping, and stats must report the
#    configured shard count.
"./${BUILD}/tools/klotski_servectl" --connect="${TCP_EP}" ping \
  > "${TMP}/ctl-ping.json"
grep -q '"klotski.serve.v1"' "${TMP}/ctl-ping.json" || {
  echo "serve_smoke: FAIL — servectl ping did not answer the schema" >&2
  exit 1
}
"./${BUILD}/tools/klotski_servectl" --connect="${TCP_EP}" stats \
  > "${TMP}/ctl-stats.json"
grep -q '"shards": 4' "${TMP}/ctl-stats.json" || {
  echo "serve_smoke: FAIL — stats does not report 4 cache shards" >&2
  cat "${TMP}/ctl-stats.json" >&2
  exit 1
}

# 4. Mixed workload at a modest rate over each transport.
REPORT_PATH="${REPORT:-${TMP}/loadgen.report.json}"
"./${BUILD}/tools/klotski_loadgen" --connect="${SOCK}" \
  --npd="${TMP}/a.npd.json" --requests=60 --qps=120 --connections=4 \
  --report="${REPORT_PATH}" 2> "${TMP}/loadgen-mix.log"
"./${BUILD}/tools/klotski_loadgen" --connect="${TCP_EP}" \
  --npd="${TMP}/a.npd.json" --requests=60 --qps=120 --connections=8 \
  --report="${TMP}/loadgen-tcp-mix.json" 2> "${TMP}/loadgen-tcp-mix.log"

# 5. Graceful drain: SIGTERM => exit 0 with metrics flushed.
kill -TERM "${SERVED_PID}"
SERVED_RC=0
wait "${SERVED_PID}" || SERVED_RC=$?
SERVED_PID=""
if [[ "${SERVED_RC}" -ne 0 ]]; then
  echo "serve_smoke: FAIL — drain exited ${SERVED_RC}" >&2
  cat "${TMP}/served.log" >&2
  exit 1
fi
[[ -s "${TMP}/served.metrics.json" ]] || {
  echo "serve_smoke: FAIL — no metrics artifact after drain" >&2
  exit 1
}
grep -q 'drained' "${TMP}/served.log" || {
  echo "serve_smoke: FAIL — daemon log carries no drain line" >&2
  exit 1
}

echo "serve_smoke: OK"
