#!/usr/bin/env bash
# Serve smoke gate: boots klotski_served, proves the serving path is
# byte-equivalent to the CLI pipeline, runs a mixed loadgen workload, and
# verifies the graceful SIGTERM drain (exit 0, metrics flushed).
#
# Usage: scripts/serve_smoke.sh [build-dir] [report-out]
#   build-dir   tree with the built tools       (default: build)
#   report-out  loadgen JSON report path        (default: none)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
REPORT="${2:-}"

TMP="$(mktemp -d)"
# Unix socket paths must stay short (sun_path ~100 bytes); mktemp -d paths
# can be long, so the socket lives under /tmp directly.
SOCK="/tmp/ksmoke-$$.sock"
cleanup() {
  [[ -n "${SERVED_PID:-}" ]] && kill -9 "${SERVED_PID}" 2>/dev/null || true
  rm -rf "${TMP}" "${SOCK}"
}
trap cleanup EXIT

"./${BUILD}/tools/klotski_synth" --preset=A --scale=reduced \
  --out="${TMP}/a.npd.json"

# Reference plan straight from the CLI pipeline.
"./${BUILD}/tools/klotski_plan" --npd="${TMP}/a.npd.json" \
  --out="${TMP}/cli.plan.json" 2> /dev/null

# Boot the daemon and wait for the socket to appear.
"./${BUILD}/tools/klotski_served" --socket="${SOCK}" --workers=4 \
  --max-queue=16 --cache-capacity=16 --spill-dir="${TMP}/spill" \
  --metrics-out="${TMP}/served.metrics.json" \
  2> "${TMP}/served.log" &
SERVED_PID=$!
for _ in $(seq 1 100); do
  [[ -S "${SOCK}" ]] && break
  sleep 0.05
done
[[ -S "${SOCK}" ]] || { echo "serve_smoke: daemon never bound ${SOCK}" >&2
                        cat "${TMP}/served.log" >&2; exit 1; }

# 1. Byte-identity: served plan (cold, then cache hit) against the CLI,
#    modulo stats.wall_seconds — the one real-wall-clock field, which
#    differs even between two klotski_plan runs.
normalize() {
  sed 's/"wall_seconds": [0-9.eE+-]*/"wall_seconds": 0/' "$1"
}
"./${BUILD}/tools/klotski_loadgen" --socket="${SOCK}" \
  --npd="${TMP}/a.npd.json" --once --result-out="${TMP}/cold.plan.json" \
  2> "${TMP}/loadgen-cold.log"
"./${BUILD}/tools/klotski_loadgen" --socket="${SOCK}" \
  --npd="${TMP}/a.npd.json" --once --result-out="${TMP}/hit.plan.json" \
  2> "${TMP}/loadgen-hit.log"
grep -q '(cached)' "${TMP}/loadgen-hit.log" || {
  echo "serve_smoke: FAIL — second identical request was not a cache hit" >&2
  exit 1
}
if ! cmp -s <(normalize "${TMP}/cli.plan.json") \
            <(normalize "${TMP}/cold.plan.json"); then
  echo "serve_smoke: FAIL — served cold plan differs from klotski_plan" >&2
  diff <(normalize "${TMP}/cli.plan.json") \
       <(normalize "${TMP}/cold.plan.json") | head >&2
  exit 1
fi
# The cache hit must be byte-identical to the cold response, no exceptions:
# both are the same cached bytes.
cmp "${TMP}/cold.plan.json" "${TMP}/hit.plan.json" || {
  echo "serve_smoke: FAIL — cache hit differs from cold response" >&2
  exit 1
}

# 2. Mixed workload at a modest rate across 4 connections.
REPORT_PATH="${REPORT:-${TMP}/loadgen.report.json}"
"./${BUILD}/tools/klotski_loadgen" --socket="${SOCK}" \
  --npd="${TMP}/a.npd.json" --requests=60 --qps=120 --connections=4 \
  --report="${REPORT_PATH}" 2> "${TMP}/loadgen-mix.log"

# 3. Graceful drain: SIGTERM => exit 0 with metrics flushed.
kill -TERM "${SERVED_PID}"
SERVED_RC=0
wait "${SERVED_PID}" || SERVED_RC=$?
SERVED_PID=""
if [[ "${SERVED_RC}" -ne 0 ]]; then
  echo "serve_smoke: FAIL — drain exited ${SERVED_RC}" >&2
  cat "${TMP}/served.log" >&2
  exit 1
fi
[[ -s "${TMP}/served.metrics.json" ]] || {
  echo "serve_smoke: FAIL — no metrics artifact after drain" >&2
  exit 1
}
grep -q 'drained' "${TMP}/served.log" || {
  echo "serve_smoke: FAIL — daemon log carries no drain line" >&2
  exit 1
}

echo "serve_smoke: OK"
