#!/usr/bin/env bash
# Regenerate the golden-plan regression corpus (tests/golden/plan-{a,b,c}.json)
# with the real CLI binaries, so the corpus is exactly what
#   klotski_synth --preset=X --scale=reduced | klotski_plan --planner=astar
# produces. Run after an *intentional* planner/checker/preset change, review
# the diff, and commit the updated files.
#
# Usage: scripts/regen_golden.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SYNTH="${BUILD}/tools/klotski_synth"
PLAN="${BUILD}/tools/klotski_plan"
for bin in "${SYNTH}" "${PLAN}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "regen_golden: ${bin} not built (cmake --build ${BUILD})" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT
mkdir -p tests/golden

for preset in A B C; do
  lower="$(echo "${preset}" | tr '[:upper:]' '[:lower:]')"
  "${SYNTH}" --preset="${preset}" --scale=reduced \
    --migration=hgrid-v1-to-v2 --out="${TMP}/${lower}.npd.json"
  "${PLAN}" --npd="${TMP}/${lower}.npd.json" --planner=astar \
    --out="${TMP}/plan-${lower}.json"
  # wall_seconds is the one nondeterministic field; commit it as 0 so the
  # corpus is stable across regeneration runs (the golden test zeroes it on
  # both sides before comparing).
  sed -E 's/"wall_seconds": [0-9.eE+-]+/"wall_seconds": 0/' \
    "${TMP}/plan-${lower}.json" > "tests/golden/plan-${lower}.json"
  echo "regenerated tests/golden/plan-${lower}.json"
done
