#!/usr/bin/env bash
# Regenerate the golden-plan regression corpus
# (tests/golden/plan-{a,b,c,flat,reconf}.json) with the real CLI binaries,
# so the corpus is exactly what
#   klotski_synth --family=F --preset=X --scale=reduced | klotski_plan
# produces. Run after an *intentional* planner/checker/preset change, review
# the diff, and commit the updated files.
#
# Usage: scripts/regen_golden.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SYNTH="${BUILD}/tools/klotski_synth"
PLAN="${BUILD}/tools/klotski_plan"
for bin in "${SYNTH}" "${PLAN}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "regen_golden: ${bin} not built (cmake --build ${BUILD})" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT
mkdir -p tests/golden

regen() {
  local family="$1" preset="$2" out="$3"
  "${SYNTH}" --family="${family}" --preset="${preset}" --scale=reduced \
    --out="${TMP}/${out}.npd.json"
  "${PLAN}" --npd="${TMP}/${out}.npd.json" --planner=astar \
    --out="${TMP}/${out}.json"
  # wall_seconds is the one nondeterministic field; commit it as 0 so the
  # corpus is stable across regeneration runs (the golden test zeroes it on
  # both sides before comparing).
  sed -E 's/"wall_seconds": [0-9.eE+-]+/"wall_seconds": 0/' \
    "${TMP}/${out}.json" > "tests/golden/${out}.json"
  echo "regenerated tests/golden/${out}.json"
}

for preset in A B C; do
  regen clos "${preset}" "plan-$(echo "${preset}" | tr '[:upper:]' '[:lower:]')"
done
regen flat A plan-flat
regen reconf A plan-reconf
