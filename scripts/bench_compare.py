#!/usr/bin/env python3
"""Compare two benchmark JSON files and flag regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]
        [--rss-threshold 0.25]

Two sections are compared:

* google-benchmark rows ("benchmarks"): per-benchmark cpu_time, as before.
  Rows whose run_type is "aggregate" are ignored so mean/median/stddev rows
  never double-count.
* bench_scale rows ("bench_scale.rows", schema klotski.bench_scale.v1):
  per-(preset, mode, budget) states_per_sec — a *drop* beyond the threshold
  fails — and peak_rss_mb, where a *growth* beyond --rss-threshold fails.
  Files without a bench_scale section skip this comparison, so old baselines
  keep working.
* bench_replan rows ("bench_replan.rows", klotski.bench_replan.v1): when
  the BASELINE carries the section the CURRENT file must too (the
  replan_scratch and replan_warm rows cannot silently disappear), median_ms
  growth beyond the threshold fails, safety parity must hold, and the warm
  row's repaired-round median must stay >= 3x faster than scratch (the
  warm-start acceptance bar).
* serve-bench rows (klotski.serve-bench.v1, either as the whole file —
  BENCH_serve.json — or nested under "serve_bench"): loadgen rows gate
  achieved_qps drops, the whatif_batch row gates trajectories_per_sec
  drops, and a whatif_batch row in the baseline may not disappear from the
  current file.

A file missing any particular section simply skips that comparison, so
BENCH_core.json and BENCH_serve.json both work as inputs; comparing two
files with no overlapping sections at all is an error.

Exits non-zero on any regression. Stdlib only — usable from tier1.sh as an
opt-in perf gate without any package installs.
"""

import argparse
import json
import sys


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def load_benchmarks(doc):
    """Returns {name: (cpu_time, time_unit)} for non-aggregate rows, or {}
    for files without a google-benchmark section (e.g. BENCH_serve.json)."""
    out = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name")
        cpu = row.get("cpu_time")
        if name is None or cpu is None:
            continue
        out[name] = (float(cpu), row.get("time_unit", "ns"))
    return out


def load_scale_rows(doc):
    """Returns {row key: row dict} from a bench_scale section, or {}."""
    section = doc.get("bench_scale") or {}
    out = {}
    for row in section.get("rows", []):
        key = "{}/{}".format(row.get("preset", "?"), row.get("mode", "?"))
        if row.get("budget_mb"):
            key += "/budget{:g}".format(row["budget_mb"])
        out[key] = row
    return out


def compare_cpu_time(base, curr, threshold):
    if not base and not curr:
        return 0, []
    shared = sorted(set(base) & set(curr))
    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))

    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    regressions = []
    for name in shared:
        b_cpu, b_unit = base[name]
        c_cpu, c_unit = curr[name]
        if b_unit != c_unit:
            # Different units can't be compared numerically; treat as a
            # harness change the caller needs to look at.
            print(f"{name:<{width}}  unit changed: {b_unit} -> {c_unit}")
            regressions.append((f"{name} cpu_time", float("inf")))
            continue
        delta = (c_cpu - b_cpu) / b_cpu if b_cpu > 0 else float("inf")
        flag = ""
        if delta > threshold:
            regressions.append((f"{name} cpu_time", delta))
            flag = "  REGRESSED"
        print(f"{name:<{width}}  {b_cpu:>10.1f}{b_unit:>2}  "
              f"{c_cpu:>10.1f}{c_unit:>2}  {delta:+7.1%}{flag}")

    for name in only_base:
        print(f"{name:<{width}}  removed (baseline only)")
    for name in only_curr:
        print(f"{name:<{width}}  new (current only)")
    return len(shared), regressions


def compare_scale(base, curr, sps_threshold, rss_threshold):
    """Gates states_per_sec (drop) and peak_rss_mb (growth)."""
    shared = sorted(set(base) & set(curr))
    if not shared:
        return 0, []
    width = max(len(n) for n in shared)
    print(f"\n{'bench_scale row':<{width}}  {'st/s base':>12}  "
          f"{'st/s curr':>12}  {'rss base':>9}  {'rss curr':>9}")
    regressions = []
    for key in shared:
        b, c = base[key], curr[key]
        b_sps = float(b.get("states_per_sec", 0.0))
        c_sps = float(c.get("states_per_sec", 0.0))
        b_rss = float(b.get("peak_rss_mb", 0.0))
        c_rss = float(c.get("peak_rss_mb", 0.0))
        flags = []
        if b_sps > 0:
            drop = (b_sps - c_sps) / b_sps
            if drop > sps_threshold:
                regressions.append((f"{key} states_per_sec", -drop))
                flags.append("SLOWER")
        if b_rss > 0:
            growth = (c_rss - b_rss) / b_rss
            if growth > rss_threshold:
                regressions.append((f"{key} peak_rss_mb", growth))
                flags.append("MORE RSS")
        if not c.get("found", True):
            regressions.append((f"{key} found", float("inf")))
            flags.append("NOT FOUND")
        print(f"{key:<{width}}  {b_sps:>12.0f}  {c_sps:>12.0f}  "
              f"{b_rss:>8.1f}M  {c_rss:>8.1f}M  {' '.join(flags)}")
    return len(shared), regressions


def load_replan_rows(doc):
    """Returns (section dict, {row name: row dict}) for bench_replan."""
    section = doc.get("bench_replan") or {}
    return section, {row.get("name", "?"): row
                     for row in section.get("rows", [])}


MIN_REPAIR_SPEEDUP = 3.0


def compare_replan(base_doc, curr_doc, threshold):
    """Gates bench_replan row presence, latency and the repair speedup."""
    base_section, base = load_replan_rows(base_doc)
    curr_section, curr = load_replan_rows(curr_doc)
    if not base_section:
        return 0, []  # pre-warm-start baseline: nothing to hold curr to
    regressions = []
    if not curr_section:
        print("\nbench_replan: section missing from current file")
        return 0, [("bench_replan section", float("inf"))]
    for name in ("replan_scratch", "replan_warm"):
        if name in base and name not in curr:
            regressions.append((f"bench_replan {name} row", float("inf")))
    if not curr_section.get("safety_parity", False):
        regressions.append(("bench_replan safety_parity", float("inf")))
    shared = sorted(set(base) & set(curr))
    if shared:
        width = max(len(n) for n in shared)
        print(f"\n{'bench_replan row':<{width}}  {'med base':>10}  "
              f"{'med curr':>10}")
        for name in shared:
            b_med = float(base[name].get("median_ms", 0.0))
            c_med = float(curr[name].get("median_ms", 0.0))
            flag = ""
            if b_med > 0 and (c_med - b_med) / b_med > threshold:
                regressions.append((f"bench_replan {name} median_ms",
                                    (c_med - b_med) / b_med))
                flag = "  REGRESSED"
            print(f"{name:<{width}}  {b_med:>8.3f}ms  {c_med:>8.3f}ms{flag}")
    warm = curr.get("replan_warm", {})
    speedup = float(warm.get("speedup_repair_median", 0.0))
    if speedup < MIN_REPAIR_SPEEDUP:
        regressions.append(
            (f"bench_replan repair speedup {speedup:.2f}x < "
             f"{MIN_REPAIR_SPEEDUP:.0f}x", float("inf")))
    else:
        print(f"bench_replan repair speedup: {speedup:.2f}x (>= "
              f"{MIN_REPAIR_SPEEDUP:.0f}x required)")
    if int(warm.get("warm_wins", 0)) <= 0:
        regressions.append(("bench_replan warm_wins == 0", float("inf")))
    return len(shared), regressions


def load_serve_rows(doc):
    """Returns {row key: row dict} for serve-bench rows, or {}.

    Accepts the report as the whole file (BENCH_serve.json) or nested under
    "serve_bench". Loadgen rows carry no "name", so they key by transport.
    """
    if doc.get("schema") == "klotski.serve-bench.v1":
        section = doc
    else:
        section = doc.get("serve_bench") or {}
    out = {}
    for row in section.get("rows", []):
        key = row.get("name") or "loadgen/{}".format(
            row.get("transport", "?"))
        out[key] = row
    return out


def compare_serve(base, curr, threshold):
    """Gates achieved_qps / trajectories_per_sec drops per serve row."""
    if not base:
        return 0, []  # baseline has no serve section: nothing to hold to
    regressions = []
    if "whatif_batch" in base and "whatif_batch" not in curr:
        # The batch workload row cannot silently disappear once recorded.
        regressions.append(("serve whatif_batch row", float("inf")))
    shared = sorted(set(base) & set(curr))
    if shared:
        width = max(len(n) for n in shared)
        print(f"\n{'serve row':<{width}}  {'baseline':>12}  {'current':>12}"
              "  (qps or traj/s)")
    for key in shared:
        b, c = base[key], curr[key]
        # Each row type carries exactly one throughput figure.
        b_rate = float(b.get("achieved_qps",
                             b.get("trajectories_per_sec", 0.0)))
        c_rate = float(c.get("achieved_qps",
                             c.get("trajectories_per_sec", 0.0)))
        flag = ""
        if b_rate > 0:
            drop = (b_rate - c_rate) / b_rate
            if drop > threshold:
                regressions.append((f"serve {key} throughput", -drop))
                flag = "  SLOWER"
        print(f"{key:<{width}}  {b_rate:>12.1f}  {c_rate:>12.1f}{flag}")
    return len(shared), regressions


def main():
    parser = argparse.ArgumentParser(
        description="Diff two benchmark JSON files (cpu_time, states/sec, "
                    "peak RSS).")
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("current", help="current benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="fail when cpu_time grows (or states_per_sec drops) by more "
             "than this fraction (default 0.25 = 25%%)")
    parser.add_argument(
        "--rss-threshold", type=float, default=0.25,
        help="fail when a bench_scale row's peak_rss_mb grows by more than "
             "this fraction (default 0.25 = 25%%)")
    args = parser.parse_args()

    base_doc = load_doc(args.baseline)
    curr_doc = load_doc(args.current)

    n_cpu, regressions = compare_cpu_time(
        load_benchmarks(base_doc), load_benchmarks(curr_doc),
        args.threshold)
    n_scale, scale_regressions = compare_scale(
        load_scale_rows(base_doc), load_scale_rows(curr_doc),
        args.threshold, args.rss_threshold)
    regressions += scale_regressions
    n_replan, replan_regressions = compare_replan(
        base_doc, curr_doc, args.threshold)
    regressions += replan_regressions
    n_serve, serve_regressions = compare_serve(
        load_serve_rows(base_doc), load_serve_rows(curr_doc),
        args.threshold)
    regressions += serve_regressions

    if n_cpu + n_scale + n_replan + n_serve == 0 and not regressions:
        sys.exit("bench_compare: the two files share no comparable "
                 "benchmark sections")
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed past the "
              f"threshold:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nok: no regression past {args.threshold:.0%} "
          f"({n_cpu} cpu_time, {n_scale} bench_scale, {n_replan} "
          f"bench_replan, {n_serve} serve rows compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
