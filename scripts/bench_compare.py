#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag cpu_time regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]

Prints a per-benchmark table (baseline vs current cpu_time, delta) for every
benchmark present in both files, lists benchmarks that appear in only one
file, and exits non-zero when any shared benchmark's cpu_time regressed by
more than the threshold (default 25%). Only aggregate-free repetition rows
are compared (the default google-benchmark output has exactly one row per
benchmark); rows whose run_type is "aggregate" are ignored so mean/median/
stddev rows never double-count.

Stdlib only — usable from tier1.sh as an opt-in perf gate without any
package installs.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: (cpu_time, time_unit)} for non-aggregate rows."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    out = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name")
        cpu = row.get("cpu_time")
        if name is None or cpu is None:
            continue
        out[name] = (float(cpu), row.get("time_unit", "ns"))
    if not out:
        sys.exit(f"bench_compare: no benchmark rows in {path}")
    return out


def main():
    parser = argparse.ArgumentParser(
        description="Diff two google-benchmark JSON files by cpu_time.")
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("current", help="current benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="fail when cpu_time grows by more than this fraction "
             "(default 0.25 = 25%%)")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    curr = load_benchmarks(args.current)

    shared = sorted(set(base) & set(curr))
    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))

    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    regressions = []
    for name in shared:
        b_cpu, b_unit = base[name]
        c_cpu, c_unit = curr[name]
        if b_unit != c_unit:
            # Different units can't be compared numerically; treat as a
            # harness change the caller needs to look at.
            print(f"{name:<{width}}  unit changed: {b_unit} -> {c_unit}")
            regressions.append((name, float("inf")))
            continue
        delta = (c_cpu - b_cpu) / b_cpu if b_cpu > 0 else float("inf")
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  REGRESSED"
        print(f"{name:<{width}}  {b_cpu:>10.1f}{b_unit:>2}  "
              f"{c_cpu:>10.1f}{c_unit:>2}  {delta:+7.1%}{flag}")

    for name in only_base:
        print(f"{name:<{width}}  removed (baseline only)")
    for name in only_curr:
        print(f"{name:<{width}}  new (current only)")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed past "
              f"{args.threshold:.0%} cpu_time:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nok: no cpu_time regression past {args.threshold:.0%} "
          f"({len(shared)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
