// Re-planning under demand drift, a traffic surge, and an injected step
// failure (§7.1-§7.2).
//
//   $ ./replan_surge [--growth=0.02] [--surge-factor=1.6]
//
// Simulates executing an HGRID migration while traffic grows each step, a
// warm-storage-style backup surge multiplies east-west traffic mid-plan,
// and one operation step fails in the config-push pipeline. The execution
// driver refreshes the forecast after every step and re-plans whenever the
// remaining plan would become unsafe (or a step fails), exactly the
// operational loop the paper describes.
#include <iostream>

#include "klotski/core/astar_planner.h"
#include "klotski/migration/task_builder.h"
#include "klotski/pipeline/replan.h"
#include "klotski/topo/presets.h"
#include "klotski/traffic/forecast.h"
#include "klotski/traffic/generator.h"
#include "klotski/util/flags.h"

int main(int argc, char** argv) {
  using namespace klotski;
  const util::Flags flags = util::Flags::parse(argc, argv);

  const topo::RegionParams region =
      topo::preset_params(topo::PresetId::kB, topo::PresetScale::kFull);
  migration::HgridMigrationParams params;
  params.fadu_chunks_per_grid_dc = 2;
  params.fauu_chunks_per_grid = 2;
  migration::MigrationCase mig =
      migration::build_hgrid_migration(region, params);
  migration::MigrationTask& task = mig.task;

  // Organic growth per step plus an east-west surge in the middle of the
  // migration (the §7.2 warm-storage incident).
  traffic::Forecaster forecaster(task.demands,
                                 flags.get_double("growth", 0.02));
  traffic::SurgeEvent surge;
  surge.name = "warm-storage backup placement change";
  surge.kind = traffic::DemandKind::kEastWest;
  surge.start_step = 3;
  surge.end_step = 6;
  surge.factor = flags.get_double("surge-factor", 1.6);
  forecaster.add_surge(surge);

  pipeline::ReplanOptions options;
  options.demand_change_threshold = 0.10;
  options.failing_phases = {2};  // the third executed phase fails once

  core::AStarPlanner planner;
  const pipeline::ReplanResult result =
      pipeline::execute_with_replanning(task, planner, forecaster, options);

  std::cout << "Execution " << (result.completed ? "completed" : "FAILED")
            << "\n";
  if (!result.failure.empty()) std::cout << "  failure: " << result.failure
                                         << "\n";
  std::cout << "  phases executed: " << result.phases_executed << "\n";
  std::cout << "  re-plans:        " << result.replans << "\n";
  std::cout << "  executed cost:   " << result.executed_cost << "\n\n";
  std::cout << "Event log:\n";
  for (const std::string& line : result.log) {
    std::cout << "  - " << line << "\n";
  }
  return result.completed ? 0 : 1;
}
