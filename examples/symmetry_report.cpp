// Symmetry report (§4.1): how much symmetry a topology actually has, and
// what migrations do to it.
//
//   $ ./symmetry_report [--preset=B]
//
// Janus prunes the search space with symmetry blocks; the paper found that
// on Meta's production networks one block holds at most a couple of
// switches, so Klotski merges blocks by *locality* into operation blocks.
// This example computes the real equivalence classes (color refinement) of
// a pristine synthesized region and of the same region with a staged HGRID
// migration, showing how staging asymmetric hardware fragments the classes.
#include <iostream>

#include "klotski/migration/symmetry.h"
#include "klotski/migration/task_builder.h"
#include "klotski/topo/presets.h"
#include "klotski/util/flags.h"
#include "klotski/util/table.h"

namespace {

void print_partition(const char* label,
                     const klotski::migration::SymmetryPartition& partition,
                     std::size_t switches) {
  std::cout << label << ": " << partition.num_blocks() << " classes over "
            << switches << " switches (largest "
            << partition.largest_block() << ")\n";
  klotski::util::Table table({"block size", "count"});
  for (const auto& [size, count] : partition.size_histogram()) {
    table.add_row({std::to_string(size), std::to_string(count)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace klotski;
  const util::Flags flags = util::Flags::parse(argc, argv);

  const std::string preset_name = flags.get_string("preset", "B");
  topo::PresetId preset = topo::PresetId::kB;
  for (const topo::PresetId candidate : topo::all_presets()) {
    if (topo::to_string(candidate) == preset_name) preset = candidate;
  }
  const topo::RegionParams params =
      topo::preset_params(preset, topo::PresetScale::kFull);

  // 1. Pristine region.
  topo::Region region = topo::build_region(params);
  print_partition("Pristine region",
                  migration::compute_symmetry(region.topo),
                  region.topo.num_switches());

  // 2. Same region with a staged HGRID V1 -> V2 migration: V1/V2 never
  //    share a class, and the tightened port budgets split classes further.
  migration::MigrationCase mig = migration::build_hgrid_migration(params, {});
  print_partition("With staged HGRID migration",
                  migration::compute_symmetry(*mig.task.topo),
                  mig.task.topo->num_switches());

  // 3. Mid-migration snapshot: apply the first drain block and recompute —
  //    partially-operated neighborhoods lose their remaining symmetry,
  //    which is why Klotski does not rely on symmetry alone (§4.1).
  mig.task.blocks[0][0].apply(*mig.task.topo);
  print_partition("After the first drain action",
                  migration::compute_symmetry(*mig.task.topo),
                  mig.task.topo->num_switches());
  mig.task.reset_to_original();

  std::cout << "Note: synthesized regions are cleaner than production ones; "
               "Meta's organic heterogeneity leaves at most ~2 switches per "
               "class (§4.1), which this generator reproduces only after "
               "staging begins (see DESIGN.md, Symmetry caveat).\n";
  return 0;
}
