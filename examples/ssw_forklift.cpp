// SSW forklift migration (§2.4, Figure 3(b)): replace every spine switch of
// one DC with higher-capacity V2 hardware, plane by plane.
//
//   $ ./ssw_forklift [--theta=0.75] [--blocks-per-plane=4] [--dc=0]
//
// Demonstrates how the utilization bound theta changes the optimal plan:
// the example sweeps theta and shows the cost / batching trade-off the
// paper studies in Figure 12 — strict bounds force smaller drain batches
// and therefore more operational steps.
#include <iostream>

#include "klotski/migration/task_builder.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/topo/presets.h"
#include "klotski/util/flags.h"
#include "klotski/util/table.h"

int main(int argc, char** argv) {
  using namespace klotski;
  const util::Flags flags = util::Flags::parse(argc, argv);

  topo::RegionParams region =
      topo::preset_params(topo::PresetId::kB, topo::PresetScale::kFull);

  migration::SswForkliftParams params;
  params.dc = static_cast<int>(flags.get_int("dc", 0));
  params.blocks_per_plane =
      static_cast<int>(flags.get_int("blocks-per-plane", 2));

  migration::MigrationCase mig = migration::build_ssw_forklift(region, params);
  migration::MigrationTask& task = mig.task;
  std::cout << "Forklifting DC " << params.dc << ": "
            << task.total_actions() << " actions over "
            << task.operated_switches() << " SSWs\n\n";

  util::Table table({"theta", "optimal cost", "phases", "visited", "audit"});
  table.set_title("SSW forklift: utilization bound vs plan cost");

  for (const double theta : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    pipeline::CheckerConfig config;
    config.demand.max_utilization = theta;
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    auto planner = pipeline::make_planner("astar");
    const core::Plan plan =
        planner->plan(task, *bundle.checker, core::PlannerOptions{});
    if (!plan.found) {
      table.add_row({std::to_string(theta), "infeasible", "-", "-", "-"});
      continue;
    }
    const pipeline::AuditReport audit =
        pipeline::audit_plan(task, *bundle.checker, plan);
    table.add_row({std::to_string(theta), std::to_string(plan.cost),
                   std::to_string(plan.phases().size()),
                   std::to_string(plan.stats.visited_states),
                   audit.ok ? "OK" : "FAIL"});
  }
  table.print(std::cout);

  // Show one concrete plan at the default bound.
  pipeline::CheckerConfig config;
  config.demand.max_utilization = flags.get_double("theta", 0.75);
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(task, config);
  auto planner = pipeline::make_planner("astar");
  const core::Plan plan =
      planner->plan(task, *bundle.checker, core::PlannerOptions{});
  std::cout << "\n" << pipeline::plan_to_text(task, plan);
  return plan.found ? 0 : 1;
}
