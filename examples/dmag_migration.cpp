// DMAG migration (§2.4, Figure 3(c)): introduce the MA regional-aggregation
// layer between FAUUs and EBs — a migration that *changes the topology
// structure*, which symmetry-only planners cannot handle.
//
//   $ ./dmag_migration [--ma-per-eb=2] [--theta=0.75]
//
// Demonstrates the Figure 9 generality result: Klotski-A* and Klotski-DP
// plan the DMAG migration, MRC and Janus reject it; and shows how traffic
// shifts from the legacy FAUU->EB / FAUU->DR paths onto the new MA layer
// across the plan's phases.
#include <iostream>

#include "klotski/core/state_evaluator.h"
#include "klotski/migration/task_builder.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/topo/presets.h"
#include "klotski/traffic/ecmp.h"
#include "klotski/util/flags.h"
#include "klotski/util/string_util.h"

namespace {

// Total egress load carried by circuits touching a given switch role.
double role_load(const klotski::topo::Topology& topo,
                 const klotski::traffic::LoadVector& loads,
                 klotski::topo::SwitchRole role) {
  double total = 0.0;
  for (const klotski::topo::Circuit& c : topo.circuits()) {
    if (topo.sw(c.a).role != role && topo.sw(c.b).role != role) continue;
    total += loads[static_cast<std::size_t>(c.id) * 2] +
             loads[static_cast<std::size_t>(c.id) * 2 + 1];
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace klotski;
  const util::Flags flags = util::Flags::parse(argc, argv);

  const topo::RegionParams region =
      topo::preset_params(topo::PresetId::kB, topo::PresetScale::kFull);
  migration::DmagMigrationParams params;
  params.ma_per_eb = static_cast<int>(flags.get_int("ma-per-eb", 2));

  migration::MigrationCase mig =
      migration::build_dmag_migration(region, params);
  migration::MigrationTask& task = mig.task;
  std::cout << "DMAG migration: " << task.total_actions() << " actions, "
            << task.num_action_types() << " action types\n\n";

  pipeline::CheckerConfig config;
  config.demand.max_utilization = flags.get_double("theta", 0.75);

  // Generality: baselines reject, Klotski plans.
  for (const char* name : {"mrc", "janus", "astar", "dp"}) {
    pipeline::CheckerBundle bundle =
        pipeline::make_standard_checker(task, config);
    auto planner = pipeline::make_planner(name);
    const core::Plan plan =
        planner->plan(task, *bundle.checker, core::PlannerOptions{});
    if (plan.found) {
      std::cout << planner->name() << ": cost " << plan.cost << " in "
                << util::format_double(plan.stats.wall_seconds, 3) << "s\n";
    } else {
      std::cout << planner->name() << ": cannot plan (" << plan.failure
                << ")\n";
    }
  }

  // Show the MA layer absorbing traffic phase by phase.
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(task, config);
  auto planner = pipeline::make_planner("astar");
  const core::Plan plan =
      planner->plan(task, *bundle.checker, core::PlannerOptions{});
  if (!plan.found) return 1;

  std::cout << "\n" << pipeline::plan_to_text(task, plan) << "\n";
  std::cout << "Traffic on the new MA layer vs the legacy DR shortcut "
               "(Tbps, summed over circuits):\n";

  traffic::EcmpRouter router(*task.topo);
  core::CountVector done(task.blocks.size(), 0);
  constraints::CompositeChecker unused;
  core::StateEvaluator evaluator(task, unused, false);
  int phase_index = 0;
  for (const core::Phase& phase : plan.phases()) {
    done[static_cast<std::size_t>(phase.type)] +=
        static_cast<std::int32_t>(phase.block_indices.size());
    evaluator.materialize(done);
    traffic::LoadVector loads(task.topo->num_circuits() * 2, 0.0);
    for (const traffic::Demand& d : task.demands) router.assign(d, loads);
    std::cout << "  after phase " << ++phase_index << ": MA="
              << util::format_double(
                     role_load(*task.topo, loads, topo::SwitchRole::kMa), 2)
              << "  DR="
              << util::format_double(
                     role_load(*task.topo, loads, topo::SwitchRole::kDr), 2)
              << "\n";
  }
  task.reset_to_original();
  return 0;
}
