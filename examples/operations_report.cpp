// Operations report: plan a migration, then produce everything the field
// organization needs — the phase schedule with OPEX estimate (§7.2), and
// the per-phase capacity-risk report that tells operators where a traffic
// surge would bite first (§1's headroom requirement, §7.2's surge war
// story).
//
//   $ ./operations_report [--preset=C] [--theta=0.75] [--crews=4]
#include <iostream>

#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/experiments.h"
#include "klotski/pipeline/risk.h"
#include "klotski/pipeline/schedule.h"
#include "klotski/topo/presets.h"
#include "klotski/util/flags.h"
#include "klotski/util/string_util.h"

int main(int argc, char** argv) {
  using namespace klotski;
  const util::Flags flags = util::Flags::parse(argc, argv);

  const std::string preset = flags.get_string("preset", "C");
  topo::PresetId id = topo::PresetId::kC;
  for (const topo::PresetId candidate : topo::all_presets()) {
    if (topo::to_string(candidate) == preset) id = candidate;
  }

  migration::MigrationCase mig = migration::build_hgrid_migration(
      topo::preset_params(id, topo::PresetScale::kReduced),
      pipeline::hgrid_params_for(id, topo::PresetScale::kReduced));
  migration::MigrationTask& task = mig.task;

  pipeline::CheckerConfig config;
  config.demand.max_utilization = flags.get_double("theta", 0.75);
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(task, config);
  const core::Plan plan =
      pipeline::make_planner("astar")->plan(task, *bundle.checker, {});
  if (!plan.found) {
    std::cerr << "no plan: " << plan.failure << "\n";
    return 1;
  }
  std::cout << "Planned " << plan.actions.size() << " actions in "
            << plan.phases().size() << " phases (cost " << plan.cost
            << ") on preset " << preset << "\n\n";

  // 1. Field schedule + OPEX.
  pipeline::CrewModel crew;
  crew.crews = static_cast<int>(flags.get_int("crews", 4));
  const pipeline::Schedule schedule =
      pipeline::build_schedule(task, plan, crew);
  std::cout << "=== Schedule (" << crew.crews << " crews) ===\n"
            << pipeline::schedule_to_text(schedule) << "\n";

  // 2. Capacity risk across the plan.
  const pipeline::RiskReport risk =
      pipeline::assess_risk(task, plan, config.demand.max_utilization);
  std::cout << "=== Risk ===\n" << pipeline::risk_to_text(risk);

  const pipeline::PhaseRisk& worst = risk.phases[risk.riskiest()];
  std::cout << "\nMonitoring focus: "
            << (worst.phase_index < 0
                    ? "the original topology"
                    : "phase " + std::to_string(worst.phase_index))
            << " tolerates only x"
            << util::format_double(worst.growth_headroom, 2)
            << " uniform demand growth before violating theta; schedule "
               "surge-sensitive service work away from it.\n";
  return 0;
}
