// HGRID V1 -> V2 migration on a multi-DC region (§2.4, Figure 3(a)),
// driven through the full EDP-Lite pipeline from an NPD document.
//
//   $ ./hgrid_migration [--planner=astar] [--theta=0.75] [--dump-npd]
//   $ ./hgrid_migration --npd=examples/npd/region-b-hgrid.npd.json
//
// Demonstrates: authoring an NPD document in code (or loading one from
// disk), serializing it to JSON (what operators check into their repo),
// parsing it back, running the pipeline, and exporting the phase list.
#include <iostream>

#include "klotski/npd/npd_io.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/util/file.h"
#include "klotski/util/flags.h"

int main(int argc, char** argv) {
  using namespace klotski;
  const util::Flags flags = util::Flags::parse(argc, argv);

  // Author the NPD document: a 2-building region with two HGRID grids,
  // migrating to three V2 grids (more nodes, more inter-DC capacity).
  npd::NpdDocument doc;
  doc.name = "region-alpha/hgrid-refresh";
  doc.region.dcs = 2;
  topo::FabricParams fab;
  fab.pods = 4;
  fab.rsws_per_pod = 8;
  fab.planes = 4;
  fab.ssws_per_plane = 4;
  doc.region.fabrics = {fab};
  doc.region.grids = 2;
  doc.region.fadus_per_grid_per_dc = 4;
  doc.region.fauus_per_grid = 4;
  doc.region.ebs = 2;
  doc.region.drs = 2;
  doc.region.ebbs = 2;
  doc.migration = npd::MigrationKind::kHgridV1ToV2;
  doc.hgrid.v2_grids = 3;
  doc.hgrid.fadu_chunks_per_grid_dc = 2;
  doc.hgrid.fauu_chunks_per_grid = 2;

  // Round-trip through the on-disk JSON form, as the pipeline does — or
  // load an operator-provided NPD file instead.
  const std::string npd_path = flags.get_string("npd", "");
  const std::string npd_text =
      npd_path.empty() ? npd::dump_npd(doc) : util::read_file(npd_path);
  if (flags.get_bool("dump-npd", false)) {
    std::cout << npd_text << "\n\n";
  }
  const npd::NpdDocument parsed = npd::parse_npd(npd_text);

  pipeline::EdpOptions options;
  options.planner = flags.get_string("planner", "astar");
  options.checker.demand.max_utilization = flags.get_double("theta", 0.75);

  pipeline::EdpResult result = pipeline::run_pipeline(parsed, options);
  migration::MigrationTask& task = result.migration.task;

  std::cout << "NPD: " << parsed.name << "\n";
  std::cout << "Topology: " << task.topo->count_present_switches()
            << " present switches, " << task.topo->count_present_circuits()
            << " present circuits\n";
  std::cout << "Migration: " << task.total_actions() << " actions, "
            << task.operated_switches() << " switches, "
            << task.operated_circuits() << " circuits, "
            << task.operated_capacity_tbps() << " Tbps touched\n\n";

  std::cout << pipeline::plan_to_text(task, result.plan) << "\n";
  std::cout << "Phase topologies returned by the pipeline: "
            << result.phase_states.size() << " snapshots\n";

  // Independent audit with a fresh checker (as the deployment tooling does).
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(task, options.checker);
  const pipeline::AuditReport audit =
      pipeline::audit_plan(task, *bundle.checker, result.plan);
  std::cout << "Audit: " << (audit.ok ? "OK" : "FAILED") << "\n";
  for (const std::string& issue : audit.issues) {
    std::cout << "  " << issue << "\n";
  }

  std::cout << "\nExported plan JSON:\n"
            << json::dump(pipeline::plan_to_json(task, result.plan), 2)
            << "\n";
  return result.plan.found && audit.ok ? 0 : 1;
}
