// Quickstart: plan a small HGRID V1 -> V2 migration end to end.
//
//   $ ./quickstart [--theta=0.75] [--alpha=0] [--planner=astar]
//
// Builds a two-grid region, stages the V2 HGRID hardware, generates a
// calibrated demand set, runs the selected planner, audits the plan
// independently, and prints the resulting phases.
#include <iostream>

#include "klotski/migration/task_builder.h"
#include "klotski/pipeline/audit.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/plan_export.h"
#include "klotski/topo/presets.h"
#include "klotski/util/flags.h"

int main(int argc, char** argv) {
  using namespace klotski;
  const util::Flags flags = util::Flags::parse(argc, argv);

  // 1. Describe the region (preset A: 1 DC, 2 spine planes, 2 HGRID grids).
  const topo::RegionParams region =
      topo::preset_params(topo::PresetId::kA, topo::PresetScale::kFull);

  // 2. Build the migration case: region + staged V2 hardware + demands +
  //    operation blocks.
  migration::HgridMigrationParams task_params;
  migration::MigrationCase mig =
      migration::build_hgrid_migration(region, task_params);
  migration::MigrationTask& task = mig.task;

  std::cout << "Topology: " << task.topo->count_present_switches()
            << " switches, " << task.topo->count_present_circuits()
            << " circuits (original state)\n";
  std::cout << "Task: " << task.total_actions() << " actions across "
            << task.num_action_types() << " action types\n\n";

  // 3. Assemble the constraint stack (ports + demands at theta).
  pipeline::CheckerConfig checker_config;
  checker_config.demand.max_utilization = flags.get_double("theta", 0.75);
  pipeline::CheckerBundle bundle =
      pipeline::make_standard_checker(task, checker_config);

  // 4. Plan.
  core::PlannerOptions options;
  options.alpha = flags.get_double("alpha", 0.0);
  auto planner =
      pipeline::make_planner(flags.get_string("planner", "astar"));
  const core::Plan plan = planner->plan(task, *bundle.checker, options);

  // 5. Audit independently and print.
  const pipeline::AuditReport audit =
      pipeline::audit_plan(task, *bundle.checker, plan);
  std::cout << pipeline::plan_to_text(task, plan);
  std::cout << "\nAudit: " << (audit.ok ? "OK" : "FAILED") << " ("
            << audit.phases_checked << " phases checked)\n";
  for (const std::string& issue : audit.issues) {
    std::cout << "  issue: " << issue << "\n";
  }
  return plan.found && audit.ok ? 0 : 1;
}
