#include "klotski/pipeline/schedule.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "klotski/util/string_util.h"

namespace klotski::pipeline {

Schedule build_schedule(const migration::MigrationTask& task,
                        const core::Plan& plan, const CrewModel& crew) {
  if (!plan.found) {
    throw std::invalid_argument("build_schedule: plan was not found (" +
                                plan.failure + ")");
  }
  if (crew.crews < 1 || crew.days_per_block < 0 ||
      crew.setup_days_per_phase < 0) {
    throw std::invalid_argument("build_schedule: invalid crew model");
  }

  Schedule schedule;
  double clock = 0.0;
  int index = 0;
  for (const core::Phase& phase : plan.phases()) {
    PhaseSchedule entry;
    entry.phase_index = index++;
    entry.action_type =
        task.action_types[static_cast<std::size_t>(phase.type)].label;
    entry.blocks = static_cast<int>(phase.block_indices.size());

    // `crews` crews split the blocks; phases are strictly sequential (a
    // phase boundary is where the safety constraints are re-validated).
    const double work_days =
        std::ceil(static_cast<double>(entry.blocks) /
                  static_cast<double>(crew.crews)) *
        crew.days_per_block;
    entry.start_day = clock;
    entry.end_day = clock + crew.setup_days_per_phase + work_days;
    clock = entry.end_day;

    const double crew_days =
        static_cast<double>(entry.blocks) * crew.days_per_block;
    entry.opex_usd = crew.dispatch_fee_usd +
                     crew_days * crew.crew_day_cost_usd +
                     crew.setup_days_per_phase * crew.crew_day_cost_usd;
    schedule.total_opex_usd += entry.opex_usd;
    schedule.phases.push_back(entry);
  }
  schedule.total_days = clock;
  return schedule;
}

json::Value schedule_to_json(const Schedule& schedule) {
  json::Object root;
  root["total_days"] = schedule.total_days;
  root["total_months"] = schedule.total_months();
  root["total_opex_usd"] = schedule.total_opex_usd;
  json::Array phases;
  for (const PhaseSchedule& phase : schedule.phases) {
    json::Object o;
    o["phase"] = phase.phase_index;
    o["action_type"] = phase.action_type;
    o["blocks"] = phase.blocks;
    o["start_day"] = phase.start_day;
    o["end_day"] = phase.end_day;
    o["opex_usd"] = phase.opex_usd;
    phases.push_back(json::Value(std::move(o)));
  }
  root["phases"] = json::Value(std::move(phases));
  return json::Value(std::move(root));
}

std::string schedule_to_text(const Schedule& schedule, int width) {
  std::ostringstream os;
  if (schedule.phases.empty()) {
    os << "(empty schedule)\n";
    return os.str();
  }
  const double scale =
      schedule.total_days > 0
          ? static_cast<double>(width) / schedule.total_days
          : 0.0;

  std::size_t label_width = 0;
  for (const PhaseSchedule& phase : schedule.phases) {
    label_width = std::max(label_width, phase.action_type.size());
  }

  for (const PhaseSchedule& phase : schedule.phases) {
    std::string label = phase.action_type;
    label.resize(label_width, ' ');
    const int lead = static_cast<int>(std::floor(phase.start_day * scale));
    const int bar = std::max(
        1, static_cast<int>(std::lround((phase.end_day - phase.start_day) *
                                        scale)));
    os << label << " |" << std::string(static_cast<std::size_t>(lead), ' ')
       << std::string(static_cast<std::size_t>(bar), '#') << "  day "
       << util::format_double(phase.start_day, 1) << "-"
       << util::format_double(phase.end_day, 1) << ", " << phase.blocks
       << " block(s), $" << util::with_commas(
              static_cast<long long>(std::llround(phase.opex_usd)))
       << "\n";
  }
  os << "total: " << util::format_double(schedule.total_days, 1) << " days ("
     << util::format_double(schedule.total_months(), 1) << " months), $"
     << util::with_commas(
            static_cast<long long>(std::llround(schedule.total_opex_usd)))
     << " OPEX\n";
  return os.str();
}

}  // namespace klotski::pipeline
