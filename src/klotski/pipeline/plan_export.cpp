#include "klotski/pipeline/plan_export.h"

#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "klotski/util/string_util.h"

namespace klotski::pipeline {

using json::Array;
using json::Object;
using json::Value;

json::Value plan_to_json(const migration::MigrationTask& task,
                         const core::Plan& plan) {
  Object root;
  root["task"] = task.name;
  root["planner"] = plan.planner;
  root["found"] = plan.found;
  if (!plan.found) {
    root["failure"] = plan.failure;
    return Value(std::move(root));
  }
  root["cost"] = plan.cost;

  Object stats;
  stats["visited_states"] = static_cast<std::int64_t>(
      plan.stats.visited_states);
  stats["generated_states"] = static_cast<std::int64_t>(
      plan.stats.generated_states);
  stats["sat_checks"] = static_cast<std::int64_t>(plan.stats.sat_checks);
  stats["cache_hits"] = static_cast<std::int64_t>(plan.stats.cache_hits);
  stats["evaluations"] = static_cast<std::int64_t>(plan.stats.evaluations);
  stats["delta_applies"] = static_cast<std::int64_t>(plan.stats.delta_applies);
  stats["full_replays"] = static_cast<std::int64_t>(plan.stats.full_replays);
  stats["frontier_peak"] = static_cast<std::int64_t>(plan.stats.frontier_peak);
  stats["wall_seconds"] = plan.stats.wall_seconds;
  root["stats"] = Value(std::move(stats));

  // Search provenance is emitted only for budgeted or warm runs, keeping
  // the plain cold document (and the golden corpus) unchanged.
  // beam_degraded is the audit-relevant bit for budgeted runs: the plan is
  // safe but possibly suboptimal. warm_repair/warm_start record how much of
  // the previous epoch the planner reused (DESIGN.md §11).
  const bool warm =
      plan.provenance.warm_start || plan.provenance.warm_repair;
  if (plan.provenance.mem_budget_mb > 0.0 || warm) {
    Object prov;
    if (plan.provenance.mem_budget_mb > 0.0) {
      prov["mem_budget_mb"] = plan.provenance.mem_budget_mb;
      prov["beam_degraded"] = plan.provenance.beam_degraded;
      prov["evicted_states"] =
          static_cast<std::int64_t>(plan.provenance.evicted_states);
      prov["compactions"] =
          static_cast<std::int64_t>(plan.provenance.compactions);
      prov["peak_tracked_bytes"] =
          static_cast<std::int64_t>(plan.provenance.peak_tracked_bytes);
    }
    if (warm) {
      prov["warm_start"] = plan.provenance.warm_start;
      prov["warm_repair"] = plan.provenance.warm_repair;
      prov["warm_seeded_nodes"] =
          static_cast<std::int64_t>(plan.provenance.warm_seeded_nodes);
      prov["sat_carried"] =
          static_cast<std::int64_t>(plan.provenance.sat_carried);
    }
    root["provenance"] = Value(std::move(prov));
  }

  Array phases;
  for (const core::Phase& phase : plan.phases()) {
    Object o;
    o["action_type"] =
        task.action_types[static_cast<std::size_t>(phase.type)].label;
    Array blocks;
    for (const std::int32_t b : phase.block_indices) {
      blocks.push_back(task.blocks[static_cast<std::size_t>(phase.type)]
                                  [static_cast<std::size_t>(b)]
                                      .label);
    }
    o["blocks"] = Value(std::move(blocks));
    phases.push_back(Value(std::move(o)));
  }
  root["phases"] = Value(std::move(phases));
  return Value(std::move(root));
}

std::string plan_to_text(const migration::MigrationTask& task,
                         const core::Plan& plan) {
  std::ostringstream os;
  os << "Plan for " << task.name << " (" << plan.planner << ")\n";
  if (!plan.found) {
    os << "  NOT FOUND: " << plan.failure << "\n";
    return os.str();
  }
  os << "  cost=" << util::format_double(plan.cost) << "  actions="
     << plan.actions.size() << "  visited=" << plan.stats.visited_states
     << "  sat_checks=" << plan.stats.sat_checks
     << "  cache_hits=" << plan.stats.cache_hits << "  time="
     << util::format_double(plan.stats.wall_seconds, 3) << "s\n";
  const std::vector<core::Phase> phases = plan.phases();
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const core::Phase& phase = phases[p];
    os << "  phase " << p + 1 << ": "
       << task.action_types[static_cast<std::size_t>(phase.type)].label
       << " x" << phase.block_indices.size() << " [";
    for (std::size_t i = 0; i < phase.block_indices.size(); ++i) {
      if (i != 0) os << ", ";
      if (i == 4 && phase.block_indices.size() > 5) {
        os << "... +" << phase.block_indices.size() - i << " more";
        break;
      }
      os << task.blocks[static_cast<std::size_t>(phase.type)]
                       [static_cast<std::size_t>(phase.block_indices[i])]
                           .label;
    }
    os << "]\n";
  }
  return os.str();
}


core::Plan plan_from_json(const migration::MigrationTask& task,
                          const json::Value& value) {
  core::Plan plan;
  plan.planner = value.get_string("planner", "unknown");
  plan.found = value.get_bool("found", false);
  if (!plan.found) {
    plan.failure = value.get_string("failure", "");
    return plan;
  }
  plan.cost = value.at("cost").as_double();
  if (value.as_object().contains("provenance")) {
    const json::Value& prov = value.at("provenance");
    plan.provenance.mem_budget_mb = prov.get_double("mem_budget_mb", 0.0);
    plan.provenance.beam_degraded = prov.get_bool("beam_degraded", false);
    plan.provenance.evicted_states =
        static_cast<long long>(prov.get_double("evicted_states", 0.0));
    plan.provenance.compactions =
        static_cast<long long>(prov.get_double("compactions", 0.0));
    plan.provenance.peak_tracked_bytes =
        static_cast<long long>(prov.get_double("peak_tracked_bytes", 0.0));
    plan.provenance.warm_start = prov.get_bool("warm_start", false);
    plan.provenance.warm_repair = prov.get_bool("warm_repair", false);
    plan.provenance.warm_seeded_nodes =
        static_cast<long long>(prov.get_double("warm_seeded_nodes", 0.0));
    plan.provenance.sat_carried =
        static_cast<long long>(prov.get_double("sat_carried", 0.0));
  }

  // Resolve labels: action-type label -> id, block label -> (type, index).
  std::unordered_map<std::string, std::int32_t> type_of;
  for (const migration::ActionType& type : task.action_types) {
    type_of[type.label] = type.id;
  }
  std::unordered_map<std::string, std::pair<std::int32_t, std::int32_t>>
      block_of;
  for (std::size_t t = 0; t < task.blocks.size(); ++t) {
    for (std::size_t b = 0; b < task.blocks[t].size(); ++b) {
      block_of[task.blocks[t][b].label] = {static_cast<std::int32_t>(t),
                                           static_cast<std::int32_t>(b)};
    }
  }

  for (const json::Value& phase : value.at("phases").as_array()) {
    const std::string type_label = phase.at("action_type").as_string();
    const auto type_it = type_of.find(type_label);
    if (type_it == type_of.end()) {
      throw std::invalid_argument("plan_from_json: unknown action type '" +
                                  type_label + "'");
    }
    for (const json::Value& block : phase.at("blocks").as_array()) {
      const auto block_it = block_of.find(block.as_string());
      if (block_it == block_of.end()) {
        throw std::invalid_argument("plan_from_json: unknown block '" +
                                    block.as_string() + "'");
      }
      if (block_it->second.first != type_it->second) {
        throw std::invalid_argument("plan_from_json: block '" +
                                    block.as_string() +
                                    "' filed under the wrong action type");
      }
      plan.actions.push_back(core::PlannedAction{block_it->second.first,
                                                 block_it->second.second});
    }
  }
  return plan;
}
}  // namespace klotski::pipeline
