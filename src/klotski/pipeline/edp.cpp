#include "klotski/pipeline/edp.h"

#include <algorithm>
#include <stdexcept>

#include "klotski/baselines/brute_force_planner.h"
#include "klotski/baselines/janus_planner.h"
#include "klotski/baselines/mrc_planner.h"
#include "klotski/constraints/port_checker.h"
#include "klotski/core/astar_planner.h"
#include "klotski/core/dp_planner.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/obs/metrics.h"
#include "klotski/obs/trace.h"
#include "klotski/util/thread_budget.h"

namespace klotski::pipeline {

std::unique_ptr<core::Planner> make_planner(const std::string& name) {
  if (name == "astar") return std::make_unique<core::AStarPlanner>();
  if (name == "dp") return std::make_unique<core::DpPlanner>();
  if (name == "mrc") return std::make_unique<baselines::MrcPlanner>();
  if (name == "janus") return std::make_unique<baselines::JanusPlanner>();
  if (name == "brute") return std::make_unique<baselines::BruteForcePlanner>();
  throw std::invalid_argument("unknown planner: " + name);
}

CheckerBundle make_standard_checker(migration::MigrationTask& task,
                                    const CheckerConfig& config) {
  CheckerBundle bundle;
  bundle.router =
      std::make_unique<traffic::EcmpRouter>(*task.topo, config.routing);
  bundle.router->set_num_workers(config.router_threads);
  bundle.checker = std::make_unique<constraints::CompositeChecker>();
  bundle.checker->add(std::make_unique<constraints::PortChecker>());
  if (config.space_power.max_present_per_grid > 0 ||
      config.space_power.max_present_per_plane > 0) {
    bundle.checker->add(
        std::make_unique<constraints::SpacePowerChecker>(config.space_power));
  }
  bundle.checker->add(std::make_unique<constraints::DemandChecker>(
      *bundle.router, task.demands, config.demand));
  return bundle;
}

core::CheckerFactory make_standard_checker_factory(const CheckerConfig& config) {
  return [config](migration::MigrationTask& task) {
    auto bundle =
        std::make_shared<CheckerBundle>(make_standard_checker(task, config));
    // Aliasing constructor: the returned pointer addresses the composite but
    // owns the bundle, so the router outlives every checker that needs it.
    return std::shared_ptr<constraints::CompositeChecker>(
        bundle, bundle->checker.get());
  };
}

EdpResult run_pipeline(const npd::NpdDocument& doc,
                       const EdpOptions& options) {
  obs::Span pipeline_span("edp/run_pipeline");
  obs::Registry::global().counter("edp.runs").inc();

  EdpResult result;
  {
    obs::Span span("edp/build_case");
    result.migration = npd::build_case(doc);
  }
  migration::MigrationTask& task = result.migration.task;
  if (options.demand_override.has_value()) {
    task.demands = *options.demand_override;
  }

  CheckerBundle bundle = make_standard_checker(task, options.checker);
  std::unique_ptr<core::Planner> planner = make_planner(options.planner);
  core::PlannerOptions planner_options = options.planner_options;
  if (planner_options.num_threads > 1 && !planner_options.checker_factory) {
    // Split the intra-check router budget across the evaluator's worker
    // clones so inter-state (num_threads) and intra-check (router_threads)
    // parallelism compose without oversubscribing the machine (the shared
    // rule in util/thread_budget.h): each of the N worker-private routers
    // gets router_threads / N workers.
    CheckerConfig worker_config = options.checker;
    worker_config.router_threads =
        util::split_thread_budget(planner_options.num_threads,
                                  options.checker.router_threads)
            .inner;
    planner_options.checker_factory =
        make_standard_checker_factory(worker_config);
  }
  {
    obs::Span span("edp/plan");
    result.plan = planner->plan(task, *bundle.checker, planner_options);
  }

  if (result.plan.found) {
    // Materialize the topology after each phase: the ordered list of
    // topology phases EDP-Lite returns to the deployment tooling.
    obs::Span span("edp/phase_states");
    core::StateEvaluator evaluator(task, *bundle.checker, false);
    core::CountVector done(task.blocks.size(), 0);
    result.phase_states.push_back(task.original_state);
    for (const core::Phase& phase : result.plan.phases()) {
      done[static_cast<std::size_t>(phase.type)] +=
          static_cast<std::int32_t>(phase.block_indices.size());
      evaluator.materialize(done);
      result.phase_states.push_back(topo::TopologyState::capture(*task.topo));
    }
    task.reset_to_original();
  }
  return result;
}

migration::MigrationTask remaining_task(const migration::MigrationTask& task,
                                        const core::CountVector& done) {
  if (done.size() != task.blocks.size()) {
    throw std::invalid_argument("remaining_task: arity mismatch");
  }
  migration::MigrationTask rest;
  rest.name = task.name + "/rest";
  rest.topo = task.topo;
  rest.action_types = task.action_types;
  rest.demands = task.demands;
  rest.target_state = task.target_state;

  // Original state of the suffix = task original + executed prefix.
  task.original_state.restore(*task.topo);
  rest.blocks.resize(task.blocks.size());
  for (std::size_t t = 0; t < task.blocks.size(); ++t) {
    const auto executed = static_cast<std::size_t>(done[t]);
    if (executed > task.blocks[t].size()) {
      throw std::out_of_range("remaining_task: done exceeds block count");
    }
    for (std::size_t i = 0; i < executed; ++i) {
      task.blocks[t][i].apply(*task.topo);
    }
    rest.blocks[t].assign(task.blocks[t].begin() + executed,
                          task.blocks[t].end());
  }
  rest.original_state = topo::TopologyState::capture(*task.topo);
  task.original_state.restore(*task.topo);
  return rest;
}

}  // namespace klotski::pipeline
