// Operational schedule: turns a migration plan into the field-work timeline
// and OPEX estimate the paper's Table 1 reports (duration per migration
// type) and §7.2 motivates ("physical migration requires sending workforce
// to the site ... different sequences of steps could have different costs
// in terms of human efficiency").
//
// Model: one phase (maximal same-type run) is one crew dispatch. The
// dispatch has a fixed setup time (travel, MOPs review, drain tooling) and
// a per-block work time; blocks within a phase are worked by `crews`
// parallel crews. OPEX = crew-hours * hourly rate + a dispatch fee.
#pragma once

#include <string>
#include <vector>

#include "klotski/core/plan.h"
#include "klotski/json/json.h"
#include "klotski/migration/task.h"

namespace klotski::pipeline {

struct CrewModel {
  /// Fixed days per dispatch (phase): staging, MOPs review, travel.
  double setup_days_per_phase = 2.0;
  /// Field days to operate one block (drain + rewire + validate).
  double days_per_block = 1.0;
  /// Parallel crews working one phase.
  int crews = 4;
  /// OPEX accounting.
  double crew_day_cost_usd = 3200.0;   // one crew, one day
  double dispatch_fee_usd = 5000.0;    // per phase
};

struct PhaseSchedule {
  int phase_index = 0;
  std::string action_type;
  int blocks = 0;
  double start_day = 0.0;
  double end_day = 0.0;
  double opex_usd = 0.0;
};

struct Schedule {
  std::vector<PhaseSchedule> phases;
  double total_days = 0.0;
  double total_opex_usd = 0.0;

  double total_months() const { return total_days / 30.0; }
};

/// Builds the schedule for a found plan; throws std::invalid_argument for
/// plans that were not found.
Schedule build_schedule(const migration::MigrationTask& task,
                        const core::Plan& plan, const CrewModel& crew = {});

/// JSON export for downstream tooling.
json::Value schedule_to_json(const Schedule& schedule);

/// ASCII Gantt-style rendering: one row per phase, columns are days.
std::string schedule_to_text(const Schedule& schedule, int width = 60);

}  // namespace klotski::pipeline
