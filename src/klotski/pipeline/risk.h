// Per-phase risk report: capacity headroom analysis of a migration plan.
//
// The paper's safety objective is that every intermediate network "satisfies
// dynamic traffic demands during the migration and leaves sufficient
// headroom to absorb traffic bursts from flash crowds" (§1). The audit
// answers *whether* each phase is safe; this report answers *how* safe:
// for every phase boundary it measures the worst circuit utilization, the
// remaining demand-growth headroom (how much uniform demand growth the
// phase tolerates before violating theta), and the active capacity. The
// riskiest phase is where operators schedule extra monitoring — and where
// an unexpected surge (§7.2) bites first.
#pragma once

#include <string>
#include <vector>

#include "klotski/core/plan.h"
#include "klotski/json/json.h"
#include "klotski/migration/task.h"
#include "klotski/traffic/ecmp.h"

namespace klotski::pipeline {

struct PhaseRisk {
  int phase_index = -1;  // -1 = the original topology
  std::string action_type;
  /// Worst circuit utilization at the phase boundary.
  double max_utilization = 0.0;
  /// Name of the two endpoints of the worst circuit ("a - b").
  std::string worst_circuit;
  /// Multiplicative demand-growth tolerance: utilization stays <= theta as
  /// long as every demand grows by less than this factor.
  double growth_headroom = 0.0;
  /// Active (traffic-carrying) capacity at the boundary, Tbps.
  double active_capacity_tbps = 0.0;
};

struct RiskReport {
  double theta = 0.75;
  std::vector<PhaseRisk> phases;  // original topology first

  /// Index into `phases` of the riskiest boundary (highest utilization).
  std::size_t riskiest() const;
};

/// Computes the report by re-simulating the plan phase by phase. The plan
/// must have been found. Leaves the topology in its original state.
RiskReport assess_risk(migration::MigrationTask& task, const core::Plan& plan,
                       double theta = 0.75,
                       traffic::SplitMode routing =
                           traffic::SplitMode::kEqualSplit);

json::Value risk_to_json(const RiskReport& report);
std::string risk_to_text(const RiskReport& report);

}  // namespace klotski::pipeline
