// Execution simulation with re-planning (§7.1-§7.2).
//
// Migrations run for weeks; demand grows organically and can surge
// unexpectedly, and individual steps can fail in the config-push pipeline.
// This module simulates executing a plan phase by phase against a demand
// forecaster: after every phase the forecast is refreshed (the paper:
// "we run the forecast after each migration step"), the remaining plan is
// re-validated, and on violation (or on injected step failure) the planner
// is re-run from the current intermediate topology.
//
// The driver is hardened for adversarial execution (the chaos engine in
// src/klotski/sim drives it through thousands of seeded trajectories):
//  * a FaultInjector hook applies circuit degradations / failures and
//    unplanned drains between phases and decides injected step failures,
//  * failed phases retry with bounded exponential backoff (waiting costs
//    forecast steps: demand keeps growing while the crew regroups),
//  * after `max_replans` planning rounds the driver degrades gracefully to
//    a conservative fallback planner from `baselines`,
//  * every executed phase can be checkpointed to JSON; a killed run resumed
//    from its last checkpoint replays the identical trajectory.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "klotski/core/planner.h"
#include "klotski/json/json.h"
#include "klotski/pipeline/edp.h"
#include "klotski/traffic/forecast.h"

namespace klotski::pipeline {

/// Routine maintenance outside Klotski's control (§7.2 "simultaneous
/// operations"): firmware upgrades or device rebuilds drain the listed
/// switches over [start_step, end_step) migration steps. The driver
/// re-plans whenever the active maintenance set changes and plans around
/// the drained equipment. Events should target switches the migration does
/// not itself operate (operated blocks override maintenance state).
struct MaintenanceEvent {
  std::string name;
  std::vector<topo::SwitchId> switches;
  int start_step = 0;
  int end_step = 0;  // exclusive
};

/// Fault-injection hook the driver consults between executed phases
/// (implemented by the chaos engine, src/klotski/sim). Every method must be
/// a deterministic function of its arguments so a checkpointed run resumes
/// bit-identically.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Fingerprint of the fault state active at `step`. The driver re-plans
  /// whenever the epoch changes between steps — degradations, circuit
  /// failures, and unplanned drains starting or ending — mirroring the
  /// maintenance-calendar logic.
  virtual std::uint64_t fault_epoch(int step) const = 0;

  /// Brings the topology's out-of-band attributes (circuit capacities) to
  /// the fault state of `step` — implementations must follow the topology
  /// contract and call bump_state_version() when they change anything — and
  /// appends the step's unplanned element drains to the overlay vectors.
  /// Idempotent per step; called at least once per planning/validation
  /// round.
  virtual void apply(int step, topo::Topology& topo,
                     std::vector<topo::SwitchId>& drained_switches,
                     std::vector<topo::CircuitId>& drained_circuits) = 0;

  /// Injected operation failure for the phase about to execute: returns the
  /// number of ElementOps of the phase's first block that were pushed
  /// before the step died (0 = failed cleanly before touching anything), or
  /// -1 for a successful attempt. `attempt` is 0 on the first try of a
  /// phase and increments per retry.
  virtual int phase_failure_ops(int phases_executed, int attempt) = 0;
};

/// Snapshot handed to ReplanOptions::observer after each executed phase,
/// while the topology is materialized at that executed intermediate state
/// (executed blocks plus active maintenance / fault drains applied). All
/// references are valid only during the callback.
struct PhaseObservation {
  int phases_executed = 0;  // 1-based count including this phase
  int step = 0;             // forecast step the phase executed at
  migration::ActionTypeId type = migration::kNoAction;
  int blocks = 0;           // blocks operated in this phase
  const core::CountVector& done;
  double executed_cost = 0.0;  // running cost including this phase
  topo::Topology& topo;        // materialized executed state
  const traffic::DemandSet& demands;  // ground-truth demands at `step`
};

/// Everything a killed run needs to restart bit-identically: the executed
/// counters, the active plan and the position inside it, and the consumed
/// failure injections. Serialized as "klotski.replan-checkpoint.v2" JSON
/// (see DESIGN.md "Chaos engine" and §11); v1 documents still load, with
/// the v2-only warm-state fields defaulting to zero.
struct ReplanCheckpoint {
  int phases_executed = 0;
  int step = 0;             // forecast step == topology journal position
  int next_phase = 0;       // index into the stored plan's phases()
  int planning_runs = 0;
  int last_plan_step = 0;
  int phase_retries = 0;    // total retried attempts so far
  bool fallback_active = false;
  int fallback_plans = 0;
  std::int32_t last_type = migration::kNoAction;
  double executed_cost = 0.0;
  std::uint64_t state_version = 0;  // diagnostic: journal position at save
  core::CountVector done;
  /// The plan being executed (or, with replan_pending, the plan whose
  /// surviving suffix seeds the next round's warm repair); empty when there
  /// is nothing to carry — the resume then starts with a cold planning
  /// round, exactly like the uninterrupted run would have.
  std::vector<core::PlannedAction> plan_actions;
  double plan_cost = 0.0;
  std::string plan_planner;
  /// v2: the driver decided to re-plan right after this phase. On resume
  /// the stored plan is not executed; its suffix from next_phase becomes
  /// the warm-repair seed, reproducing the uninterrupted run's decision.
  bool replan_pending = false;
  /// v2 warm-state provenance: repair/fallback counters so a resumed run's
  /// totals match the uninterrupted run, and the carried SatCache's epoch
  /// key (generation id; diagnostic — verdicts are re-derived, not stored).
  int warm_attempts = 0;
  int warm_wins = 0;
  int fallback_full = 0;
  std::uint64_t sat_generation = 0;
  /// Failure injections already consumed (ReplanOptions::failing_phases
  /// entries must fire at most once per phase index).
  std::vector<int> consumed_failures;

  json::Value to_json() const;
  static ReplanCheckpoint from_json(const json::Value& value);
};

struct ReplanOptions {
  CheckerConfig checker;
  core::PlannerOptions planner_options;
  /// Re-plan eagerly when the forecast moved by more than this fraction
  /// since the last planning run, even if the remaining plan still looks
  /// safe (operators prefer fresh plans over near-threshold ones).
  double demand_change_threshold = 0.10;
  /// Injected operation failures: phases (by global executed-phase index)
  /// whose first block fails and must be retried after re-planning (§7.2
  /// "failures during operation duration"). Each listed index fires at most
  /// once, even when listed repeatedly — a retried phase must be able to
  /// succeed. Prefer FaultInjector for richer failure schedules.
  std::vector<int> failing_phases;
  /// Concurrent routine maintenance (§7.2).
  std::vector<MaintenanceEvent> maintenance;

  /// Bounded retry-with-backoff: a failed phase attempt (or, under an
  /// injector, a failed planning round) waits
  /// min(backoff_steps << attempt, max_backoff_steps) forecast steps before
  /// the next try. After max_phase_retries failed attempts of one phase the
  /// run aborts with a reported failure.
  int max_phase_retries = 3;
  int backoff_steps = 1;
  int max_backoff_steps = 8;
  /// Graceful degradation: after this many planning runs the driver stops
  /// trusting the primary planner and switches to the conservative
  /// fallback. 0 = never degrade.
  int max_replans = 0;
  /// Fallback planner name for make_planner (a baselines planner).
  std::string fallback_planner = "mrc";

  /// Warm-start repair (DESIGN.md §11). When a re-plan triggers, the driver
  /// first tries to keep executing the surviving suffix of the current plan:
  /// the suffix is revalidated from scratch (fresh checker, current
  /// forecast/topology/overlay) and accepted when its cost stays within
  /// repair_cost_slack times an admissible lower bound of the from-scratch
  /// optimum. On rejection the full planning round still runs warm — arena
  /// seeds from the suffix plus the carried verdict cache — so either path
  /// beats a cold restart. false = every re-plan is cold (the
  /// --no-warm-repair ablation; also what checkpoint-v1 era behavior was).
  bool warm_repair = true;
  double repair_cost_slack = 1.25;

  /// Chaos hook; nullptr = no injected faults.
  FaultInjector* injector = nullptr;
  /// Invoked after every executed phase with the materialized intermediate
  /// topology (invariant checking; adds materialization cost per phase).
  std::function<void(const PhaseObservation&)> observer;
  /// Invoked after every executed phase with a restartable checkpoint.
  std::function<void(const ReplanCheckpoint&)> checkpoint_sink;
  /// Cooperative stop (the serve daemon's graceful drain): polled after
  /// every executed phase, after checkpoint_sink has run for that phase.
  /// Returning true makes the driver return immediately with
  /// ReplanResult::stopped set; resume the run later from the last
  /// checkpoint. Must be cheap — it is called once per phase.
  std::function<bool()> stop_requested;
  /// Resume a previous run from its checkpoint instead of starting fresh.
  /// The caller must pass the same task / forecaster / options as the
  /// original run (the checkpoint stores execution position, not inputs).
  const ReplanCheckpoint* resume = nullptr;
};

/// One planning round's latency record (bench_replan aggregates these).
/// Not checkpointed: determinism covers decisions, not timings.
struct ReplanRound {
  int step = 0;            // forecast step the round planned at
  bool warm = false;        // suffix repair won — no search ran
  bool warm_seeded = false;  // a full search ran, but warm-seeded
  double seconds = 0.0;     // wall clock of the whole round
};

struct ReplanResult {
  bool completed = false;
  /// True when the run ended because ReplanOptions::stop_requested asked it
  /// to (not a failure: the last checkpoint resumes it bit-identically).
  bool stopped = false;
  std::string failure;
  int phases_executed = 0;
  int replans = 0;
  double executed_cost = 0.0;  // cost of the actually executed sequence
  int phase_retries = 0;       // failed attempts that were retried
  int fallback_plans = 0;      // planning rounds served by the fallback
  bool used_fallback = false;
  /// Warm-repair accounting: attempts == wins + fallback_full (the
  /// metrics-check identity). Resumed runs restore these from the
  /// checkpoint, so totals match the uninterrupted run.
  int warm_attempts = 0;
  int warm_wins = 0;
  int fallback_full = 0;
  std::vector<ReplanRound> rounds;  // one entry per planning round
  std::vector<std::string> log;
};

/// Plans and executes `task` to completion, re-planning as needed.
/// The forecaster's step counter advances by one per executed phase (plus
/// backoff waits after failed attempts).
ReplanResult execute_with_replanning(migration::MigrationTask& task,
                                     core::Planner& planner,
                                     traffic::Forecaster& forecaster,
                                     const ReplanOptions& options = {});

}  // namespace klotski::pipeline
