// Execution simulation with re-planning (§7.1-§7.2).
//
// Migrations run for weeks; demand grows organically and can surge
// unexpectedly, and individual steps can fail in the config-push pipeline.
// This module simulates executing a plan phase by phase against a demand
// forecaster: after every phase the forecast is refreshed (the paper:
// "we run the forecast after each migration step"), the remaining plan is
// re-validated, and on violation (or on injected step failure) the planner
// is re-run from the current intermediate topology.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "klotski/core/planner.h"
#include "klotski/pipeline/edp.h"
#include "klotski/traffic/forecast.h"

namespace klotski::pipeline {

/// Routine maintenance outside Klotski's control (§7.2 "simultaneous
/// operations"): firmware upgrades or device rebuilds drain the listed
/// switches over [start_step, end_step) migration steps. The driver
/// re-plans whenever the active maintenance set changes and plans around
/// the drained equipment. Events should target switches the migration does
/// not itself operate (operated blocks override maintenance state).
struct MaintenanceEvent {
  std::string name;
  std::vector<topo::SwitchId> switches;
  int start_step = 0;
  int end_step = 0;  // exclusive
};

struct ReplanOptions {
  CheckerConfig checker;
  core::PlannerOptions planner_options;
  /// Re-plan eagerly when the forecast moved by more than this fraction
  /// since the last planning run, even if the remaining plan still looks
  /// safe (operators prefer fresh plans over near-threshold ones).
  double demand_change_threshold = 0.10;
  /// Injected operation failures: phases (by global executed-phase index)
  /// whose first block fails and must be retried after re-planning (§7.2
  /// "failures during operation duration").
  std::vector<int> failing_phases;
  /// Concurrent routine maintenance (§7.2).
  std::vector<MaintenanceEvent> maintenance;
};

struct ReplanResult {
  bool completed = false;
  std::string failure;
  int phases_executed = 0;
  int replans = 0;
  double executed_cost = 0.0;  // cost of the actually executed sequence
  std::vector<std::string> log;
};

/// Plans and executes `task` to completion, re-planning as needed.
/// The forecaster's step counter advances by one per executed phase.
ReplanResult execute_with_replanning(migration::MigrationTask& task,
                                     core::Planner& planner,
                                     traffic::Forecaster& forecaster,
                                     const ReplanOptions& options = {});

}  // namespace klotski::pipeline
