#include "klotski/pipeline/audit.h"

#include <unordered_set>

#include "klotski/obs/metrics.h"
#include "klotski/obs/trace.h"

namespace klotski::pipeline {

AuditReport audit_plan(migration::MigrationTask& task,
                       constraints::CompositeChecker& checker,
                       const core::Plan& plan, bool check_every_action) {
  obs::Span audit_span("audit/audit_plan");
  obs::Registry::global().counter("audit.runs").inc();
  AuditReport report;
  if (!plan.found) {
    report.add_issue("plan not found: " + plan.failure);
    return report;
  }

  // Availability constraints (Eq. 2-3): each block of each type exactly
  // once. Any within-type order is acceptable — the optimal planners emit
  // each type's blocks in canonical order, greedy baselines may not.
  std::vector<std::vector<bool>> seen(task.blocks.size());
  for (std::size_t t = 0; t < task.blocks.size(); ++t) {
    seen[t].assign(task.blocks[t].size(), false);
  }
  for (const core::PlannedAction& action : plan.actions) {
    if (action.type < 0 ||
        action.type >= static_cast<std::int32_t>(task.blocks.size())) {
      report.add_issue("action references unknown type " +
                       std::to_string(action.type));
      return report;
    }
    auto& type_seen = seen[static_cast<std::size_t>(action.type)];
    if (action.block_index < 0 ||
        action.block_index >= static_cast<std::int32_t>(type_seen.size())) {
      report.add_issue("action references unknown block " +
                       std::to_string(action.block_index) + " of type " +
                       std::to_string(action.type));
      return report;
    }
    if (type_seen[static_cast<std::size_t>(action.block_index)]) {
      report.add_issue("block " + std::to_string(action.block_index) +
                       " of type " + std::to_string(action.type) +
                       " executed more than once (Eq. 3)");
      return report;
    }
    type_seen[static_cast<std::size_t>(action.block_index)] = true;
  }
  for (std::size_t t = 0; t < task.blocks.size(); ++t) {
    std::size_t executed = 0;
    for (const bool b : seen[t]) executed += b ? 1 : 0;
    if (executed != task.blocks[t].size()) {
      report.add_issue("type " + std::to_string(t) + " executed " +
                       std::to_string(executed) + " of " +
                       std::to_string(task.blocks[t].size()) +
                       " blocks (Eq. 2)");
    }
  }
  if (!report.ok) return report;

  // Safety constraints at every phase boundary (and optionally per action).
  task.reset_to_original();
  {
    const constraints::Verdict verdict = checker.check(*task.topo);
    if (!verdict.satisfied) {
      report.add_issue("original topology unsafe: " + verdict.violation);
    }
  }

  const std::vector<core::Phase> phases = plan.phases();
  migration::ActionTypeId previous_type = migration::kNoAction;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const core::Phase& phase = phases[p];
    if (phase.type == previous_type) {
      report.add_issue("adjacent phases share action type " +
                       std::to_string(phase.type));
    }
    previous_type = phase.type;

    for (const std::int32_t b : phase.block_indices) {
      task.blocks[static_cast<std::size_t>(phase.type)]
                 [static_cast<std::size_t>(b)]
                     .apply(*task.topo);
      if (check_every_action) {
        const constraints::Verdict verdict = checker.check(*task.topo);
        if (!verdict.satisfied) {
          report.add_issue("unsafe after action (phase " + std::to_string(p) +
                           ", block " + std::to_string(b) +
                           "): " + verdict.violation);
        }
      }
    }
    if (!check_every_action) {
      const constraints::Verdict verdict = checker.check(*task.topo);
      if (!verdict.satisfied) {
        report.add_issue("unsafe at end of phase " + std::to_string(p) +
                         ": " + verdict.violation);
      }
    }
    ++report.phases_checked;
  }

  // Final topology must be the target.
  const topo::TopologyState reached = topo::TopologyState::capture(*task.topo);
  if (!(reached == task.target_state)) {
    report.add_issue("plan does not reach the target topology");
  }
  task.reset_to_original();
  obs::Registry::global().counter("audit.phases_checked")
      .inc(report.phases_checked);
  obs::Registry::global().counter("audit.issues")
      .inc(static_cast<long long>(report.issues.size()));
  return report;
}

}  // namespace klotski::pipeline
