#include "klotski/pipeline/replan.h"

#include <algorithm>

#include "klotski/core/cost_model.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/obs/metrics.h"
#include "klotski/obs/trace.h"

namespace klotski::pipeline {

namespace {

/// Names of maintenance events active at `step`, in option order.
std::vector<std::size_t> active_maintenance(
    const std::vector<MaintenanceEvent>& events, int step) {
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (step >= events[i].start_step && step < events[i].end_step) {
      active.push_back(i);
    }
  }
  return active;
}

/// Applies the drains of the active maintenance events on top of `state`.
topo::TopologyState with_maintenance(
    topo::TopologyState state, const std::vector<MaintenanceEvent>& events,
    const std::vector<std::size_t>& active) {
  for (const std::size_t i : active) {
    for (const topo::SwitchId sw : events[i].switches) {
      auto& slot = state.switch_states[static_cast<std::size_t>(sw)];
      if (slot == topo::ElementState::kActive) {
        slot = topo::ElementState::kDrained;
      }
    }
  }
  return state;
}

/// True when the rest of `plan` (phases [from..end)) stays safe when
/// executed from the current `done` prefix under `demands`, with the
/// active maintenance drains applied.
bool remaining_plan_safe(migration::MigrationTask& task,
                         const core::Plan& plan, std::size_t from_phase,
                         core::CountVector done,
                         const traffic::DemandSet& demands,
                         const topo::TopologyState& maintained_original,
                         const CheckerConfig& config) {
  migration::MigrationTask probe = task;  // shallow: shares topo pointer
  probe.demands = demands;
  probe.original_state = maintained_original;
  CheckerBundle bundle = make_standard_checker(probe, config);

  core::StateEvaluator evaluator(probe, *bundle.checker, true);
  const std::vector<core::Phase> phases = plan.phases();
  for (std::size_t p = from_phase; p < phases.size(); ++p) {
    done[static_cast<std::size_t>(phases[p].type)] +=
        static_cast<std::int32_t>(phases[p].block_indices.size());
    if (!evaluator.feasible(done)) {
      task.reset_to_original();
      return false;
    }
  }
  task.reset_to_original();
  return true;
}

}  // namespace

ReplanResult execute_with_replanning(migration::MigrationTask& task,
                                     core::Planner& planner,
                                     traffic::Forecaster& forecaster,
                                     const ReplanOptions& options) {
  obs::Span replan_span("replan/execute");
  ReplanResult result;
  const core::CostModel cost(options.planner_options.alpha,
                             options.planner_options.type_weights);

  core::CountVector done(task.blocks.size(), 0);
  core::CountVector target;
  for (const auto& blocks : task.blocks) {
    target.push_back(static_cast<std::int32_t>(blocks.size()));
  }

  std::vector<int> pending_failures = options.failing_phases;
  std::int32_t last_type = migration::kNoAction;
  int step = 0;
  int planning_runs = 0;
  int last_plan_step = 0;

  while (done != target) {
    // (Re-)plan from the current intermediate topology with the freshest
    // forecast and the currently active maintenance drains applied.
    const std::vector<std::size_t> active =
        active_maintenance(options.maintenance, step);
    migration::MigrationTask rest = remaining_task(task, done);
    rest.demands = forecaster.at_step(step);
    rest.original_state =
        with_maintenance(rest.original_state, options.maintenance, active);
    for (const std::size_t i : active) {
      result.log.push_back("maintenance active while planning: " +
                           options.maintenance[i].name);
    }

    CheckerBundle bundle = make_standard_checker(rest, options.checker);
    core::Plan plan;
    {
      obs::Span span("replan/plan_round");
      plan = planner.plan(rest, *bundle.checker, options.planner_options);
    }
    ++planning_runs;
    obs::Registry::global().counter("replan.planning_runs").inc();
    last_plan_step = step;
    if (!plan.found) {
      result.failure = "planning failed at step " + std::to_string(step) +
                       ": " + plan.failure;
      task.reset_to_original();
      return result;
    }
    result.log.push_back("planned " + std::to_string(plan.actions.size()) +
                         " actions (cost " + std::to_string(plan.cost) +
                         ") at step " + std::to_string(step));

    const std::vector<core::Phase> phases = plan.phases();
    bool need_replan = false;
    for (std::size_t p = 0; p < phases.size() && !need_replan; ++p) {
      // Injected operation failure (§7.2): the step fails, the crew stops,
      // and a fresh plan is generated before retrying.
      const auto failing = std::find(pending_failures.begin(),
                                     pending_failures.end(),
                                     result.phases_executed);
      if (failing != pending_failures.end()) {
        pending_failures.erase(failing);
        obs::Registry::global().counter("replan.injected_failures").inc();
        result.log.push_back("phase " +
                             std::to_string(result.phases_executed) +
                             " failed during operation; re-planning");
        need_replan = true;
        break;
      }

      // Execute the phase. Phase block indices of the suffix task map onto
      // the global canonical order by offsetting with the executed prefix,
      // so only their count matters here.
      const core::Phase& phase = phases[p];
      for (std::size_t i = 0; i < phase.block_indices.size(); ++i) {
        result.executed_cost += cost.transition_cost(last_type, phase.type);
        last_type = phase.type;
      }
      done[static_cast<std::size_t>(phase.type)] +=
          static_cast<std::int32_t>(phase.block_indices.size());
      ++result.phases_executed;
      obs::Registry::global().counter("replan.phases_executed").inc();
      ++step;

      if (done == target) break;

      // Refresh the forecast after each migration step (§7.1), watch the
      // maintenance calendar, and re-validate the remaining plan.
      const std::vector<std::size_t> now_active =
          active_maintenance(options.maintenance, step);
      if (now_active != active) {
        obs::Registry::global().counter("replan.maintenance_changes").inc();
        result.log.push_back(
            "maintenance calendar changed at step " + std::to_string(step) +
            "; re-planning");
        need_replan = true;
        continue;
      }
      const double drift =
          forecaster.max_relative_change(last_plan_step, step);
      if (drift > options.demand_change_threshold) {
        result.log.push_back("forecast drifted " + std::to_string(drift) +
                             " since planning; re-planning");
        need_replan = true;
      } else if (!remaining_plan_safe(
                     task, plan, p + 1, done, forecaster.at_step(step),
                     with_maintenance(task.original_state,
                                      options.maintenance, now_active),
                     options.checker)) {
        result.log.push_back(
            "remaining plan violates constraints under updated demand; "
            "re-planning");
        need_replan = true;
      }
    }
    (void)need_replan;  // loop re-plans naturally when not finished
  }

  result.completed = true;
  result.replans = planning_runs - 1;
  obs::Registry::global().counter("replan.replans").inc(result.replans);
  task.reset_to_original();
  return result;
}

}  // namespace klotski::pipeline
