#include "klotski/pipeline/replan.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "klotski/core/cost_model.h"
#include "klotski/core/state_evaluator.h"
#include "klotski/migration/symmetry.h"
#include "klotski/obs/metrics.h"
#include "klotski/obs/trace.h"
#include "klotski/util/timer.h"

namespace klotski::pipeline {

namespace {

/// Indices of maintenance events active at `step`, in option order.
std::vector<std::size_t> active_maintenance(
    const std::vector<MaintenanceEvent>& events, int step) {
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (step >= events[i].start_step && step < events[i].end_step) {
      active.push_back(i);
    }
  }
  return active;
}

/// Everything external pulling elements out of service at one step: the
/// active maintenance calendar plus the fault injector's unplanned drains.
/// The injector side also carries an epoch fingerprint so a change in the
/// fault state (including capacity degradations, which drain nothing)
/// forces a re-plan.
struct Overlay {
  std::vector<std::size_t> maintenance;
  std::vector<topo::SwitchId> fault_switches;
  std::vector<topo::CircuitId> fault_circuits;
  std::uint64_t fault_epoch = 0;
};

/// Computes the overlay for `step`. Side effect: the injector brings the
/// topology's out-of-band fault state (circuit capacities) to this step.
Overlay overlay_at(int step, const ReplanOptions& options,
                   topo::Topology& topo) {
  Overlay overlay;
  overlay.maintenance = active_maintenance(options.maintenance, step);
  if (options.injector != nullptr) {
    overlay.fault_epoch = options.injector->fault_epoch(step);
    options.injector->apply(step, topo, overlay.fault_switches,
                            overlay.fault_circuits);
  }
  return overlay;
}

/// Applies the overlay's drains on top of `state` (active elements only:
/// operated blocks override maintenance and fault state).
topo::TopologyState with_overlay(topo::TopologyState state,
                                 const std::vector<MaintenanceEvent>& events,
                                 const Overlay& overlay) {
  for (const std::size_t i : overlay.maintenance) {
    for (const topo::SwitchId sw : events[i].switches) {
      auto& slot = state.switch_states[static_cast<std::size_t>(sw)];
      if (slot == topo::ElementState::kActive) {
        slot = topo::ElementState::kDrained;
      }
    }
  }
  for (const topo::SwitchId sw : overlay.fault_switches) {
    auto& slot = state.switch_states[static_cast<std::size_t>(sw)];
    if (slot == topo::ElementState::kActive) {
      slot = topo::ElementState::kDrained;
    }
  }
  for (const topo::CircuitId c : overlay.fault_circuits) {
    auto& slot = state.circuit_states[static_cast<std::size_t>(c)];
    if (slot == topo::ElementState::kActive) {
      slot = topo::ElementState::kDrained;
    }
  }
  return state;
}

/// Restores the original state and applies the executed block prefix: the
/// intermediate topology after `done` blocks of each type have run.
void materialize_done(migration::MigrationTask& task,
                      const core::CountVector& done) {
  task.original_state.restore(*task.topo);
  for (std::size_t t = 0; t < task.blocks.size(); ++t) {
    const auto executed = static_cast<std::size_t>(done[t]);
    for (std::size_t i = 0; i < executed; ++i) {
      task.blocks[t][i].apply(*task.topo);
    }
  }
}

/// Drains the overlay's elements on the live topology (versioned mutators,
/// so incremental consumers stay consistent).
void drain_overlay(topo::Topology& topo,
                   const std::vector<MaintenanceEvent>& events,
                   const Overlay& overlay) {
  for (const std::size_t i : overlay.maintenance) {
    for (const topo::SwitchId sw : events[i].switches) {
      if (topo.sw(sw).state == topo::ElementState::kActive) {
        topo.set_switch_state(sw, topo::ElementState::kDrained);
      }
    }
  }
  for (const topo::SwitchId sw : overlay.fault_switches) {
    if (topo.sw(sw).state == topo::ElementState::kActive) {
      topo.set_switch_state(sw, topo::ElementState::kDrained);
    }
  }
  for (const topo::CircuitId c : overlay.fault_circuits) {
    if (topo.circuit(c).state == topo::ElementState::kActive) {
      topo.set_circuit_state(c, topo::ElementState::kDrained);
    }
  }
}

/// True when the rest of `plan` (phases [from..end)) stays safe when
/// executed from the current `done` prefix under `demands`, with the
/// active maintenance/fault drains applied.
bool remaining_plan_safe(migration::MigrationTask& task,
                         const core::Plan& plan, std::size_t from_phase,
                         core::CountVector done,
                         const traffic::DemandSet& demands,
                         const topo::TopologyState& maintained_original,
                         const CheckerConfig& config) {
  migration::MigrationTask probe = task;  // shallow: shares topo pointer
  probe.demands = demands;
  probe.original_state = maintained_original;
  CheckerBundle bundle = make_standard_checker(probe, config);

  core::StateEvaluator evaluator(probe, *bundle.checker, true);
  const std::vector<core::Phase> phases = plan.phases();
  for (std::size_t p = from_phase; p < phases.size(); ++p) {
    done[static_cast<std::size_t>(phases[p].type)] +=
        static_cast<std::int32_t>(phases[p].block_indices.size());
    if (!evaluator.feasible(done)) {
      task.reset_to_original();
      return false;
    }
  }
  task.reset_to_original();
  return true;
}

/// The unexecuted suffix of `plan` (phases [from_phase..end)) rebased into
/// the coordinates of the remaining task: planners emit each type's blocks
/// in their fixed order, so the surviving blocks of a type renumber densely
/// from zero. The result is exactly the action list a planner would have to
/// produce for remaining_task(task, done) to keep executing the old plan
/// unchanged.
std::vector<core::PlannedAction> surviving_suffix(const core::Plan& plan,
                                                  std::size_t from_phase,
                                                  std::size_t num_types) {
  std::vector<core::PlannedAction> suffix;
  std::vector<std::int32_t> next(num_types, 0);
  const std::vector<core::Phase> phases = plan.phases();
  for (std::size_t p = from_phase; p < phases.size(); ++p) {
    const auto t = static_cast<std::size_t>(phases[p].type);
    if (t >= num_types) return {};
    for (std::size_t i = 0; i < phases[p].block_indices.size(); ++i) {
      suffix.push_back(core::PlannedAction{phases[p].type, next[t]});
      ++next[t];
    }
  }
  return suffix;
}

bool contains(const std::vector<int>& items, int value) {
  return std::find(items.begin(), items.end(), value) != items.end();
}

[[noreturn]] void checkpoint_fail(const std::string& message) {
  throw std::invalid_argument("replan-checkpoint: " + message);
}

}  // namespace

json::Value ReplanCheckpoint::to_json() const {
  json::Object root;
  root["schema"] = "klotski.replan-checkpoint.v2";
  root["phases_executed"] = phases_executed;
  root["step"] = step;
  root["next_phase"] = next_phase;
  root["planning_runs"] = planning_runs;
  root["last_plan_step"] = last_plan_step;
  root["phase_retries"] = phase_retries;
  root["fallback_active"] = fallback_active;
  root["fallback_plans"] = fallback_plans;
  root["last_type"] = static_cast<std::int64_t>(last_type);
  root["executed_cost"] = executed_cost;
  root["state_version"] = static_cast<std::int64_t>(state_version);
  json::Array done_json;
  for (const std::int32_t v : done) done_json.push_back(json::Value(v));
  root["done"] = json::Value(std::move(done_json));
  {
    json::Object plan;
    plan["planner"] = plan_planner;
    plan["cost"] = plan_cost;
    json::Array actions;
    for (const core::PlannedAction& a : plan_actions) {
      json::Array pair;
      pair.push_back(json::Value(static_cast<std::int64_t>(a.type)));
      pair.push_back(json::Value(static_cast<std::int64_t>(a.block_index)));
      actions.push_back(json::Value(std::move(pair)));
    }
    plan["actions"] = json::Value(std::move(actions));
    root["plan"] = json::Value(std::move(plan));
  }
  root["replan_pending"] = replan_pending;
  {
    json::Object warm;
    warm["attempts"] = warm_attempts;
    warm["wins"] = warm_wins;
    warm["fallback_full"] = fallback_full;
    warm["sat_generation"] = static_cast<std::int64_t>(sat_generation);
    root["warm"] = json::Value(std::move(warm));
  }
  json::Array consumed;
  for (const int v : consumed_failures) consumed.push_back(json::Value(v));
  root["consumed_failures"] = json::Value(std::move(consumed));
  return json::Value(std::move(root));
}

ReplanCheckpoint ReplanCheckpoint::from_json(const json::Value& value) {
  if (!value.is_object()) checkpoint_fail("document is not an object");
  const std::string schema = value.get_string("schema", "");
  if (schema != "klotski.replan-checkpoint.v2" &&
      schema != "klotski.replan-checkpoint.v1") {
    checkpoint_fail("unknown schema '" + schema + "'");
  }
  ReplanCheckpoint cp;
  cp.phases_executed = static_cast<int>(value.at("phases_executed").as_int());
  cp.step = static_cast<int>(value.at("step").as_int());
  cp.next_phase = static_cast<int>(value.at("next_phase").as_int());
  cp.planning_runs = static_cast<int>(value.at("planning_runs").as_int());
  cp.last_plan_step = static_cast<int>(value.at("last_plan_step").as_int());
  cp.phase_retries = static_cast<int>(value.at("phase_retries").as_int());
  cp.fallback_active = value.at("fallback_active").as_bool();
  cp.fallback_plans = static_cast<int>(value.at("fallback_plans").as_int());
  cp.last_type = static_cast<std::int32_t>(value.at("last_type").as_int());
  cp.executed_cost = value.at("executed_cost").as_double();
  cp.state_version =
      static_cast<std::uint64_t>(value.at("state_version").as_int());
  for (const json::Value& v : value.at("done").as_array()) {
    cp.done.push_back(static_cast<std::int32_t>(v.as_int()));
  }
  const json::Value& plan = value.at("plan");
  cp.plan_planner = plan.get_string("planner", "");
  cp.plan_cost = plan.get_double("cost", 0.0);
  for (const json::Value& v : plan.at("actions").as_array()) {
    const json::Array& pair = v.as_array();
    if (pair.size() != 2) checkpoint_fail("plan action is not a [type, index] pair");
    core::PlannedAction action;
    action.type = static_cast<migration::ActionTypeId>(pair[0].as_int());
    action.block_index = static_cast<std::int32_t>(pair[1].as_int());
    cp.plan_actions.push_back(action);
  }
  // v2 warm-state provenance. A v1 document predates warm-start replanning,
  // so the zero defaults are exact — and replan_pending stays false (v1
  // never stored a plan when a re-plan was pending, so a stored plan always
  // meant "resume executing it").
  cp.replan_pending = value.get_bool("replan_pending", false);
  if (value.as_object().contains("warm")) {
    const json::Value& warm = value.at("warm");
    cp.warm_attempts = static_cast<int>(warm.get_int("attempts", 0));
    cp.warm_wins = static_cast<int>(warm.get_int("wins", 0));
    cp.fallback_full = static_cast<int>(warm.get_int("fallback_full", 0));
    cp.sat_generation =
        static_cast<std::uint64_t>(warm.get_int("sat_generation", 0));
  }
  for (const json::Value& v : value.at("consumed_failures").as_array()) {
    cp.consumed_failures.push_back(static_cast<int>(v.as_int()));
  }
  if (cp.next_phase < 0 || cp.phases_executed < 0 || cp.step < 0) {
    checkpoint_fail("negative execution counter");
  }
  return cp;
}

ReplanResult execute_with_replanning(migration::MigrationTask& task,
                                     core::Planner& planner,
                                     traffic::Forecaster& forecaster,
                                     const ReplanOptions& options) {
  obs::Span replan_span("replan/execute");
  ReplanResult result;
  const core::CostModel cost(options.planner_options.alpha,
                             options.planner_options.type_weights);

  core::CountVector done(task.blocks.size(), 0);
  core::CountVector target;
  for (const auto& blocks : task.blocks) {
    target.push_back(static_cast<std::int32_t>(blocks.size()));
  }

  std::int32_t last_type = migration::kNoAction;
  int step = 0;
  int planning_runs = 0;
  int last_plan_step = 0;
  std::vector<int> consumed_failures;
  bool fallback_active = false;
  int fallback_plans = 0;
  std::unique_ptr<core::Planner> fallback;
  // Retry bookkeeping for the phase currently failing (executed-phase
  // indices never repeat after success, so one slot suffices).
  int retry_phase = -1;
  int retry_count = 0;

  core::Plan plan;
  std::size_t start_phase = 0;
  bool have_plan = false;

  // ---- Warm-start replanning state (DESIGN.md §11) ----
  const std::size_t num_types = task.blocks.size();
  // The surviving suffix of the plan that was executing when the last
  // re-plan triggered, rebased into remaining-task coordinates. One-shot:
  // the next planning round consumes it (repair attempt and/or arena seed).
  std::vector<core::PlannedAction> warm_seed;
  // The verdict cache harvested from the last planning round together with
  // the scenario it was computed under. Carried into the next round only
  // when the guards in carried_cache() prove every surviving entry would
  // reproduce verbatim (see SatCache::carried). Never checkpointed: carried
  // entries change latency, not outcomes, so a resume without the cache
  // replays the identical trajectory.
  struct WarmCarry {
    std::shared_ptr<core::SatCache> cache;
    core::CountVector done_at;
    std::uint64_t base_signature = 0;
    std::vector<double> capacities;
    traffic::DemandSet demands;
    bool valid = false;
  } carry;
  // Incremental symmetry for the repair gate; persists across rounds so
  // each refresh only reprocesses the dirty frontier of the refinement.
  migration::IncrementalSymmetry warm_symmetry;

  auto snapshot_capacities = [&]() {
    std::vector<double> caps;
    caps.reserve(task.topo->num_circuits());
    for (const topo::Circuit& c : task.topo->circuits()) {
      caps.push_back(c.capacity_tbps);
    }
    return caps;
  };

  // Decides whether (and how much of) the carried verdict cache is provably
  // still exact for a round planning `rest` from the current `done` prefix.
  // Rules (DESIGN.md §11): any reuse requires the executed prefix and the
  // post-overlay base state to be unchanged — only then does a count vector
  // still materialize the identical topology. On top of that, SAT entries
  // survive only a completely unchanged scenario, while UNSAT entries also
  // survive demand growth and, under equal-split routing (routes ignore
  // capacity, so load ratios only rise), capacity loss. Anything else drops
  // the carry.
  auto carried_cache = [&](const migration::MigrationTask& rest)
      -> std::shared_ptr<core::SatCache> {
    if (!carry.valid) return nullptr;
    if (carry.done_at != done) return nullptr;
    if (rest.original_state.signature() != carry.base_signature) {
      return nullptr;
    }
    const std::vector<topo::Circuit>& circuits = task.topo->circuits();
    if (carry.capacities.size() != circuits.size()) return nullptr;
    bool caps_equal = true;
    bool caps_le = true;
    for (std::size_t i = 0; i < circuits.size(); ++i) {
      if (circuits[i].capacity_tbps != carry.capacities[i]) {
        caps_equal = false;
      }
      if (circuits[i].capacity_tbps > carry.capacities[i]) caps_le = false;
    }
    bool dem_equal = rest.demands.size() == carry.demands.size();
    bool dem_ge = dem_equal;
    for (std::size_t i = 0; dem_ge && i < rest.demands.size(); ++i) {
      const traffic::Demand& now = rest.demands[i];
      const traffic::Demand& then = carry.demands[i];
      if (now.kind != then.kind || now.sources != then.sources ||
          now.targets != then.targets) {
        dem_equal = false;
        dem_ge = false;
        break;
      }
      if (now.volume_tbps != then.volume_tbps) dem_equal = false;
      if (now.volume_tbps < then.volume_tbps) dem_ge = false;
    }
    const bool keep_sat = dem_equal && caps_equal;
    const bool keep_unsat =
        dem_ge &&
        (caps_equal || (caps_le && options.checker.routing ==
                                       traffic::SplitMode::kEqualSplit));
    if (keep_sat && keep_unsat) return carry.cache;  // scenario unchanged
    if (!keep_sat && !keep_unsat) return nullptr;
    const core::CountVector zeros(done.size(), 0);
    auto filtered = std::make_shared<core::SatCache>(carry.cache->carried(
        zeros.data(), zeros.size(), keep_sat, keep_unsat));
    if (filtered->size() == 0) return nullptr;
    filtered->set_epoch_key(carry.cache->epoch_key());
    return filtered;
  };

  // The prefix-preserving repair (DESIGN.md §11): keep executing the
  // surviving suffix of the previous plan when it (a) only operates switches
  // whose symmetry classes the disruption left alone, (b) passes a
  // from-scratch revalidation at every action-type boundary under the
  // current forecast (and under measured demand when the forecast is
  // biased), and (c) costs at most repair_cost_slack times an admissible
  // lower bound of the from-scratch optimum. On acceptance `plan` holds the
  // suffix and the verdict carry is re-harvested; on decline `reason` says
  // why and the caller falls back to a (still warm-seeded) full search.
  auto try_suffix_repair = [&](const Overlay& overlay,
                               std::string& reason) -> bool {
    migration::MigrationTask rest = remaining_task(task, done);
    rest.demands = forecaster.forecast_at_step(step);
    rest.original_state = with_overlay(std::move(rest.original_state),
                                       options.maintenance, overlay);

    // The suffix must cover exactly the remaining blocks of every type.
    core::CountVector rest_target;
    for (const auto& blocks : rest.blocks) {
      rest_target.push_back(static_cast<std::int32_t>(blocks.size()));
    }
    core::CountVector suffix_total(num_types, 0);
    for (const core::PlannedAction& a : warm_seed) {
      const auto t = static_cast<std::size_t>(a.type);
      if (t >= num_types) {
        reason = "suffix references an unknown action type";
        return false;
      }
      ++suffix_total[t];
    }
    if (suffix_total != rest_target) {
      reason = "suffix does not cover the remaining blocks";
      return false;
    }

    // Symmetry gate: compare the equivalence classes of the current
    // executed prefix under the fault/maintenance state the plan was built
    // against with the classes under the current state. A suffix operating
    // a switch whose interchangeability set changed is quality-suspect (its
    // blocks were formed under the old classes), so prefer a full re-plan.
    // This is a quality heuristic only — safety is decided by the
    // revalidation below, which assumes nothing about interchangeability.
    {
      obs::Span symmetry_span("replan/repair_symmetry");
      // Fast path: an identical active-maintenance set and an identical
      // fault epoch (which fingerprints drains and capacity degradations
      // alike — capacities are a pure function of the active event set)
      // mean the plan-time and current comparison states materialize the
      // identical topology, so the refinement cannot have moved and the
      // two refreshes below would diff nothing.
      const bool same_world =
          active_maintenance(options.maintenance, last_plan_step) ==
              overlay.maintenance &&
          (options.injector == nullptr ||
           options.injector->fault_epoch(last_plan_step) ==
               overlay.fault_epoch);
      if (!same_world) {
        Overlay plan_overlay = overlay_at(last_plan_step, options, *task.topo);
        materialize_done(task, done);
        drain_overlay(*task.topo, options.maintenance, plan_overlay);
        warm_symmetry.refresh(*task.topo);
        overlay_at(step, options, *task.topo);  // restore this step's faults
        materialize_done(task, done);
        drain_overlay(*task.topo, options.maintenance, overlay);
        warm_symmetry.refresh(*task.topo);
        const std::vector<topo::SwitchId>& changed =
            warm_symmetry.changed_switches();
        bool hit = false;
        if (!changed.empty()) {
          std::vector<std::uint8_t> is_changed(task.topo->num_switches(), 0);
          for (const topo::SwitchId s : changed) {
            is_changed[static_cast<std::size_t>(s)] = 1;
          }
          for (const auto& blocks : rest.blocks) {
            for (const migration::OperationBlock& block : blocks) {
              for (const migration::ElementOp& op : block.ops) {
                if (op.kind == migration::ElementOp::Kind::kSwitch) {
                  hit = is_changed[static_cast<std::size_t>(op.id)] != 0;
                } else {
                  const topo::Circuit& c = task.topo->circuit(op.id);
                  hit = is_changed[static_cast<std::size_t>(c.a)] != 0 ||
                        is_changed[static_cast<std::size_t>(c.b)] != 0;
                }
                if (hit) break;
              }
              if (hit) break;
            }
            if (hit) break;
          }
        }
        task.reset_to_original();
        if (hit) {
          reason = "symmetry classes changed under the suffix";
          return false;
        }
      }
    }

    // From-scratch revalidation of every boundary state (Eq. 4-6) the
    // suffix visits, under the current forecast. The evaluator adopts the
    // carried verdict cache when the guards prove it exact — verdicts are
    // identical either way, only faster.
    obs::Span revalidate_span("replan/repair_revalidate");
    CheckerBundle bundle = make_standard_checker(rest, options.checker);
    core::StateEvaluator evaluator(rest, *bundle.checker, true);
    std::shared_ptr<core::SatCache> repair_cache = carried_cache(rest);
    if (repair_cache == nullptr) {
      repair_cache = std::make_shared<core::SatCache>();
    }
    evaluator.adopt_cache(repair_cache);

    double suffix_cost = 0.0;
    bool safe = true;
    {
      core::CountVector cur(num_types, 0);
      std::int32_t last = -1;
      if (!evaluator.feasible(cur)) safe = false;
      for (std::size_t i = 0; safe && i < warm_seed.size(); ++i) {
        const core::PlannedAction& a = warm_seed[i];
        if (a.type != last && last != -1 && !evaluator.feasible(cur)) {
          safe = false;
          break;
        }
        suffix_cost += cost.transition_cost(last, a.type);
        ++cur[static_cast<std::size_t>(a.type)];
        last = a.type;
      }
      if (safe && !evaluator.feasible(cur)) safe = false;
    }
    task.reset_to_original();
    if (!safe) {
      reason = "suffix violates constraints under the current forecast";
      return false;
    }

    // Cost gate: the heuristic at the all-zero state is an admissible lower
    // bound of the optimal from-scratch cost, so accepting under
    // repair_cost_slack bounds the suboptimality of keeping the suffix.
    const core::CountVector zeros(num_types, 0);
    const double bound = cost.heuristic(zeros, rest_target, -1);
    if (suffix_cost > options.repair_cost_slack * bound) {
      reason = "suffix cost " + std::to_string(suffix_cost) +
               " exceeds slack x lower bound " +
               std::to_string(options.repair_cost_slack * bound);
      return false;
    }

    // A suffix kept under a biased forecast must also be safe under the
    // demands actually measured right now (mirrors the full path's biased
    // re-validation).
    if (forecaster.biased_at(step)) {
      core::Plan probe;
      probe.actions = warm_seed;
      if (!remaining_plan_safe(task, probe, 0, done, forecaster.at_step(step),
                               with_overlay(task.original_state,
                                            options.maintenance, overlay),
                               options.checker)) {
        reason = "suffix violates measured demand (biased forecast)";
        return false;
      }
    }

    core::Plan repaired;
    repaired.found = true;
    repaired.planner = plan.planner;
    if (repaired.planner.empty()) repaired.planner = planner.name();
    repaired.actions = warm_seed;
    repaired.cost = suffix_cost;
    repaired.provenance.warm_repair = true;
    plan = std::move(repaired);

    repair_cache->set_epoch_key(task.topo->state_version());
    carry.cache = std::move(repair_cache);
    carry.done_at = done;
    carry.base_signature = rest.original_state.signature();
    carry.capacities = snapshot_capacities();
    carry.demands = std::move(rest.demands);
    carry.valid = true;
    return true;
  };

  if (options.resume != nullptr) {
    const ReplanCheckpoint& cp = *options.resume;
    if (cp.done.size() != done.size()) {
      throw std::invalid_argument(
          "replan-checkpoint: done arity does not match the task");
    }
    done = cp.done;
    result.phases_executed = cp.phases_executed;
    result.executed_cost = cp.executed_cost;
    result.phase_retries = cp.phase_retries;
    step = cp.step;
    planning_runs = cp.planning_runs;
    last_plan_step = cp.last_plan_step;
    last_type = cp.last_type;
    fallback_active = cp.fallback_active;
    fallback_plans = cp.fallback_plans;
    consumed_failures = cp.consumed_failures;
    result.used_fallback = fallback_active;
    result.warm_attempts = cp.warm_attempts;
    result.warm_wins = cp.warm_wins;
    result.fallback_full = cp.fallback_full;
    if (!cp.plan_actions.empty()) {
      plan.found = true;
      plan.planner = cp.plan_planner;
      plan.cost = cp.plan_cost;
      plan.actions = cp.plan_actions;
      if (cp.replan_pending) {
        // The interrupted run was about to re-plan: reconstruct the warm
        // seed it would have carried instead of resuming execution, so the
        // resumed trajectory makes the same repair-vs-search decision.
        warm_seed = surviving_suffix(
            plan, static_cast<std::size_t>(cp.next_phase), num_types);
      } else {
        have_plan = true;
        start_phase = static_cast<std::size_t>(cp.next_phase);
      }
    }
    result.log.push_back(
        "resumed from checkpoint: " + std::to_string(cp.phases_executed) +
        " phases executed, step " + std::to_string(cp.step));
    obs::Registry::global().counter("replan.resumes").inc();
  }

  while (done != target) {
    // Maintenance calendar + fault state for this round; the injector also
    // brings circuit capacities to this step.
    Overlay overlay = overlay_at(step, options, *task.topo);

    if (!have_plan) {
      util::Stopwatch round_watch;
      bool round_warm = false;
      bool round_seeded = false;

      // Repair-first (DESIGN.md §11): try to keep the surviving suffix
      // before paying for a search. Skipped under the fallback planner
      // (degradation means the primary's plans are no longer trusted) and
      // once the re-plan budget is exhausted (the full path must degrade).
      if (options.warm_repair && !warm_seed.empty() && !fallback_active &&
          !(options.max_replans > 0 &&
            planning_runs >= options.max_replans)) {
        obs::Span repair_span("replan/repair_attempt");
        ++result.warm_attempts;
        obs::Registry::global().counter("replan.warm_attempts").inc();
        std::string reason;
        if (try_suffix_repair(overlay, reason)) {
          round_warm = true;
          ++result.warm_wins;
          obs::Registry::global().counter("replan.warm_wins").inc();
          ++planning_runs;
          obs::Registry::global().counter("replan.planning_runs").inc();
          last_plan_step = step;
          result.log.push_back(
              "warm repair kept " + std::to_string(plan.actions.size()) +
              " surviving actions (cost " + std::to_string(plan.cost) +
              ") at step " + std::to_string(step));
        } else {
          ++result.fallback_full;
          obs::Registry::global().counter("replan.fallback_full").inc();
          result.log.push_back("warm repair declined (" + reason +
                               "); planning from scratch");
        }
      }

      if (!round_warm) {
      // (Re-)plan from the current intermediate topology with the freshest
      // forecast and the active maintenance/fault drains applied. Bounded
      // retry-with-backoff when planning fails under an active fault (the
      // fault may clear), truth re-validation when the forecast is biased,
      // and graceful degradation to the fallback planner after max_replans.
      bool use_truth = false;
      int plan_attempt = 0;
      core::WarmStart warm_start;
      for (;;) {
        migration::MigrationTask rest = remaining_task(task, done);
        const bool biased = !use_truth && forecaster.biased_at(step);
        rest.demands = use_truth ? forecaster.at_step(step)
                                 : forecaster.forecast_at_step(step);
        rest.original_state = with_overlay(std::move(rest.original_state),
                                           options.maintenance, overlay);
        for (const std::size_t i : overlay.maintenance) {
          result.log.push_back("maintenance active while planning: " +
                               options.maintenance[i].name);
        }

        if (options.max_replans > 0 && planning_runs >= options.max_replans &&
            !fallback_active) {
          fallback_active = true;
          result.used_fallback = true;
          result.log.push_back(
              "re-plan budget (" + std::to_string(options.max_replans) +
              ") exhausted; degrading to fallback planner '" +
              options.fallback_planner + "'");
          obs::Registry::global().counter("replan.fallback_activations").inc();
        }
        if (fallback_active && fallback == nullptr) {
          fallback = make_planner(options.fallback_planner);
        }
        core::Planner& active_planner =
            fallback_active ? *fallback : planner;

        // Warm search (DESIGN.md §11): seed the arena with the surviving
        // suffix and adopt the carried verdict cache when provably exact.
        // Both are pure accelerators — the planner's result is identical to
        // a cold run — and the shared cache doubles as the harvest vehicle
        // for the next epoch's carry. The fallback planner always runs
        // cold: its plans must not depend on the primary's artifacts.
        core::PlannerOptions round_options = options.planner_options;
        if (options.warm_repair && !fallback_active) {
          warm_start = core::WarmStart{};
          warm_start.seed_actions = warm_seed;
          warm_start.sat_cache = carried_cache(rest);
          if (warm_start.sat_cache == nullptr) {
            warm_start.sat_cache = std::make_shared<core::SatCache>();
          }
          round_options.warm = &warm_start;
          round_seeded = !warm_start.seed_actions.empty() ||
                         warm_start.sat_cache->size() > 0;
        }

        CheckerBundle bundle = make_standard_checker(rest, options.checker);
        {
          obs::Span span("replan/plan_round");
          plan = active_planner.plan(rest, *bundle.checker, round_options);
        }
        ++planning_runs;
        if (fallback_active) ++fallback_plans;
        obs::Registry::global().counter("replan.planning_runs").inc();
        last_plan_step = step;

        if (!plan.found) {
          // Under an injector the infeasibility may be a transient fault;
          // wait out the backoff and try again before giving up.
          if (options.injector != nullptr &&
              plan_attempt < options.max_phase_retries) {
            ++plan_attempt;
            ++result.phase_retries;
            const int wait =
                std::min(options.backoff_steps << (plan_attempt - 1),
                         options.max_backoff_steps);
            step += std::max(wait, 1);
            result.log.push_back(
                "planning failed (" + plan.failure + "); backing off " +
                std::to_string(std::max(wait, 1)) + " steps (attempt " +
                std::to_string(plan_attempt) + ")");
            obs::Registry::global().counter("replan.planning_retries").inc();
            overlay = overlay_at(step, options, *task.topo);
            continue;
          }
          result.failure = "planning failed at step " +
                           std::to_string(step) + ": " + plan.failure;
          task.reset_to_original();
          return result;
        }

        // A plan built on a biased forecast must be safe under the demands
        // actually measured right now before anything executes (§7.2:
        // forecasts can be wrong; executed states may not be).
        if (biased &&
            !remaining_plan_safe(task, plan, 0, done,
                                 forecaster.at_step(step),
                                 with_overlay(task.original_state,
                                              options.maintenance, overlay),
                                 options.checker)) {
          result.log.push_back(
              "plan built on biased forecast violates measured demand; "
              "re-planning on measured demand");
          obs::Registry::global().counter("replan.bias_replans").inc();
          use_truth = true;
          continue;
        }

        // Harvest this round's verdicts as the next epoch's carry. The
        // cache is shared with the planner's evaluator, so it already holds
        // every verdict the search derived; the scenario snapshot lets
        // carried_cache() decide later how much of it survives.
        if (round_options.warm != nullptr) {
          warm_start.sat_cache->set_epoch_key(task.topo->state_version());
          carry.cache = warm_start.sat_cache;
          carry.done_at = done;
          carry.base_signature = rest.original_state.signature();
          carry.capacities = snapshot_capacities();
          carry.demands = std::move(rest.demands);
          carry.valid = true;
        }
        break;
      }
      result.log.push_back("planned " + std::to_string(plan.actions.size()) +
                           " actions (cost " + std::to_string(plan.cost) +
                           ") at step " + std::to_string(step));
      }  // !round_warm

      warm_seed.clear();
      result.rounds.push_back(ReplanRound{last_plan_step, round_warm,
                                          round_seeded,
                                          round_watch.elapsed_seconds()});
      start_phase = 0;
    }
    have_plan = false;

    const std::vector<core::Phase> phases = plan.phases();
    bool need_replan = false;
    for (std::size_t p = start_phase; p < phases.size() && !need_replan;
         ++p) {
      const core::Phase& phase = phases[p];

      // Injected operation failure (§7.2): the step fails, the crew stops
      // (rolling back any partially applied ops), and a fresh plan is
      // generated before retrying — up to max_phase_retries times.
      int fail_ops = -1;
      if (contains(options.failing_phases, result.phases_executed) &&
          !contains(consumed_failures, result.phases_executed)) {
        consumed_failures.push_back(result.phases_executed);
        fail_ops = 0;
      }
      const int attempt =
          retry_phase == result.phases_executed ? retry_count : 0;
      if (fail_ops < 0 && options.injector != nullptr) {
        fail_ops = options.injector->phase_failure_ops(
            result.phases_executed, attempt);
      }
      if (fail_ops >= 0) {
        obs::Registry::global().counter("replan.injected_failures").inc();
        if (fail_ops > 0) {
          // Partial block application: the config push died mid-block. The
          // crew rolls the torn state back to the pre-step snapshot before
          // anyone re-plans.
          const auto t = static_cast<std::size_t>(phase.type);
          const migration::OperationBlock& block =
              task.blocks[t][static_cast<std::size_t>(done[t])];
          materialize_done(task, done);
          const topo::TopologyState before =
              topo::TopologyState::capture(*task.topo);
          block.apply_prefix(*task.topo,
                             static_cast<std::size_t>(fail_ops));
          before.restore(*task.topo);
          task.reset_to_original();
          result.log.push_back(
              "phase " + std::to_string(result.phases_executed) +
              " failed after " + std::to_string(fail_ops) +
              " ops; rolled back, re-planning");
        } else {
          result.log.push_back("phase " +
                               std::to_string(result.phases_executed) +
                               " failed during operation; re-planning");
        }
        if (retry_phase != result.phases_executed) {
          retry_phase = result.phases_executed;
          retry_count = 0;
        }
        ++retry_count;
        if (retry_count > options.max_phase_retries) {
          result.failure =
              "phase " + std::to_string(result.phases_executed) +
              " failed " + std::to_string(retry_count) +
              " attempts (retry budget " +
              std::to_string(options.max_phase_retries) + ")";
          task.reset_to_original();
          return result;
        }
        ++result.phase_retries;
        const int wait = std::min(options.backoff_steps << (retry_count - 1),
                                  options.max_backoff_steps);
        if (wait > 0) {
          step += wait;
          result.log.push_back("backing off " + std::to_string(wait) +
                               " steps before retry " +
                               std::to_string(retry_count));
        }
        // The failed phase never executed, so the surviving suffix for the
        // warm repair starts at the failed phase itself.
        warm_seed = surviving_suffix(plan, p, num_types);
        need_replan = true;
        break;
      }

      // Execute the phase. Phase block indices of the suffix task map onto
      // the global canonical order by offsetting with the executed prefix,
      // so only their count matters here.
      for (std::size_t i = 0; i < phase.block_indices.size(); ++i) {
        result.executed_cost += cost.transition_cost(last_type, phase.type);
        last_type = phase.type;
      }
      done[static_cast<std::size_t>(phase.type)] +=
          static_cast<std::int32_t>(phase.block_indices.size());
      ++result.phases_executed;
      obs::Registry::global().counter("replan.phases_executed").inc();

      // Invariant observer: hand out the materialized executed state (with
      // the overlay drains) under the ground-truth demands of the step the
      // phase executed at.
      if (options.observer) {
        materialize_done(task, done);
        drain_overlay(*task.topo, options.maintenance, overlay);
        const traffic::DemandSet truth = forecaster.at_step(step);
        const PhaseObservation observation{
            result.phases_executed,
            step,
            phase.type,
            static_cast<int>(phase.block_indices.size()),
            done,
            result.executed_cost,
            *task.topo,
            truth};
        options.observer(observation);
        task.reset_to_original();
      }
      ++step;

      // Refresh the forecast after each migration step (§7.1), watch the
      // maintenance calendar and the fault state, and re-validate the
      // remaining plan.
      if (done != target) {
        const Overlay now = overlay_at(step, options, *task.topo);
        if (now.maintenance != overlay.maintenance) {
          obs::Registry::global().counter("replan.maintenance_changes").inc();
          result.log.push_back("maintenance calendar changed at step " +
                               std::to_string(step) + "; re-planning");
          need_replan = true;
        } else if (now.fault_epoch != overlay.fault_epoch) {
          obs::Registry::global().counter("replan.fault_changes").inc();
          result.log.push_back("fault state changed at step " +
                               std::to_string(step) + "; re-planning");
          need_replan = true;
        } else {
          const double drift =
              forecaster.max_relative_change(last_plan_step, step);
          if (drift > options.demand_change_threshold) {
            result.log.push_back("forecast drifted " +
                                 std::to_string(drift) +
                                 " since planning; re-planning");
            need_replan = true;
          } else if (!remaining_plan_safe(
                         task, plan, p + 1, done, forecaster.at_step(step),
                         with_overlay(task.original_state,
                                      options.maintenance, now),
                         options.checker)) {
            result.log.push_back(
                "remaining plan violates constraints under updated demand; "
                "re-planning");
            need_replan = true;
          }
        }
        if (need_replan) {
          // Executed phases [..p]; the rest of the plan survives as the
          // warm-repair seed for the round the trigger just scheduled.
          warm_seed = surviving_suffix(plan, p + 1, num_types);
        }
      }

      if (options.checkpoint_sink) {
        ReplanCheckpoint cp;
        cp.phases_executed = result.phases_executed;
        cp.step = step;
        cp.planning_runs = planning_runs;
        cp.last_plan_step = last_plan_step;
        cp.phase_retries = result.phase_retries;
        cp.fallback_active = fallback_active;
        cp.fallback_plans = fallback_plans;
        cp.last_type = last_type;
        cp.executed_cost = result.executed_cost;
        cp.state_version = task.topo->state_version();
        cp.done = done;
        cp.consumed_failures = consumed_failures;
        cp.warm_attempts = result.warm_attempts;
        cp.warm_wins = result.warm_wins;
        cp.fallback_full = result.fallback_full;
        cp.sat_generation = carry.valid ? carry.cache->epoch_key() : 0;
        // v2 stores the plan even when a re-plan is pending: the resume
        // rebuilds the warm-repair seed from its suffix, keeping the
        // resumed trajectory identical to the uninterrupted one.
        if (done != target && p + 1 < phases.size()) {
          cp.next_phase = static_cast<int>(p) + 1;
          cp.plan_actions = plan.actions;
          cp.plan_cost = plan.cost;
          cp.plan_planner = plan.planner;
          cp.replan_pending = need_replan;
        }
        options.checkpoint_sink(cp);
      }

      if (done != target && options.stop_requested &&
          options.stop_requested()) {
        // Graceful stop: the checkpoint for this phase is already out, so
        // the caller can resume exactly here. Not a failure.
        result.stopped = true;
        result.replans = planning_runs - 1;
        result.fallback_plans = fallback_plans;
        result.log.push_back("stop requested after phase " +
                             std::to_string(result.phases_executed) +
                             "; checkpointed and stopping");
        obs::Registry::global().counter("replan.stops").inc();
        task.reset_to_original();
        return result;
      }

      if (done == target) break;
    }
    start_phase = 0;
  }

  result.completed = true;
  result.replans = planning_runs - 1;
  result.fallback_plans = fallback_plans;
  obs::Registry::global().counter("replan.replans").inc(result.replans);
  task.reset_to_original();
  return result;
}

}  // namespace klotski::pipeline
