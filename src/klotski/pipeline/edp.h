// EDP-Lite (§5): the end-to-end pipeline that productionizes Klotski.
//
// Input:  an NPD document (original/target topologies + demand information).
// Output: an ordered list of topology phases, each corresponding to one
//         migration step, plus the plan and its statistics.
//
// The pipeline wires together the standard constraint stack (ports ->
// space/power -> demands, cheap checks first) and the planner selected by
// name, mirroring how operators pick a planner per task.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "klotski/constraints/composite.h"
#include "klotski/constraints/demand_checker.h"
#include "klotski/constraints/space_power_checker.h"
#include "klotski/core/compact_state.h"
#include "klotski/core/plan.h"
#include "klotski/core/planner.h"
#include "klotski/migration/task.h"
#include "klotski/npd/npd.h"
#include "klotski/traffic/ecmp.h"

namespace klotski::pipeline {

/// Creates a planner by name: "astar", "dp", "mrc", "janus", "brute".
/// Throws std::invalid_argument on unknown names.
std::unique_ptr<core::Planner> make_planner(const std::string& name);

/// The standard constraint stack bound to a task's topology. The bundle
/// owns the ECMP router the demand checker needs; keep it alive as long as
/// the checker is used.
struct CheckerBundle {
  std::unique_ptr<traffic::EcmpRouter> router;
  std::unique_ptr<constraints::CompositeChecker> checker;
};

struct CheckerConfig {
  constraints::DemandCheckerParams demand;
  constraints::SpacePowerParams space_power;
  /// Plain ECMP by default; kCapacityWeighted models the §7.1 temporary
  /// routing configurations that balance traffic by circuit capacity.
  traffic::SplitMode routing = traffic::SplitMode::kEqualSplit;
  /// Intra-check worker threads for the ECMP router (> 1 recomputes
  /// independent dirty demand groups of one satisfiability check in
  /// parallel; results stay bit-identical to serial). Composes with
  /// PlannerOptions::num_threads: run_pipeline splits this budget across
  /// the evaluator's worker-private router clones.
  int router_threads = 1;
};

CheckerBundle make_standard_checker(migration::MigrationTask& task,
                                    const CheckerConfig& config = {});

/// Factory form of make_standard_checker for PlannerOptions::checker_factory:
/// each call builds a fresh bundle on the given task (ParallelEvaluator
/// passes a worker-private task + topology clone) and returns the composite
/// as an aliasing shared_ptr that keeps the whole bundle — router included —
/// alive.
core::CheckerFactory make_standard_checker_factory(
    const CheckerConfig& config = {});

struct EdpOptions {
  std::string planner = "astar";
  core::PlannerOptions planner_options;
  CheckerConfig checker;
  /// When set, replaces the generated demand set before planning — the
  /// §7.1 workflow of feeding refreshed forecasts into the planner. The
  /// demands must reference switches of the built topology by id (use
  /// traffic::demands_from_json to resolve a matrix file).
  std::optional<traffic::DemandSet> demand_override;
};

struct EdpResult {
  migration::MigrationCase migration;
  core::Plan plan;
  /// Element-state snapshot after every phase (one per migration step),
  /// starting with the original state.
  std::vector<topo::TopologyState> phase_states;
};

/// Runs the whole pipeline: NPD -> topologies -> plan -> phases.
EdpResult run_pipeline(const npd::NpdDocument& doc,
                       const EdpOptions& options = {});

/// Builds the suffix task that remains after `done` blocks of each type
/// have executed: its original state is the corresponding intermediate
/// topology and its block lists are the unexecuted tails. Used by
/// re-planning (§7.1) and failure recovery (§7.2).
migration::MigrationTask remaining_task(const migration::MigrationTask& task,
                                        const core::CountVector& done);

}  // namespace klotski::pipeline
