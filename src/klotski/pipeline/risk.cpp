#include "klotski/pipeline/risk.h"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "klotski/util/string_util.h"

namespace klotski::pipeline {

namespace {

PhaseRisk measure(migration::MigrationTask& task, traffic::EcmpRouter& router,
                  double theta) {
  PhaseRisk risk;
  traffic::LoadVector loads;
  if (!router.assign_all(task.demands, loads)) {
    // Unroutable boundary: report zero headroom and full risk.
    risk.max_utilization = 1e9;
    risk.growth_headroom = 0.0;
    risk.worst_circuit = "(demand unroutable)";
    risk.active_capacity_tbps = task.topo->active_capacity_tbps();
    return risk;
  }
  const traffic::WorstCircuit worst = traffic::worst_circuit(*task.topo,
                                                             loads);
  risk.max_utilization = worst.utilization;
  if (worst.circuit != topo::kInvalidCircuit) {
    const topo::Circuit& c = task.topo->circuit(worst.circuit);
    risk.worst_circuit =
        task.topo->sw(c.a).name + " - " + task.topo->sw(c.b).name;
  }
  // Loads scale linearly with uniform demand growth, so the tolerated
  // growth factor is theta / current worst utilization.
  risk.growth_headroom = worst.utilization > 0.0
                             ? theta / worst.utilization
                             : std::numeric_limits<double>::infinity();
  risk.active_capacity_tbps = task.topo->active_capacity_tbps();
  return risk;
}

}  // namespace

std::size_t RiskReport::riskiest() const {
  std::size_t index = 0;
  for (std::size_t i = 1; i < phases.size(); ++i) {
    if (phases[i].max_utilization > phases[index].max_utilization) index = i;
  }
  return index;
}

RiskReport assess_risk(migration::MigrationTask& task, const core::Plan& plan,
                       double theta, traffic::SplitMode routing) {
  if (!plan.found) {
    throw std::invalid_argument("assess_risk: plan was not found (" +
                                plan.failure + ")");
  }
  RiskReport report;
  report.theta = theta;

  traffic::EcmpRouter router(*task.topo, routing);

  task.reset_to_original();
  PhaseRisk origin = measure(task, router, theta);
  origin.phase_index = -1;
  origin.action_type = "(original topology)";
  report.phases.push_back(std::move(origin));

  int index = 0;
  for (const core::Phase& phase : plan.phases()) {
    for (const std::int32_t b : phase.block_indices) {
      task.blocks[static_cast<std::size_t>(phase.type)]
                 [static_cast<std::size_t>(b)]
                     .apply(*task.topo);
    }
    PhaseRisk risk = measure(task, router, theta);
    risk.phase_index = index++;
    risk.action_type =
        task.action_types[static_cast<std::size_t>(phase.type)].label;
    report.phases.push_back(std::move(risk));
  }
  task.reset_to_original();
  return report;
}

json::Value risk_to_json(const RiskReport& report) {
  json::Object root;
  root["theta"] = report.theta;
  root["riskiest_phase"] = static_cast<std::int64_t>(report.riskiest());
  json::Array phases;
  for (const PhaseRisk& phase : report.phases) {
    json::Object o;
    o["phase"] = phase.phase_index;
    o["action_type"] = phase.action_type;
    o["max_utilization"] = phase.max_utilization;
    o["worst_circuit"] = phase.worst_circuit;
    o["growth_headroom"] = phase.growth_headroom;
    o["active_capacity_tbps"] = phase.active_capacity_tbps;
    phases.push_back(json::Value(std::move(o)));
  }
  root["phases"] = json::Value(std::move(phases));
  return json::Value(std::move(root));
}

std::string risk_to_text(const RiskReport& report) {
  std::ostringstream os;
  os << "Risk report (theta " << util::format_double(report.theta * 100, 0)
     << "%)\n";
  const std::size_t riskiest = report.riskiest();
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    const PhaseRisk& phase = report.phases[i];
    os << "  " << (phase.phase_index < 0
                       ? std::string("origin ")
                       : "phase " + std::to_string(phase.phase_index))
       << "  util " << util::format_double(phase.max_utilization * 100, 1)
       << "%  headroom x"
       << util::format_double(phase.growth_headroom, 2) << "  capacity "
       << util::format_double(phase.active_capacity_tbps, 1) << "T  ["
       << phase.action_type << "]"
       << (i == riskiest ? "   <-- riskiest" : "") << "\n";
  }
  return os.str();
}

}  // namespace klotski::pipeline
