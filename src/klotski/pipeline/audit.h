// Independent plan audit (§7.2: "we add extra audits and safety checks to
// Klotski's plans during operation").
//
// The audit re-simulates a plan without trusting the planner: it verifies
// the availability constraints (Eq. 2-3: every block exactly once, in each
// type's canonical order), re-checks the safety constraints at every phase
// boundary and at the end (the checkpoints of Eq. 4-6), and confirms that
// the final topology equals the task's target state.
#pragma once

#include <string>
#include <vector>

#include "klotski/constraints/composite.h"
#include "klotski/core/plan.h"
#include "klotski/migration/task.h"

namespace klotski::pipeline {

struct AuditReport {
  bool ok = true;
  std::vector<std::string> issues;
  int phases_checked = 0;

  void add_issue(std::string issue) {
    ok = false;
    issues.push_back(std::move(issue));
  }
};

/// Audits `plan` against `task` with an independently constructed checker.
/// `check_every_action` additionally validates each intra-phase prefix
/// (stricter than Eq. 4-6; useful when funneling is a concern).
AuditReport audit_plan(migration::MigrationTask& task,
                       constraints::CompositeChecker& checker,
                       const core::Plan& plan,
                       bool check_every_action = false);

}  // namespace klotski::pipeline
