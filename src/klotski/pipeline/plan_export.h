// Plan export: the ordered list of topology phases EDP-Lite hands to the
// deployment tooling, as JSON and as a human-readable summary for the
// operators' review loop (§2.3: fast plan generation shortens
// trial-and-error).
#pragma once

#include <string>

#include "klotski/core/plan.h"
#include "klotski/json/json.h"
#include "klotski/migration/task.h"

namespace klotski::pipeline {

/// JSON document: planner, cost, stats, and one entry per phase with the
/// action-type label and the labels of the blocks operated in parallel.
json::Value plan_to_json(const migration::MigrationTask& task,
                         const core::Plan& plan);

/// Multi-line human-readable summary.
std::string plan_to_text(const migration::MigrationTask& task,
                         const core::Plan& plan);

/// Inverse of plan_to_json: reconstructs a plan against `task` by resolving
/// phase action-type and block labels. Throws std::invalid_argument when a
/// label does not exist in the task (e.g. the plan was exported for a
/// different NPD revision — exactly the mistake the audit tooling exists to
/// catch).
core::Plan plan_from_json(const migration::MigrationTask& task,
                          const json::Value& value);

}  // namespace klotski::pipeline
