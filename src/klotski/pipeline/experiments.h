// Canonical experiment setups for the paper's evaluation (§6.1).
//
// Maps the Table 3 configurations — topologies A..E under HGRID V1->V2,
// plus E-DMAG and E-SSW — to fully built migration cases, with per-preset
// operation-block granularity chosen so full-scale action counts land in
// the Table 3 bands. The reduced scale keeps the same structure with fewer
// blocks and smaller fabrics so the entire bench suite (including the
// baselines the paper capped at 24 h) finishes in minutes.
#pragma once

#include <string>
#include <vector>

#include "klotski/migration/family_tasks.h"
#include "klotski/migration/task_builder.h"
#include "klotski/npd/npd.h"
#include "klotski/topo/presets.h"

namespace klotski::pipeline {

enum class ExperimentId {
  kA,       // HGRID V1->V2 on preset A
  kB,
  kC,
  kD,
  kE,
  kEDmag,   // DMAG migration on preset E
  kESsw,    // SSW forklift on preset E
};

std::string to_string(ExperimentId id);

/// The five scalability cases of Figure 8 (A..E, all HGRID).
std::vector<ExperimentId> scalability_experiments();

/// The three generality cases of Figure 9 (E, E-DMAG, E-SSW).
std::vector<ExperimentId> generality_experiments();

/// HGRID task parameters for a preset at a scale (block granularity tuned
/// per Table 3); exposed so benches can tweak policy/block_scale on top.
migration::HgridMigrationParams hgrid_params_for(topo::PresetId id,
                                                 topo::PresetScale scale);
migration::SswForkliftParams ssw_params_for(topo::PresetScale scale);
migration::DmagMigrationParams dmag_params_for(topo::PresetScale scale);

/// Builds the migration case for an experiment.
migration::MigrationCase build_experiment(ExperimentId id,
                                          topo::PresetScale scale);

/// Canonical task parameters for the non-Clos families at a preset size.
migration::FlatMigrationParams flat_migration_params_for(
    topo::PresetId id, topo::PresetScale scale);
migration::ReconfMigrationParams reconf_migration_params_for(
    topo::PresetId id, topo::PresetScale scale);

/// Builds the canonical migration case of any family at a preset size:
/// Clos runs the HGRID V1->V2 experiment, flat the partial forklift,
/// reconf the mesh rewire.
migration::MigrationCase build_family_experiment(topo::TopologyFamily family,
                                                 topo::PresetId preset,
                                                 topo::PresetScale scale);

/// NPD document for a family preset with the canonical experiment
/// parameters baked in; `migration` must agree with the family (or be
/// kNone). klotski_synth, klotski_plan --preset and the golden-plan tests
/// share this so they all describe the same region.
npd::NpdDocument synth_document(topo::TopologyFamily family,
                                topo::PresetId preset,
                                topo::PresetScale scale,
                                npd::MigrationKind migration);

/// Scale selected by the KLOTSKI_BENCH_FULL environment variable.
topo::PresetScale bench_scale_from_env();

}  // namespace klotski::pipeline
