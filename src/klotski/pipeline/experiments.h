// Canonical experiment setups for the paper's evaluation (§6.1).
//
// Maps the Table 3 configurations — topologies A..E under HGRID V1->V2,
// plus E-DMAG and E-SSW — to fully built migration cases, with per-preset
// operation-block granularity chosen so full-scale action counts land in
// the Table 3 bands. The reduced scale keeps the same structure with fewer
// blocks and smaller fabrics so the entire bench suite (including the
// baselines the paper capped at 24 h) finishes in minutes.
#pragma once

#include <string>
#include <vector>

#include "klotski/migration/task_builder.h"
#include "klotski/topo/presets.h"

namespace klotski::pipeline {

enum class ExperimentId {
  kA,       // HGRID V1->V2 on preset A
  kB,
  kC,
  kD,
  kE,
  kEDmag,   // DMAG migration on preset E
  kESsw,    // SSW forklift on preset E
};

std::string to_string(ExperimentId id);

/// The five scalability cases of Figure 8 (A..E, all HGRID).
std::vector<ExperimentId> scalability_experiments();

/// The three generality cases of Figure 9 (E, E-DMAG, E-SSW).
std::vector<ExperimentId> generality_experiments();

/// HGRID task parameters for a preset at a scale (block granularity tuned
/// per Table 3); exposed so benches can tweak policy/block_scale on top.
migration::HgridMigrationParams hgrid_params_for(topo::PresetId id,
                                                 topo::PresetScale scale);
migration::SswForkliftParams ssw_params_for(topo::PresetScale scale);
migration::DmagMigrationParams dmag_params_for(topo::PresetScale scale);

/// Builds the migration case for an experiment.
migration::MigrationCase build_experiment(ExperimentId id,
                                          topo::PresetScale scale);

/// Scale selected by the KLOTSKI_BENCH_FULL environment variable.
topo::PresetScale bench_scale_from_env();

}  // namespace klotski::pipeline
