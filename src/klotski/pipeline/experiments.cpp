#include "klotski/pipeline/experiments.h"

#include <algorithm>
#include <stdexcept>

#include "klotski/util/flags.h"

namespace klotski::pipeline {

using topo::PresetId;
using topo::PresetScale;

std::string to_string(ExperimentId id) {
  switch (id) {
    case ExperimentId::kA: return "A";
    case ExperimentId::kB: return "B";
    case ExperimentId::kC: return "C";
    case ExperimentId::kD: return "D";
    case ExperimentId::kE: return "E";
    case ExperimentId::kEDmag: return "E-DMAG";
    case ExperimentId::kESsw: return "E-SSW";
  }
  return "?";
}

std::vector<ExperimentId> scalability_experiments() {
  return {ExperimentId::kA, ExperimentId::kB, ExperimentId::kC,
          ExperimentId::kD, ExperimentId::kE};
}

std::vector<ExperimentId> generality_experiments() {
  return {ExperimentId::kE, ExperimentId::kEDmag, ExperimentId::kESsw};
}

migration::HgridMigrationParams hgrid_params_for(PresetId id,
                                                 PresetScale scale) {
  migration::HgridMigrationParams p;
  if (scale == PresetScale::kFull) {
    // Block granularity tuned so full-scale action counts land in the
    // Table 3 bands (A ~tens ... E ~hundreds).
    switch (id) {
      case PresetId::kA:
        break;  // 10 actions
      case PresetId::kB:
        p.fadu_chunks_per_grid_dc = 2;
        p.fauu_chunks_per_grid = 2;
        break;
      case PresetId::kC:
        p.fadu_chunks_per_grid_dc = 4;
        p.fauu_chunks_per_grid = 4;
        break;
      case PresetId::kD:
        p.fadu_chunks_per_grid_dc = 4;
        p.fauu_chunks_per_grid = 4;
        break;
      case PresetId::kE:
        p.fadu_chunks_per_grid_dc = 8;
        p.fauu_chunks_per_grid = 16;
        break;
    }
  }
  return p;
}

migration::SswForkliftParams ssw_params_for(PresetScale scale) {
  migration::SswForkliftParams p;
  p.dc = 0;  // the paper's forklift upgrades one DC's spine
  p.blocks_per_plane = scale == PresetScale::kFull ? 36 : 4;
  // Table 1: the SSW forklift is the migration that moves the most capacity.
  p.v2_capacity_factor = 2.0;
  return p;
}

migration::DmagMigrationParams dmag_params_for(PresetScale scale) {
  migration::DmagMigrationParams p;
  p.ma_per_eb = scale == PresetScale::kFull ? 4 : 2;
  return p;
}

migration::MigrationCase build_experiment(ExperimentId id,
                                          PresetScale scale) {
  switch (id) {
    case ExperimentId::kA:
    case ExperimentId::kB:
    case ExperimentId::kC:
    case ExperimentId::kD:
    case ExperimentId::kE: {
      const auto preset = static_cast<PresetId>(id);
      return migration::build_hgrid_migration(
          topo::preset_params(preset, scale), hgrid_params_for(preset, scale));
    }
    case ExperimentId::kEDmag:
      return migration::build_dmag_migration(
          topo::preset_params(PresetId::kE, scale), dmag_params_for(scale));
    case ExperimentId::kESsw:
      return migration::build_ssw_forklift(
          topo::preset_params(PresetId::kE, scale), ssw_params_for(scale));
  }
  throw std::invalid_argument("build_experiment: unknown experiment");
}

migration::FlatMigrationParams flat_migration_params_for(PresetId id,
                                                         PresetScale scale) {
  migration::FlatMigrationParams p;
  if (scale == PresetScale::kFull) {
    const int switches = topo::flat_params(id, scale).switches;
    p.switch_chunks = std::max(4, switches / 16);
  } else {
    p.switch_chunks = 3;
  }
  return p;
}

migration::ReconfMigrationParams reconf_migration_params_for(
    PresetId id, PresetScale scale) {
  migration::ReconfMigrationParams p;
  const topo::ReconfParams rp = topo::reconf_params(id, scale);
  // All rewired stride classes migrate concurrently, so with R classes in
  // flight the worst intermediate state is missing up to R/chunks of the
  // mesh capacity; chunks must grow with R to keep that fraction bounded.
  // Preset E's 3-class rewire deadlocks at reduced scale below 6 chunks:
  // the final drain overshoots theta exactly while the final undrain still
  // waits on the port that drain would free.
  int rewired = 0;
  for (const int s : rp.v1_strides) {
    if (std::find(rp.v2_strides.begin(), rp.v2_strides.end(), s) ==
        rp.v2_strides.end()) {
      ++rewired;
    }
  }
  if (scale == PresetScale::kFull) {
    p.chunks_per_stride = std::max({4, rp.switches / 12, 2 * rewired});
  } else {
    p.chunks_per_stride = std::max(3, 2 * rewired);
  }
  return p;
}

migration::MigrationCase build_family_experiment(topo::TopologyFamily family,
                                                 topo::PresetId preset,
                                                 PresetScale scale) {
  switch (family) {
    case topo::TopologyFamily::kClos:
      return build_experiment(static_cast<ExperimentId>(preset), scale);
    case topo::TopologyFamily::kFlat:
      return migration::build_flat_migration(
          topo::flat_params(preset, scale),
          flat_migration_params_for(preset, scale));
    case topo::TopologyFamily::kReconf:
      return migration::build_reconf_migration(
          topo::reconf_params(preset, scale),
          reconf_migration_params_for(preset, scale));
  }
  throw std::invalid_argument("build_family_experiment: unknown family");
}

npd::NpdDocument synth_document(topo::TopologyFamily family,
                                topo::PresetId preset, PresetScale scale,
                                npd::MigrationKind migration) {
  if (migration != npd::MigrationKind::kNone &&
      npd::family_of(migration) != family) {
    throw std::invalid_argument("synth_document: migration '" +
                                npd::to_string(migration) +
                                "' does not apply to family '" +
                                topo::to_string(family) + "'");
  }
  npd::NpdDocument doc;
  doc.family = family;
  doc.migration = migration;
  doc.name = topo::to_string(family) + "-preset-" + topo::to_string(preset) +
             (scale == PresetScale::kFull ? "/full" : "/reduced");
  switch (family) {
    case topo::TopologyFamily::kClos:
      doc.region = topo::preset_params(preset, scale);
      doc.hgrid = hgrid_params_for(preset, scale);
      doc.ssw = ssw_params_for(scale);
      doc.dmag = dmag_params_for(scale);
      break;
    case topo::TopologyFamily::kFlat:
      doc.flat = topo::flat_params(preset, scale);
      doc.flat_mig = flat_migration_params_for(preset, scale);
      break;
    case topo::TopologyFamily::kReconf:
      doc.reconf = topo::reconf_params(preset, scale);
      doc.reconf_mig = reconf_migration_params_for(preset, scale);
      break;
  }
  return doc;
}

PresetScale bench_scale_from_env() {
  return util::env_flag("KLOTSKI_BENCH_FULL") ? PresetScale::kFull
                                              : PresetScale::kReduced;
}

}  // namespace klotski::pipeline
