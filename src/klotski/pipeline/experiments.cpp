#include "klotski/pipeline/experiments.h"

#include <stdexcept>

#include "klotski/util/flags.h"

namespace klotski::pipeline {

using topo::PresetId;
using topo::PresetScale;

std::string to_string(ExperimentId id) {
  switch (id) {
    case ExperimentId::kA: return "A";
    case ExperimentId::kB: return "B";
    case ExperimentId::kC: return "C";
    case ExperimentId::kD: return "D";
    case ExperimentId::kE: return "E";
    case ExperimentId::kEDmag: return "E-DMAG";
    case ExperimentId::kESsw: return "E-SSW";
  }
  return "?";
}

std::vector<ExperimentId> scalability_experiments() {
  return {ExperimentId::kA, ExperimentId::kB, ExperimentId::kC,
          ExperimentId::kD, ExperimentId::kE};
}

std::vector<ExperimentId> generality_experiments() {
  return {ExperimentId::kE, ExperimentId::kEDmag, ExperimentId::kESsw};
}

migration::HgridMigrationParams hgrid_params_for(PresetId id,
                                                 PresetScale scale) {
  migration::HgridMigrationParams p;
  if (scale == PresetScale::kFull) {
    // Block granularity tuned so full-scale action counts land in the
    // Table 3 bands (A ~tens ... E ~hundreds).
    switch (id) {
      case PresetId::kA:
        break;  // 10 actions
      case PresetId::kB:
        p.fadu_chunks_per_grid_dc = 2;
        p.fauu_chunks_per_grid = 2;
        break;
      case PresetId::kC:
        p.fadu_chunks_per_grid_dc = 4;
        p.fauu_chunks_per_grid = 4;
        break;
      case PresetId::kD:
        p.fadu_chunks_per_grid_dc = 4;
        p.fauu_chunks_per_grid = 4;
        break;
      case PresetId::kE:
        p.fadu_chunks_per_grid_dc = 8;
        p.fauu_chunks_per_grid = 16;
        break;
    }
  }
  return p;
}

migration::SswForkliftParams ssw_params_for(PresetScale scale) {
  migration::SswForkliftParams p;
  p.dc = 0;  // the paper's forklift upgrades one DC's spine
  p.blocks_per_plane = scale == PresetScale::kFull ? 36 : 4;
  // Table 1: the SSW forklift is the migration that moves the most capacity.
  p.v2_capacity_factor = 2.0;
  return p;
}

migration::DmagMigrationParams dmag_params_for(PresetScale scale) {
  migration::DmagMigrationParams p;
  p.ma_per_eb = scale == PresetScale::kFull ? 4 : 2;
  return p;
}

migration::MigrationCase build_experiment(ExperimentId id,
                                          PresetScale scale) {
  switch (id) {
    case ExperimentId::kA:
    case ExperimentId::kB:
    case ExperimentId::kC:
    case ExperimentId::kD:
    case ExperimentId::kE: {
      const auto preset = static_cast<PresetId>(id);
      return migration::build_hgrid_migration(
          topo::preset_params(preset, scale), hgrid_params_for(preset, scale));
    }
    case ExperimentId::kEDmag:
      return migration::build_dmag_migration(
          topo::preset_params(PresetId::kE, scale), dmag_params_for(scale));
    case ExperimentId::kESsw:
      return migration::build_ssw_forklift(
          topo::preset_params(PresetId::kE, scale), ssw_params_for(scale));
  }
  throw std::invalid_argument("build_experiment: unknown experiment");
}

PresetScale bench_scale_from_env() {
  return util::env_flag("KLOTSKI_BENCH_FULL") ? PresetScale::kFull
                                              : PresetScale::kReduced;
}

}  // namespace klotski::pipeline
