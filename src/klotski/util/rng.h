// Deterministic pseudo-random number generator.
//
// All synthesized topologies and traffic matrices must be reproducible from
// a seed so that tests and benches are stable; std::mt19937_64 is specified
// bit-exactly by the standard, which gives us that guarantee across builds.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace klotski::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Gaussian with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Picks an index in [0, size) uniformly. Requires size > 0.
  std::size_t index(std::size_t size);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace klotski::util
