// Hash helpers: combination and container hashing for cache keys.
//
// The satisfiability cache keys on the compact topology representation
// (a small vector of action counts); we need a fast, well-mixed hash for
// std::vector<int32_t> and for pair keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace klotski::util {

/// 64-bit mix (splitmix64 finalizer); good avalanche for small keys.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// boost-style hash_combine on 64 bits.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                 (seed >> 2));
}

/// Hash of an integer sequence; order-sensitive.
template <typename Int>
std::uint64_t hash_span(const Int* data, std::size_t size) {
  std::uint64_t h = 0x243F6A8885A308D3ULL ^ size;
  for (std::size_t i = 0; i < size; ++i) {
    h = hash_combine(h, static_cast<std::uint64_t>(data[i]));
  }
  return h;
}

template <typename Int>
struct VectorHash {
  std::size_t operator()(const std::vector<Int>& v) const {
    return static_cast<std::size_t>(hash_span(v.data(), v.size()));
  }
};

struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return static_cast<std::size_t>(
        hash_combine(std::hash<A>{}(p.first), std::hash<B>{}(p.second)));
  }
};

}  // namespace klotski::util
