// Hash helpers: combination and container hashing for cache keys, plus the
// stable byte-stream digest behind content-addressed caching.
//
// The satisfiability cache keys on the compact topology representation
// (a small vector of action counts); we need a fast, well-mixed hash for
// std::vector<int32_t> and for pair keys. StableDigest is different in
// kind: its output is part of the serve layer's on-disk cache format, so it
// must be bit-stable across runs, processes, and platforms — never swap it
// for std::hash (seeded per-process) or change the constants without a
// cache-format version bump.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace klotski::util {

/// 64-bit mix (splitmix64 finalizer); good avalanche for small keys.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// boost-style hash_combine on 64 bits.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                 (seed >> 2));
}

/// Hash of an integer sequence; order-sensitive.
template <typename Int>
std::uint64_t hash_span(const Int* data, std::size_t size) {
  std::uint64_t h = 0x243F6A8885A308D3ULL ^ size;
  for (std::size_t i = 0; i < size; ++i) {
    h = hash_combine(h, static_cast<std::uint64_t>(data[i]));
  }
  return h;
}

/// Zobrist-style key for "slot s holds value v". A state hash is the XOR of
/// one key per slot, which makes it *incrementally updatable*: changing one
/// slot from `from` to `to` is h ^ key(s, from) ^ key(s, to), O(1) whatever
/// the state width. mix64 over a (slot, value) pack plays the role of the
/// classic precomputed random table — no table, no bound on values.
constexpr std::uint64_t zobrist_key(std::int32_t slot, std::int32_t value) {
  return mix64(((static_cast<std::uint64_t>(static_cast<std::uint32_t>(slot)) +
                 1) << 32) ^
               static_cast<std::uint32_t>(value));
}

template <typename Int>
struct VectorHash {
  std::size_t operator()(const std::vector<Int>& v) const {
    return static_cast<std::size_t>(hash_span(v.data(), v.size()));
  }
};

struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return static_cast<std::size_t>(
        hash_combine(std::hash<A>{}(p.first), std::hash<B>{}(p.second)));
  }
};

/// Streaming 128-bit content digest: two independent FNV-1a-64 lanes with
/// distinct offset bases, each finalized through mix64. Deterministic for a
/// given byte sequence everywhere — content-addressed cache keys depend on
/// that.
class StableDigest {
 public:
  void update(std::string_view bytes) {
    for (const char c : bytes) {
      const auto b = static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      lo_ = (lo_ ^ b) * kPrime;
      hi_ = (hi_ ^ b) * kPrime;
    }
  }

  /// 32 lowercase hex characters; does not disturb the stream state.
  std::string hex() const {
    const std::uint64_t a = mix64(lo_);
    const std::uint64_t b = mix64(hi_ ^ lo_);
    std::string out(32, '0');
    static const char* digits = "0123456789abcdef";
    for (int i = 0; i < 16; ++i) {
      out[static_cast<std::size_t>(15 - i)] = digits[(a >> (4 * i)) & 0xF];
      out[static_cast<std::size_t>(31 - i)] = digits[(b >> (4 * i)) & 0xF];
    }
    return out;
  }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  std::uint64_t lo_ = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  std::uint64_t hi_ = 0x9E3779B97F4A7C15ULL;  // golden-ratio lane
};

/// One-shot form of StableDigest.
inline std::string stable_digest_hex(std::string_view bytes) {
  StableDigest d;
  d.update(bytes);
  return d.hex();
}

}  // namespace klotski::util
