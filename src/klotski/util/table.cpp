#include "klotski/util/table.h"

#include <algorithm>
#include <cassert>

namespace klotski::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << " ";
      os << " |";
    }
    os << "\n";
  };

  if (!title_.empty()) os << title_ << "\n";
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << "-";
    os << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace klotski::util
