#include "klotski/util/thread_budget.h"

#include <algorithm>
#include <thread>

namespace klotski::util {

ThreadBudget split_thread_budget(int outer_requested, int inner_budget,
                                 int max_outer) {
  ThreadBudget budget;
  budget.outer = std::max(1, outer_requested);
  if (max_outer > 0) budget.outer = std::min(budget.outer, max_outer);
  budget.inner = std::max(1, inner_budget / budget.outer);
  return budget;
}

int hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace klotski::util
