// Minimal command-line flag parser for examples and bench harnesses.
//
// Supports `--name=value`, `--name value`, and boolean `--name`.
// Unrecognized flags are collected so harnesses can reject typos.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace klotski::util {

class Flags {
 public:
  /// Parses argv; positional (non --) arguments are kept in order.
  static Flags parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  /// Throws std::invalid_argument (naming the flag) when the value is not
  /// a fully-consumed integer, e.g. `--threads=abc` or `--threads=4x`.
  long long get_int(const std::string& name, long long fallback) const;
  /// Throws std::invalid_argument (naming the flag) when the value is not
  /// a fully-consumed number. Locale-independent (std::from_chars).
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> names_;       // in parse order
  std::vector<std::string> positional_;
};

/// Reads an environment variable as bool ("1", "true", "yes" => true).
bool env_flag(const char* name, bool fallback = false);

}  // namespace klotski::util
