#include "klotski/util/flags.h"

#include <charconv>
#include <cstdlib>
#include <stdexcept>

#include "klotski/util/string_util.h"

namespace klotski::util {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--name value` form only when the next token is not itself a flag.
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    flags.names_.push_back(name);
    flags.values_[name] = value;
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

namespace {

/// [first, last) for the numeric token: a leading '+' is tolerated
/// (std::from_chars rejects it) but nothing else is trimmed.
std::pair<const char*, const char*> numeric_range(const std::string& s) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  if (first != last && *first == '+') ++first;
  return {first, last};
}

}  // namespace

long long Flags::get_int(const std::string& name, long long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto [first, last] = numeric_range(it->second);
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last || first == last) {
    throw std::invalid_argument("--" + name + ": invalid integer '" +
                                it->second + "'");
  }
  return v;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto [first, last] = numeric_range(it->second);
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last || first == last) {
    throw std::invalid_argument("--" + name + ": invalid number '" +
                                it->second + "'");
  }
  return v;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string lower = to_lower(it->second);
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

bool env_flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const std::string lower = to_lower(raw);
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

}  // namespace klotski::util
