// ASCII table printer used by the bench harnesses to emit the paper's
// tables/figures as aligned rows.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace klotski::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Renders with column alignment and a header rule.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace klotski::util
