// The oversubscription-avoidance rule shared by every layered worker pool.
//
// Klotski stacks up to three levels of parallelism: an outer pool (planner
// frontier workers, chaos sweep workers, or the serve daemon's job workers)
// whose members each own an inner budget (worker-private ECMP routers,
// per-job planner threads). Before this helper, each tool computed the
// split independently (`klotski_plan`, run_pipeline, `klotski_chaos`),
// which is exactly how the rules drift apart. Everything now goes through
// split_thread_budget(): N outer workers each get inner_budget / N inner
// threads (never below 1), and the outer count is clamped to the available
// work so idle threads are never spawned.
#pragma once

namespace klotski::util {

struct ThreadBudget {
  int outer = 1;  // workers at the outer level
  int inner = 1;  // inner-threads budget handed to each outer worker
};

/// Splits `inner_budget` threads across `outer_requested` workers.
/// `max_outer` caps the outer pool at the number of independent work items
/// (seeds, queued jobs); pass 0 or negative for "no cap". Requests below 1
/// are treated as 1, so callers can pass raw flag values.
ThreadBudget split_thread_budget(int outer_requested, int inner_budget,
                                 int max_outer = 0);

/// Hardware concurrency with a sane floor: std::thread::hardware_concurrency
/// can return 0; this never returns less than 1.
int hardware_threads();

}  // namespace klotski::util
