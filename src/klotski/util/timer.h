// Wall-clock stopwatch and deadline helpers used by all planners.
#pragma once

#include <chrono>

namespace klotski::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::chrono::milliseconds elapsed_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A deadline that planners poll periodically; zero budget means "no limit".
class Deadline {
 public:
  Deadline() = default;
  explicit Deadline(std::chrono::duration<double> budget)
      : limited_(budget.count() > 0.0),
        expiry_(Clock::now() +
                std::chrono::duration_cast<Clock::duration>(budget)) {}

  static Deadline unlimited() { return Deadline(); }
  static Deadline after_seconds(double seconds) {
    return Deadline(std::chrono::duration<double>(seconds));
  }

  bool expired() const { return limited_ && Clock::now() >= expiry_; }
  bool limited() const { return limited_; }

 private:
  using Clock = std::chrono::steady_clock;
  bool limited_ = false;
  Clock::time_point expiry_{};
};

}  // namespace klotski::util
