// Lightweight leveled logging for the Klotski library.
//
// The library never writes to stdout on its own (benches own stdout for
// table output); log records go to stderr through a single synchronized
// sink that callers may replace (e.g. tests install a capturing sink).
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace klotski::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Human-readable name for a level ("DEBUG", "INFO", ...).
std::string_view to_string(LogLevel level);

/// A sink receives fully formatted records. Must be callable from any thread.
using LogSink = std::function<void(LogLevel, std::string_view message)>;

/// Replaces the process-wide sink; returns the previous one.
LogSink set_log_sink(LogSink sink);

/// Records below this level are dropped before formatting.
void set_min_log_level(LogLevel level);
LogLevel min_log_level();

/// Emits one record through the current sink (thread-safe).
void log(LogLevel level, std::string_view message);

namespace detail {

// Stream-style builder so call sites read `LOG_INFO() << "x=" << x;`.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace klotski::util

#define KLOTSKI_LOG(level) ::klotski::util::detail::LogLine(level)
#define KLOTSKI_LOG_DEBUG() KLOTSKI_LOG(::klotski::util::LogLevel::kDebug)
#define KLOTSKI_LOG_INFO() KLOTSKI_LOG(::klotski::util::LogLevel::kInfo)
#define KLOTSKI_LOG_WARN() KLOTSKI_LOG(::klotski::util::LogLevel::kWarn)
#define KLOTSKI_LOG_ERROR() KLOTSKI_LOG(::klotski::util::LogLevel::kError)
