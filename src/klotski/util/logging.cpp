#include "klotski/util/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>
#include <utility>

namespace klotski::util {

namespace {

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

LogSink& current_sink() {
  static LogSink sink = [](LogLevel level, std::string_view message) {
    std::cerr << "[" << to_string(level) << "] " << message << "\n";
  };
  return sink;
}

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  LogSink previous = std::move(current_sink());
  current_sink() = std::move(sink);
  return previous;
}

void set_min_log_level(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel min_log_level() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (current_sink()) {
    current_sink()(level, message);
  }
}

}  // namespace klotski::util
