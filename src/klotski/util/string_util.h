// Small string helpers shared by NPD parsing, flags and table output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace klotski::util {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

/// Formats a double with fixed precision, trimming trailing zeros
/// ("1.50" -> "1.5", "2.00" -> "2").
std::string format_double(double value, int max_precision = 3);

/// Human formatting with thousands separators: 123456 -> "123,456".
std::string with_commas(long long value);

}  // namespace klotski::util
