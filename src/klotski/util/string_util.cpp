#include "klotski/util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace klotski::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(items[i]);
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string format_double(double value, int max_precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", max_precision, value);
  std::string out(buffer);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  if (out == "-0") out = "0";
  return out;
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return negative ? "-" + out : out;
}

}  // namespace klotski::util
