// Whole-file read/write helpers for the CLI tools and examples.
#pragma once

#include <string>

namespace klotski::util {

/// Reads a whole file; throws std::runtime_error with the path on failure.
std::string read_file(const std::string& path);

/// Writes (truncates) a whole file; throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& contents);

}  // namespace klotski::util
