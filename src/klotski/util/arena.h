// Chunked pod pools: append-only columnar storage for search structures.
//
// The planner's struct-of-arrays node store needs three properties a plain
// std::vector cannot give simultaneously: stable element addresses while
// growing (A* holds pointers into the count column across pushes), precise
// byte accounting for the memory budget (no 2x growth spikes that double
// the apparent footprint at the worst moment), and the ability to *return*
// memory after a compaction pass (vector::shrink_to_fit reallocates and
// copies; truncate here just frees whole tail chunks).
//
// Elements are trivially copyable and never destroyed individually; a pool
// is a bump allocator over fixed-size chunks plus an index.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace klotski::util {

/// Append-only pool of trivially-copyable elements in fixed 2^kLog2-element
/// chunks. Indexing splits into (chunk, offset) with shift/mask.
template <typename T, unsigned kLog2 = 14>
class PodPool {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static constexpr std::size_t kChunkElems = std::size_t{1} << kLog2;
  static constexpr std::size_t kMask = kChunkElems - 1;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::size_t push_back(const T& value) {
    const std::size_t i = size_++;
    if ((i >> kLog2) == chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(kChunkElems));
    }
    chunks_[i >> kLog2][i & kMask] = value;
    return i;
  }

  T& operator[](std::size_t i) { return chunks_[i >> kLog2][i & kMask]; }
  const T& operator[](std::size_t i) const {
    return chunks_[i >> kLog2][i & kMask];
  }

  /// Drops elements at index >= n and frees the chunks they occupied.
  void truncate(std::size_t n) {
    if (n >= size_) return;
    size_ = n;
    const std::size_t needed = (n + kChunkElems - 1) >> kLog2;
    chunks_.resize(needed);
  }

  void clear() {
    size_ = 0;
    chunks_.clear();
    chunks_.shrink_to_fit();
  }

  std::size_t allocated_bytes() const {
    return chunks_.size() * kChunkElems * sizeof(T) +
           chunks_.capacity() * sizeof(chunks_[0]);
  }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;
};

/// Pool of fixed-stride rows (the count-vector column): row i occupies
/// `stride` consecutive elements inside one chunk, so a row is addressable
/// as a plain pointer and rows never straddle chunk boundaries.
template <typename T, unsigned kRowsLog2 = 12>
class StridedPool {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static constexpr std::size_t kChunkRows = std::size_t{1} << kRowsLog2;
  static constexpr std::size_t kMask = kChunkRows - 1;

  explicit StridedPool(std::size_t stride) : stride_(stride) {}

  std::size_t stride() const { return stride_; }
  std::size_t size() const { return size_; }

  /// Appends a row copied from `src` (stride elements); returns its index.
  std::size_t push_row(const T* src) {
    const std::size_t i = push_row_uninit();
    std::memcpy(row(i), src, stride_ * sizeof(T));
    return i;
  }

  /// Appends an uninitialized row the caller fills via row(i).
  std::size_t push_row_uninit() {
    const std::size_t i = size_++;
    if ((i >> kRowsLog2) == chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(kChunkRows * stride_));
    }
    return i;
  }

  T* row(std::size_t i) {
    return chunks_[i >> kRowsLog2].get() + (i & kMask) * stride_;
  }
  const T* row(std::size_t i) const {
    return chunks_[i >> kRowsLog2].get() + (i & kMask) * stride_;
  }

  void truncate(std::size_t n) {
    if (n >= size_) return;
    size_ = n;
    const std::size_t needed = (n + kChunkRows - 1) >> kRowsLog2;
    chunks_.resize(needed);
  }

  void clear() {
    size_ = 0;
    chunks_.clear();
    chunks_.shrink_to_fit();
  }

  std::size_t allocated_bytes() const {
    return chunks_.size() * kChunkRows * stride_ * sizeof(T) +
           chunks_.capacity() * sizeof(chunks_[0]);
  }

 private:
  std::size_t stride_;
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace klotski::util
