#include "klotski/util/file.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace klotski::util {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open file for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("error while reading file: " + path);
  }
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out << contents;
  if (!out.good()) {
    throw std::runtime_error("error while writing file: " + path);
  }
}

}  // namespace klotski::util
