#include "klotski/util/rng.h"

#include <cassert>

namespace klotski::util {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  std::bernoulli_distribution dist(probability);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t size) {
  assert(size > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

}  // namespace klotski::util
