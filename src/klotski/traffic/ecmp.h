// ECMP traffic assignment over the active topology (§5: "we focus on
// macro-scale network behavior ... we use the equal-cost multi-path routing
// policy").
//
// For one demand, the router runs a multi-source BFS from the demand's
// active targets over traffic-carrying circuits, which yields the
// shortest-path DAG (circuits from a switch at distance k to a neighbor at
// distance k-1). The demand volume is injected equally across active source
// switches and propagated down the DAG, split equally across a switch's
// outgoing DAG circuits — ECMP is deliberately capacity-blind, exactly the
// property behind the HGRID V1/V2 outage described in §7.1.
//
// One assignment is Theta(|S| + |C|), matching the satisfiability-check
// cost in Theorems 1 and 2. The planner hot path amortizes that cost across
// nearby topology states: the liveness bitmap refreshes only when the
// topology's state version moved (replaying the change journal when it
// covers the gap), and a bound demand set keeps per-group shortest-path
// distances and load contributions, recomputing only the groups a change
// can actually affect.
#pragma once

#include <cstdint>
#include <vector>

#include "klotski/obs/metrics.h"
#include "klotski/topo/topology.h"
#include "klotski/traffic/demand.h"

namespace klotski::traffic {

/// Per-circuit directional loads: index 2*c   = load from circuit(c).a to .b,
///                                index 2*c+1 = load from .b to .a (Tbps).
using LoadVector = std::vector<double>;

/// How a switch splits traffic over its equal-cost next hops.
///
///  * kEqualSplit       — plain ECMP: equal share per circuit, regardless of
///                        capacity. The production default, and the cause of
///                        the §7.1 outage: a low-capacity next hop receives
///                        the same share as a high-capacity one.
///  * kCapacityWeighted — weighted ECMP (WCMP): share proportional to
///                        circuit capacity. Models the "temporary routing
///                        configurations to balance the traffic between
///                        HGRID V1 and V2" that operators create (§7.1);
///                        Klotski is being extended toward such flexible
///                        routing configurations.
enum class SplitMode : std::uint8_t { kEqualSplit, kCapacityWeighted };

class EcmpRouter {
 public:
  /// Captures the immutable structure (CSR adjacency). Element states are
  /// read from `topo` at assignment time, so the same router serves every
  /// intermediate topology of a migration.
  explicit EcmpRouter(const topo::Topology& topo,
                      SplitMode mode = SplitMode::kEqualSplit);

  SplitMode split_mode() const { return mode_; }
  void set_split_mode(SplitMode mode);

  /// Adds this demand's circuit loads into `loads` (resized if needed).
  /// Returns false — without touching `loads` beyond possible resizing —
  /// when the demand is unroutable: no active target, or some active source
  /// cannot reach any target.
  bool assign(const Demand& demand, LoadVector& loads);

  /// Assigns a whole demand set, sharing work across demands: the liveness
  /// bitmap is refreshed only when the topology changed, and demands with
  /// identical target sets share one BFS and one load propagation (ECMP is
  /// linear in the injected volume for a fixed DAG, so merged propagation
  /// is exact). When `demands` is the currently bound set (bind_demands),
  /// per-group results are cached across calls and only the groups affected
  /// by the topology changes since the last call are recomputed. Returns
  /// false on the first unroutable demand, reporting its name via
  /// `failed_demand` when non-null. This is the satisfiability-check hot
  /// path at O(10,000)-switch scale.
  bool assign_all(const DemandSet& demands, LoadVector& loads,
                  std::string* failed_demand = nullptr);

  /// Declares `demands` the router's resident demand set: target-set groups
  /// are built once here (not O(n^2) per check) and assign_all on the same
  /// object gets the incremental per-group cache. The caller owns the set
  /// and must rebind after mutating it (DemandChecker does this on
  /// set_demands). Binding another set drops the previous binding.
  void bind_demands(const DemandSet& demands);

  /// True iff every active source can reach an active target (connectivity
  /// part of Eq. 4, without computing loads).
  bool reachable(const Demand& demand);

  std::size_t num_switches() const { return num_switches_; }

  /// Group recomputations saved by the incremental cache (diagnostics).
  long long group_recomputes() const { return group_recomputes_; }
  long long group_reuses() const { return group_reuses_; }

 private:
  /// One target-set group of the bound demand set, with its cached BFS
  /// distances and load contribution (valid while `valid`).
  struct DemandGroup {
    std::vector<std::uint32_t> demand_indices;  // into the bound set
    std::vector<std::uint8_t> relevant;  // switch id -> source/target member
    bool valid = false;
    std::vector<std::int32_t> dist;
    LoadVector loads;
  };

  /// Runs the BFS from the demand's targets; fills dist_ and visit_order_.
  /// Returns number of visited switches (0 if no active target).
  std::size_t bfs_from_targets(const Demand& demand);

  /// Injects every demand's volume at its active sources (volume_ must be
  /// zeroed); returns false when a demand has an active source the current
  /// dist_ cannot reach, reporting the demand via `failed`.
  bool inject_sources(const std::vector<const Demand*>& demands,
                      const Demand** failed);

  /// Propagates volume_ down the current shortest-path DAG into `loads`.
  void propagate(LoadVector& loads);

  /// Groups demand indices by identical target sets, first-occurrence order.
  static std::vector<std::vector<std::uint32_t>> group_by_targets(
      const DemandSet& demands);

  /// BFS + inject + propagate for one group of the given demand set.
  bool run_group(const DemandSet& demands,
                 const std::vector<std::uint32_t>& indices, LoadVector& loads,
                 std::string* failed_demand);

  /// The incremental path for the bound set.
  bool assign_bound(LoadVector& loads, std::string* failed_demand);

  /// Marks groups whose cached DAG or injection a journaled change could
  /// affect. `changes` are topology journal entries since groups_version_.
  void mark_dirty_groups(const std::vector<topo::Topology::StateChange>& changes,
                         std::vector<std::uint8_t>& dirty);

  const topo::Topology& topo_;
  SplitMode mode_ = SplitMode::kEqualSplit;
  std::size_t num_switches_ = 0;

  // CSR adjacency: for switch s, neighbors_[offsets_[s]..offsets_[s+1]).
  struct Arc {
    topo::CircuitId circuit;
    topo::SwitchId neighbor;
  };
  std::vector<std::uint32_t> offsets_;
  std::vector<Arc> arcs_;

  /// Brings the per-circuit liveness bitmap up to the topology's current
  /// state version: a no-op when unchanged, a journal replay when the gap
  /// is covered, one sequential pass otherwise.
  void refresh_alive();

  // Scratch reused across assignments (single-threaded use).
  static constexpr std::int32_t kUnreached = -1;
  std::vector<std::int32_t> dist_;
  std::vector<topo::SwitchId> visit_order_;  // ascending distance
  std::vector<double> volume_;               // per-switch pending volume
  std::vector<std::uint8_t> alive_;          // circuit carries traffic now
  std::vector<std::uint32_t> next_hops_;     // per-switch DAG arc scratch
  bool alive_valid_ = false;
  std::uint64_t alive_version_ = 0;
  std::vector<topo::Topology::StateChange> changes_scratch_;
  std::vector<std::uint32_t> circuit_stamp_;  // affected-circuit dedup
  std::uint32_t circuit_epoch_ = 0;
  std::vector<topo::CircuitId> affected_scratch_;
  std::vector<std::uint8_t> dirty_scratch_;   // per-group dirty flags
  std::vector<const Demand*> group_ptrs_;     // inject_sources scratch

  // Bound demand set and its incremental per-group caches.
  const DemandSet* bound_ = nullptr;
  std::size_t bound_size_ = 0;
  std::vector<DemandGroup> groups_;
  bool groups_ready_ = false;
  std::uint64_t groups_version_ = 0;
  LoadVector total_loads_;  // sum over group loads at groups_version_
  long long group_recomputes_ = 0;
  long long group_reuses_ = 0;

  // Global observability counters (metrics.h; no-ops while disabled). These
  // aggregate *physical* work over every router instance, worker clones
  // included — unlike the planner's logical counters they are not invariant
  // under num_threads.
  obs::Counter& m_alive_journal_replays_;
  obs::Counter& m_alive_full_rebuilds_;
  obs::Counter& m_group_recomputes_;
  obs::Counter& m_group_reuses_;
  obs::Counter& m_group_invalidations_;
};

/// Maximum utilization over circuits given directional loads; utilization of
/// a circuit is max(direction loads) / capacity. Returns 0 for an empty
/// topology. Circuits not carrying traffic but with non-zero load would be a
/// router bug; they are ignored here.
double max_utilization(const topo::Topology& topo, const LoadVector& loads);

/// Worst circuit (id, utilization); id = kInvalidCircuit when no circuit is
/// loaded.
struct WorstCircuit {
  topo::CircuitId circuit = topo::kInvalidCircuit;
  double utilization = 0.0;
};
WorstCircuit worst_circuit(const topo::Topology& topo, const LoadVector& loads);

}  // namespace klotski::traffic
