// ECMP traffic assignment over the active topology (§5: "we focus on
// macro-scale network behavior ... we use the equal-cost multi-path routing
// policy").
//
// For one demand, the router runs a multi-source BFS from the demand's
// active targets over traffic-carrying circuits, which yields the
// shortest-path DAG (circuits from a switch at distance k to a neighbor at
// distance k-1). The demand volume is injected equally across active source
// switches and propagated down the DAG, split equally across a switch's
// outgoing DAG circuits — ECMP is deliberately capacity-blind, exactly the
// property behind the HGRID V1/V2 outage described in §7.1.
//
// One assignment is Theta(|S| + |C|), matching the satisfiability-check
// cost in Theorems 1 and 2. The planner hot path amortizes that cost across
// nearby topology states, and the engine is laid out so an assignment only
// pays for what it actually touches:
//
//  * Epoch-stamped scratch — dist/volume validity is a per-switch stamp
//    compared against a per-BFS epoch, so starting a BFS never clears the
//    O(|S|) arrays; only visited switches are written.
//  * Word-packed liveness — "circuit carries traffic" lives in uint64 words
//    (bit per circuit), refreshed by journal replay; per-group relevant
//    switch sets are packed the same way so the dirty screening in
//    mark_dirty_groups is word-AND + popcount work, not byte scans.
//  * Flat arc records — the CSR arc inlines the neighbor, the directional
//    load slot, the liveness word/mask, and the circuit capacity, so BFS and
//    propagation read one contiguous stream instead of chasing Circuit
//    records through the topology.
//  * Sparse group loads — a bound demand group caches its load contribution
//    as (slot, value) pairs in propagation order (each slot is written at
//    most once per group), so re-summing after a sparse invalidation costs
//    the touched slots, not groups × circuits.
//  * Intra-check parallelism — with set_num_workers(n > 1), the dirty
//    groups of one bound assign_all recompute concurrently on a private
//    worker pool (per-worker scratch, per-group output buffers) and reduce
//    into the total in group order on the calling thread, which keeps the
//    result bit-identical to the serial engine, logical counters included.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "klotski/obs/metrics.h"
#include "klotski/topo/topology.h"
#include "klotski/traffic/demand.h"

namespace klotski::traffic {

/// Per-circuit directional loads: index 2*c   = load from circuit(c).a to .b,
///                                index 2*c+1 = load from .b to .a (Tbps).
using LoadVector = std::vector<double>;

/// How a switch splits traffic over its equal-cost next hops.
///
///  * kEqualSplit       — plain ECMP: equal share per circuit, regardless of
///                        capacity. The production default, and the cause of
///                        the §7.1 outage: a low-capacity next hop receives
///                        the same share as a high-capacity one.
///  * kCapacityWeighted — weighted ECMP (WCMP): share proportional to
///                        circuit capacity. Models the "temporary routing
///                        configurations to balance the traffic between
///                        HGRID V1 and V2" that operators create (§7.1);
///                        Klotski is being extended toward such flexible
///                        routing configurations.
enum class SplitMode : std::uint8_t { kEqualSplit, kCapacityWeighted };

class EcmpRouter {
 public:
  /// Captures the immutable structure (CSR adjacency, inlined capacities).
  /// Element states are read from `topo` at assignment time, so the same
  /// router serves every intermediate topology of a migration. Capacity
  /// edits after construction follow the topology's out-of-band contract:
  /// call Topology::bump_state_version() and the next refresh re-reads them.
  explicit EcmpRouter(const topo::Topology& topo,
                      SplitMode mode = SplitMode::kEqualSplit);
  ~EcmpRouter();

  EcmpRouter(const EcmpRouter&) = delete;
  EcmpRouter& operator=(const EcmpRouter&) = delete;

  SplitMode split_mode() const { return mode_; }
  void set_split_mode(SplitMode mode);

  /// Intra-check worker pool size for bound assign_all: n > 1 spawns n
  /// worker threads that recompute independent dirty demand groups
  /// concurrently. Results are bit-identical to the serial engine (same
  /// loads, same failure, same logical counters); only wall-clock and the
  /// physical obs counters change. n <= 1 joins the pool and restores the
  /// fully serial path. Not thread-safe against concurrent assign calls.
  void set_num_workers(int n);
  int num_workers() const { return static_cast<int>(threads_.size()); }

  /// Adds this demand's circuit loads into `loads` (resized if needed).
  /// Returns false — without touching `loads` beyond possible resizing —
  /// when the demand is unroutable: no active target, or some active source
  /// cannot reach any target.
  bool assign(const Demand& demand, LoadVector& loads);

  /// Assigns a whole demand set, sharing work across demands: the liveness
  /// words are refreshed only when the topology changed, and demands with
  /// identical target sets share one BFS and one load propagation (ECMP is
  /// linear in the injected volume for a fixed DAG, so merged propagation
  /// is exact). When `demands` is the currently bound set (bind_demands),
  /// per-group results are cached across calls and only the groups affected
  /// by the topology changes since the last call are recomputed. Returns
  /// false on the first unroutable demand, reporting its name via
  /// `failed_demand` when non-null. This is the satisfiability-check hot
  /// path at O(10,000)-switch scale.
  bool assign_all(const DemandSet& demands, LoadVector& loads,
                  std::string* failed_demand = nullptr);

  /// Declares `demands` the router's resident demand set: target-set groups
  /// are built once here (not O(n^2) per check) and assign_all on the same
  /// object gets the incremental per-group cache. The caller owns the set
  /// and must rebind after mutating it (DemandChecker does this on
  /// set_demands). Binding another set drops the previous binding.
  void bind_demands(const DemandSet& demands);

  /// True iff every active source can reach an active target (connectivity
  /// part of Eq. 4, without computing loads).
  bool reachable(const Demand& demand);

  std::size_t num_switches() const { return num_switches_; }

  /// After a successful *bound* assign_all: the ascending-id list of
  /// circuits that carry any of the bound set's load. Lets utilization
  /// scans (max_utilization / worst_circuit / DemandChecker) visit only
  /// loaded circuits instead of all of them. touched_valid() goes false on
  /// unbound or failed assignments, rebinding, and single-demand assign();
  /// callers must then fall back to the full-circuit scan.
  bool touched_valid() const { return touched_valid_; }
  const std::vector<topo::CircuitId>& touched_circuits() const {
    return touched_circuits_;
  }

  /// Group recomputations saved by the incremental cache (diagnostics).
  /// Logical counters: invariant under num_workers.
  long long group_recomputes() const { return group_recomputes_; }
  long long group_reuses() const { return group_reuses_; }

 private:
  /// One (slot, value) pair of a group's load contribution. Propagation
  /// writes each directional slot at most once per group (a circuit is a
  /// DAG edge in at most one direction), so a group's load vector is exactly
  /// its entry list — no dense scatter needed until summation.
  struct LoadEntry {
    std::uint32_t slot;
    double value;
  };

  /// One target-set group of the bound demand set, with its cached BFS
  /// distances and sparse load contribution (valid while `valid`).
  struct DemandGroup {
    std::vector<std::uint32_t> demand_indices;  // into the bound set
    std::vector<std::uint64_t> relevant_words;  // switch-id bitset
    bool valid = false;
    std::vector<std::int32_t> dist;  // dense; kUnreached where not visited
    std::vector<LoadEntry> entries;  // propagation order
  };

  /// Flat CSR arc record: everything BFS + propagation need, contiguous.
  /// For switch s, its arcs are arcs_[offsets_[s]..offsets_[s+1]).
  struct Arc {
    topo::SwitchId neighbor;
    std::uint32_t fwd_slot;    // load slot for the s -> neighbor direction
    std::uint32_t alive_word;  // index into alive_words_
    std::uint32_t pad_ = 0;
    std::uint64_t alive_mask;  // single-bit mask within alive_word
    double capacity_tbps;      // split weight for kCapacityWeighted
  };
  static_assert(sizeof(topo::SwitchId) == 4, "Arc layout assumes 32-bit ids");

  /// Per-thread BFS/propagation scratch. The epoch stamp makes dist/volume
  /// reads self-invalidating: an entry is live iff stamp[s] == epoch, so a
  /// new BFS only bumps the epoch instead of clearing O(|S|) arrays.
  struct Scratch {
    std::vector<std::int32_t> dist;
    std::vector<std::uint32_t> stamp;
    std::uint32_t epoch = 0;
    std::vector<topo::SwitchId> visit_order;  // ascending distance
    std::vector<double> volume;               // per-switch pending volume
    std::vector<std::uint32_t> next_hops;     // per-switch DAG arc scratch
    std::vector<const Demand*> group_ptrs;

    void init(std::size_t num_switches);
    /// Starts a BFS generation; handles the (rare) epoch wrap.
    void begin_bfs();
    bool reached(topo::SwitchId s) const {
      return stamp[static_cast<std::size_t>(s)] == epoch;
    }
  };

  /// Runs the BFS from the demand's targets into `s`; visited switches get
  /// dist stamped and volume zeroed. Returns the number of visited switches
  /// (0 if no active target).
  std::size_t bfs_from_targets(Scratch& s, const Demand& demand) const;

  /// Injects every demand's volume at its active sources; returns false when
  /// a demand has an active source the current BFS did not reach, reporting
  /// the demand via `failed`.
  bool inject_sources(Scratch& s, const std::vector<const Demand*>& demands,
                      const Demand** failed) const;

  /// Propagates scratch volume down the current shortest-path DAG, appending
  /// (slot, value) entries to `out` (each slot at most once).
  void propagate(Scratch& s, std::vector<LoadEntry>& out) const;

  /// Groups demand indices by identical target sets, first-occurrence order.
  static std::vector<std::vector<std::uint32_t>> group_by_targets(
      const DemandSet& demands);

  /// BFS + inject + propagate for one group of the given demand set.
  bool run_group(Scratch& s, const DemandSet& demands,
                 const std::vector<std::uint32_t>& indices,
                 std::vector<LoadEntry>& out,
                 std::string* failed_demand) const;

  /// Recomputes one bound group into its cache (entries + dist snapshot).
  /// Thread-safe for distinct groups with distinct scratch.
  bool recompute_group(Scratch& s, DemandGroup& g,
                       std::string* failed_demand) const;

  /// The incremental path for the bound set.
  bool assign_bound(LoadVector& loads, std::string* failed_demand);

  /// Marks groups whose cached DAG or injection a journaled change could
  /// affect. `changes` are topology journal entries since groups_version_.
  void mark_dirty_groups(const std::vector<topo::Topology::StateChange>& changes,
                         std::vector<std::uint8_t>& dirty);

  /// Re-sums total_loads_ from the per-group entry lists in group order
  /// (bit-identical to a dense sum), zeroing only previously-touched slots,
  /// and rebuilds the ascending touched-circuit list.
  void rebuild_total(std::size_t load_size);

  /// Brings the liveness words (and, on full rebuilds, the inlined arc
  /// capacities) up to the topology's current state version: a no-op when
  /// unchanged, a journal replay when the gap is covered, one sequential
  /// pass otherwise.
  void refresh_alive();

  bool circuit_alive(topo::CircuitId c) const {
    return (alive_words_[static_cast<std::size_t>(c) >> 6] >>
            (static_cast<std::size_t>(c) & 63)) &
           1;
  }
  void set_circuit_alive(topo::CircuitId c, bool alive) {
    const std::uint64_t mask = std::uint64_t{1}
                               << (static_cast<std::size_t>(c) & 63);
    if (alive) {
      alive_words_[static_cast<std::size_t>(c) >> 6] |= mask;
    } else {
      alive_words_[static_cast<std::size_t>(c) >> 6] &= ~mask;
    }
  }

  // Worker pool (intra-check parallel dirty-group recompute).
  void worker_loop(std::size_t widx);
  void stop_workers();
  /// Runs job_groups_ on the pool and waits for completion.
  void run_jobs_parallel();

  const topo::Topology& topo_;
  SplitMode mode_ = SplitMode::kEqualSplit;
  std::size_t num_switches_ = 0;

  std::vector<std::uint32_t> offsets_;
  std::vector<Arc> arcs_;

  static constexpr std::int32_t kUnreached = -1;
  Scratch scratch_;  // the calling thread's scratch
  std::vector<LoadEntry> entries_scratch_;
  std::vector<std::uint64_t> alive_words_;  // bit c = circuit c carries traffic
  bool alive_valid_ = false;
  std::uint64_t alive_version_ = 0;
  std::vector<topo::Topology::StateChange> changes_scratch_;

  // mark_dirty_groups scratch: word-packed changed-element sets, cleared
  // word-by-word after use (only touched words are written).
  std::vector<std::uint64_t> changed_switch_words_;
  std::vector<std::uint64_t> changed_circuit_words_;
  std::vector<std::uint32_t> changed_switch_word_idx_;
  std::vector<std::uint32_t> changed_circuit_word_idx_;
  std::vector<std::uint8_t> dirty_scratch_;  // per-group dirty flags

  // Bound demand set and its incremental per-group caches.
  const DemandSet* bound_ = nullptr;
  std::size_t bound_size_ = 0;
  std::vector<DemandGroup> groups_;
  bool groups_ready_ = false;
  std::uint64_t groups_version_ = 0;
  LoadVector total_loads_;  // sum over group entries at groups_version_
  std::vector<std::uint32_t> total_touched_slots_;  // nonzero slots of total
  std::vector<std::uint32_t> slot_stamp_;           // slot dedup scratch
  std::uint32_t slot_epoch_ = 0;
  std::vector<topo::CircuitId> touched_circuits_;  // ascending ids
  bool touched_valid_ = false;
  std::vector<std::uint64_t> touched_circuit_words_;  // dedup/order scratch
  long long group_recomputes_ = 0;
  long long group_reuses_ = 0;

  // Worker pool state. Workers claim job indices via next_; the caller
  // waits until every claimed job finished and every worker left the drain
  // loop (active_ == 0) before touching the buffers.
  std::vector<std::unique_ptr<Scratch>> worker_scratch_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  int active_ = 0;
  std::size_t njobs_ = 0;
  std::atomic<std::size_t> next_{0};
  std::vector<std::uint32_t> job_groups_;  // dirty group indices, ascending
  std::vector<std::uint8_t> job_ok_;       // aligned with job_groups_
  std::vector<std::string> job_fail_;      // failed demand name per job

  // Global observability counters (metrics.h; no-ops while disabled). These
  // aggregate *physical* work over every router instance, worker clones
  // included — unlike the planner's logical counters they are not invariant
  // under num_threads / num_workers.
  obs::Counter& m_alive_journal_replays_;
  obs::Counter& m_alive_full_rebuilds_;
  obs::Counter& m_group_recomputes_;
  obs::Counter& m_group_reuses_;
  obs::Counter& m_group_invalidations_;
  obs::Counter& m_parallel_batches_;
  obs::Counter& m_parallel_jobs_;
  obs::Counter& m_dirty_screen_circuits_;
};

/// Maximum utilization over circuits given directional loads; utilization of
/// a circuit is max(direction loads) / capacity. Returns 0 for an empty
/// topology. Circuits not carrying traffic but with non-zero load would be a
/// router bug; they are ignored here.
double max_utilization(const topo::Topology& topo, const LoadVector& loads);

/// Worst circuit (id, utilization); id = kInvalidCircuit when no circuit is
/// loaded.
struct WorstCircuit {
  topo::CircuitId circuit = topo::kInvalidCircuit;
  double utilization = 0.0;
};
WorstCircuit worst_circuit(const topo::Topology& topo, const LoadVector& loads);

/// Touched-circuit fast path: identical result to the full-scan overloads
/// when `touched` (ascending circuit ids, e.g. EcmpRouter::touched_circuits)
/// covers every circuit with non-zero load in `loads`. Circuits outside
/// `touched` are not inspected.
double max_utilization(const topo::Topology& topo, const LoadVector& loads,
                       const std::vector<topo::CircuitId>& touched);
WorstCircuit worst_circuit(const topo::Topology& topo, const LoadVector& loads,
                           const std::vector<topo::CircuitId>& touched);

}  // namespace klotski::traffic
