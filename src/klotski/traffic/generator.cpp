#include "klotski/traffic/generator.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace klotski::traffic {

using topo::Region;
using topo::SwitchId;
using topo::SwitchRole;

double dc_uplink_capacity(const Region& region, int dc) {
  double total = 0.0;
  for (const topo::Circuit& c : region.topo.circuits()) {
    if (!c.present()) continue;
    const topo::Switch& a = region.topo.sw(c.a);
    const topo::Switch& b = region.topo.sw(c.b);
    const bool ssw_fadu = (a.role == SwitchRole::kSsw &&
                           b.role == SwitchRole::kFadu) ||
                          (a.role == SwitchRole::kFadu &&
                           b.role == SwitchRole::kSsw);
    if (!ssw_fadu) continue;
    const topo::Switch& ssw = a.role == SwitchRole::kSsw ? a : b;
    if (ssw.loc.dc == dc) total += c.capacity_tbps;
  }
  return total;
}

double dc_rsw_uplink_capacity(const Region& region, int dc) {
  double total = 0.0;
  for (const topo::Circuit& c : region.topo.circuits()) {
    if (!c.present()) continue;
    const topo::Switch& a = region.topo.sw(c.a);
    const topo::Switch& b = region.topo.sw(c.b);
    const bool rsw_fsw = (a.role == SwitchRole::kRsw &&
                          b.role == SwitchRole::kFsw) ||
                         (a.role == SwitchRole::kFsw &&
                          b.role == SwitchRole::kRsw);
    if (!rsw_fsw) continue;
    const topo::Switch& rsw = a.role == SwitchRole::kRsw ? a : b;
    if (rsw.loc.dc == dc) total += c.capacity_tbps;
  }
  return total;
}

double dc_bottleneck_capacity(const Region& region, int dc) {
  return std::min({dc_uplink_capacity(region, dc),
                   dc_spine_capacity(region, dc),
                   dc_rsw_uplink_capacity(region, dc)});
}

double dc_spine_capacity(const Region& region, int dc) {
  double total = 0.0;
  for (const topo::Circuit& c : region.topo.circuits()) {
    if (!c.present()) continue;
    const topo::Switch& a = region.topo.sw(c.a);
    const topo::Switch& b = region.topo.sw(c.b);
    const bool fsw_ssw = (a.role == SwitchRole::kFsw &&
                          b.role == SwitchRole::kSsw) ||
                         (a.role == SwitchRole::kSsw &&
                          b.role == SwitchRole::kFsw);
    if (!fsw_ssw) continue;
    const topo::Switch& fsw = a.role == SwitchRole::kFsw ? a : b;
    if (fsw.loc.dc == dc) total += c.capacity_tbps;
  }
  return total;
}

DemandSet generate_mesh_demands(const Region& region,
                                const DemandGenParams& params) {
  if (region.mesh_nodes.empty()) {
    throw std::invalid_argument(
        "generate_mesh_demands: region has no mesh nodes (not a flat/reconf "
        "region)");
  }
  const int n = static_cast<int>(region.mesh_nodes.size());
  const int groups = std::max(2, std::min(params.mesh_groups, n / 2));

  // Incident active capacity per node: the reference each group's ingress
  // volume is calibrated against.
  std::vector<double> incident(region.topo.num_switches(), 0.0);
  for (const topo::Circuit& c : region.topo.circuits()) {
    if (!c.present()) continue;
    incident[static_cast<std::size_t>(c.a)] += c.capacity_tbps;
    incident[static_cast<std::size_t>(c.b)] += c.capacity_tbps;
  }

  // Ring-contiguous groups, sized as evenly as possible.
  std::vector<std::vector<SwitchId>> members(static_cast<std::size_t>(groups));
  std::vector<double> group_capacity(static_cast<std::size_t>(groups), 0.0);
  for (int i = 0; i < n; ++i) {
    const auto g = static_cast<std::size_t>(
        static_cast<std::int64_t>(i) * groups / n);
    const SwitchId id = region.mesh_nodes[static_cast<std::size_t>(i)];
    members[g].push_back(id);
    group_capacity[g] += incident[static_cast<std::size_t>(id)];
  }

  DemandSet demands;
  for (int dst = 0; dst < groups; ++dst) {
    // Half the group's port capacity enters it, split across the sources.
    const double per_peer = params.mesh_group_frac *
                            group_capacity[static_cast<std::size_t>(dst)] /
                            2.0 / static_cast<double>(groups - 1);
    if (per_peer <= 0.0) continue;
    for (int src = 0; src < groups; ++src) {
      if (src == dst) continue;
      Demand d;
      d.name = "mesh/g" + std::to_string(src) + "-to-g" + std::to_string(dst);
      d.kind = DemandKind::kEastWest;
      d.sources = members[static_cast<std::size_t>(src)];
      d.targets = members[static_cast<std::size_t>(dst)];
      d.volume_tbps = per_peer;
      demands.push_back(std::move(d));
    }
  }
  return demands;
}

DemandSet generate_demands(const Region& region,
                           const DemandGenParams& params) {
  DemandSet demands;
  const int dcs = region.num_dcs();

  for (int dc = 0; dc < dcs; ++dc) {
    const double uplink = dc_bottleneck_capacity(region, dc);
    const std::string dc_tag = "dc" + std::to_string(dc);

    if (params.egress_frac > 0.0) {
      Demand d;
      d.name = dc_tag + "/egress";
      d.kind = DemandKind::kEgress;
      d.sources = region.rsws[dc];
      d.targets = region.ebbs;
      d.volume_tbps = params.egress_frac * uplink;
      demands.push_back(std::move(d));
    }
    if (params.ingress_frac > 0.0) {
      Demand d;
      d.name = dc_tag + "/ingress";
      d.kind = DemandKind::kIngress;
      d.sources = region.ebbs;
      d.targets = region.rsws[dc];
      d.volume_tbps = params.ingress_frac * uplink;
      demands.push_back(std::move(d));
    }

    // East-west: one demand per ordered DC pair, equal share of the source
    // DC's east-west budget.
    if (dcs > 1 && params.east_west_frac > 0.0) {
      const double per_peer =
          params.east_west_frac * uplink / static_cast<double>(dcs - 1);
      for (int peer = 0; peer < dcs; ++peer) {
        if (peer == dc) continue;
        Demand d;
        d.name = dc_tag + "/ew-to-dc" + std::to_string(peer);
        d.kind = DemandKind::kEastWest;
        d.sources = region.rsws[dc];
        d.targets = region.rsws[peer];
        d.volume_tbps = per_peer;
        demands.push_back(std::move(d));
      }
    }

    // Intra-DC pod-to-pod: even pods -> odd pods and back, so the flows
    // must cross the spine layer.
    const topo::FabricParams& fab = region.fabric(dc);
    if (fab.pods >= 2 && params.intra_dc_frac > 0.0) {
      std::vector<SwitchId> even_rsws;
      std::vector<SwitchId> odd_rsws;
      for (const SwitchId id : region.rsws[dc]) {
        const topo::Switch& s = region.topo.sw(id);
        ((s.loc.pod % 2 == 0) ? even_rsws : odd_rsws).push_back(id);
      }
      if (!even_rsws.empty() && !odd_rsws.empty()) {
        const double volume =
            params.intra_dc_frac * dc_bottleneck_capacity(region, dc) / 2.0;
        Demand fwd;
        fwd.name = dc_tag + "/intra-even-odd";
        fwd.kind = DemandKind::kIntraDc;
        fwd.sources = even_rsws;
        fwd.targets = odd_rsws;
        fwd.volume_tbps = volume;
        demands.push_back(fwd);
        Demand rev;
        rev.name = dc_tag + "/intra-odd-even";
        rev.kind = DemandKind::kIntraDc;
        rev.sources = std::move(odd_rsws);
        rev.targets = std::move(even_rsws);
        rev.volume_tbps = volume;
        demands.push_back(std::move(rev));
      }
    }
  }
  return demands;
}

}  // namespace klotski::traffic
