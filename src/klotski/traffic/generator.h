// Synthesizes a calibrated demand set for a region (§6.1 "Traffic").
//
// The paper forecasts demands from production history; we do not have that
// data, so volumes are derived from the region's own layer capacities: each
// demand class is a configurable fraction of the capacity of the layer it
// stresses. The defaults put the aggregation layer at roughly 40-45%
// utilization, which reproduces the feasibility cliff the paper describes —
// draining everything at once violates the default theta = 0.75, while
// draining in batches is safe.
#pragma once

#include "klotski/topo/builder.h"
#include "klotski/traffic/demand.h"

namespace klotski::traffic {

struct DemandGenParams {
  /// Per-DC RSW -> EBB volume, as a fraction of the DC's bottleneck layer
  /// capacity (min of RSW uplink, spine, and SSW->FADU uplink capacity).
  double egress_frac = 0.25;
  /// Per-DC EBB -> RSW volume, same reference capacity (opposite direction).
  double ingress_frac = 0.25;
  /// Total east-west volume leaving each DC toward the other DCs, same
  /// reference capacity. Ignored for single-DC regions.
  double east_west_frac = 0.10;
  /// Per-DC pod-to-pod RSW -> RSW volume, same reference capacity
  /// (stresses the spine; relevant for the SSW forklift migration).
  /// Requires >= 2 pods; skipped otherwise.
  double intra_dc_frac = 0.18;

  /// Non-Clos (flat/reconf) regions only: group-to-group volume entering
  /// each ring-contiguous node group, as a fraction of the group's incident
  /// circuit capacity. Calibrated like the Clos fracs: bulk draining
  /// violates the default theta, batched draining is safe.
  double mesh_group_frac = 0.30;
  /// Number of ring-contiguous groups the mesh demands run between.
  int mesh_groups = 4;
};

/// Uplink (SSW->FADU) capacity of one DC in the region, Tbps one direction.
double dc_uplink_capacity(const topo::Region& region, int dc);

/// Spine (FSW->SSW) capacity of one DC, Tbps one direction.
double dc_spine_capacity(const topo::Region& region, int dc);

/// RSW uplink (RSW->FSW) capacity of one DC, Tbps one direction.
double dc_rsw_uplink_capacity(const topo::Region& region, int dc);

/// The bottleneck of the three fabric layers above: demand volumes are
/// calibrated against this so no layer starts out saturated.
double dc_bottleneck_capacity(const topo::Region& region, int dc);

/// Builds the demand set for a region.
DemandSet generate_demands(const topo::Region& region,
                           const DemandGenParams& params = {});

/// Builds the demand set for a non-Clos mesh region (flat/reconf): the
/// switches are split into mesh_groups ring-contiguous groups and every
/// ordered group pair carries an east-west demand, so draining any switch
/// both removes transit capacity and concentrates its group's volume on
/// the surviving sources. Requires region.mesh_nodes to be non-empty.
DemandSet generate_mesh_demands(const topo::Region& region,
                                const DemandGenParams& params = {});

}  // namespace klotski::traffic
