#include "klotski/traffic/ecmp.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace klotski::traffic {

using topo::CircuitId;
using topo::SwitchId;
using topo::Topology;

EcmpRouter::EcmpRouter(const topo::Topology& topo, SplitMode mode)
    : topo_(topo),
      mode_(mode),
      num_switches_(topo.num_switches()),
      m_alive_journal_replays_(
          obs::Registry::global().counter("router.alive_journal_replays")),
      m_alive_full_rebuilds_(
          obs::Registry::global().counter("router.alive_full_rebuilds")),
      m_group_recomputes_(
          obs::Registry::global().counter("router.group_recomputes")),
      m_group_reuses_(obs::Registry::global().counter("router.group_reuses")),
      m_group_invalidations_(
          obs::Registry::global().counter("router.group_invalidations")) {
  offsets_.assign(num_switches_ + 1, 0);
  for (const topo::Circuit& c : topo.circuits()) {
    ++offsets_[static_cast<std::size_t>(c.a) + 1];
    ++offsets_[static_cast<std::size_t>(c.b) + 1];
  }
  for (std::size_t i = 1; i <= num_switches_; ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  arcs_.resize(offsets_[num_switches_]);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const topo::Circuit& c : topo.circuits()) {
    arcs_[cursor[static_cast<std::size_t>(c.a)]++] = Arc{c.id, c.b};
    arcs_[cursor[static_cast<std::size_t>(c.b)]++] = Arc{c.id, c.a};
  }

  dist_.assign(num_switches_, kUnreached);
  visit_order_.reserve(num_switches_);
  volume_.assign(num_switches_, 0.0);
  alive_.assign(topo.num_circuits(), 0);
}

void EcmpRouter::set_split_mode(SplitMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  // Cached group loads were computed under the old split weights.
  groups_ready_ = false;
  for (DemandGroup& g : groups_) g.valid = false;
}

void EcmpRouter::refresh_alive() {
  const std::uint64_t v = topo_.state_version();
  if (alive_valid_ && v == alive_version_ &&
      alive_.size() == topo_.num_circuits()) {
    return;
  }
  const auto carries = [&](CircuitId c) -> std::uint8_t {
    const topo::Circuit& cc = topo_.circuit(c);
    return cc.state == topo::ElementState::kActive &&
                   topo_.sw(cc.a).active() && topo_.sw(cc.b).active()
               ? 1
               : 0;
  };
  changes_scratch_.clear();
  if (alive_valid_ && alive_.size() == topo_.num_circuits() &&
      topo_.changes_since(alive_version_, changes_scratch_)) {
    m_alive_journal_replays_.inc();
    // Replay only the journaled changes: a circuit flip touches that
    // circuit, a switch flip touches its incident circuits.
    for (const Topology::StateChange e : changes_scratch_) {
      if (Topology::change_is_switch(e)) {
        for (const CircuitId c : topo_.incident(Topology::change_switch(e))) {
          alive_[static_cast<std::size_t>(c)] = carries(c);
        }
      } else {
        const CircuitId c = Topology::change_circuit(e);
        alive_[static_cast<std::size_t>(c)] = carries(c);
      }
    }
  } else {
    m_alive_full_rebuilds_.inc();
    alive_.resize(topo_.num_circuits());
    for (const topo::Circuit& c : topo_.circuits()) {
      alive_[static_cast<std::size_t>(c.id)] = carries(c.id);
    }
  }
  alive_valid_ = true;
  alive_version_ = v;
}

std::size_t EcmpRouter::bfs_from_targets(const Demand& demand) {
  std::fill(dist_.begin(), dist_.end(), kUnreached);
  visit_order_.clear();

  for (const SwitchId t : demand.targets) {
    if (!topo_.sw(t).active()) continue;
    if (dist_[static_cast<std::size_t>(t)] == kUnreached) {
      dist_[static_cast<std::size_t>(t)] = 0;
      visit_order_.push_back(t);
    }
  }
  if (visit_order_.empty()) return 0;

  // Standard BFS; visit_order_ doubles as the queue (ascending distance).
  for (std::size_t head = 0; head < visit_order_.size(); ++head) {
    const SwitchId u = visit_order_[head];
    const std::int32_t du = dist_[static_cast<std::size_t>(u)];
    for (std::uint32_t i = offsets_[static_cast<std::size_t>(u)];
         i < offsets_[static_cast<std::size_t>(u) + 1]; ++i) {
      const Arc& arc = arcs_[i];
      if (!alive_[static_cast<std::size_t>(arc.circuit)]) continue;
      auto& dv = dist_[static_cast<std::size_t>(arc.neighbor)];
      if (dv == kUnreached) {
        dv = du + 1;
        visit_order_.push_back(arc.neighbor);
      }
    }
  }
  return visit_order_.size();
}

bool EcmpRouter::reachable(const Demand& demand) {
  refresh_alive();
  if (bfs_from_targets(demand) == 0) return false;
  for (const SwitchId s : demand.sources) {
    if (topo_.sw(s).active() &&
        dist_[static_cast<std::size_t>(s)] == kUnreached) {
      return false;
    }
  }
  return true;
}

bool EcmpRouter::inject_sources(const std::vector<const Demand*>& demands,
                                const Demand** failed) {
  for (const Demand* demand : demands) {
    // Count active sources and check reachability first (Eq. 4).
    std::size_t active_sources = 0;
    for (const SwitchId s : demand->sources) {
      if (!topo_.sw(s).active()) continue;
      if (dist_[static_cast<std::size_t>(s)] == kUnreached) {
        if (failed != nullptr) *failed = demand;
        return false;
      }
      ++active_sources;
    }
    if (active_sources == 0) continue;  // vacuously satisfied, no load

    const double per_source =
        demand->volume_tbps / static_cast<double>(active_sources);
    for (const SwitchId s : demand->sources) {
      if (topo_.sw(s).active() &&
          dist_[static_cast<std::size_t>(s)] != kUnreached) {
        volume_[static_cast<std::size_t>(s)] += per_source;
      }
    }
  }
  return true;
}

void EcmpRouter::propagate(LoadVector& loads) {
  // Propagate along the DAG in decreasing distance: visit_order_ is in
  // ascending distance, so walk it backwards. A switch's volume splits
  // over circuits toward neighbors one step closer to a target.
  for (std::size_t idx = visit_order_.size(); idx-- > 0;) {
    const SwitchId u = visit_order_[idx];
    const double vol = volume_[static_cast<std::size_t>(u)];
    if (vol <= 0.0) continue;
    const std::int32_t du = dist_[static_cast<std::size_t>(u)];
    if (du == 0) continue;  // absorbed at a target

    // Single scan: collect the equal-cost next hops and their total split
    // weight (hop count for plain ECMP, summed capacity for weighted ECMP).
    next_hops_.clear();
    double total_weight = 0.0;
    for (std::uint32_t i = offsets_[static_cast<std::size_t>(u)];
         i < offsets_[static_cast<std::size_t>(u) + 1]; ++i) {
      const Arc& arc = arcs_[i];
      if (!alive_[static_cast<std::size_t>(arc.circuit)]) continue;
      if (dist_[static_cast<std::size_t>(arc.neighbor)] != du - 1) continue;
      next_hops_.push_back(i);
      total_weight += mode_ == SplitMode::kEqualSplit
                          ? 1.0
                          : topo_.circuit(arc.circuit).capacity_tbps;
    }
    assert(total_weight > 0.0 && "reached switch must have a next hop");

    for (const std::uint32_t i : next_hops_) {
      const Arc& arc = arcs_[i];
      const topo::Circuit& c = topo_.circuit(arc.circuit);
      const double weight =
          mode_ == SplitMode::kEqualSplit ? 1.0 : c.capacity_tbps;
      const double share = vol * weight / total_weight;
      // Direction: u -> neighbor. Slot 2c is a->b.
      const std::size_t slot = static_cast<std::size_t>(arc.circuit) * 2 +
                               (c.a == u ? 0 : 1);
      loads[slot] += share;
      volume_[static_cast<std::size_t>(arc.neighbor)] += share;
    }
  }
}

bool EcmpRouter::assign(const Demand& demand, LoadVector& loads) {
  loads.resize(topo_.num_circuits() * 2, 0.0);

  refresh_alive();
  if (bfs_from_targets(demand) == 0) return false;

  std::fill(volume_.begin(), volume_.end(), 0.0);
  const std::vector<const Demand*> group = {&demand};
  if (!inject_sources(group, nullptr)) return false;
  propagate(loads);
  return true;
}

namespace {

// Hash grouping key: the demand's target-set vector, compared by value.
struct TargetsHash {
  std::size_t operator()(const std::vector<SwitchId>* key) const {
    std::size_t h = 1469598103934665603ull;  // FNV-1a
    for (const SwitchId s : *key) {
      h ^= static_cast<std::size_t>(s);
      h *= 1099511628211ull;
    }
    return h;
  }
};
struct TargetsEq {
  bool operator()(const std::vector<SwitchId>* a,
                  const std::vector<SwitchId>* b) const {
    return *a == *b;
  }
};

}  // namespace

std::vector<std::vector<std::uint32_t>> EcmpRouter::group_by_targets(
    const DemandSet& demands) {
  std::vector<std::vector<std::uint32_t>> groups;
  std::unordered_map<const std::vector<SwitchId>*, std::size_t, TargetsHash,
                     TargetsEq>
      index;
  index.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto [it, inserted] =
        index.try_emplace(&demands[i].targets, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(static_cast<std::uint32_t>(i));
  }
  return groups;
}

bool EcmpRouter::run_group(const DemandSet& demands,
                           const std::vector<std::uint32_t>& indices,
                           LoadVector& loads, std::string* failed_demand) {
  // All demands of a group share one target set, hence one BFS. ECMP load
  // is linear in injected volume over a fixed shortest-path DAG, so one
  // merged propagation equals the sum of per-demand assignments.
  const Demand& representative = demands[indices.front()];
  if (bfs_from_targets(representative) == 0) {
    if (failed_demand != nullptr) *failed_demand = representative.name;
    return false;
  }
  std::fill(volume_.begin(), volume_.end(), 0.0);
  group_ptrs_.clear();
  for (const std::uint32_t i : indices) group_ptrs_.push_back(&demands[i]);
  const Demand* failed = nullptr;
  if (!inject_sources(group_ptrs_, &failed)) {
    if (failed_demand != nullptr) *failed_demand = failed->name;
    return false;
  }
  propagate(loads);
  return true;
}

void EcmpRouter::bind_demands(const DemandSet& demands) {
  bound_ = &demands;
  bound_size_ = demands.size();
  groups_.clear();
  groups_ready_ = false;
  auto grouping = group_by_targets(demands);
  groups_.resize(grouping.size());
  for (std::size_t gi = 0; gi < grouping.size(); ++gi) {
    DemandGroup& g = groups_[gi];
    g.demand_indices = std::move(grouping[gi]);
    g.relevant.assign(num_switches_, 0);
    for (const std::uint32_t i : g.demand_indices) {
      for (const SwitchId s : demands[i].sources) {
        g.relevant[static_cast<std::size_t>(s)] = 1;
      }
      for (const SwitchId t : demands[i].targets) {
        g.relevant[static_cast<std::size_t>(t)] = 1;
      }
    }
  }
}

void EcmpRouter::mark_dirty_groups(
    const std::vector<topo::Topology::StateChange>& changes,
    std::vector<std::uint8_t>& dirty) {
  if (circuit_stamp_.size() < topo_.num_circuits()) {
    circuit_stamp_.resize(topo_.num_circuits(), 0);
  }
  ++circuit_epoch_;
  affected_scratch_.clear();
  const auto touch = [&](CircuitId c) {
    auto& stamp = circuit_stamp_[static_cast<std::size_t>(c)];
    if (stamp != circuit_epoch_) {
      stamp = circuit_epoch_;
      affected_scratch_.push_back(c);
    }
  };
  for (const Topology::StateChange e : changes) {
    if (Topology::change_is_switch(e)) {
      const SwitchId s = Topology::change_switch(e);
      // A flipped switch dirties every group it sources or sinks (injection
      // and target activation depend on its state) ...
      for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        if (!dirty[gi] && groups_[gi].relevant[static_cast<std::size_t>(s)]) {
          dirty[gi] = 1;
        }
      }
      // ... and its incident circuits' liveness may have flipped.
      for (const CircuitId c : topo_.incident(s)) touch(c);
    } else {
      touch(Topology::change_circuit(e));
    }
  }

  // A liveness flip of circuit (a, b) can change a group's DAG or distances
  // only when, under the group's cached distances:
  //  * circuit now alive: it could shorten paths or add a DAG edge unless
  //    both endpoints were reached at equal distance (a same-level chord is
  //    never on a shortest path) or both were unreached (an edge between two
  //    unreached switches cannot connect either to a target);
  //  * circuit now dead: it could only have mattered when it was a DAG edge
  //    candidate, i.e. both endpoints reached at distances differing by 1.
  // Conservative: a circuit journaled without a net liveness change may
  // still mark a group dirty; never the other way around.
  for (const CircuitId c : affected_scratch_) {
    const topo::Circuit& cc = topo_.circuit(c);
    const bool alive_now = alive_[static_cast<std::size_t>(c)] != 0;
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      if (dirty[gi]) continue;
      const DemandGroup& g = groups_[gi];
      const std::int32_t da = g.dist[static_cast<std::size_t>(cc.a)];
      const std::int32_t db = g.dist[static_cast<std::size_t>(cc.b)];
      if (alive_now) {
        const bool equal_reached = da != kUnreached && da == db;
        const bool both_unreached = da == kUnreached && db == kUnreached;
        if (!equal_reached && !both_unreached) dirty[gi] = 1;
      } else {
        if (da != kUnreached && db != kUnreached &&
            (da - db == 1 || db - da == 1)) {
          dirty[gi] = 1;
        }
      }
    }
  }
}

bool EcmpRouter::assign_bound(LoadVector& loads, std::string* failed_demand) {
  const DemandSet& demands = *bound_;
  refresh_alive();
  const std::uint64_t v = topo_.state_version();

  dirty_scratch_.assign(groups_.size(), 0);
  bool any_dirty = false;
  if (!groups_ready_) {
    std::fill(dirty_scratch_.begin(), dirty_scratch_.end(), 1);
    any_dirty = !groups_.empty();
  } else if (v != groups_version_) {
    changes_scratch_.clear();
    if (topo_.changes_since(groups_version_, changes_scratch_)) {
      mark_dirty_groups(changes_scratch_, dirty_scratch_);
    } else {
      // Journal no longer covers the gap (or structural change): rebuild.
      std::fill(dirty_scratch_.begin(), dirty_scratch_.end(), 1);
    }
    long long invalidated = 0;
    for (const std::uint8_t d : dirty_scratch_) {
      any_dirty |= d != 0;
      invalidated += d != 0 ? 1 : 0;
    }
    m_group_invalidations_.inc(invalidated);
  }
  // groups_ready_ && v == groups_version_: every cache is current.

  if (any_dirty) {
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      DemandGroup& g = groups_[gi];
      if (!dirty_scratch_[gi]) {
        ++group_reuses_;
        m_group_reuses_.inc();
        continue;
      }
      ++group_recomputes_;
      m_group_recomputes_.inc();
      g.valid = false;
      g.loads.assign(loads.size(), 0.0);
      if (!run_group(demands, g.demand_indices, g.loads, failed_demand)) {
        groups_ready_ = false;
        return false;
      }
      g.dist = dist_;
      g.valid = true;
    }
    total_loads_.assign(loads.size(), 0.0);
    for (const DemandGroup& g : groups_) {
      for (std::size_t i = 0; i < total_loads_.size(); ++i) {
        total_loads_[i] += g.loads[i];
      }
    }
    groups_ready_ = true;
    groups_version_ = v;
  } else if (!groups_ready_) {
    // Empty bound set: nothing to compute, caches are trivially current.
    total_loads_.assign(loads.size(), 0.0);
    groups_ready_ = true;
    groups_version_ = v;
  } else {
    group_reuses_ += static_cast<long long>(groups_.size());
    m_group_reuses_.inc(static_cast<long long>(groups_.size()));
  }

  for (std::size_t i = 0; i < loads.size(); ++i) loads[i] += total_loads_[i];
  return true;
}

bool EcmpRouter::assign_all(const DemandSet& demands, LoadVector& loads,
                            std::string* failed_demand) {
  loads.resize(topo_.num_circuits() * 2, 0.0);
  if (bound_ == &demands && demands.size() == bound_size_) {
    return assign_bound(loads, failed_demand);
  }

  // Unbound one-shot path: group by target set (hash map, first-occurrence
  // order) and evaluate each group once, without caching.
  refresh_alive();
  for (const auto& indices : group_by_targets(demands)) {
    if (!run_group(demands, indices, loads, failed_demand)) return false;
  }
  return true;
}

double max_utilization(const topo::Topology& topo, const LoadVector& loads) {
  return worst_circuit(topo, loads).utilization;
}

WorstCircuit worst_circuit(const topo::Topology& topo,
                           const LoadVector& loads) {
  WorstCircuit worst;
  const std::size_t n = std::min(loads.size() / 2, topo.num_circuits());
  for (std::size_t c = 0; c < n; ++c) {
    const double load = std::max(loads[c * 2], loads[c * 2 + 1]);
    if (load <= 0.0) continue;
    const double util = load / topo.circuit(static_cast<CircuitId>(c))
                                   .capacity_tbps;
    if (util > worst.utilization) {
      worst.utilization = util;
      worst.circuit = static_cast<CircuitId>(c);
    }
  }
  return worst;
}

}  // namespace klotski::traffic
