#include "klotski/traffic/ecmp.h"

#include <algorithm>
#include <cassert>

namespace klotski::traffic {

using topo::CircuitId;
using topo::SwitchId;

EcmpRouter::EcmpRouter(const topo::Topology& topo, SplitMode mode)
    : topo_(topo), mode_(mode), num_switches_(topo.num_switches()) {
  offsets_.assign(num_switches_ + 1, 0);
  for (const topo::Circuit& c : topo.circuits()) {
    ++offsets_[static_cast<std::size_t>(c.a) + 1];
    ++offsets_[static_cast<std::size_t>(c.b) + 1];
  }
  for (std::size_t i = 1; i <= num_switches_; ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  arcs_.resize(offsets_[num_switches_]);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const topo::Circuit& c : topo.circuits()) {
    arcs_[cursor[static_cast<std::size_t>(c.a)]++] = Arc{c.id, c.b};
    arcs_[cursor[static_cast<std::size_t>(c.b)]++] = Arc{c.id, c.a};
  }

  dist_.assign(num_switches_, kUnreached);
  visit_order_.reserve(num_switches_);
  volume_.assign(num_switches_, 0.0);
  alive_.assign(topo.num_circuits(), 0);
}

void EcmpRouter::refresh_alive() {
  alive_.resize(topo_.num_circuits());
  for (const topo::Circuit& c : topo_.circuits()) {
    alive_[static_cast<std::size_t>(c.id)] =
        c.state == topo::ElementState::kActive && topo_.sw(c.a).active() &&
                topo_.sw(c.b).active()
            ? 1
            : 0;
  }
}

std::size_t EcmpRouter::bfs_from_targets(const Demand& demand) {
  std::fill(dist_.begin(), dist_.end(), kUnreached);
  visit_order_.clear();

  for (const SwitchId t : demand.targets) {
    if (!topo_.sw(t).active()) continue;
    if (dist_[static_cast<std::size_t>(t)] == kUnreached) {
      dist_[static_cast<std::size_t>(t)] = 0;
      visit_order_.push_back(t);
    }
  }
  if (visit_order_.empty()) return 0;

  // Standard BFS; visit_order_ doubles as the queue (ascending distance).
  for (std::size_t head = 0; head < visit_order_.size(); ++head) {
    const SwitchId u = visit_order_[head];
    const std::int32_t du = dist_[static_cast<std::size_t>(u)];
    for (std::uint32_t i = offsets_[static_cast<std::size_t>(u)];
         i < offsets_[static_cast<std::size_t>(u) + 1]; ++i) {
      const Arc& arc = arcs_[i];
      if (!alive_[static_cast<std::size_t>(arc.circuit)]) continue;
      auto& dv = dist_[static_cast<std::size_t>(arc.neighbor)];
      if (dv == kUnreached) {
        dv = du + 1;
        visit_order_.push_back(arc.neighbor);
      }
    }
  }
  return visit_order_.size();
}

bool EcmpRouter::reachable(const Demand& demand) {
  refresh_alive();
  if (bfs_from_targets(demand) == 0) return false;
  for (const SwitchId s : demand.sources) {
    if (topo_.sw(s).active() &&
        dist_[static_cast<std::size_t>(s)] == kUnreached) {
      return false;
    }
  }
  return true;
}

bool EcmpRouter::inject_sources(const std::vector<const Demand*>& demands,
                                const Demand** failed) {
  for (const Demand* demand : demands) {
    // Count active sources and check reachability first (Eq. 4).
    std::size_t active_sources = 0;
    for (const SwitchId s : demand->sources) {
      if (!topo_.sw(s).active()) continue;
      if (dist_[static_cast<std::size_t>(s)] == kUnreached) {
        if (failed != nullptr) *failed = demand;
        return false;
      }
      ++active_sources;
    }
    if (active_sources == 0) continue;  // vacuously satisfied, no load

    const double per_source =
        demand->volume_tbps / static_cast<double>(active_sources);
    for (const SwitchId s : demand->sources) {
      if (topo_.sw(s).active() &&
          dist_[static_cast<std::size_t>(s)] != kUnreached) {
        volume_[static_cast<std::size_t>(s)] += per_source;
      }
    }
  }
  return true;
}

void EcmpRouter::propagate(LoadVector& loads) {
  // Propagate along the DAG in decreasing distance: visit_order_ is in
  // ascending distance, so walk it backwards. A switch's volume splits
  // over circuits toward neighbors one step closer to a target.
  for (std::size_t idx = visit_order_.size(); idx-- > 0;) {
    const SwitchId u = visit_order_[idx];
    const double vol = volume_[static_cast<std::size_t>(u)];
    if (vol <= 0.0) continue;
    const std::int32_t du = dist_[static_cast<std::size_t>(u)];
    if (du == 0) continue;  // absorbed at a target

    // Single scan: collect the equal-cost next hops and their total split
    // weight (hop count for plain ECMP, summed capacity for weighted ECMP).
    next_hops_.clear();
    double total_weight = 0.0;
    for (std::uint32_t i = offsets_[static_cast<std::size_t>(u)];
         i < offsets_[static_cast<std::size_t>(u) + 1]; ++i) {
      const Arc& arc = arcs_[i];
      if (!alive_[static_cast<std::size_t>(arc.circuit)]) continue;
      if (dist_[static_cast<std::size_t>(arc.neighbor)] != du - 1) continue;
      next_hops_.push_back(i);
      total_weight += mode_ == SplitMode::kEqualSplit
                          ? 1.0
                          : topo_.circuit(arc.circuit).capacity_tbps;
    }
    assert(total_weight > 0.0 && "reached switch must have a next hop");

    for (const std::uint32_t i : next_hops_) {
      const Arc& arc = arcs_[i];
      const topo::Circuit& c = topo_.circuit(arc.circuit);
      const double weight =
          mode_ == SplitMode::kEqualSplit ? 1.0 : c.capacity_tbps;
      const double share = vol * weight / total_weight;
      // Direction: u -> neighbor. Slot 2c is a->b.
      const std::size_t slot = static_cast<std::size_t>(arc.circuit) * 2 +
                               (c.a == u ? 0 : 1);
      loads[slot] += share;
      volume_[static_cast<std::size_t>(arc.neighbor)] += share;
    }
  }
}

bool EcmpRouter::assign(const Demand& demand, LoadVector& loads) {
  loads.resize(topo_.num_circuits() * 2, 0.0);

  refresh_alive();
  if (bfs_from_targets(demand) == 0) return false;

  std::fill(volume_.begin(), volume_.end(), 0.0);
  const std::vector<const Demand*> group = {&demand};
  if (!inject_sources(group, nullptr)) return false;
  propagate(loads);
  return true;
}

bool EcmpRouter::assign_all(const DemandSet& demands, LoadVector& loads,
                            std::string* failed_demand) {
  loads.resize(topo_.num_circuits() * 2, 0.0);
  refresh_alive();

  // Group demands by target set: one BFS + one propagation per group.
  // ECMP load is linear in injected volume over a fixed shortest-path DAG,
  // so merged propagation equals the sum of per-demand assignments.
  std::vector<bool> grouped(demands.size(), false);
  std::vector<const Demand*> group;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (grouped[i]) continue;
    group.clear();
    group.push_back(&demands[i]);
    grouped[i] = true;
    for (std::size_t j = i + 1; j < demands.size(); ++j) {
      if (!grouped[j] && demands[j].targets == demands[i].targets) {
        group.push_back(&demands[j]);
        grouped[j] = true;
      }
    }

    if (bfs_from_targets(demands[i]) == 0) {
      if (failed_demand != nullptr) *failed_demand = demands[i].name;
      return false;
    }
    std::fill(volume_.begin(), volume_.end(), 0.0);
    const Demand* failed = nullptr;
    if (!inject_sources(group, &failed)) {
      if (failed_demand != nullptr) *failed_demand = failed->name;
      return false;
    }
    propagate(loads);
  }
  return true;
}

double max_utilization(const topo::Topology& topo, const LoadVector& loads) {
  return worst_circuit(topo, loads).utilization;
}

WorstCircuit worst_circuit(const topo::Topology& topo,
                           const LoadVector& loads) {
  WorstCircuit worst;
  const std::size_t n = std::min(loads.size() / 2, topo.num_circuits());
  for (std::size_t c = 0; c < n; ++c) {
    const double load = std::max(loads[c * 2], loads[c * 2 + 1]);
    if (load <= 0.0) continue;
    const double util = load / topo.circuit(static_cast<CircuitId>(c))
                                   .capacity_tbps;
    if (util > worst.utilization) {
      worst.utilization = util;
      worst.circuit = static_cast<CircuitId>(c);
    }
  }
  return worst;
}

}  // namespace klotski::traffic
