#include "klotski/traffic/ecmp.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <unordered_map>

namespace klotski::traffic {

using topo::CircuitId;
using topo::SwitchId;
using topo::Topology;

namespace {

constexpr std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }

}  // namespace

EcmpRouter::EcmpRouter(const topo::Topology& topo, SplitMode mode)
    : topo_(topo),
      mode_(mode),
      num_switches_(topo.num_switches()),
      m_alive_journal_replays_(
          obs::Registry::global().counter("router.alive_journal_replays")),
      m_alive_full_rebuilds_(
          obs::Registry::global().counter("router.alive_full_rebuilds")),
      m_group_recomputes_(
          obs::Registry::global().counter("router.group_recomputes")),
      m_group_reuses_(obs::Registry::global().counter("router.group_reuses")),
      m_group_invalidations_(
          obs::Registry::global().counter("router.group_invalidations")),
      m_parallel_batches_(
          obs::Registry::global().counter("router.parallel_batches")),
      m_parallel_jobs_(obs::Registry::global().counter("router.parallel_jobs")),
      m_dirty_screen_circuits_(
          obs::Registry::global().counter("router.dirty_screen_circuits")) {
  offsets_.assign(num_switches_ + 1, 0);
  for (const topo::Circuit& c : topo.circuits()) {
    ++offsets_[static_cast<std::size_t>(c.a) + 1];
    ++offsets_[static_cast<std::size_t>(c.b) + 1];
  }
  for (std::size_t i = 1; i <= num_switches_; ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  arcs_.resize(offsets_[num_switches_]);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const topo::Circuit& c : topo.circuits()) {
    const auto cid = static_cast<std::size_t>(c.id);
    const auto word = static_cast<std::uint32_t>(cid >> 6);
    const std::uint64_t mask = std::uint64_t{1} << (cid & 63);
    // Direction slot convention: 2c is a -> b, 2c + 1 is b -> a.
    arcs_[cursor[static_cast<std::size_t>(c.a)]++] =
        Arc{c.b, static_cast<std::uint32_t>(cid * 2), word, 0, mask,
            c.capacity_tbps};
    arcs_[cursor[static_cast<std::size_t>(c.b)]++] =
        Arc{c.a, static_cast<std::uint32_t>(cid * 2 + 1), word, 0, mask,
            c.capacity_tbps};
  }

  scratch_.init(num_switches_);
  alive_words_.assign(word_count(topo.num_circuits()), 0);
}

EcmpRouter::~EcmpRouter() { stop_workers(); }

void EcmpRouter::Scratch::init(std::size_t num_switches) {
  dist.assign(num_switches, -1);
  stamp.assign(num_switches, 0);
  epoch = 0;
  visit_order.clear();
  visit_order.reserve(num_switches);
  volume.assign(num_switches, 0.0);
}

void EcmpRouter::Scratch::begin_bfs() {
  visit_order.clear();
  if (++epoch == 0) {
    // uint32 wrap (once per ~4e9 BFS runs): stale stamps could collide with
    // the recycled epoch, so clear them and restart at 1.
    std::fill(stamp.begin(), stamp.end(), 0);
    epoch = 1;
  }
}

void EcmpRouter::set_split_mode(SplitMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  // Cached group loads were computed under the old split weights.
  groups_ready_ = false;
  touched_valid_ = false;
  for (DemandGroup& g : groups_) g.valid = false;
}

void EcmpRouter::refresh_alive() {
  const std::uint64_t v = topo_.state_version();
  const std::size_t words = word_count(topo_.num_circuits());
  if (alive_valid_ && v == alive_version_ && alive_words_.size() == words) {
    return;
  }
  changes_scratch_.clear();
  if (alive_valid_ && alive_words_.size() == words &&
      topo_.changes_since(alive_version_, changes_scratch_)) {
    m_alive_journal_replays_.inc();
    // Replay only the journaled changes: a circuit flip touches that
    // circuit's bit, a switch flip touches its incident circuits' bits.
    for (const Topology::StateChange e : changes_scratch_) {
      if (Topology::change_is_switch(e)) {
        for (const CircuitId c : topo_.incident(Topology::change_switch(e))) {
          set_circuit_alive(c, topo_.circuit_carries_traffic(c));
        }
      } else {
        const CircuitId c = Topology::change_circuit(e);
        set_circuit_alive(c, topo_.circuit_carries_traffic(c));
      }
    }
  } else {
    m_alive_full_rebuilds_.inc();
    topo_.liveness_words(alive_words_);
    // The full-rebuild path is also where out-of-band capacity edits land
    // (bump_state_version resets journal coverage), so re-inline the split
    // weights while we are touching every arc's circuit anyway.
    for (Arc& arc : arcs_) {
      arc.capacity_tbps =
          topo_.circuit(static_cast<CircuitId>(arc.fwd_slot >> 1))
              .capacity_tbps;
    }
  }
  alive_valid_ = true;
  alive_version_ = v;
}

std::size_t EcmpRouter::bfs_from_targets(Scratch& s,
                                         const Demand& demand) const {
  s.begin_bfs();

  for (const SwitchId t : demand.targets) {
    if (!topo_.sw(t).active()) continue;
    const auto ti = static_cast<std::size_t>(t);
    if (s.stamp[ti] != s.epoch) {
      s.stamp[ti] = s.epoch;
      s.dist[ti] = 0;
      s.volume[ti] = 0.0;  // lazy zero: only visited switches pay
      s.visit_order.push_back(t);
    }
  }
  if (s.visit_order.empty()) return 0;

  // Standard BFS; visit_order doubles as the queue (ascending distance).
  // Stamping replaces the O(|S|) dist/volume clears of a naive BFS.
  for (std::size_t head = 0; head < s.visit_order.size(); ++head) {
    const SwitchId u = s.visit_order[head];
    const std::int32_t du = s.dist[static_cast<std::size_t>(u)];
    const std::uint32_t end = offsets_[static_cast<std::size_t>(u) + 1];
    for (std::uint32_t i = offsets_[static_cast<std::size_t>(u)]; i < end;
         ++i) {
      const Arc& arc = arcs_[i];
      if (!(alive_words_[arc.alive_word] & arc.alive_mask)) continue;
      const auto ni = static_cast<std::size_t>(arc.neighbor);
      if (s.stamp[ni] != s.epoch) {
        s.stamp[ni] = s.epoch;
        s.dist[ni] = du + 1;
        s.volume[ni] = 0.0;
        s.visit_order.push_back(arc.neighbor);
      }
    }
  }
  return s.visit_order.size();
}

bool EcmpRouter::reachable(const Demand& demand) {
  refresh_alive();
  if (bfs_from_targets(scratch_, demand) == 0) return false;
  for (const SwitchId s : demand.sources) {
    if (topo_.sw(s).active() && !scratch_.reached(s)) return false;
  }
  return true;
}

bool EcmpRouter::inject_sources(Scratch& s,
                                const std::vector<const Demand*>& demands,
                                const Demand** failed) const {
  for (const Demand* demand : demands) {
    // Count active sources and check reachability first (Eq. 4).
    std::size_t active_sources = 0;
    for (const SwitchId src : demand->sources) {
      if (!topo_.sw(src).active()) continue;
      if (!s.reached(src)) {
        if (failed != nullptr) *failed = demand;
        return false;
      }
      ++active_sources;
    }
    if (active_sources == 0) continue;  // vacuously satisfied, no load

    const double per_source =
        demand->volume_tbps / static_cast<double>(active_sources);
    for (const SwitchId src : demand->sources) {
      if (topo_.sw(src).active() && s.reached(src)) {
        s.volume[static_cast<std::size_t>(src)] += per_source;
      }
    }
  }
  return true;
}

void EcmpRouter::propagate(Scratch& s, std::vector<LoadEntry>& out) const {
  // Propagate along the DAG in decreasing distance: visit_order is in
  // ascending distance, so walk it backwards. A switch's volume splits over
  // circuits toward neighbors one step closer to a target. A directional
  // slot is appended at most once: the arc u -> n is a DAG edge only when
  // dist[n] == dist[u] - 1, which the reverse direction cannot satisfy, and
  // each directed arc is scanned exactly once.
  for (std::size_t idx = s.visit_order.size(); idx-- > 0;) {
    const SwitchId u = s.visit_order[idx];
    const double vol = s.volume[static_cast<std::size_t>(u)];
    if (vol <= 0.0) continue;
    const std::int32_t du = s.dist[static_cast<std::size_t>(u)];
    if (du == 0) continue;  // absorbed at a target

    // Single scan: collect the equal-cost next hops and their total split
    // weight (hop count for plain ECMP, summed capacity for weighted ECMP).
    // An alive arc from a reached switch always has a reached neighbor (BFS
    // relaxed it under the same liveness words), so dist reads are valid.
    s.next_hops.clear();
    double total_weight = 0.0;
    const std::uint32_t end = offsets_[static_cast<std::size_t>(u) + 1];
    for (std::uint32_t i = offsets_[static_cast<std::size_t>(u)]; i < end;
         ++i) {
      const Arc& arc = arcs_[i];
      if (!(alive_words_[arc.alive_word] & arc.alive_mask)) continue;
      assert(s.reached(arc.neighbor));
      if (s.dist[static_cast<std::size_t>(arc.neighbor)] != du - 1) continue;
      s.next_hops.push_back(i);
      total_weight +=
          mode_ == SplitMode::kEqualSplit ? 1.0 : arc.capacity_tbps;
    }
    assert(total_weight > 0.0 && "reached switch must have a next hop");

    for (const std::uint32_t i : s.next_hops) {
      const Arc& arc = arcs_[i];
      const double weight =
          mode_ == SplitMode::kEqualSplit ? 1.0 : arc.capacity_tbps;
      const double share = vol * weight / total_weight;
      out.push_back(LoadEntry{arc.fwd_slot, share});
      s.volume[static_cast<std::size_t>(arc.neighbor)] += share;
    }
  }
}

bool EcmpRouter::assign(const Demand& demand, LoadVector& loads) {
  loads.resize(topo_.num_circuits() * 2, 0.0);
  touched_valid_ = false;

  refresh_alive();
  if (bfs_from_targets(scratch_, demand) == 0) return false;

  const std::vector<const Demand*> group = {&demand};
  if (!inject_sources(scratch_, group, nullptr)) return false;
  entries_scratch_.clear();
  propagate(scratch_, entries_scratch_);
  for (const LoadEntry& e : entries_scratch_) loads[e.slot] += e.value;
  return true;
}

namespace {

// Hash grouping key: the demand's target-set vector, compared by value.
struct TargetsHash {
  std::size_t operator()(const std::vector<SwitchId>* key) const {
    std::size_t h = 1469598103934665603ull;  // FNV-1a
    for (const SwitchId s : *key) {
      h ^= static_cast<std::size_t>(s);
      h *= 1099511628211ull;
    }
    return h;
  }
};
struct TargetsEq {
  bool operator()(const std::vector<SwitchId>* a,
                  const std::vector<SwitchId>* b) const {
    return *a == *b;
  }
};

}  // namespace

std::vector<std::vector<std::uint32_t>> EcmpRouter::group_by_targets(
    const DemandSet& demands) {
  std::vector<std::vector<std::uint32_t>> groups;
  std::unordered_map<const std::vector<SwitchId>*, std::size_t, TargetsHash,
                     TargetsEq>
      index;
  index.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto [it, inserted] =
        index.try_emplace(&demands[i].targets, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(static_cast<std::uint32_t>(i));
  }
  return groups;
}

bool EcmpRouter::run_group(Scratch& s, const DemandSet& demands,
                           const std::vector<std::uint32_t>& indices,
                           std::vector<LoadEntry>& out,
                           std::string* failed_demand) const {
  // All demands of a group share one target set, hence one BFS. ECMP load
  // is linear in injected volume over a fixed shortest-path DAG, so one
  // merged propagation equals the sum of per-demand assignments.
  const Demand& representative = demands[indices.front()];
  if (bfs_from_targets(s, representative) == 0) {
    if (failed_demand != nullptr) *failed_demand = representative.name;
    return false;
  }
  s.group_ptrs.clear();
  for (const std::uint32_t i : indices) s.group_ptrs.push_back(&demands[i]);
  const Demand* failed = nullptr;
  if (!inject_sources(s, s.group_ptrs, &failed)) {
    if (failed_demand != nullptr) *failed_demand = failed->name;
    return false;
  }
  propagate(s, out);
  return true;
}

bool EcmpRouter::recompute_group(Scratch& s, DemandGroup& g,
                                 std::string* failed_demand) const {
  m_group_recomputes_.inc();  // physical count (includes parallel overshoot)
  g.valid = false;
  g.entries.clear();
  if (!run_group(s, *bound_, g.demand_indices, g.entries, failed_demand)) {
    return false;
  }
  // Materialize a dense distance snapshot for the dirty screening (it reads
  // arbitrary endpoints, so sparse stamped storage would not help there).
  if (g.dist.size() == num_switches_) {
    std::fill(g.dist.begin(), g.dist.end(), kUnreached);
  } else {
    g.dist.assign(num_switches_, kUnreached);
  }
  for (const SwitchId u : s.visit_order) {
    g.dist[static_cast<std::size_t>(u)] = s.dist[static_cast<std::size_t>(u)];
  }
  g.valid = true;
  return true;
}

void EcmpRouter::bind_demands(const DemandSet& demands) {
  bound_ = &demands;
  bound_size_ = demands.size();
  groups_.clear();
  groups_ready_ = false;
  touched_valid_ = false;
  const std::size_t words = word_count(num_switches_);
  auto grouping = group_by_targets(demands);
  groups_.resize(grouping.size());
  for (std::size_t gi = 0; gi < grouping.size(); ++gi) {
    DemandGroup& g = groups_[gi];
    g.demand_indices = std::move(grouping[gi]);
    g.relevant_words.assign(words, 0);
    const auto mark = [&](SwitchId s) {
      g.relevant_words[static_cast<std::size_t>(s) >> 6] |=
          std::uint64_t{1} << (static_cast<std::size_t>(s) & 63);
    };
    for (const std::uint32_t i : g.demand_indices) {
      for (const SwitchId s : demands[i].sources) mark(s);
      for (const SwitchId t : demands[i].targets) mark(t);
    }
  }
}

void EcmpRouter::mark_dirty_groups(
    const std::vector<topo::Topology::StateChange>& changes,
    std::vector<std::uint8_t>& dirty) {
  const std::size_t switch_words = word_count(num_switches_);
  const std::size_t circuit_words = word_count(topo_.num_circuits());
  if (changed_switch_words_.size() < switch_words) {
    changed_switch_words_.resize(switch_words, 0);
  }
  if (changed_circuit_words_.size() < circuit_words) {
    changed_circuit_words_.resize(circuit_words, 0);
  }
  changed_switch_word_idx_.clear();
  changed_circuit_word_idx_.clear();
  const auto touch_circuit = [&](CircuitId c) {
    const auto w = static_cast<std::size_t>(c) >> 6;
    if (changed_circuit_words_[w] == 0) {
      changed_circuit_word_idx_.push_back(static_cast<std::uint32_t>(w));
    }
    changed_circuit_words_[w] |= std::uint64_t{1}
                                 << (static_cast<std::size_t>(c) & 63);
  };
  for (const Topology::StateChange e : changes) {
    if (Topology::change_is_switch(e)) {
      const SwitchId s = Topology::change_switch(e);
      const auto w = static_cast<std::size_t>(s) >> 6;
      if (changed_switch_words_[w] == 0) {
        changed_switch_word_idx_.push_back(static_cast<std::uint32_t>(w));
      }
      changed_switch_words_[w] |= std::uint64_t{1}
                                  << (static_cast<std::size_t>(s) & 63);
      // The switch's incident circuits' liveness may have flipped.
      for (const CircuitId c : topo_.incident(s)) touch_circuit(c);
    } else {
      touch_circuit(Topology::change_circuit(e));
    }
  }

  // A flipped switch dirties every group it sources or sinks (injection and
  // target activation depend on its state): word-AND the changed-switch set
  // against each group's packed relevant set — 64 switches per compare.
  for (const std::uint32_t w : changed_switch_word_idx_) {
    const std::uint64_t mask = changed_switch_words_[w];
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      if (!dirty[gi] && (groups_[gi].relevant_words[w] & mask) != 0) {
        dirty[gi] = 1;
      }
    }
  }

  // A liveness flip of circuit (a, b) can change a group's DAG or distances
  // only when, under the group's cached distances:
  //  * circuit now alive: it could shorten paths or add a DAG edge unless
  //    both endpoints were reached at equal distance (a same-level chord is
  //    never on a shortest path) or both were unreached (an edge between two
  //    unreached switches cannot connect either to a target);
  //  * circuit now dead: it could only have mattered when it was a DAG edge
  //    candidate, i.e. both endpoints reached at distances differing by 1.
  // Conservative: a circuit journaled without a net liveness change may
  // still mark a group dirty; never the other way around.
  long long screened = 0;
  for (const std::uint32_t w : changed_circuit_word_idx_) {
    std::uint64_t bits = changed_circuit_words_[w];
    screened += std::popcount(bits);
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      const auto c = static_cast<CircuitId>((static_cast<std::size_t>(w) << 6) +
                                            static_cast<std::size_t>(bit));
      const topo::Circuit& cc = topo_.circuit(c);
      const bool alive_now = circuit_alive(c);
      for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        if (dirty[gi]) continue;
        const DemandGroup& g = groups_[gi];
        if (g.dist.size() != num_switches_) {
          dirty[gi] = 1;  // no usable snapshot: recompute
          continue;
        }
        const std::int32_t da = g.dist[static_cast<std::size_t>(cc.a)];
        const std::int32_t db = g.dist[static_cast<std::size_t>(cc.b)];
        if (alive_now) {
          const bool equal_reached = da != kUnreached && da == db;
          const bool both_unreached = da == kUnreached && db == kUnreached;
          if (!equal_reached && !both_unreached) dirty[gi] = 1;
        } else {
          if (da != kUnreached && db != kUnreached &&
              (da - db == 1 || db - da == 1)) {
            dirty[gi] = 1;
          }
        }
      }
    }
  }
  m_dirty_screen_circuits_.inc(screened);

  // Zero only the touched words so the bitmaps are clean for the next call.
  for (const std::uint32_t w : changed_switch_word_idx_) {
    changed_switch_words_[w] = 0;
  }
  for (const std::uint32_t w : changed_circuit_word_idx_) {
    changed_circuit_words_[w] = 0;
  }
}

void EcmpRouter::rebuild_total(std::size_t load_size) {
  if (total_loads_.size() != load_size) {
    total_loads_.assign(load_size, 0.0);
    total_touched_slots_.clear();
  } else {
    // Zero only the slots the previous total touched.
    for (const std::uint32_t slot : total_touched_slots_) {
      total_loads_[slot] = 0.0;
    }
  }
  if (slot_stamp_.size() < load_size) slot_stamp_.resize(load_size, 0);
  if (++slot_epoch_ == 0) {
    std::fill(slot_stamp_.begin(), slot_stamp_.end(), 0);
    slot_epoch_ = 1;
  }
  total_touched_slots_.clear();

  // Accumulate the sparse group contributions in group order: within one
  // group each slot appears at most once, so the per-slot addition sequence
  // is exactly the dense per-group sum's — bit-identical result.
  for (const DemandGroup& g : groups_) {
    for (const LoadEntry& e : g.entries) {
      total_loads_[e.slot] += e.value;
      if (slot_stamp_[e.slot] != slot_epoch_) {
        slot_stamp_[e.slot] = slot_epoch_;
        total_touched_slots_.push_back(e.slot);
      }
    }
  }

  // Touched circuits, ascending, for the utilization fast path. Shares are
  // strictly positive, so every touched slot's total is non-zero. Marking
  // bits and then scanning the word array gives ascending order for a
  // popcount pass over C/64 words — no comparison sort.
  const std::size_t circuit_words = word_count(topo_.num_circuits());
  if (touched_circuit_words_.size() < circuit_words) {
    touched_circuit_words_.resize(circuit_words, 0);
  }
  for (const std::uint32_t slot : total_touched_slots_) {
    const std::uint32_t c = slot >> 1;
    touched_circuit_words_[c >> 6] |= std::uint64_t{1} << (c & 63);
  }
  touched_circuits_.clear();
  for (std::size_t w = 0; w < circuit_words; ++w) {
    std::uint64_t bits = touched_circuit_words_[w];
    if (bits == 0) continue;
    touched_circuit_words_[w] = 0;
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      touched_circuits_.push_back(
          static_cast<CircuitId>((w << 6) + static_cast<std::size_t>(bit)));
    }
  }
}

bool EcmpRouter::assign_bound(LoadVector& loads, std::string* failed_demand) {
  refresh_alive();
  const std::uint64_t v = topo_.state_version();

  dirty_scratch_.assign(groups_.size(), 0);
  bool any_dirty = false;
  if (!groups_ready_) {
    std::fill(dirty_scratch_.begin(), dirty_scratch_.end(), 1);
    any_dirty = !groups_.empty();
  } else if (v != groups_version_) {
    changes_scratch_.clear();
    if (topo_.changes_since(groups_version_, changes_scratch_)) {
      mark_dirty_groups(changes_scratch_, dirty_scratch_);
    } else {
      // Journal no longer covers the gap (or structural change): rebuild.
      std::fill(dirty_scratch_.begin(), dirty_scratch_.end(), 1);
    }
    long long invalidated = 0;
    for (const std::uint8_t d : dirty_scratch_) {
      any_dirty |= d != 0;
      invalidated += d != 0 ? 1 : 0;
    }
    m_group_invalidations_.inc(invalidated);
  }
  // groups_ready_ && v == groups_version_: every cache is current.

  if (any_dirty) {
    job_groups_.clear();
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      if (dirty_scratch_[gi]) {
        job_groups_.push_back(static_cast<std::uint32_t>(gi));
      }
    }
    if (threads_.empty() || job_groups_.size() < 2) {
      // Serial path: recompute in group order, stopping at the first
      // failure. These loops define the logical counter semantics the
      // parallel path reproduces.
      for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        if (!dirty_scratch_[gi]) {
          ++group_reuses_;
          m_group_reuses_.inc();
          continue;
        }
        ++group_recomputes_;
        if (!recompute_group(scratch_, groups_[gi], failed_demand)) {
          groups_ready_ = false;
          touched_valid_ = false;
          return false;
        }
      }
    } else {
      // Parallel path: physically recompute every dirty group on the pool,
      // then replay the serial loop's accounting in group order on this
      // thread — loads, failure identity, and the logical counters come out
      // bit-identical to the serial path.
      njobs_ = job_groups_.size();
      job_ok_.assign(njobs_, 0);
      job_fail_.assign(njobs_, std::string());
      m_parallel_batches_.inc();
      m_parallel_jobs_.inc(static_cast<long long>(njobs_));
      run_jobs_parallel();
      std::size_t job = 0;
      for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        if (!dirty_scratch_[gi]) {
          ++group_reuses_;
          m_group_reuses_.inc();
          continue;
        }
        ++group_recomputes_;
        const std::size_t j = job++;
        if (!job_ok_[j]) {
          if (failed_demand != nullptr) *failed_demand = job_fail_[j];
          groups_ready_ = false;
          touched_valid_ = false;
          return false;
        }
      }
    }
    rebuild_total(loads.size());
    groups_ready_ = true;
    groups_version_ = v;
  } else if (!groups_ready_) {
    // Empty bound set: nothing to compute, caches are trivially current.
    total_loads_.assign(loads.size(), 0.0);
    total_touched_slots_.clear();
    touched_circuits_.clear();
    groups_ready_ = true;
    groups_version_ = v;
  } else {
    group_reuses_ += static_cast<long long>(groups_.size());
    m_group_reuses_.inc(static_cast<long long>(groups_.size()));
    // The screening proved the caches valid at v; advance so the next call
    // does not replay the same journal suffix again.
    groups_version_ = v;
  }

  // Sparse scatter over the touched slots only. Untouched slots hold +0.0 in
  // the dense total, and x += +0.0 is an exact no-op for the non-negative
  // loads we produce, so this equals the dense add.
  for (const std::uint32_t slot : total_touched_slots_) {
    loads[slot] += total_loads_[slot];
  }
  touched_valid_ = true;
  return true;
}

bool EcmpRouter::assign_all(const DemandSet& demands, LoadVector& loads,
                            std::string* failed_demand) {
  loads.resize(topo_.num_circuits() * 2, 0.0);
  if (bound_ == &demands && demands.size() == bound_size_) {
    return assign_bound(loads, failed_demand);
  }

  // Unbound one-shot path: group by target set (hash map, first-occurrence
  // order) and evaluate each group once, without caching.
  touched_valid_ = false;
  refresh_alive();
  for (const auto& indices : group_by_targets(demands)) {
    entries_scratch_.clear();
    if (!run_group(scratch_, demands, indices, entries_scratch_,
                   failed_demand)) {
      return false;
    }
    for (const LoadEntry& e : entries_scratch_) loads[e.slot] += e.value;
  }
  return true;
}

void EcmpRouter::set_num_workers(int n) {
  const std::size_t want = n > 1 ? static_cast<std::size_t>(n) : 0;
  if (want == threads_.size()) return;
  stop_workers();
  if (want == 0) return;
  worker_scratch_.clear();
  worker_scratch_.reserve(want);
  threads_.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    worker_scratch_.push_back(std::make_unique<Scratch>());
    worker_scratch_.back()->init(num_switches_);
  }
  for (std::size_t i = 0; i < want; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

void EcmpRouter::stop_workers() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  worker_scratch_.clear();
  stop_ = false;
  // Restart the generation clock: freshly spawned workers begin at seen = 0,
  // so a stale non-zero generation would wake them into the previous pool's
  // job state before any batch is published.
  generation_ = 0;
  active_ = 0;
}

void EcmpRouter::worker_loop(std::size_t widx) {
  std::uint64_t seen = 0;
  Scratch& scratch = *worker_scratch_[widx];
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    for (;;) {
      const std::size_t j = next_.fetch_add(1, std::memory_order_relaxed);
      if (j >= njobs_) break;
      std::string fail;
      const bool ok =
          recompute_group(scratch, groups_[job_groups_[j]], &fail);
      job_ok_[j] = ok ? 1 : 0;
      if (!ok) job_fail_[j] = std::move(fail);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void EcmpRouter::run_jobs_parallel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    next_.store(0, std::memory_order_relaxed);
    active_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread drains jobs too — with a small pool most of the
  // work would otherwise sit behind one wakeup latency.
  for (;;) {
    const std::size_t j = next_.fetch_add(1, std::memory_order_relaxed);
    if (j >= njobs_) break;
    std::string fail;
    const bool ok = recompute_group(scratch_, groups_[job_groups_[j]], &fail);
    job_ok_[j] = ok ? 1 : 0;
    if (!ok) job_fail_[j] = std::move(fail);
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_ == 0; });
}

double max_utilization(const topo::Topology& topo, const LoadVector& loads) {
  return worst_circuit(topo, loads).utilization;
}

WorstCircuit worst_circuit(const topo::Topology& topo,
                           const LoadVector& loads) {
  WorstCircuit worst;
  const std::size_t n = std::min(loads.size() / 2, topo.num_circuits());
  for (std::size_t c = 0; c < n; ++c) {
    const double load = std::max(loads[c * 2], loads[c * 2 + 1]);
    if (load <= 0.0) continue;
    const double util = load / topo.circuit(static_cast<CircuitId>(c))
                                   .capacity_tbps;
    if (util > worst.utilization) {
      worst.utilization = util;
      worst.circuit = static_cast<CircuitId>(c);
    }
  }
  return worst;
}

double max_utilization(const topo::Topology& topo, const LoadVector& loads,
                       const std::vector<topo::CircuitId>& touched) {
  return worst_circuit(topo, loads, touched).utilization;
}

WorstCircuit worst_circuit(const topo::Topology& topo, const LoadVector& loads,
                           const std::vector<topo::CircuitId>& touched) {
  WorstCircuit worst;
  const std::size_t n = std::min(loads.size() / 2, topo.num_circuits());
  for (const CircuitId c : touched) {
    const auto ci = static_cast<std::size_t>(c);
    if (ci >= n) continue;
    const double load = std::max(loads[ci * 2], loads[ci * 2 + 1]);
    if (load <= 0.0) continue;
    const double util = load / topo.circuit(c).capacity_tbps;
    if (util > worst.utilization) {
      worst.utilization = util;
      worst.circuit = c;
    }
  }
  return worst;
}

}  // namespace klotski::traffic
