// Demand matrix (de)serialization.
//
// The paper's demands come from Meta's forecasting pipeline and are
// refreshed after every migration step (§7.1). This module gives the same
// workflow a file form: export the generated demand set, let operators (or
// a forecaster) edit volumes, and feed the updated matrix back into the
// planner. Endpoints are stored by switch name so a matrix survives
// re-synthesis of the same NPD document.
//
// Layout:
//   { "demands": [ { "name": "...", "kind": "egress",
//                    "volume_tbps": 12.5,
//                    "sources": ["d0/p0/rsw0", ...],
//                    "targets": ["ebb0", ...] }, ... ] }
#pragma once

#include "klotski/json/json.h"
#include "klotski/topo/topology.h"
#include "klotski/traffic/demand.h"

namespace klotski::traffic {

/// Serializes with endpoint switch names.
json::Value demands_to_json(const topo::Topology& topo,
                            const DemandSet& demands);

/// Inverse; throws std::invalid_argument on unknown switch names, unknown
/// kinds, or non-positive volumes.
DemandSet demands_from_json(const topo::Topology& topo,
                            const json::Value& value);

/// Parses the kind strings produced by to_string(DemandKind).
DemandKind demand_kind_from_string(const std::string& text);

}  // namespace klotski::traffic
