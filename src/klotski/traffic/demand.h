// Traffic demands (§3): aggregate flows between sets of switches.
//
// The paper models three kinds of source/target pairs — RSW to EBB (egress),
// EBB to RSW (ingress), and RSW to RSW (east-west / intra-DC) — with volumes
// of hundreds of Tbps. A demand's volume is injected equally across its
// *active* source switches and absorbed by its active target switches along
// the ECMP shortest-path DAG.
#pragma once

#include <string>
#include <vector>

#include "klotski/topo/switch_types.h"

namespace klotski::traffic {

enum class DemandKind { kEgress, kIngress, kEastWest, kIntraDc };

std::string to_string(DemandKind kind);

struct Demand {
  std::string name;
  DemandKind kind = DemandKind::kEgress;
  std::vector<topo::SwitchId> sources;
  std::vector<topo::SwitchId> targets;
  double volume_tbps = 0.0;
};

using DemandSet = std::vector<Demand>;

/// Total volume across a demand set (Tbps).
double total_volume(const DemandSet& demands);

/// Returns a copy with every volume scaled by `factor` (used by forecasts
/// and surge events).
DemandSet scaled(const DemandSet& demands, double factor);

}  // namespace klotski::traffic
