#include "klotski/traffic/demand_io.h"

#include <stdexcept>
#include <unordered_map>

namespace klotski::traffic {

using json::Array;
using json::Object;
using json::Value;

DemandKind demand_kind_from_string(const std::string& text) {
  if (text == "egress") return DemandKind::kEgress;
  if (text == "ingress") return DemandKind::kIngress;
  if (text == "east-west") return DemandKind::kEastWest;
  if (text == "intra-dc") return DemandKind::kIntraDc;
  throw std::invalid_argument("unknown demand kind: " + text);
}

json::Value demands_to_json(const topo::Topology& topo,
                            const DemandSet& demands) {
  Array list;
  for (const Demand& d : demands) {
    Object o;
    o["name"] = d.name;
    o["kind"] = to_string(d.kind);
    o["volume_tbps"] = d.volume_tbps;
    Array sources;
    for (const topo::SwitchId s : d.sources) {
      sources.push_back(topo.sw(s).name);
    }
    o["sources"] = Value(std::move(sources));
    Array targets;
    for (const topo::SwitchId t : d.targets) {
      targets.push_back(topo.sw(t).name);
    }
    o["targets"] = Value(std::move(targets));
    list.push_back(Value(std::move(o)));
  }
  Object root;
  root["demands"] = Value(std::move(list));
  return Value(std::move(root));
}

DemandSet demands_from_json(const topo::Topology& topo,
                            const json::Value& value) {
  // Name lookup once: the matrices reference thousands of RSWs.
  std::unordered_map<std::string, topo::SwitchId> by_name;
  by_name.reserve(topo.num_switches());
  for (const topo::Switch& s : topo.switches()) {
    by_name.emplace(s.name, s.id);
  }
  auto resolve = [&](const std::string& name) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::invalid_argument(
          "demands_from_json: unknown switch '" + name + "'");
    }
    return it->second;
  };

  DemandSet demands;
  for (const Value& v : value.at("demands").as_array()) {
    Demand d;
    d.name = v.at("name").as_string();
    d.kind = demand_kind_from_string(v.at("kind").as_string());
    d.volume_tbps = v.at("volume_tbps").as_double();
    if (d.volume_tbps <= 0.0) {
      throw std::invalid_argument("demands_from_json: demand '" + d.name +
                                  "' has non-positive volume");
    }
    for (const Value& s : v.at("sources").as_array()) {
      d.sources.push_back(resolve(s.as_string()));
    }
    for (const Value& t : v.at("targets").as_array()) {
      d.targets.push_back(resolve(t.as_string()));
    }
    if (d.sources.empty() || d.targets.empty()) {
      throw std::invalid_argument("demands_from_json: demand '" + d.name +
                                  "' needs sources and targets");
    }
    demands.push_back(std::move(d));
  }
  return demands;
}

}  // namespace klotski::traffic
