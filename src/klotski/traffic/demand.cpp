#include "klotski/traffic/demand.h"

namespace klotski::traffic {

std::string to_string(DemandKind kind) {
  switch (kind) {
    case DemandKind::kEgress: return "egress";
    case DemandKind::kIngress: return "ingress";
    case DemandKind::kEastWest: return "east-west";
    case DemandKind::kIntraDc: return "intra-dc";
  }
  return "?";
}

double total_volume(const DemandSet& demands) {
  double total = 0.0;
  for (const Demand& d : demands) total += d.volume_tbps;
  return total;
}

DemandSet scaled(const DemandSet& demands, double factor) {
  DemandSet out = demands;
  for (Demand& d : out) d.volume_tbps *= factor;
  return out;
}

}  // namespace klotski::traffic
