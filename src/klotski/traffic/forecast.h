// Demand forecasting (§7.1): migrations last weeks to months, so traffic
// grows organically during the plan and can spike unexpectedly (§7.2,
// "unexpected traffic surge"). The forecaster produces the demand set
// expected at a future migration step; the pipeline re-plans whenever the
// forecast moves enough to matter.
//
// Composition rule (load-bearing; do not "simplify"): overlapping windows
// compose multiplicatively, in a pinned operation order. at_step folds
// growth^step and every active surge factor into ONE per-demand factor
// (insertion order) and applies it with a single multiply; forecast_at_step
// takes that output and applies each active bias as its OWN multiply, in
// bias insertion order — ((value * b1) * b2), never value * (b1 * b2).
// Floating-point association is part of the contract: seeded chaos and
// what-if sweeps assert byte-identical trajectories, so refactoring the
// rounding sequence (e.g. folding biases into one factor) is a behavior
// change even though it is algebraically neutral. Zero-length windows
// (start_step == end_step) are valid and never active; [start, end) with
// end < start is rejected at add time.
#pragma once

#include <string>
#include <vector>

#include "klotski/traffic/demand.h"

namespace klotski::traffic {

/// A temporary demand multiplier on one demand kind over [start, end) steps
/// — e.g. the warm-storage backup placement change from §7.2.
struct SurgeEvent {
  std::string name;
  DemandKind kind = DemandKind::kEgress;
  int start_step = 0;
  int end_step = 0;   // exclusive
  double factor = 1.0;
};

/// A forecast *error*: while active, the demand sets the forecaster hands to
/// the planner (forecast_at_step) over/under-estimate reality (at_step) by
/// `factor` on one demand kind. Models the §7.2 scenario where the plan was
/// made against a forecast that turned out wrong; consumers that validate
/// executed states must use at_step, which is always ground truth.
struct ForecastBias {
  std::string name;
  DemandKind kind = DemandKind::kEgress;
  int start_step = 0;
  int end_step = 0;   // exclusive
  double factor = 1.0;
};

class Forecaster {
 public:
  /// `growth_per_step` is compound organic growth per migration step
  /// (e.g. 0.002 for ~0.2% per step).
  Forecaster(DemandSet base, double growth_per_step);

  void add_surge(SurgeEvent event);
  void add_bias(ForecastBias bias);

  /// Actual demand set at a migration step (step 0 == base). Ground truth:
  /// surges are real events and apply here; biases do not.
  DemandSet at_step(int step) const;

  /// What the forecasting pipeline *predicts* for `step`: at_step with the
  /// active ForecastBias factors applied sequentially in insertion order
  /// (see the composition rule above). Equal to at_step when no bias is
  /// active at that step.
  DemandSet forecast_at_step(int step) const;

  /// True when at least one bias is active at `step`, i.e. forecast_at_step
  /// and at_step disagree.
  bool biased_at(int step) const;

  /// Largest per-demand relative change between two steps; the pipeline
  /// re-plans when this exceeds its threshold.
  double max_relative_change(int from_step, int to_step) const;

  double growth_per_step() const { return growth_; }
  const DemandSet& base() const { return base_; }

 private:
  DemandSet base_;
  double growth_;
  std::vector<SurgeEvent> surges_;
  std::vector<ForecastBias> biases_;
};

}  // namespace klotski::traffic
