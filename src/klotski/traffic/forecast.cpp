#include "klotski/traffic/forecast.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace klotski::traffic {

Forecaster::Forecaster(DemandSet base, double growth_per_step)
    : base_(std::move(base)), growth_(growth_per_step) {
  if (growth_ < -1.0) {
    throw std::invalid_argument("Forecaster: growth_per_step < -100%");
  }
}

void Forecaster::add_surge(SurgeEvent event) {
  if (event.end_step < event.start_step) {
    throw std::invalid_argument("Forecaster: surge ends before it starts");
  }
  surges_.push_back(std::move(event));
}

void Forecaster::add_bias(ForecastBias bias) {
  if (bias.end_step < bias.start_step) {
    throw std::invalid_argument("Forecaster: bias ends before it starts");
  }
  if (bias.factor <= 0.0) {
    throw std::invalid_argument("Forecaster: bias factor must be positive");
  }
  biases_.push_back(std::move(bias));
}

DemandSet Forecaster::at_step(int step) const {
  DemandSet out = base_;
  const double growth = std::pow(1.0 + growth_, step);
  for (Demand& d : out) {
    double factor = growth;
    for (const SurgeEvent& surge : surges_) {
      if (d.kind == surge.kind && step >= surge.start_step &&
          step < surge.end_step) {
        factor *= surge.factor;
      }
    }
    d.volume_tbps *= factor;
  }
  return out;
}

DemandSet Forecaster::forecast_at_step(int step) const {
  DemandSet out = at_step(step);
  for (Demand& d : out) {
    for (const ForecastBias& bias : biases_) {
      if (d.kind == bias.kind && step >= bias.start_step &&
          step < bias.end_step) {
        d.volume_tbps *= bias.factor;
      }
    }
  }
  return out;
}

bool Forecaster::biased_at(int step) const {
  for (const ForecastBias& bias : biases_) {
    if (step >= bias.start_step && step < bias.end_step &&
        bias.factor != 1.0) {
      return true;
    }
  }
  return false;
}

double Forecaster::max_relative_change(int from_step, int to_step) const {
  const DemandSet a = at_step(from_step);
  const DemandSet b = at_step(to_step);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].volume_tbps <= 0.0) continue;
    const double change =
        std::abs(b[i].volume_tbps - a[i].volume_tbps) / a[i].volume_tbps;
    worst = std::max(worst, change);
  }
  return worst;
}

}  // namespace klotski::traffic
