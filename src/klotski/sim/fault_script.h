// Deterministic fault scripts for the chaos engine (§7.2 failure modes).
//
// A FaultScript is a seeded, pre-generated event stream over the migration's
// step horizon: circuit capacity degradations, circuit failures, unplanned
// switch drains, demand surges/shifts, injected step failures (with partial
// block application), and forecast-error windows. The script is a pure
// function of (seed, task shape, params), so every chaos trajectory is
// reproducible from its seed alone — including across checkpoint resume.
//
// Element faults only ever target elements the migration does not itself
// operate: operated blocks own their elements' states, and the replan
// driver's overlay (like the maintenance calendar) only drains elements that
// are active in the planned state.
#pragma once

#include <cstdint>
#include <vector>

#include "klotski/migration/task.h"
#include "klotski/pipeline/replan.h"
#include "klotski/traffic/forecast.h"

namespace klotski::sim {

enum class FaultKind : std::uint8_t {
  kCircuitDegrade,  // circuit capacity × factor over [start, end)
  kCircuitFail,     // circuit hard-down (drained) over [start, end)
  kSwitchDrain,     // unplanned switch drain over [start, end)
  kStepFailure,     // injected operation failure of one executed phase
};

struct FaultEvent {
  FaultKind kind = FaultKind::kCircuitDegrade;
  int start_step = 0;
  int end_step = 0;  // exclusive; unused for kStepFailure
  topo::CircuitId circuit = topo::kInvalidCircuit;
  topo::SwitchId sw = topo::kInvalidSwitch;
  double factor = 1.0;  // kCircuitDegrade capacity multiplier
  int phase = 0;        // kStepFailure: global executed-phase index
  int ops_applied = 0;  // kStepFailure: ElementOps pushed before dying

  bool is_element_fault() const { return kind != FaultKind::kStepFailure; }
  bool active_at(int step) const {
    return is_element_fault() && step >= start_step && step < end_step;
  }
};

struct FaultScriptParams {
  /// Step horizon the element faults and demand events are scheduled over.
  /// run_chaos_seed sizes this from the task's action count.
  int horizon = 64;
  /// Phase indices for step failures are sampled from [0, expected_phases).
  int expected_phases = 16;

  int circuit_degrades = 2;
  int circuit_failures = 1;
  int switch_drains = 1;
  int step_failures = 2;
  /// Demand surges (factor > 1) and shifts (factor < 1) on one demand kind.
  int demand_events = 1;
  /// Forecast-error windows (forecast over/under-estimates ground truth).
  int forecast_errors = 1;

  double degrade_factor_min = 0.5;
  double degrade_factor_max = 0.9;
  double surge_factor_min = 0.8;
  double surge_factor_max = 1.5;
  double bias_factor_min = 0.85;
  double bias_factor_max = 1.2;
  /// Injected failures push at most this many ElementOps before dying.
  int max_partial_ops = 3;
};

struct FaultScript {
  std::vector<FaultEvent> events;  // element faults + step failures
  /// Real demand events; install into the Forecaster with add_surge.
  std::vector<traffic::SurgeEvent> surges;
  /// Forecast errors; install with add_bias.
  std::vector<traffic::ForecastBias> biases;
};

/// Generates the script for `seed`. Deterministic: same seed + same task
/// shape + same params => identical script, on any build.
FaultScript make_fault_script(std::uint64_t seed,
                              const migration::MigrationTask& task,
                              const FaultScriptParams& params);

/// Drives a FaultScript through the replan driver's FaultInjector hook.
/// Stateless per step (all answers are pure functions of the script and the
/// arguments), which is what makes checkpoint resume bit-identical.
///
/// Capacity degradations are out-of-band topology edits; the injector owns
/// restoring them — call restore_capacities() (or let the destructor) before
/// reusing the topology.
class ScriptInjector final : public pipeline::FaultInjector {
 public:
  ScriptInjector(const FaultScript& script, topo::Topology& topo);
  ~ScriptInjector() override;

  std::uint64_t fault_epoch(int step) const override;
  void apply(int step, topo::Topology& topo,
             std::vector<topo::SwitchId>& drained_switches,
             std::vector<topo::CircuitId>& drained_circuits) override;
  int phase_failure_ops(int phases_executed, int attempt) override;

  /// Restores every degraded circuit to its construction-time capacity.
  void restore_capacities();

 private:
  const FaultScript& script_;
  topo::Topology* topo_;
  /// Circuits with at least one degrade event, with original capacities.
  std::vector<std::pair<topo::CircuitId, double>> degraded_;
};

}  // namespace klotski::sim
