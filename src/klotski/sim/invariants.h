// Model-based invariant checking for chaos trajectories.
//
// The chaos engine does not know what the *right* plan is under a fault
// script — but every intermediate topology the driver actually executes must
// satisfy a set of invariants regardless of which plan produced it:
//
//  1. Safety: the standard constraint stack (ports -> space/power -> demand)
//     passes on the materialized executed state under the ground-truth
//     demands of the step it executed at. Forecasts may be wrong; executed
//     states may not be.
//  2. Journal consistency: an ECMP router that has lived through the whole
//     trajectory (incremental liveness refresh via the topology's change
//     journal) produces bit-identical loads to a freshly constructed router,
//     and the topology's packed liveness words match per-circuit
//     circuit_carries_traffic.
//  3. Monotone progress: the done vector only ever grows, exactly by the
//     executed phase's block count in its type; steps never go backwards.
//  4. Cost accounting: the driver's running executed_cost equals an
//     independent re-accumulation through the CostModel, bit-for-bit, and
//     the final ReplanResult totals match the observed stream (including
//     the warm-repair identity attempts == wins + full fallbacks).
//  5. Incremental symmetry: an IncrementalSymmetry instance that has lived
//     through the whole trajectory (journal / snapshot-diff refresh) yields
//     exactly compute_symmetry on every executed state — the warm-repair
//     gate never sees a stale partition.
//
// The checker doubles as the trajectory recorder: one line per executed
// phase (type, blocks, step, state signature, cost) whose byte-equality
// across runs is the determinism and checkpoint-resume oracle.
#pragma once

#include <string>
#include <vector>

#include "klotski/core/cost_model.h"
#include "klotski/migration/symmetry.h"
#include "klotski/pipeline/edp.h"
#include "klotski/pipeline/replan.h"
#include "klotski/traffic/ecmp.h"

namespace klotski::sim {

struct InvariantViolation {
  int phases_executed = 0;
  int step = 0;
  std::string what;
};

class InvariantChecker {
 public:
  /// `task` must be the task handed to execute_with_replanning; the checker
  /// keeps a persistent ECMP router on its topology for the journal-
  /// consistency invariant.
  InvariantChecker(migration::MigrationTask& task,
                   const pipeline::CheckerConfig& config,
                   const core::PlannerOptions& planner_options);

  /// Wire as ReplanOptions::observer.
  void observe(const pipeline::PhaseObservation& observation);

  /// Seeds the accounting state from a checkpoint so a resumed run can be
  /// checked mid-stream (trajectory lines then cover the resumed suffix).
  void seed_from(const pipeline::ReplanCheckpoint& checkpoint);

  /// Final accounting: the driver's result totals must match the observed
  /// stream. Call once after execute_with_replanning returns.
  void finish(const pipeline::ReplanResult& result);

  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  /// One line per executed phase, in order.
  const std::vector<std::string>& trajectory() const { return trajectory_; }

 private:
  void violation(const pipeline::PhaseObservation& observation,
                 std::string what);

  migration::MigrationTask* task_;
  pipeline::CheckerConfig config_;
  core::CostModel cost_;
  traffic::EcmpRouter persistent_router_;
  migration::IncrementalSymmetry persistent_symmetry_;

  // Accounting state mirrored from the driver.
  core::CountVector prev_done_;
  int prev_phases_ = 0;
  int prev_step_ = -1;
  std::int32_t last_type_ = migration::kNoAction;
  double expected_cost_ = 0.0;

  std::vector<InvariantViolation> violations_;
  std::vector<std::string> trajectory_;
  static constexpr std::size_t kMaxViolations = 16;
};

}  // namespace klotski::sim
