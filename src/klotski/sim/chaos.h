// The chaos engine: seeded adversarial trajectories through the replan
// driver, with model-based invariant checking and a checkpoint-resume
// self-test (§7.1-§7.2 hardening).
//
// One chaos run = one seed: build a preset migration, generate the seed's
// FaultScript, and execute the migration through execute_with_replanning
// with the script injected, the InvariantChecker observing every executed
// phase, and every phase checkpointed. When the run completes, the engine
// round-trips a mid-run checkpoint through JSON, re-executes from it in a
// fresh world, and requires the resumed trajectory suffix, final cost and
// phase/replan counters to match the uninterrupted run byte-for-byte.
//
// Seeds are fully independent (no shared mutable state beyond thread-safe
// obs counters), so a sweep produces bit-identical verdicts regardless of
// the thread count — which the tier-1 determinism test asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "klotski/pipeline/edp.h"
#include "klotski/sim/fault_script.h"
#include "klotski/topo/presets.h"

namespace klotski::sim {

struct ChaosParams {
  /// Topology family and preset: Clos runs the preset's HGRID experiment,
  /// flat the partial forklift, reconf the mesh rewire (see
  /// pipeline::build_family_experiment).
  topo::TopologyFamily family = topo::TopologyFamily::kClos;
  topo::PresetId preset = topo::PresetId::kA;
  topo::PresetScale scale = topo::PresetScale::kReduced;
  std::string planner = "astar";

  double growth_per_step = 0.002;
  double demand_change_threshold = 0.10;

  /// Driver hardening knobs (see ReplanOptions). The retry budget defaults
  /// higher than the driver's own default so the backoff sequence
  /// (1+2+4+8+8+8 = 31 steps) outlasts any fault window the script
  /// schedules — surviving transient faults is the point of the run.
  int max_phase_retries = 6;
  int backoff_steps = 1;
  int max_backoff_steps = 8;
  int max_replans = 0;  // 0 = never degrade to the fallback
  std::string fallback_planner = "mrc";

  /// Warm-start replanning knobs (ReplanOptions; DESIGN.md §11). Warm runs
  /// must produce the same pass/fail verdicts as cold runs — tier-1 sweeps
  /// both settings and compares.
  bool warm_repair = true;
  double repair_cost_slack = 1.25;

  pipeline::CheckerConfig checker;
  core::PlannerOptions planner_options;

  /// Event counts and magnitudes; horizon/expected_phases are sized from
  /// the task automatically.
  FaultScriptParams faults;

  /// Kill-and-resume from a JSON round-tripped mid-run checkpoint and
  /// require a byte-identical continuation.
  bool checkpoint_self_test = true;
};

struct ChaosVerdict {
  std::uint64_t seed = 0;
  bool completed = false;      // the migration reached the target state
  bool invariants_ok = false;  // no InvariantChecker violation
  bool resume_ok = true;       // checkpoint resume matched (when tested)
  std::string failure;         // driver failure or first violation
  std::vector<std::string> violations;
  /// Newline-terminated per-phase trajectory (the determinism oracle).
  std::string trajectory;

  int phases = 0;
  int replans = 0;
  int phase_retries = 0;
  int fallback_plans = 0;
  double executed_cost = 0.0;

  /// Warm-repair accounting + per-round planning latencies (ReplanResult).
  int warm_attempts = 0;
  int warm_wins = 0;
  int fallback_full = 0;
  std::vector<pipeline::ReplanRound> rounds;

  bool passed() const { return completed && invariants_ok && resume_ok; }
};

/// Runs one seed to a verdict. Exceptions become failed verdicts, not
/// crashes. Deterministic: same seed + params => byte-identical verdict.
ChaosVerdict run_chaos_seed(std::uint64_t seed, const ChaosParams& params);

struct ChaosSweepResult {
  std::vector<ChaosVerdict> verdicts;  // in seed order
  int failures = 0;

  std::vector<std::uint64_t> failing_seeds() const {
    std::vector<std::uint64_t> out;
    for (const ChaosVerdict& v : verdicts) {
      if (!v.passed()) out.push_back(v.seed);
    }
    return out;
  }
};

/// Runs seeds [first_seed, first_seed + num_seeds) across `threads` worker
/// threads. Verdicts are independent of the thread count.
ChaosSweepResult run_chaos_sweep(std::uint64_t first_seed, int num_seeds,
                                 int threads, const ChaosParams& params);

}  // namespace klotski::sim
